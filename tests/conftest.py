"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits import DramCoreSenseAmp, FloatingInverterAmplifier, StrongArmLatch
from repro.core.spec import DesignSpec
from repro.variation.corners import typical_corner


@pytest.fixture
def rng():
    return np.random.default_rng(1234)


@pytest.fixture
def strongarm():
    return StrongArmLatch()


@pytest.fixture
def fia():
    return FloatingInverterAmplifier()


@pytest.fixture
def dram():
    return DramCoreSenseAmp()


@pytest.fixture
def strongarm_spec(strongarm):
    return DesignSpec.from_circuit(strongarm)


@pytest.fixture
def typical():
    return typical_corner()


@pytest.fixture
def feasible_strongarm_design(strongarm, strongarm_spec, rng):
    """A normalised StrongARM design that meets its targets at typical."""
    from repro.core.reward import reward_from_metrics

    for _ in range(5000):
        x = strongarm.random_sizing(rng)
        metrics = strongarm.evaluate(x, typical_corner())
        if reward_from_metrics(strongarm_spec, metrics) >= 0.2:
            return x
    raise RuntimeError("could not find a feasible StrongARM design for tests")
