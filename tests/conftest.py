"""Shared fixtures for the test suite.

Consolidates the circuit/service setup that used to be duplicated across
``test_service_api.py``, ``test_loop_batching.py`` and
``test_verification_chunked.py``:

* ``paper_circuit`` — parametrized over the three paper testbenches, so a
  test taking this fixture runs once per circuit;
* ``service_factory`` / ``simulator_factory`` — build a
  :class:`SimulationService` / :class:`CircuitSimulator` for any circuit;
* ``mismatch_sampler`` / ``seeded_mismatch`` — deterministic mismatch
  sampling helpers;
* ``seeded_rng`` — a generator factory (``seeded_rng(seed)``);
* ``small_budget`` — a capped :class:`SimulationBudget`;
* ``fake_ngspice`` — installs the hermetic fake simulator
  (``tests/fake_ngspice.py``) as an executable and points
  ``$REPRO_NGSPICE`` at it, so ``NgspiceBackend`` runs end-to-end with no
  ngspice installed.

Tests marked ``requires_ngspice`` are auto-skipped when no real ngspice
binary is on PATH, keeping tier-1 hermetic.
"""

from __future__ import annotations

import os
import shutil
import signal
import sys

import numpy as np
import pytest

from repro.circuits import DramCoreSenseAmp, FloatingInverterAmplifier, StrongArmLatch
from repro.core.spec import DesignSpec
from repro.simulation import CircuitSimulator, SimulationBudget, SimulationService
from repro.simulation.ngspice import (
    EXECUTABLE_ENV,
    MEASUREMENT_ENV,
    PAYLOAD_AWARE_ENV,
)
from repro.variation.corners import typical_corner
from repro.variation.mismatch import MismatchSampler

#: The three paper testbenches (kept importable for explicit parametrize).
ALL_CIRCUIT_CLASSES = (StrongArmLatch, FloatingInverterAmplifier, DramCoreSenseAmp)

TESTS_DIR = os.path.dirname(os.path.abspath(__file__))
SRC_DIR = os.path.join(os.path.dirname(TESTS_DIR), "src")


def pytest_collection_modifyitems(config, items):
    """Auto-skip ``requires_ngspice`` tests when the binary is absent."""
    if shutil.which("ngspice"):
        return
    skip = pytest.mark.skip(reason="ngspice binary not on PATH")
    for item in items:
        if "requires_ngspice" in item.keywords:
            item.add_marker(skip)


#: Per-test wall-clock ceiling for the tier-1 lane (seconds; 0 disables).
#: A hand-rolled SIGALRM guard because ``pytest-timeout`` is not part of
#: the baked toolchain: a regression in the hang-handling machinery (a
#: wedged shard, a watchdog that never fires) fails *that one test* fast
#: instead of wedging the whole CI run.  Generous by design — the slowest
#: legitimate tier-1 tests (pool warm-up under load) finish well inside it.
TIER1_TEST_TIMEOUT = float(os.environ.get("REPRO_TEST_TIMEOUT", "300"))


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    """Arm a per-test deadline around the test body (POSIX main thread)."""
    if TIER1_TEST_TIMEOUT <= 0 or not hasattr(signal, "SIGALRM"):
        yield
        return

    def _on_timeout(signum, frame):
        raise TimeoutError(
            f"{item.nodeid} exceeded the {TIER1_TEST_TIMEOUT:.0f}s tier-1 "
            f"per-test timeout guard (REPRO_TEST_TIMEOUT overrides)"
        )

    previous = signal.signal(signal.SIGALRM, _on_timeout)
    signal.setitimer(signal.ITIMER_REAL, TIER1_TEST_TIMEOUT)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)


# ----------------------------------------------------------------------
# Circuits
# ----------------------------------------------------------------------
@pytest.fixture(params=ALL_CIRCUIT_CLASSES, ids=lambda cls: cls.name)
def paper_circuit(request):
    """One fresh instance of each paper testbench (parametrized)."""
    return request.param()


@pytest.fixture
def strongarm():
    return StrongArmLatch()


@pytest.fixture
def fia():
    return FloatingInverterAmplifier()


@pytest.fixture
def dram():
    return DramCoreSenseAmp()


@pytest.fixture
def strongarm_spec(strongarm):
    return DesignSpec.from_circuit(strongarm)


@pytest.fixture
def typical():
    return typical_corner()


# ----------------------------------------------------------------------
# RNG / sampling
# ----------------------------------------------------------------------
@pytest.fixture
def rng():
    return np.random.default_rng(1234)


@pytest.fixture
def seeded_rng():
    """Factory: ``seeded_rng(seed)`` -> a fresh deterministic Generator."""

    def make(seed: int = 1234) -> np.random.Generator:
        return np.random.default_rng(seed)

    return make


@pytest.fixture
def mismatch_sampler():
    """Factory for a deterministic global+local :class:`MismatchSampler`."""

    def make(circuit, seed=21, include_global=True, include_local=True):
        return MismatchSampler(
            circuit.mismatch_model,
            include_global=include_global,
            include_local=include_local,
            rng=np.random.default_rng(seed),
        )

    return make


@pytest.fixture
def seeded_mismatch(mismatch_sampler):
    """Factory: a seeded :class:`MismatchSet` for a normalised design."""

    def make(circuit, x, count, seed=5):
        sampler = mismatch_sampler(circuit, seed=seed)
        return sampler.sample(circuit.denormalize(x), count)

    return make


# ----------------------------------------------------------------------
# Service / simulator construction
# ----------------------------------------------------------------------
@pytest.fixture
def service_factory():
    """Factory: ``service_factory(circuit, **kwargs)`` -> SimulationService.

    Services own their worker pools since the async redesign; the factory
    closes every service it built at teardown so pools never outlive the
    test that spawned them.
    """
    services = []

    def make(circuit, **kwargs) -> SimulationService:
        service = SimulationService(circuit, **kwargs)
        services.append(service)
        return service

    yield make
    for service in services:
        service.close()


@pytest.fixture
def simulator_factory():
    """Factory: ``simulator_factory(circuit, **kwargs)`` -> CircuitSimulator.

    Closes every simulator it built at teardown (releasing the underlying
    service's worker pool).
    """
    simulators = []

    def make(circuit, **kwargs) -> CircuitSimulator:
        simulator = CircuitSimulator(circuit, **kwargs)
        simulators.append(simulator)
        return simulator

    yield make
    for simulator in simulators:
        simulator.close()


@pytest.fixture
def small_budget():
    """A tightly capped budget for cap/abort behaviour tests."""
    return SimulationBudget(max_simulations=64)


# ----------------------------------------------------------------------
# External-simulator harness
# ----------------------------------------------------------------------
@pytest.fixture
def fake_ngspice(tmp_path, monkeypatch):
    """Install the hermetic fake simulator and select it via the env.

    Writes an executable launcher that runs ``tests/fake_ngspice.py`` with
    the repo's ``src`` on ``sys.path`` (the fake evaluates decks with the
    analytic engine), points ``$REPRO_NGSPICE`` at it and returns the
    launcher path.  Every ``NgspiceBackend()`` built afterwards — including
    ones rebuilt by name inside *newly forked* worker processes — shells
    out to the fake.  The fake parses the machine payload (it *is*
    payload-aware), so ``$REPRO_NGSPICE_PAYLOAD_AWARE`` is set too: batched
    jobs run as one multi-row deck instead of one subprocess per row.
    """
    launcher = tmp_path / "fake-ngspice"
    launcher.write_text(
        f"#!{sys.executable}\n"
        "import sys\n"
        f"sys.path.insert(0, {TESTS_DIR!r})\n"
        f"sys.path.insert(0, {SRC_DIR!r})\n"
        "from fake_ngspice import main\n"
        "raise SystemExit(main())\n"
    )
    launcher.chmod(0o755)
    monkeypatch.setenv(EXECUTABLE_ENV, str(launcher))
    monkeypatch.setenv(PAYLOAD_AWARE_ENV, "1")
    monkeypatch.delenv(MEASUREMENT_ENV, raising=False)
    monkeypatch.delenv("FAKE_NGSPICE_MODE", raising=False)
    monkeypatch.delenv("FAKE_NGSPICE_FAIL_ONCE", raising=False)
    return str(launcher)


@pytest.fixture
def fake_ngspice_waveform(fake_ngspice, monkeypatch):
    """The fake simulator with waveform measurement selected via the env.

    Backends built afterwards (including ones rebuilt by name inside
    worker processes) run ``.tran`` + rawfile decks and extract metrics
    host-side; the fake answers with canonical binary rawfiles rendered
    from the analytic engine's values.
    """
    monkeypatch.setenv(MEASUREMENT_ENV, "waveform")
    return fake_ngspice


@pytest.fixture
def feasible_strongarm_design(strongarm, strongarm_spec, rng):
    """A normalised StrongARM design that meets its targets at typical."""
    from repro.core.reward import reward_from_metrics

    for _ in range(5000):
        x = strongarm.random_sizing(rng)
        metrics = strongarm.evaluate(x, typical_corner())
        if reward_from_metrics(strongarm_spec, metrics) >= 0.2:
            return x
    raise RuntimeError("could not find a feasible StrongARM design for tests")
