"""Tests for the framework configuration and the Table-I contract."""

import pytest

from repro.core.config import (
    GlovaConfig,
    OperationalConfig,
    PAPER_MC_SAMPLES,
    VerificationMethod,
    operational_config,
)
from repro.variation.corners import ProcessCorner


class TestVerificationMethod:
    def test_values_match_paper_labels(self):
        assert VerificationMethod.CORNER.value == "C"
        assert VerificationMethod.CORNER_LOCAL_MC.value == "C-MCL"
        assert VerificationMethod.CORNER_GLOBAL_LOCAL_MC.value == "C-MCG-L"

    def test_mc_flags(self):
        assert not VerificationMethod.CORNER.uses_local_mc
        assert VerificationMethod.CORNER_LOCAL_MC.uses_local_mc
        assert not VerificationMethod.CORNER_LOCAL_MC.uses_global_mc
        assert VerificationMethod.CORNER_GLOBAL_LOCAL_MC.uses_global_mc


class TestOperationalConfig:
    """Table I: corner set, active variances, and sample counts per method."""

    def test_corner_configuration(self):
        config = operational_config(VerificationMethod.CORNER)
        assert not config.include_global
        assert not config.include_local
        assert config.optimization_samples == 1
        assert config.verification_samples == 1
        assert len(config.corners) == 30
        assert config.total_verification_simulations == 30

    def test_corner_local_mc_configuration(self):
        config = operational_config(VerificationMethod.CORNER_LOCAL_MC)
        assert not config.include_global
        assert config.include_local
        assert len(config.corners) == 30
        # Paper budget: 0.1K local MC per corner -> 3,000 simulations.
        assert config.verification_samples == 100
        assert config.total_verification_simulations == 3000

    def test_corner_global_local_mc_configuration(self):
        config = operational_config(VerificationMethod.CORNER_GLOBAL_LOCAL_MC)
        assert config.include_global
        assert config.include_local
        assert len(config.corners) == 6
        assert all(c.process is ProcessCorner.TT for c in config.corners)
        # Paper budget: 1K global-local MC per VT corner -> 6,000 simulations.
        assert config.verification_samples == 1000
        assert config.total_verification_simulations == 6000

    def test_reduced_budget_override(self):
        config = operational_config(
            VerificationMethod.CORNER_LOCAL_MC, verification_samples=20
        )
        assert config.verification_samples == 20
        assert config.total_verification_simulations == 600

    def test_paper_budgets_table(self):
        assert PAPER_MC_SAMPLES[VerificationMethod.CORNER] == 1
        assert PAPER_MC_SAMPLES[VerificationMethod.CORNER_LOCAL_MC] == 100
        assert PAPER_MC_SAMPLES[VerificationMethod.CORNER_GLOBAL_LOCAL_MC] == 1000

    def test_invalid_sample_counts_rejected(self):
        with pytest.raises(ValueError):
            operational_config(
                VerificationMethod.CORNER_LOCAL_MC,
                optimization_samples=0,
            )
        with pytest.raises(ValueError):
            operational_config(
                VerificationMethod.CORNER_LOCAL_MC,
                optimization_samples=5,
                verification_samples=3,
            )


class TestGlovaConfig:
    def test_paper_defaults(self):
        config = GlovaConfig()
        assert config.risk_beta1 == pytest.approx(-3.0)
        assert config.reliability_beta2 == pytest.approx(4.0)
        assert config.batch_size == 10
        assert config.optimization_samples == 3

    def test_operational_reflects_method(self):
        config = GlovaConfig(verification=VerificationMethod.CORNER_GLOBAL_LOCAL_MC)
        operational = config.operational()
        assert operational.method is VerificationMethod.CORNER_GLOBAL_LOCAL_MC
        assert operational.include_global

    def test_ablation_switch_disables_ensemble(self):
        config = GlovaConfig(use_ensemble_critic=False)
        assert config.effective_ensemble_size() == 1
        assert config.effective_beta1() == 0.0

    def test_default_uses_ensemble(self):
        config = GlovaConfig()
        assert config.effective_ensemble_size() == config.ensemble_size
        assert config.effective_beta1() == config.risk_beta1

    def test_with_overrides_returns_copy(self):
        config = GlovaConfig()
        other = config.with_overrides(max_iterations=7)
        assert other.max_iterations == 7
        assert config.max_iterations != 7
