"""Tests for hierarchical mismatch sampling (repro.variation.mismatch)."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.circuits import StrongArmLatch
from repro.variation.mismatch import MismatchSampler, MismatchSet


@pytest.fixture
def model():
    return StrongArmLatch().mismatch_model


@pytest.fixture
def x_physical():
    circuit = StrongArmLatch()
    return circuit.denormalize(np.full(circuit.dimension, 0.5))


class TestMismatchSet:
    def test_len_and_iteration(self, model):
        samples = np.zeros((4, model.dimension))
        mismatch_set = MismatchSet(samples, np.zeros(model.dimension))
        assert len(mismatch_set) == 4
        assert sum(1 for _ in mismatch_set) == 4

    def test_subset(self, model):
        samples = np.arange(3 * model.dimension, dtype=float).reshape(3, -1)
        mismatch_set = MismatchSet(samples, np.zeros(model.dimension))
        subset = mismatch_set.subset([2, 0])
        assert np.allclose(subset[0], samples[2])
        assert np.allclose(subset[1], samples[0])

    def test_concatenate(self, model):
        a = MismatchSet(np.zeros((2, model.dimension)), np.zeros(model.dimension))
        b = MismatchSet(np.ones((3, model.dimension)), np.zeros(model.dimension))
        assert len(a.concatenate(b)) == 5

    def test_rejects_1d_samples(self, model):
        with pytest.raises(ValueError):
            MismatchSet(np.zeros(model.dimension), np.zeros(model.dimension))


class TestMismatchSampler:
    def test_disabled_sampler_returns_zeros(self, model, x_physical):
        sampler = MismatchSampler(model, include_global=False, include_local=False)
        result = sampler.sample(x_physical, 5)
        assert np.allclose(result.samples, 0.0)
        assert len(result) == 5

    def test_local_only_sampling_is_zero_mean(self, model, x_physical):
        sampler = MismatchSampler(
            model, include_global=False, include_local=True,
            rng=np.random.default_rng(0),
        )
        result = sampler.sample(x_physical, 4000)
        assert np.allclose(result.global_shift, 0.0)
        sigmas = model.local_sigmas(x_physical)
        sample_std = result.samples.std(axis=0)
        assert np.allclose(sample_std, sigmas, rtol=0.12)
        assert np.allclose(result.samples.mean(axis=0), 0.0, atol=3 * sigmas.max() / 50)

    def test_global_local_samples_centre_on_die_shift(self, model, x_physical):
        sampler = MismatchSampler(
            model, include_global=True, include_local=True,
            rng=np.random.default_rng(1),
        )
        result = sampler.sample(x_physical, 4000)
        local_sigma = model.local_sigmas(x_physical)
        centred = result.samples.mean(axis=0) - result.global_shift
        assert np.all(np.abs(centred) < 5 * local_sigma / np.sqrt(4000) + 1e-9)

    def test_global_shift_shared_within_device_kind(self, model, x_physical):
        sampler = MismatchSampler(
            model, include_global=True, include_local=False,
            rng=np.random.default_rng(2),
        )
        shift = sampler.sample_global_shift(x_physical)
        groups = model.global_groups()
        sigmas = model.global_sigmas(x_physical)
        standardized = shift / sigmas
        by_group = {}
        for value, group in zip(standardized, groups):
            by_group.setdefault(group, []).append(value)
        for values in by_group.values():
            assert np.allclose(values, values[0])

    def test_provided_global_shift_is_respected(self, model, x_physical):
        sampler = MismatchSampler(
            model, include_global=True, include_local=False,
            rng=np.random.default_rng(3),
        )
        shift = np.full(model.dimension, 0.01)
        result = sampler.sample(x_physical, 3, global_shift=shift)
        assert np.allclose(result.samples, 0.01)

    def test_wrong_global_shift_shape_rejected(self, model, x_physical):
        sampler = MismatchSampler(model, include_global=True, include_local=True)
        with pytest.raises(ValueError):
            sampler.sample(x_physical, 2, global_shift=np.zeros(3))

    def test_independent_globals_vary_between_samples(self, model, x_physical):
        sampler = MismatchSampler(
            model, include_global=True, include_local=False,
            rng=np.random.default_rng(4),
        )
        result = sampler.sample(x_physical, 6, independent_globals=True)
        # With local variation off, rows differ only through the per-sample
        # global draws, so at least two rows must differ.
        assert not np.allclose(result.samples[0], result.samples[1])

    def test_count_must_be_positive(self, model, x_physical):
        sampler = MismatchSampler(model, include_global=False, include_local=True)
        with pytest.raises(ValueError):
            sampler.sample(x_physical, 0)

    def test_nominal_is_single_zero_condition(self, model):
        sampler = MismatchSampler(model, include_global=False, include_local=False)
        nominal = sampler.nominal()
        assert len(nominal) == 1
        assert np.allclose(nominal.samples, 0.0)

    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(count=st.integers(min_value=1, max_value=40), seed=st.integers(0, 2**16))
    def test_sample_shapes_property(self, model, x_physical, count, seed):
        sampler = MismatchSampler(
            model, include_global=True, include_local=True,
            rng=np.random.default_rng(seed),
        )
        result = sampler.sample(x_physical, count)
        assert result.samples.shape == (count, model.dimension)
        assert np.all(np.isfinite(result.samples))

    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(seed=st.integers(0, 2**16))
    def test_larger_devices_give_smaller_local_spread(self, model, seed):
        circuit = StrongArmLatch()
        small = circuit.denormalize(np.full(circuit.dimension, 0.05))
        large = circuit.denormalize(np.full(circuit.dimension, 0.95))
        sampler = MismatchSampler(
            model, include_global=False, include_local=True,
            rng=np.random.default_rng(seed),
        )
        spread_small = sampler.sample(small, 200).samples.std()
        sampler.reseed(seed)
        spread_large = sampler.sample(large, 200).samples.std()
        assert spread_large < spread_small
