"""Tests for the simulation service (budget accounting and the simulator)."""

import numpy as np
import pytest

from repro.simulation import CircuitSimulator, SimulationBudget, SimulationPhase
from repro.variation.corners import full_corner_set, typical_corner
from repro.variation.mismatch import MismatchSampler


class TestSimulationBudget:
    def test_counts_by_phase(self):
        budget = SimulationBudget()
        budget.record(SimulationPhase.OPTIMIZATION, 5)
        budget.record(SimulationPhase.VERIFICATION, 7)
        budget.record(SimulationPhase.INITIAL_SAMPLING, 2)
        assert budget.total == 14
        assert budget.optimization_simulations == 7
        assert budget.verification_simulations == 7

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            SimulationBudget().record(SimulationPhase.OPTIMIZATION, -1)

    def test_cap_enforced(self):
        budget = SimulationBudget(max_simulations=10)
        budget.record(SimulationPhase.OPTIMIZATION, 10)
        with pytest.raises(SimulationBudget.BudgetExhausted):
            budget.record(SimulationPhase.OPTIMIZATION, 1)

    def test_runtime_model_uses_parallelism(self):
        budget = SimulationBudget(
            cost_per_simulation=2.0,
            optimization_parallelism=3,
            verification_parallelism=10,
        )
        budget.record(SimulationPhase.OPTIMIZATION, 9)  # 3 batches
        budget.record(SimulationPhase.VERIFICATION, 25)  # 3 batches
        assert budget.modelled_runtime() == pytest.approx(2.0 * (3 + 3))

    def test_snapshot_and_reset(self):
        budget = SimulationBudget()
        budget.record(SimulationPhase.OPTIMIZATION, 3)
        snapshot = budget.snapshot()
        assert snapshot["optimization"] == 3
        assert snapshot["total"] == 3
        budget.reset()
        assert budget.total == 0


class TestCircuitSimulator:
    def test_simulate_counts_one(self, strongarm, rng):
        simulator = CircuitSimulator(strongarm)
        record = simulator.simulate(strongarm.random_sizing(rng))
        assert simulator.budget.total == 1
        assert set(record.metrics) == set(strongarm.metric_names)
        assert record.corner == typical_corner()

    def test_simulate_mismatch_set_counts_all(self, strongarm, rng):
        simulator = CircuitSimulator(strongarm)
        x = strongarm.random_sizing(rng)
        sampler = MismatchSampler(
            strongarm.mismatch_model, include_global=False, include_local=True, rng=rng
        )
        mismatch_set = sampler.sample(strongarm.denormalize(x), 5)
        records = simulator.simulate_mismatch_set(x, typical_corner(), mismatch_set)
        assert len(records) == 5
        assert simulator.budget.total == 5

    def test_simulate_corners_counts_all(self, strongarm, rng):
        simulator = CircuitSimulator(strongarm)
        records = simulator.simulate_corners(
            strongarm.random_sizing(rng), full_corner_set()
        )
        assert len(records) == 30
        assert simulator.budget.total == 30

    def test_phase_attribution(self, strongarm, rng):
        simulator = CircuitSimulator(strongarm)
        simulator.simulate_typical(strongarm.random_sizing(rng))
        simulator.simulate(
            strongarm.random_sizing(rng), phase=SimulationPhase.VERIFICATION
        )
        snapshot = simulator.budget.snapshot()
        assert snapshot["initial_sampling"] == 1
        assert snapshot["verification"] == 1

    def test_metrics_matrix_shape(self, strongarm, rng):
        simulator = CircuitSimulator(strongarm)
        records = [
            simulator.simulate(strongarm.random_sizing(rng)) for _ in range(4)
        ]
        matrix = simulator.metrics_matrix(records)
        assert matrix.shape == (4, len(strongarm.metric_names))

    def test_record_metric_vector(self, strongarm, rng):
        simulator = CircuitSimulator(strongarm)
        record = simulator.simulate(strongarm.random_sizing(rng))
        vector = record.metric_vector(strongarm.metric_names)
        assert vector.shape == (len(strongarm.metric_names),)
