"""Tests for constraint normalisation and the reward function (Eq. 4-5)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.reward import (
    FEASIBLE_REWARD,
    is_feasible_reward,
    reward_from_metrics,
    reward_from_normalized,
    rewards_and_worst,
    worst_case_reward,
)
from repro.core.spec import Constraint, DesignSpec


@pytest.fixture
def spec():
    return DesignSpec(
        [
            Constraint("power", 40e-6),
            Constraint("delay", 4e-9),
            Constraint("neg_swing", -85e-3),
        ]
    )


class TestConstraint:
    def test_margin_sign(self):
        constraint = Constraint("power", 10.0)
        assert constraint.margin(8.0) > 0
        assert constraint.margin(12.0) < 0

    def test_normalized_positive_when_satisfied(self):
        constraint = Constraint("power", 10.0)
        assert constraint.normalized(5.0) > 0
        assert constraint.normalized(15.0) < 0

    def test_normalized_handles_negative_bounds(self):
        """Sign-flipped (maximised) metrics keep the right feasibility sign."""
        constraint = Constraint("neg_swing", -85e-3)
        assert constraint.normalized(-120e-3) > 0  # swing 120 mV >= 85 mV
        assert constraint.normalized(-50e-3) < 0  # swing 50 mV < 85 mV

    def test_normalized_bounded(self):
        constraint = Constraint("power", 1.0)
        assert -1.0 <= constraint.normalized(1e9) <= 1.0
        assert -1.0 <= constraint.normalized(0.0) <= 1.0

    def test_satisfied(self):
        constraint = Constraint("power", 10.0)
        assert constraint.satisfied(10.0)
        assert not constraint.satisfied(10.1)


class TestDesignSpec:
    def test_from_circuit(self, strongarm):
        spec = DesignSpec.from_circuit(strongarm)
        assert set(spec.metric_names) == set(strongarm.metric_names)

    def test_duplicate_metrics_rejected(self):
        with pytest.raises(ValueError):
            DesignSpec([Constraint("a", 1.0), Constraint("a", 2.0)])

    def test_empty_spec_rejected(self):
        with pytest.raises(ValueError):
            DesignSpec([])

    def test_feasibility(self, spec):
        good = {"power": 30e-6, "delay": 3e-9, "neg_swing": -100e-3}
        bad = {"power": 50e-6, "delay": 3e-9, "neg_swing": -100e-3}
        assert spec.is_feasible(good)
        assert not spec.is_feasible(bad)

    def test_violation_zero_when_feasible(self, spec):
        good = {"power": 30e-6, "delay": 3e-9, "neg_swing": -100e-3}
        assert spec.violation(good) == 0.0

    def test_violation_positive_when_infeasible(self, spec):
        bad = {"power": 80e-6, "delay": 8e-9, "neg_swing": -10e-3}
        assert spec.violation(bad) > 0.0

    def test_metric_vector_order(self, spec):
        metrics = {"delay": 2.0, "power": 1.0, "neg_swing": 3.0}
        assert np.allclose(spec.metric_vector(metrics), [1.0, 2.0, 3.0])


class TestReward:
    def test_feasible_reward_constant(self):
        assert FEASIBLE_REWARD == pytest.approx(0.2)

    def test_all_satisfied_gives_feasible_reward(self, spec):
        metrics = {"power": 30e-6, "delay": 3e-9, "neg_swing": -100e-3}
        assert reward_from_metrics(spec, metrics) == FEASIBLE_REWARD

    def test_violation_gives_negative_reward(self, spec):
        metrics = {"power": 80e-6, "delay": 3e-9, "neg_swing": -100e-3}
        assert reward_from_metrics(spec, metrics) < 0

    def test_more_violation_is_more_negative(self, spec):
        mild = {"power": 45e-6, "delay": 3e-9, "neg_swing": -100e-3}
        severe = {"power": 90e-6, "delay": 9e-9, "neg_swing": -100e-3}
        assert reward_from_metrics(spec, severe) < reward_from_metrics(spec, mild)

    def test_reward_from_normalized_clamps_positive_sum(self):
        assert reward_from_normalized(np.array([0.5, 0.9])) == FEASIBLE_REWARD

    def test_reward_from_normalized_sums_only_violations(self):
        assert reward_from_normalized(np.array([0.5, -0.3])) == pytest.approx(-0.3)
        assert reward_from_normalized(np.array([-0.1, -0.3])) == pytest.approx(-0.4)

    def test_worst_case_reward(self, spec):
        outcomes = [
            {"power": 30e-6, "delay": 3e-9, "neg_swing": -100e-3},
            {"power": 80e-6, "delay": 3e-9, "neg_swing": -100e-3},
        ]
        assert worst_case_reward(spec, outcomes) < 0

    def test_worst_case_reward_empty_rejected(self, spec):
        with pytest.raises(ValueError):
            worst_case_reward(spec, [])

    def test_rewards_and_worst(self, spec):
        outcomes = [
            {"power": 30e-6, "delay": 3e-9, "neg_swing": -100e-3},
            {"power": 80e-6, "delay": 3e-9, "neg_swing": -100e-3},
        ]
        rewards, worst = rewards_and_worst(spec, outcomes)
        assert len(rewards) == 2
        assert worst == rewards.min()

    def test_is_feasible_reward(self):
        assert is_feasible_reward(0.2)
        assert not is_feasible_reward(0.0)
        assert not is_feasible_reward(-0.5)


@settings(max_examples=100, deadline=None)
@given(
    bound=st.floats(min_value=1e-9, max_value=1e3),
    value=st.floats(min_value=0.0, max_value=1e6),
)
def test_normalization_sign_matches_feasibility_property(bound, value):
    constraint = Constraint("m", bound)
    normalized = constraint.normalized(value)
    if value <= bound:
        assert normalized >= 0
    else:
        assert normalized <= 0
    assert -1.0 <= normalized <= 1.0


@settings(max_examples=100, deadline=None)
@given(
    normalized=st.lists(
        st.floats(min_value=-1.0, max_value=1.0), min_size=1, max_size=6
    )
)
def test_reward_bounds_property(normalized):
    reward = reward_from_normalized(np.array(normalized))
    assert reward <= FEASIBLE_REWARD
    assert reward >= -len(normalized)
    if all(f >= 0 for f in normalized):
        assert reward == FEASIBLE_REWARD
