"""Tests for the actor and the ensemble-based critic (Eq. 6)."""

import numpy as np
import pytest

from repro.core.actor_critic import Actor, CriticBaseModel, EnsembleCritic
from repro.core.replay import WorstCaseReplayBuffer
from repro.core.reward import FEASIBLE_REWARD


class TestActor:
    def test_act_stays_in_unit_box(self, rng):
        actor = Actor(6, rng=rng)
        output = actor.act(rng.uniform(size=6))
        assert output.shape == (6,)
        assert np.all(output >= 0.0) and np.all(output <= 1.0)

    def test_propose_adds_noise_but_stays_clipped(self, rng):
        actor = Actor(6, rng=rng)
        design = rng.uniform(size=6)
        proposals = np.stack([actor.propose(design, 0.3, rng) for _ in range(50)])
        assert np.all(proposals >= 0.0) and np.all(proposals <= 1.0)
        assert proposals.std() > 0.0

    def test_pretrain_towards_target(self, rng):
        actor = Actor(4, learning_rate=5e-3, rng=rng)
        target = np.array([0.2, 0.8, 0.5, 0.3])
        inputs = rng.uniform(size=(16, 4))
        loss = actor.pretrain_towards(inputs, target, steps=400)
        assert loss < 1e-2
        assert np.allclose(actor.act(inputs[0]), target, atol=0.15)


class TestCriticBaseModel:
    def test_training_reduces_loss(self, rng):
        model = CriticBaseModel(3, rng=rng)
        designs = rng.uniform(size=(64, 3))
        rewards = designs.sum(axis=1) / 10.0
        first = model.train_batch(designs, rewards)
        for _ in range(200):
            last = model.train_batch(designs, rewards)
        assert last < first * 0.5

    def test_predict_shape(self, rng):
        model = CriticBaseModel(3, rng=rng)
        assert model.predict(rng.uniform(size=(7, 3))).shape == (7,)


class TestEnsembleCritic:
    def test_invalid_ensemble_size(self, rng):
        with pytest.raises(ValueError):
            EnsembleCritic(3, ensemble_size=0, rng=rng)

    def test_base_predictions_shape(self, rng):
        critic = EnsembleCritic(3, ensemble_size=4, rng=rng)
        predictions = critic.base_predictions(rng.uniform(size=(5, 3)))
        assert predictions.shape == (4, 5)

    def test_risk_averse_bound_below_mean(self, rng):
        critic = EnsembleCritic(3, ensemble_size=5, beta1=-3.0, rng=rng)
        designs = rng.uniform(size=(10, 3))
        mean, std = critic.predict_components(designs)
        bound = critic.predict(designs)
        assert np.all(bound <= mean + 1e-12)
        assert np.all(bound == pytest.approx(mean - 3.0 * std))

    def test_single_model_bound_equals_mean(self, rng):
        critic = EnsembleCritic(3, ensemble_size=1, beta1=-3.0, rng=rng)
        designs = rng.uniform(size=(4, 3))
        mean, _ = critic.predict_components(designs)
        assert np.allclose(critic.predict(designs), mean)

    def test_training_fits_reward_surface(self, rng):
        critic = EnsembleCritic(2, ensemble_size=3, beta1=-1.0, rng=rng)
        buffer = WorstCaseReplayBuffer()
        for _ in range(200):
            design = rng.uniform(size=2)
            buffer.add(design, float(design.sum() / 5.0))
        for _ in range(300):
            critic.train(buffer, batch_size=16, rng=rng)
        low = critic.predict(np.array([[0.05, 0.05]]))[0]
        high = critic.predict(np.array([[0.95, 0.95]]))[0]
        assert high > low

    def test_bound_gradient_matches_finite_difference(self, rng):
        critic = EnsembleCritic(3, ensemble_size=3, beta1=-2.0, rng=rng)
        # Give the base models distinct weights via a little training.
        buffer = WorstCaseReplayBuffer()
        for _ in range(50):
            design = rng.uniform(size=3)
            buffer.add(design, float(np.sin(design.sum())))
        critic.train(buffer, batch_size=8, rng=rng)

        x = rng.uniform(size=(1, 3))
        analytic = critic.bound_gradient(x)[0]
        numeric = np.zeros(3)
        epsilon = 1e-5
        for index in range(3):
            x_plus, x_minus = x.copy(), x.copy()
            x_plus[0, index] += epsilon
            x_minus[0, index] -= epsilon
            numeric[index] = (
                critic.predict(x_plus)[0] - critic.predict(x_minus)[0]
            ) / (2 * epsilon)
        assert np.allclose(analytic, numeric, rtol=1e-3, atol=1e-6)

    def test_actor_loss_gradient_points_towards_higher_bound(self, rng):
        critic = EnsembleCritic(2, ensemble_size=3, beta1=-1.0, rng=rng)
        buffer = WorstCaseReplayBuffer()
        for _ in range(100):
            design = rng.uniform(size=2)
            buffer.add(design, float(design.sum() / 5.0 - 0.3))
        for _ in range(200):
            critic.train(buffer, batch_size=16, rng=rng)
        actions = np.array([[0.5, 0.5]])
        loss, grad = critic.actor_loss_gradient(actions, target=FEASIBLE_REWARD)
        assert loss > 0
        # Stepping against the gradient (gradient descent on the loss) should
        # reduce the loss, i.e. move the bound towards the 0.2 target.
        stepped = actions - 0.05 * grad / (np.linalg.norm(grad) + 1e-12)
        new_loss, _ = critic.actor_loss_gradient(stepped, target=FEASIBLE_REWARD)
        assert new_loss <= loss + 1e-9
