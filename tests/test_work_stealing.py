"""Work-stealing shard scheduler + the cancellation/accounting bugfixes.

Covers this PR's contract from both ends:

* **Planning** — :func:`plan_chunk_bounds` tiles the batch in row order,
  oversubscribes the pool, isolates learned stragglers, and degrades to
  uniform chunks on bad cost inputs; :func:`resolve_scheduler` honours
  the constructor argument, the environment override and the default.
* **Learning** — :class:`RowCostModel` keeps exact per-row seconds by
  job hash plus an EWMA rate per (circuit, backend), rejects
  unusable observations, and round-trips both through JSON sidecars
  (corruption = a silent miss, never a wrong prediction).
* **Bit-identity** — stealing, uniform and workers=1 produce identical
  metrics and identical resolve-in-order budget trajectories on all
  three paper circuits: the scheduler may only change wall-clock.
* **The bugfix batch** — ``SimFuture.cancel`` returns immediately while
  another thread is mid-resolve (the resolve no longer holds the lock),
  with net-zero accounting; ``done()`` no longer reports an unresolved
  lazy thunk as ready (``blocking`` exposes why); ``iter_resolved``
  cleanup cancels every pending future even when one ``cancel()``
  raises.
* **Stragglers** — on a paced ``row_parallel`` backend with one heavy
  row, the stealing schedule keeps the pool's measured idle fraction
  bounded (the uniform slicer strands a whole worker behind the
  straggler).
"""

from __future__ import annotations

import json
import multiprocessing
import os
import threading
import time
from concurrent.futures import CancelledError

import numpy as np
import pytest

from repro.analysis import straggler_idle_fraction
from repro.simulation import (
    BACKENDS,
    BatchedMNABackend,
    ROW_SECONDS_KEY,
    RowCostModel,
    SCHEDULER_STEALING,
    SCHEDULER_UNIFORM,
    SimJob,
    SimulationPhase,
    SimulationService,
    is_reserved_metric,
    plan_chunk_bounds,
    resolve_scheduler,
    strip_reserved_metrics,
)
from repro.simulation.costs import RESERVED_METRIC_PREFIX
from repro.simulation.service import failed_row_mask, iter_resolved
from repro.simulation.sharding import SCHEDULER_ENV_VAR
from repro.variation.corners import typical_corner


def conditions_job(circuit, rows=10, seed=0, phase=SimulationPhase.OPTIMIZATION):
    rng = np.random.default_rng(seed)
    return SimJob.conditions(
        circuit.name,
        rng.uniform(0.2, 0.8, circuit.dimension),
        (typical_corner(),),
        rng.standard_normal((rows, circuit.mismatch_dimension)),
        phase,
    )


# ----------------------------------------------------------------------
# Chunk planning
# ----------------------------------------------------------------------
class TestPlanChunkBounds:
    def assert_tiles(self, bounds, batch):
        """Chunks tile [0, batch) contiguously in row order."""
        assert bounds[0][0] == 0 and bounds[-1][1] == batch
        for (_, hi), (lo, _) in zip(bounds, bounds[1:]):
            assert hi == lo
        assert all(lo < hi for lo, hi in bounds)

    def test_uniform_costs_oversubscribe_the_pool(self):
        bounds = plan_chunk_bounds(64, workers=4)
        self.assert_tiles(bounds, 64)
        assert len(bounds) == 16  # 4 chunks per worker
        sizes = {hi - lo for lo, hi in bounds}
        assert sizes == {4}

    def test_chunk_count_respects_min_rows(self):
        # 12 rows / 2-row floor = at most 6 chunks even at workers=4.
        bounds = plan_chunk_bounds(12, workers=4)
        self.assert_tiles(bounds, 12)
        assert len(bounds) == 6

    def test_row_parallel_chunks_down_to_single_rows(self):
        bounds = plan_chunk_bounds(6, workers=4, row_parallel=True)
        self.assert_tiles(bounds, 6)
        assert len(bounds) == 6  # one external subprocess per chunk
        assert plan_chunk_bounds(6, workers=4) != bounds

    def test_heavy_row_is_isolated(self):
        costs = np.ones(32)
        costs[11] = 40.0  # one straggler dominating the batch
        bounds = plan_chunk_bounds(32, workers=4, costs=costs)
        self.assert_tiles(bounds, 32)
        assert (11, 12) in bounds  # the straggler strands no siblings

    def test_bad_costs_fall_back_to_uniform(self):
        reference = plan_chunk_bounds(16, workers=2)
        wrong_shape = plan_chunk_bounds(16, workers=2, costs=np.ones(5))
        all_nan = plan_chunk_bounds(16, workers=2, costs=np.full(16, np.nan))
        assert wrong_shape == reference
        assert all_nan == reference

    def test_partial_nan_costs_fill_with_mean(self):
        costs = np.ones(16)
        costs[3] = np.nan  # a row that never ran last time
        costs[8] = 8.0
        bounds = plan_chunk_bounds(16, workers=4, costs=costs)
        self.assert_tiles(bounds, 16)
        assert (8, 9) in bounds

    def test_degenerate_batches(self):
        assert plan_chunk_bounds(0, workers=4) == []
        assert plan_chunk_bounds(1, workers=4) == [(0, 1)]
        assert plan_chunk_bounds(3, workers=8) == [(0, 1), (1, 2), (2, 3)]


class TestResolveScheduler:
    def test_default_is_stealing(self, monkeypatch):
        monkeypatch.delenv(SCHEDULER_ENV_VAR, raising=False)
        assert resolve_scheduler() == SCHEDULER_STEALING
        assert resolve_scheduler("  Uniform ") == SCHEDULER_UNIFORM

    def test_environment_override(self, monkeypatch):
        monkeypatch.setenv(SCHEDULER_ENV_VAR, SCHEDULER_UNIFORM)
        assert resolve_scheduler() == SCHEDULER_UNIFORM
        # An explicit argument wins over the environment.
        assert resolve_scheduler(SCHEDULER_STEALING) == SCHEDULER_STEALING

    def test_unknown_scheduler_raises(self):
        with pytest.raises(ValueError, match="unknown shard scheduler"):
            resolve_scheduler("fifo")

    def test_service_pins_uniform_from_environment(
        self, strongarm, monkeypatch
    ):
        monkeypatch.setenv(SCHEDULER_ENV_VAR, SCHEDULER_UNIFORM)
        with SimulationService(strongarm) as service:
            assert service.scheduler == SCHEDULER_UNIFORM
            assert service.cost_model is None


# ----------------------------------------------------------------------
# Reserved metrics-block keys
# ----------------------------------------------------------------------
class TestReservedKeys:
    def test_reserved_namespace(self):
        assert is_reserved_metric(ROW_SECONDS_KEY)
        assert ROW_SECONDS_KEY.startswith(RESERVED_METRIC_PREFIX)
        assert not is_reserved_metric("gain")
        block = {"gain": np.ones(3), ROW_SECONDS_KEY: np.ones(3)}
        assert set(strip_reserved_metrics(block)) == {"gain"}
        assert set(block) == {"gain", ROW_SECONDS_KEY}  # input untouched

    def test_failure_mask_ignores_timing(self):
        from repro.spice.deck import FAILURE_NAN

        # Finite timing values must never make a failed row look healthy
        # (the timing array has real values even for rows whose metrics
        # the engine never produced).
        block = {
            "gain": np.array([1.0, FAILURE_NAN]),
            ROW_SECONDS_KEY: np.array([0.5, 0.5]),
        }
        np.testing.assert_array_equal(
            failed_row_mask(block), np.array([False, True])
        )


# ----------------------------------------------------------------------
# The cost model
# ----------------------------------------------------------------------
class TestRowCostModel:
    def test_exact_rows_win_over_rate(self, strongarm):
        model = RowCostModel()
        job = conditions_job(strongarm, rows=4)
        seconds = np.array([0.1, 0.2, 0.3, 0.4])
        assert model.observe(job, seconds, "batched")
        np.testing.assert_array_equal(
            model.predict(job, "batched"), seconds
        )
        # An unseen job of the same circuit gets the uniform EWMA rate.
        other = conditions_job(strongarm, rows=6, seed=9)
        predicted = model.predict(other, "batched")
        np.testing.assert_allclose(predicted, np.full(6, 0.25))

    def test_ewma_rate_update(self, strongarm):
        model = RowCostModel(alpha=0.5)
        model.observe(conditions_job(strongarm, rows=2), np.full(2, 1.0), "b")
        model.observe(
            conditions_job(strongarm, rows=2, seed=1), np.full(2, 3.0), "b"
        )
        assert model.rate(strongarm.name, "b") == pytest.approx(2.0)
        assert model.observations == 2

    def test_unusable_observations_rejected(self, strongarm):
        model = RowCostModel()
        job = conditions_job(strongarm, rows=3)
        assert not model.observe(job, np.ones(5), "b")  # wrong shape
        assert not model.observe(job, np.full(3, np.nan), "b")  # never ran
        assert model.predict(job, "b") is None
        assert model.observations == 0

    def test_nan_rows_filled_in_prediction(self, strongarm):
        model = RowCostModel()
        job = conditions_job(strongarm, rows=3)
        model.observe(job, np.array([1.0, np.nan, 3.0]), "b")
        np.testing.assert_allclose(
            model.predict(job, "b"), np.array([1.0, 2.0, 3.0])
        )

    def test_sidecar_round_trip(self, strongarm, tmp_path):
        sidecar_dir = str(tmp_path / "costs")
        first = RowCostModel(sidecar_dir=sidecar_dir)
        job = conditions_job(strongarm, rows=3)
        seconds = np.array([0.5, 1.5, 2.5])
        first.observe(job, seconds, "batched")
        # A fresh model (fresh process in production) replays both the
        # exact rows and the summary rate from disk.
        second = RowCostModel(sidecar_dir=sidecar_dir)
        np.testing.assert_array_equal(
            second.predict(job, "batched"), seconds
        )
        assert second.rate(strongarm.name, "batched") == pytest.approx(1.5)

    def test_corrupt_sidecars_are_a_silent_miss(self, strongarm, tmp_path):
        sidecar_dir = str(tmp_path / "costs")
        model = RowCostModel(sidecar_dir=sidecar_dir)
        job = conditions_job(strongarm, rows=3)
        model.observe(job, np.ones(3), "batched")
        for name in (
            model._job_sidecar_path(job.job_id),
            model._summary_path(),
        ):
            with open(name, "w") as handle:
                handle.write("{not json")
        fresh = RowCostModel(sidecar_dir=sidecar_dir)
        assert fresh.predict(job, "batched") is None
        assert fresh.rate(strongarm.name, "batched") is None

    def test_no_temp_files_leak(self, strongarm, tmp_path):
        sidecar_dir = tmp_path / "costs"
        model = RowCostModel(sidecar_dir=str(sidecar_dir))
        model.observe(conditions_job(strongarm, rows=2), np.ones(2), "b")
        leftovers = [
            name
            for _, _, names in os.walk(sidecar_dir)
            for name in names
            if name.endswith(".tmp")
        ]
        assert leftovers == []


# ----------------------------------------------------------------------
# Per-row timing through the service
# ----------------------------------------------------------------------
class TestRowSecondsPlumbing:
    def test_result_carries_row_seconds_not_metrics(self, strongarm):
        with SimulationService(strongarm) as service:
            result = service.run(conditions_job(strongarm, rows=4))
        assert result.row_seconds is not None
        assert result.row_seconds.shape == (4,)
        assert (result.row_seconds >= 0).all()
        assert not any(is_reserved_metric(name) for name in result.metrics)
        records = result.to_records(strongarm.metric_names)
        assert all(record.seconds is not None for record in records)

    def test_single_process_runs_teach_the_model(self, strongarm):
        with SimulationService(strongarm) as service:
            assert service.cost_model is not None
            service.run(conditions_job(strongarm, rows=4))
            assert service.cost_model.observations == 1
            assert service.cost_model.rate(strongarm.name, "batched") is not None

    def test_cache_never_stores_timing(self, strongarm, tmp_path):
        cache_dir = str(tmp_path / "simcache")
        job = conditions_job(strongarm, rows=4)
        with SimulationService(strongarm, cache_dir=cache_dir) as service:
            first = service.run(job)
            assert first.row_seconds is not None
            replayed = service.run(job)
        assert replayed.cached
        assert replayed.row_seconds is None  # a hit simulated nothing
        assert not any(is_reserved_metric(name) for name in replayed.metrics)

    def test_cost_sidecars_persist_under_cache_dir(self, strongarm, tmp_path):
        cache_dir = str(tmp_path / "simcache")
        job = conditions_job(strongarm, rows=4)
        with SimulationService(strongarm, cache_dir=cache_dir) as service:
            service.run(job)
        assert os.path.isdir(os.path.join(cache_dir, "costs"))
        with SimulationService(strongarm, cache_dir=cache_dir) as fresh:
            predicted = fresh.cost_model.predict(job, "batched")
        assert predicted is not None and predicted.shape == (4,)


# ----------------------------------------------------------------------
# Bit-identity: the scheduler may only change wall-clock
# ----------------------------------------------------------------------
class TestSchedulerBitIdentity:
    def _trajectory(self, circuit, workers, scheduler):
        """Metrics plus the resolve-in-order budget trajectory."""
        jobs = [conditions_job(circuit, rows=12, seed=s) for s in range(3)]
        with SimulationService(
            circuit, workers=workers, scheduler=scheduler
        ) as service:
            futures = [service.submit(job) for job in jobs]
            metrics, totals = [], []
            for future in futures:
                metrics.append(future.result().metrics)
                totals.append(service.budget.total)
        return metrics, totals

    def test_stealing_matches_uniform_and_sequential(self, paper_circuit):
        reference = self._trajectory(paper_circuit, 1, SCHEDULER_STEALING)
        stealing = self._trajectory(paper_circuit, 2, SCHEDULER_STEALING)
        uniform = self._trajectory(paper_circuit, 2, SCHEDULER_UNIFORM)
        assert stealing[1] == reference[1] == uniform[1] == [12, 24, 36]
        for blocks in zip(reference[0], stealing[0], uniform[0]):
            for name in paper_circuit.metric_names:
                np.testing.assert_array_equal(blocks[0][name], blocks[1][name])
                np.testing.assert_array_equal(blocks[0][name], blocks[2][name])

    def test_learned_costs_do_not_change_results(self, strongarm):
        """A second dispatch of the same job plans from learned exact
        rows (possibly different chunk bounds); metrics stay identical."""
        job = conditions_job(strongarm, rows=16)
        with SimulationService(strongarm, workers=2) as service:
            first = service.run(job)
            assert service.cost_model.predict(job, "batched") is not None
            second = service.run(job)
        for name in strongarm.metric_names:
            np.testing.assert_array_equal(
                first.metrics[name], second.metrics[name]
            )


# ----------------------------------------------------------------------
# Bugfix: cancel() no longer blocks behind a concurrent resolve
# ----------------------------------------------------------------------
class TestConcurrentCancel:
    def test_cancel_during_resolve_returns_promptly(self, strongarm):
        started = threading.Event()
        release = threading.Event()

        class Gated(BatchedMNABackend):
            def evaluate(self, circuit, job):
                started.set()
                assert release.wait(30), "test deadlock: release never set"
                return super().evaluate(circuit, job)

        with SimulationService(strongarm, backend=Gated()) as service:
            future = service.submit(conditions_job(strongarm, rows=4))
            outcome = {}

            def resolve():
                try:
                    future.result()
                    outcome["error"] = None
                except BaseException as error:  # noqa: BLE001
                    outcome["error"] = error

            resolver = threading.Thread(target=resolve)
            resolver.start()
            assert started.wait(30)
            # The regression: cancel() used to block here until the
            # evaluation finished because result() held the lock across
            # the whole blocking resolve.
            begin = time.perf_counter()
            assert future.cancel()
            cancel_seconds = time.perf_counter() - begin
            release.set()
            resolver.join(timeout=30)
            assert not resolver.is_alive()
        assert cancel_seconds < 5.0  # prompt, not serialized behind the work
        assert isinstance(outcome["error"], CancelledError)
        assert service.budget.total == 0  # charge was refunded: net zero
        # The cancellation is memoized like any resolution outcome.
        with pytest.raises(CancelledError):
            future.result()
        assert future.cancelled() and future.done()

    def test_cancel_refuses_once_committed(self, strongarm):
        """After the commit checkpoint passes, a racing cancel returns
        False — an accounted job cannot be un-issued."""
        with SimulationService(strongarm) as service:
            future = service.submit(conditions_job(strongarm, rows=3))
            future.result()
            assert not future.cancel()
        assert service.budget.total == 3

    def test_concurrent_resolvers_agree(self, strongarm):
        """Racing result() calls from many threads all see the one
        memoized outcome and charge exactly once."""
        with SimulationService(strongarm) as service:
            future = service.submit(conditions_job(strongarm, rows=5))
            results = []
            threads = [
                threading.Thread(
                    target=lambda: results.append(future.result())
                )
                for _ in range(4)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30)
        assert len(results) == 4
        assert all(result is results[0] for result in results)
        assert service.budget.total == 5


# ----------------------------------------------------------------------
# Bugfix: done() on a lazy thunk / the blocking property
# ----------------------------------------------------------------------
class TestDoneAndBlocking:
    def test_lazy_thunk_is_not_done_until_resolved(self, strongarm):
        with SimulationService(strongarm) as service:
            future = service.submit(conditions_job(strongarm, rows=4))
            # The regression: done() used to claim True here, letting a
            # pipelining caller skip the overlap it was polling for.
            assert not future.done()
            assert future.blocking
            future.result()
            assert future.done()

    def test_cache_hit_is_done_and_nonblocking(self, strongarm):
        with SimulationService(strongarm, cache=True) as service:
            job = conditions_job(strongarm, rows=4)
            service.run(job)
            future = service.submit(job)
            assert future.done() and not future.blocking

    def test_pool_backed_future_is_nonblocking(self, strongarm):
        with SimulationService(strongarm, workers=2) as service:
            future = service.submit(conditions_job(strongarm, rows=12))
            assert not future.blocking  # shards already run elsewhere
            future.result()
            assert future.done()

    def test_records_future_exposes_blocking(self, strongarm):
        from repro.simulation import CircuitSimulator

        with CircuitSimulator(strongarm) as simulator:
            rng = np.random.default_rng(0)
            future = simulator.submit_corners(
                rng.uniform(0.2, 0.8, strongarm.dimension),
                (typical_corner(),),
            )
            assert future.blocking and not future.done()
            future.result()


# ----------------------------------------------------------------------
# Bugfix: iter_resolved cleanup survives a raising cancel()
# ----------------------------------------------------------------------
class TestIterResolvedCleanup:
    class FakeFuture:
        def __init__(self, fail_cancel=False):
            self.fail_cancel = fail_cancel
            self.cancelled = False

        def result(self):
            return "resolved"

        def cancel(self):
            if self.fail_cancel:
                raise RuntimeError("torn-down pool")
            self.cancelled = True
            return True

    def test_one_raising_cancel_does_not_strand_the_rest(self):
        futures = [
            self.FakeFuture(),
            self.FakeFuture(fail_cancel=True),
            self.FakeFuture(),
        ]
        generator = iter_resolved(
            [0, 1, 2], lambda item: futures[item], ahead=2
        )
        assert next(generator) == (0, "resolved")
        # Aborting the loop cancels both pending futures; the raising
        # one is contained (a warning) instead of stranding the last.
        with pytest.warns(RuntimeWarning, match="failed to cancel"):
            generator.close()
        assert futures[2].cancelled

    def test_clean_abort_cancels_all_pending(self):
        futures = [self.FakeFuture() for _ in range(3)]
        generator = iter_resolved(
            [0, 1, 2], lambda item: futures[item], ahead=2
        )
        next(generator)
        generator.close()
        assert not futures[0].cancelled  # already resolved
        assert futures[1].cancelled and futures[2].cancelled


# ----------------------------------------------------------------------
# Straggler scheduling on a paced backend
# ----------------------------------------------------------------------
#: Base modelled cost per row (seconds) and the straggler multiplier.
#: Small enough to keep tier-1 fast, large enough that scheduling —
#: not IPC noise — dominates the measured walls.
STRAGGLER_ROW_SECONDS = 0.02
STRAGGLER_FACTOR = 15
STRAGGLER_ROWS = 16
#: Shards only see their own rows (no batch offsets), so the heavy row
#: is marked *in its data*: a mismatch draw beyond this threshold.
STRAGGLER_SENTINEL = 4.0


def straggler_job(circuit, rows=STRAGGLER_ROWS, seed=0):
    """A conditions job whose first row carries the straggler sentinel."""
    rng = np.random.default_rng(seed)
    mismatch = np.clip(
        rng.standard_normal((rows, circuit.mismatch_dimension)), -3.0, 3.0
    )
    mismatch[0, 0] = STRAGGLER_SENTINEL + 1.0
    return SimJob.conditions(
        circuit.name,
        rng.uniform(0.2, 0.8, circuit.dimension),
        (typical_corner(),),
        mismatch,
    )


class StragglerPacedBackend(BatchedMNABackend):
    """The batched engine plus a modelled per-row cost with one heavy row.

    ``row_parallel = True`` mirrors real external engines (one subprocess
    per row), so shards chunk down to single rows; rows carrying the
    :data:`STRAGGLER_SENTINEL` mismatch marker cost
    :data:`STRAGGLER_FACTOR`× their siblings — the pathological
    straggler the uniform slicer strands a worker behind.  Metrics are
    bit-identical to ``batched``.
    """

    name = "straggler_paced"
    row_parallel = True

    def evaluate(self, circuit, job):
        metrics = super().evaluate(circuit, job)
        heavy = (
            int((job.mismatch[:, 0] > STRAGGLER_SENTINEL).sum())
            if job.mismatch is not None
            else 0
        )
        time.sleep(
            STRAGGLER_ROW_SECONDS
            * (job.batch + heavy * (STRAGGLER_FACTOR - 1))
        )
        return metrics


BACKENDS[StragglerPacedBackend.name] = StragglerPacedBackend

fork_only = pytest.mark.skipif(
    multiprocessing.get_start_method(allow_none=False) != "fork",
    reason="pool workers must inherit the paced-backend registration",
)


@fork_only
class TestStragglerScheduling:
    def _run(self, circuit, scheduler):
        job = straggler_job(circuit)
        with SimulationService(
            circuit,
            workers=2,
            backend=StragglerPacedBackend(),
            scheduler=scheduler,
        ) as service:
            # Warm-up dispatch: worker spin-up must not count as idle time.
            service.run(conditions_job(circuit, rows=4, seed=7))
            start = time.perf_counter()
            result = service.run(job)
            wall = time.perf_counter() - start
        return result, wall

    def test_stealing_bounds_straggler_idle_time(self, strongarm):
        stealing, stealing_wall = self._run(strongarm, SCHEDULER_STEALING)
        uniform, uniform_wall = self._run(strongarm, SCHEDULER_UNIFORM)
        for name in strongarm.metric_names:
            np.testing.assert_array_equal(
                stealing.metrics[name], uniform.metrics[name]
            )
        assert stealing.row_seconds is not None
        idle = straggler_idle_fraction(
            stealing.row_seconds, workers=2, wall_seconds=stealing_wall
        )
        # Ideal stealing idle here is ~7% (the heavy chunk finishes just
        # after the drained queue); the uniform slicer's is ~35%.  The
        # bound leaves generous room for scheduler noise while still
        # failing if the straggler strands a worker for a uniform
        # half-batch.
        assert idle < 0.30, (
            f"stealing idle fraction {idle:.2f} "
            f"(walls: stealing {stealing_wall:.2f}s, "
            f"uniform {uniform_wall:.2f}s)"
        )
