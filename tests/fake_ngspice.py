#!/usr/bin/env python3
"""Hermetic ngspice test double.

A drop-in stand-in for ``ngspice -b -o run.log deck.cir`` that needs no
SPICE engine: it parses the machine payload the deck compiler embeds in
every deck (:func:`repro.spice.deck.parse_deck_job`), reconstructs the
original :class:`SimJob`, evaluates it with the **analytic MNA engine**
(:class:`repro.simulation.service.BatchedMNABackend`) and answers with an
ngspice-style measure log (``m_<metric>_r<row> = <value>`` lines).  Because
the payload stores every float at 17 significant digits, the round trip is
bit-exact: metrics reported through the fake agree with a direct
``BatchedMNABackend`` evaluation to within :data:`TOLERANCE`.

The ``conftest.py`` fixture ``fake_ngspice`` installs this module as an
executable launcher and points ``$REPRO_NGSPICE`` at it, so the full
``NgspiceBackend`` pipeline — deck compile, subprocess, measure-log parse —
runs end-to-end in CI with no ngspice installed.

Failure injection (for the backend's error-path tests):

``FAKE_NGSPICE_MODE``
    ``ok`` (default) — normal measure log;
    ``exit3`` — exit with status 3 and no log;
    ``hang`` — sleep forever (exercises the runner timeout);
    ``garbage`` — exit 0 with a log containing no measures;
    ``failcell`` — report ``failed`` for the first measure of row 0 only
    (a partial *row*: still a cacheable result);
    ``allfail`` — report ``failed`` for every measure (the engine ran
    fine, the design just doesn't measure: a genuine, chargeable result);
    ``partial`` — ``failcell`` plus the last row omitted entirely (a
    fully-NaN row: exercises NaN cell reassembly and the cache's refusal
    to memoize rows that produced no metrics).
``FAKE_NGSPICE_FAIL_ONCE``
    Path to a marker file: if it exists, consume (delete) it and exit 3;
    subsequent runs succeed.  With sharded workers this makes exactly one
    worker fail mid-shard while its siblings succeed; with the backend's
    per-row fallback it makes exactly one row degrade to NaN.
"""

from __future__ import annotations

import os
import sys
import time

#: Declared agreement between the fake's measure log and a direct
#: BatchedMNABackend evaluation.  Values are printed at 17 significant
#: digits (exact for IEEE doubles); the bound is slack for safety.
TOLERANCE = 1e-12


def _render_log(job, circuit, metrics, mode: str) -> str:
    from repro.spice.deck import measure_name

    lines = [
        "Note: fake ngspice (repro hermetic test double)",
        f"Circuit: {job.circuit_name}",
        "  Measurements:",
    ]
    for row in range(job.batch):
        if mode == "partial" and row == job.batch - 1:
            continue  # the whole last row goes missing
        for index, name in enumerate(circuit.metric_names):
            label = measure_name(name, row)
            if mode == "allfail" or (
                mode in ("partial", "failcell") and row == 0 and index == 0
            ):
                lines.append(f"{label} = failed")
                continue
            lines.append(f"{label} = {float(metrics[name][row]):.17e}")
    return "\n".join(lines) + "\n"


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    mode = os.environ.get("FAKE_NGSPICE_MODE", "ok")
    fail_once = os.environ.get("FAKE_NGSPICE_FAIL_ONCE", "")

    # The ngspice batch CLI subset the runner uses:
    # [-b] [-r rawfile] [-o logfile] deck.  A -r request is the waveform-
    # mode signal: answer with a binary rawfile instead of a measure log.
    log_path = None
    raw_path = None
    deck_path = None
    index = 0
    while index < len(argv):
        argument = argv[index]
        if argument == "-o" and index + 1 < len(argv):
            log_path = argv[index + 1]
            index += 2
            continue
        if argument == "-r" and index + 1 < len(argv):
            raw_path = argv[index + 1]
            index += 2
            continue
        if not argument.startswith("-"):
            deck_path = argument
        index += 1
    if deck_path is None:
        sys.stderr.write("fake-ngspice: no deck file on the command line\n")
        return 2

    if fail_once and os.path.exists(fail_once):
        consumed = True
        try:
            os.unlink(fail_once)
        except OSError:
            consumed = False  # a sibling shard consumed it first
        if consumed:
            sys.stderr.write("fake-ngspice: injected one-shot failure\n")
            return 3
    if mode == "exit3":
        sys.stderr.write("fake-ngspice: injected failure (exit3 mode)\n")
        return 3
    if mode == "hang":
        time.sleep(600.0)
        return 0

    with open(deck_path, "r", encoding="utf-8") as handle:
        deck_text = handle.read()

    if raw_path is not None:
        return _run_waveform(deck_text, raw_path, log_path, mode)

    if mode == "garbage":
        output = "fake-ngspice: no measures in this log\n"
    else:
        from repro.circuits.registry import get_circuit
        from repro.simulation.service import BatchedMNABackend
        from repro.spice.deck import parse_deck_job

        job = parse_deck_job(deck_text)
        circuit = get_circuit(job.circuit_name)
        metrics = BatchedMNABackend().evaluate(circuit, job)
        output = _render_log(job, circuit, metrics, mode)

    if log_path is not None:
        with open(log_path, "w", encoding="utf-8") as handle:
            handle.write(output)
    else:
        sys.stdout.write(output)
    return 0


def _run_waveform(deck_text: str, raw_path: str, log_path, mode: str) -> int:
    """Waveform mode: answer with a real binary rawfile.

    The metric values still come from the analytic engine via the deck
    payload; :func:`repro.analysis.waveform.synthesize_canonical` renders
    them into traces whose extraction is bit-exact, and
    :func:`repro.spice.rawfile.render_rawfile` writes the same binary
    format a real ngspice would — so the backend's parse-and-extract path
    runs for real.  Mode mapping: ``garbage`` writes unparseable rawfile
    bytes, ``partial`` writes no rawfile at all (a FAILURE_NAN row),
    ``failcell`` NaNs the first metric, ``allfail`` NaNs every metric.
    """
    note = "Note: fake ngspice (repro hermetic test double, waveform mode)\n"
    if log_path is not None:
        with open(log_path, "w", encoding="utf-8") as handle:
            handle.write(note)

    if mode == "garbage":
        with open(raw_path, "wb") as handle:
            handle.write(b"this is not a rawfile\n")
        return 0
    if mode == "partial":
        return 0  # engine "succeeds" but never writes the rawfile

    import numpy as np

    from repro.analysis.waveform import synthesize_canonical
    from repro.circuits.registry import get_circuit
    from repro.simulation.service import BatchedMNABackend
    from repro.spice.deck import parse_deck_job
    from repro.spice.rawfile import render_rawfile

    job = parse_deck_job(deck_text)
    if job.batch != 1:
        sys.stderr.write(
            "fake-ngspice: waveform decks must be single-row "
            f"(got {job.batch} rows)\n"
        )
        return 2
    circuit = get_circuit(job.circuit_name)
    metrics = BatchedMNABackend().evaluate(circuit, job)
    values = {
        name: float(metrics[name][0]) for name in circuit.metric_names
    }
    names = list(circuit.metric_names)
    if mode == "allfail":
        for name in names:
            values[name] = float("nan")
    elif mode == "failcell" and names:
        values[names[0]] = float("nan")

    vdd = float(job.row_corners[0].vdd)
    times, traces = synthesize_canonical(
        circuit.waveform_specs(), values, vdd
    )
    variables = [("time", "time")]
    rows = [times]
    for name in sorted(traces):
        var_type = "current" if name.startswith("i(") else "voltage"
        variables.append((name, var_type))
        rows.append(traces[name])
    data = np.vstack(rows)
    with open(raw_path, "wb") as handle:
        handle.write(render_rawfile(job.circuit_name, variables, data))
    return 0


if __name__ == "__main__":
    sys.exit(main())
