"""Integration tests: the full GLOVA workflow on the paper testcases."""

import numpy as np
import pytest

from repro import GlovaConfig, GlovaOptimizer, VerificationMethod
from repro.circuits import FloatingInverterAmplifier, StrongArmLatch
from repro.core.result import OptimizationResult


@pytest.fixture(scope="module")
def sal_corner_result():
    config = GlovaConfig(
        verification=VerificationMethod.CORNER,
        seed=0,
        max_iterations=60,
        initial_samples=40,
    )
    return GlovaOptimizer(StrongArmLatch(), config).run()


class TestGlovaOnStrongArm:
    def test_corner_scenario_succeeds(self, sal_corner_result):
        assert sal_corner_result.success

    def test_result_bookkeeping(self, sal_corner_result):
        result = sal_corner_result
        assert isinstance(result, OptimizationResult)
        assert result.iterations >= 1
        assert result.total_simulations > 0
        assert result.simulations["total"] == (
            result.simulations["initial_sampling"]
            + result.simulations["optimization"]
            + result.simulations["verification"]
        )
        assert result.runtime > 0
        assert result.method == "C"
        assert result.circuit == "strongarm_latch"

    def test_final_design_meets_targets_at_typical(self, sal_corner_result):
        result = sal_corner_result
        circuit = StrongArmLatch()
        assert result.final_design is not None
        metrics = circuit.evaluate(result.final_design)
        assert circuit.is_feasible(metrics)
        assert result.final_metrics is not None

    def test_final_design_survives_every_corner(self, sal_corner_result):
        from repro.variation.corners import full_corner_set

        circuit = StrongArmLatch()
        design = sal_corner_result.final_design
        for corner in full_corner_set():
            assert circuit.is_feasible(circuit.evaluate(design, corner)), corner.name

    def test_history_tracks_every_iteration(self, sal_corner_result):
        result = sal_corner_result
        assert len(result.history) == result.iterations
        assert result.history[-1].verification_passed
        for record in result.history:
            assert np.isfinite(record.worst_reward)
            assert np.isfinite(record.predicted_bound)

    def test_physical_design_within_bounds(self, sal_corner_result):
        circuit = StrongArmLatch()
        physical = sal_corner_result.final_design_physical
        for value, parameter in zip(physical, circuit.parameters):
            assert parameter.lower - 1e-12 <= value <= parameter.upper + 1e-12


class TestGlovaLocalMc:
    def test_local_mc_scenario_succeeds_with_reduced_budget(self):
        config = GlovaConfig(
            verification=VerificationMethod.CORNER_LOCAL_MC,
            seed=1,
            max_iterations=150,
            initial_samples=40,
            verification_samples=15,
        )
        result = GlovaOptimizer(StrongArmLatch(), config).run()
        assert result.success
        assert result.verification_simulations > 0

    def test_failed_run_reports_failure(self):
        """With an impossible iteration budget the run fails gracefully."""
        config = GlovaConfig(
            verification=VerificationMethod.CORNER_LOCAL_MC,
            seed=0,
            max_iterations=1,
            initial_samples=10,
            verification_samples=10,
        )
        result = GlovaOptimizer(FloatingInverterAmplifier(), config).run()
        assert isinstance(result.success, bool)
        if not result.success:
            assert result.final_design is None
            assert result.iterations == 1


class TestAblationWiring:
    """Table-III switches must reach the relevant components."""

    def test_no_ensemble_critic(self):
        config = GlovaConfig(use_ensemble_critic=False, seed=0)
        optimizer = GlovaOptimizer(StrongArmLatch(), config)
        assert optimizer.agent.critic.ensemble_size == 1

    def test_no_mu_sigma(self):
        config = GlovaConfig(use_mu_sigma=False, seed=0)
        optimizer = GlovaOptimizer(StrongArmLatch(), config)
        assert not optimizer.verifier.use_mu_sigma

    def test_no_reordering(self):
        config = GlovaConfig(use_reordering=False, seed=0)
        optimizer = GlovaOptimizer(StrongArmLatch(), config)
        assert not optimizer.verifier.use_reordering

    def test_full_configuration(self):
        optimizer = GlovaOptimizer(StrongArmLatch(), GlovaConfig(seed=0))
        assert optimizer.agent.critic.ensemble_size == GlovaConfig().ensemble_size
        assert optimizer.verifier.use_mu_sigma
        assert optimizer.verifier.use_reordering
