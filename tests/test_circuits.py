"""Tests for the three testbench circuits (repro.circuits)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import (
    DramCoreSenseAmp,
    FloatingInverterAmplifier,
    StrongArmLatch,
    available_circuits,
    get_circuit,
)
from repro.variation.corners import ProcessCorner, PVTCorner, typical_corner

ALL_CIRCUITS = [StrongArmLatch, FloatingInverterAmplifier, DramCoreSenseAmp]


class TestRegistry:
    def test_available_circuits(self):
        names = available_circuits()
        assert "strongarm_latch" in names
        assert "floating_inverter_amplifier" in names
        assert "dram_core_ocsa" in names

    def test_aliases(self):
        assert isinstance(get_circuit("sal"), StrongArmLatch)
        assert isinstance(get_circuit("fia"), FloatingInverterAmplifier)
        assert isinstance(get_circuit("dram"), DramCoreSenseAmp)

    def test_unknown_circuit(self):
        with pytest.raises(KeyError):
            get_circuit("op_amp_9000")


class TestPaperDimensions:
    """The sizing spaces must match Section VI.A of the paper."""

    def test_strongarm_has_14_parameters(self):
        assert StrongArmLatch().dimension == 14

    def test_fia_has_6_parameters(self):
        assert FloatingInverterAmplifier().dimension == 6

    def test_dram_has_12_parameters(self):
        assert DramCoreSenseAmp().dimension == 12

    def test_strongarm_targets(self):
        constraints = StrongArmLatch().constraints
        assert constraints["power"] == pytest.approx(40e-6)
        assert constraints["set_delay"] == pytest.approx(4e-9)
        assert constraints["reset_delay"] == pytest.approx(4e-9)
        assert constraints["noise"] == pytest.approx(120e-6)

    def test_fia_targets(self):
        constraints = FloatingInverterAmplifier().constraints
        assert constraints["energy_per_conversion"] == pytest.approx(0.1e-12)
        assert constraints["noise"] == pytest.approx(130e-3)

    def test_dram_targets_are_sign_flipped(self):
        constraints = DramCoreSenseAmp().constraints
        assert constraints["neg_delta_v_d0"] == pytest.approx(-85e-3)
        assert constraints["neg_delta_v_d1"] == pytest.approx(-85e-3)
        assert constraints["energy_per_bit"] == pytest.approx(30e-15)

    def test_strongarm_width_range(self):
        widths = [p for p in StrongArmLatch().parameters if p.name.startswith("W_")]
        assert all(p.lower == pytest.approx(0.28e-6) for p in widths)
        assert all(p.upper == pytest.approx(32.8e-6) for p in widths)

    def test_dram_width_ranges(self):
        circuit = DramCoreSenseAmp()
        by_name = {p.name: p for p in circuit.parameters}
        assert by_name["W_nsa"].upper == pytest.approx(1.028e-6)
        assert by_name["W_sh_ndrv"].lower == pytest.approx(5e-6)
        assert by_name["W_sh_ndrv"].upper == pytest.approx(15e-6)
        assert by_name["L_nsa"].upper == pytest.approx(0.06e-6)


@pytest.mark.parametrize("circuit_cls", ALL_CIRCUITS)
class TestEvaluationContract:
    def test_reports_every_metric(self, circuit_cls, rng):
        circuit = circuit_cls()
        metrics = circuit.evaluate(circuit.random_sizing(rng))
        assert set(metrics) == set(circuit.metric_names)

    def test_metrics_are_finite(self, circuit_cls, rng):
        circuit = circuit_cls()
        for _ in range(20):
            metrics = circuit.evaluate(circuit.random_sizing(rng))
            assert all(np.isfinite(v) for v in metrics.values())

    def test_normalize_denormalize_roundtrip(self, circuit_cls, rng):
        circuit = circuit_cls()
        x = circuit.random_sizing(rng)
        recovered = circuit.normalize(circuit.denormalize(x))
        assert np.allclose(recovered, x, atol=1e-9)

    def test_denormalize_respects_bounds(self, circuit_cls, rng):
        circuit = circuit_cls()
        physical = circuit.denormalize(np.zeros(circuit.dimension))
        for value, parameter in zip(physical, circuit.parameters):
            assert value == pytest.approx(parameter.lower)
        physical = circuit.denormalize(np.ones(circuit.dimension))
        for value, parameter in zip(physical, circuit.parameters):
            assert value == pytest.approx(parameter.upper)

    def test_wrong_dimension_rejected(self, circuit_cls):
        circuit = circuit_cls()
        with pytest.raises(ValueError):
            circuit.evaluate(np.zeros(circuit.dimension + 1))

    def test_nominal_mismatch_matches_default(self, circuit_cls, rng):
        circuit = circuit_cls()
        x = circuit.random_sizing(rng)
        zero_h = circuit.mismatch_model.zero()
        assert circuit.evaluate(x, mismatch=zero_h) == circuit.evaluate(x)

    def test_describe_mentions_every_parameter(self, circuit_cls):
        circuit = circuit_cls()
        text = circuit.describe()
        for parameter in circuit.parameters:
            assert parameter.name in text


class TestStrongArmBehaviour:
    def test_bigger_load_cap_increases_power_and_delay(self, rng):
        circuit = StrongArmLatch()
        x = circuit.random_sizing(rng)
        x_small, x_big = x.copy(), x.copy()
        x_small[circuit.C_LOAD] = 0.1
        x_big[circuit.C_LOAD] = 0.9
        small = circuit.evaluate(x_small)
        big = circuit.evaluate(x_big)
        assert big["power"] > small["power"]
        assert big["set_delay"] > small["set_delay"]

    def test_low_supply_slows_the_latch(self, rng):
        circuit = StrongArmLatch()
        x = circuit.random_sizing(rng)
        nominal = circuit.evaluate(x, PVTCorner(ProcessCorner.TT, 0.9, 27.0))
        low_vdd = circuit.evaluate(x, PVTCorner(ProcessCorner.TT, 0.8, 27.0))
        assert low_vdd["set_delay"] > nominal["set_delay"]

    def test_local_mismatch_increases_noise(self, rng):
        circuit = StrongArmLatch()
        x = np.full(circuit.dimension, 0.5)
        model = circuit.mismatch_model
        h = model.zero()
        h[model.index_of("M_input_a", "vth")] = 0.02
        h[model.index_of("M_input_b", "vth")] = -0.02
        assert circuit.evaluate(x, mismatch=h)["noise"] > circuit.evaluate(x)["noise"]

    def test_offset_cap_attenuates_mismatch(self, rng):
        circuit = StrongArmLatch()
        model = circuit.mismatch_model
        h = model.zero()
        h[model.index_of("M_input_a", "vth")] = 0.03
        x_small, x_big = np.full(circuit.dimension, 0.5), np.full(circuit.dimension, 0.5)
        x_small[circuit.C_OFFSET] = 0.05
        x_big[circuit.C_OFFSET] = 0.95
        assert (
            circuit.evaluate(x_big, mismatch=h)["noise"]
            < circuit.evaluate(x_small, mismatch=h)["noise"]
        )


class TestFiaBehaviour:
    def test_energy_scales_with_reservoir(self, rng):
        circuit = FloatingInverterAmplifier()
        x = circuit.random_sizing(rng)
        x_small, x_big = x.copy(), x.copy()
        x_small[circuit.C_RESERVOIR] = 0.1
        x_big[circuit.C_RESERVOIR] = 0.9
        assert (
            circuit.evaluate(x_big)["energy_per_conversion"]
            > circuit.evaluate(x_small)["energy_per_conversion"]
        )

    def test_pair_mismatch_increases_noise(self):
        circuit = FloatingInverterAmplifier()
        x = np.full(circuit.dimension, 0.5)
        model = circuit.mismatch_model
        h = model.zero()
        h[model.index_of("M_nmos_a", "vth")] = 0.02
        h[model.index_of("M_nmos_b", "vth")] = -0.02
        assert circuit.evaluate(x, mismatch=h)["noise"] > circuit.evaluate(x)["noise"]

    def test_common_mode_shift_does_not_offset(self):
        """A die-level shift common to both pair halves adds no offset."""
        circuit = FloatingInverterAmplifier()
        x = np.full(circuit.dimension, 0.5)
        model = circuit.mismatch_model
        h = model.zero()
        h[model.index_of("M_nmos_a", "vth")] = 0.03
        h[model.index_of("M_nmos_b", "vth")] = 0.03
        common = circuit.evaluate(x, mismatch=h)["noise"]
        nominal = circuit.evaluate(x)["noise"]
        assert common == pytest.approx(nominal, rel=0.25)


class TestDramBehaviour:
    def test_sensing_voltages_conflict_through_imbalance(self):
        circuit = DramCoreSenseAmp()
        x = np.full(circuit.dimension, 0.5)
        x_strong_n = x.copy()
        x_strong_n[circuit.W_NSA] = 0.95
        x_strong_n[circuit.W_PSA] = 0.05
        balanced = circuit.evaluate(x)
        skewed = circuit.evaluate(x_strong_n)
        # Strengthening the NMOS path helps data-0 sensing relative to the
        # balanced design but hurts data-1 sensing (metrics are negated).
        assert skewed["neg_delta_v_d1"] > balanced["neg_delta_v_d1"]

    def test_pair_mismatch_degrades_sensing(self):
        circuit = DramCoreSenseAmp()
        x = np.full(circuit.dimension, 0.5)
        model = circuit.mismatch_model
        h = model.zero()
        h[model.index_of("M_nsa_a", "vth")] = 0.03
        h[model.index_of("M_nsa_b", "vth")] = -0.03
        degraded = circuit.evaluate(x, mismatch=h)
        nominal = circuit.evaluate(x)
        assert degraded["neg_delta_v_d0"] > nominal["neg_delta_v_d0"]
        assert degraded["neg_delta_v_d1"] > nominal["neg_delta_v_d1"]

    def test_low_supply_reduces_sensing_margin(self):
        circuit = DramCoreSenseAmp()
        x = np.full(circuit.dimension, 0.5)
        nominal = circuit.evaluate(x, PVTCorner(ProcessCorner.TT, 0.9, 27.0))
        low = circuit.evaluate(x, PVTCorner(ProcessCorner.TT, 0.8, 27.0))
        assert low["neg_delta_v_d1"] > nominal["neg_delta_v_d1"]

    def test_bigger_drivers_cost_energy(self):
        circuit = DramCoreSenseAmp()
        x = np.full(circuit.dimension, 0.5)
        x_big = x.copy()
        x_big[circuit.W_SH_N] = 1.0
        x_big[circuit.W_SH_P] = 1.0
        assert (
            circuit.evaluate(x_big)["energy_per_bit"]
            > circuit.evaluate(x)["energy_per_bit"]
        )


@settings(max_examples=30, deadline=None)
@given(
    values=st.lists(st.floats(0.0, 1.0), min_size=14, max_size=14),
)
def test_strongarm_metrics_positive_property(values):
    """Power, delays and noise are physical quantities: always positive."""
    circuit = StrongArmLatch()
    metrics = circuit.evaluate(np.array(values), typical_corner())
    assert metrics["power"] > 0
    assert metrics["set_delay"] > 0
    assert metrics["reset_delay"] > 0
    assert metrics["noise"] > 0
