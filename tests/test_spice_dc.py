"""Tests for the netlist, MNA stamping and DC solver (repro.spice)."""

import numpy as np
import pytest

from repro.spice import (
    Capacitor,
    Circuit,
    CurrentSource,
    GROUND,
    Mosfet,
    MosfetModel,
    Resistor,
    VCCS,
    VoltageSource,
    nmos_28nm,
    pmos_28nm,
    solve_dc,
)
from repro.spice.dc import ConvergenceError


class TestNetlistConstruction:
    def test_duplicate_element_names_rejected(self):
        circuit = Circuit()
        circuit.add(Resistor("R1", "a", GROUND, 1e3))
        with pytest.raises(ValueError):
            circuit.add(Resistor("R1", "b", GROUND, 1e3))

    def test_negative_resistance_rejected(self):
        with pytest.raises(ValueError):
            Resistor("R1", "a", "b", -5.0)

    def test_negative_capacitance_rejected(self):
        with pytest.raises(ValueError):
            Capacitor("C1", "a", "b", -1e-12)

    def test_node_names_exclude_ground(self):
        circuit = Circuit()
        circuit.add(Resistor("R1", "a", GROUND, 1e3))
        circuit.add(Resistor("R2", "a", "b", 1e3))
        assert circuit.node_names() == ["a", "b"]

    def test_validate_requires_ground(self):
        circuit = Circuit()
        circuit.add(Resistor("R1", "a", "b", 1e3))
        with pytest.raises(ValueError):
            circuit.validate()

    def test_validate_requires_elements(self):
        with pytest.raises(ValueError):
            Circuit().validate()


class TestLinearDC:
    def test_voltage_divider(self):
        circuit = Circuit("divider")
        circuit.add(VoltageSource("VIN", "in", GROUND, 1.0))
        circuit.add(Resistor("R1", "in", "out", 1e3))
        circuit.add(Resistor("R2", "out", GROUND, 1e3))
        solution = solve_dc(circuit)
        assert solution["out"] == pytest.approx(0.5, rel=1e-6)
        assert solution["in"] == pytest.approx(1.0, rel=1e-6)

    def test_source_current_through_divider(self):
        circuit = Circuit("divider")
        circuit.add(VoltageSource("VIN", "in", GROUND, 2.0))
        circuit.add(Resistor("R1", "in", GROUND, 1e3))
        solution = solve_dc(circuit)
        # MNA convention: source current flows from + to - internally.
        assert abs(solution.source_currents["VIN"]) == pytest.approx(2e-3, rel=1e-6)

    def test_current_source_into_resistor(self):
        circuit = Circuit()
        circuit.add(CurrentSource("I1", "a", GROUND, 1e-3))
        circuit.add(Resistor("R1", "a", GROUND, 2e3))
        solution = solve_dc(circuit)
        assert solution["a"] == pytest.approx(2.0, rel=1e-6)

    def test_vccs_acts_as_transconductance(self):
        circuit = Circuit()
        circuit.add(VoltageSource("VIN", "in", GROUND, 1.0))
        circuit.add(Resistor("Rload", "out", GROUND, 1e3))
        # i(out -> ground) = gm * v(in); with gm = 1 mS the load sees -1 V.
        circuit.add(VCCS("G1", "out", GROUND, "in", GROUND, 1e-3))
        solution = solve_dc(circuit)
        assert solution["out"] == pytest.approx(-1.0, rel=1e-4)

    def test_capacitor_is_open_at_dc(self):
        circuit = Circuit()
        circuit.add(VoltageSource("VIN", "in", GROUND, 1.0))
        circuit.add(Resistor("R1", "in", "out", 1e3))
        circuit.add(Capacitor("C1", "out", GROUND, 1e-12))
        solution = solve_dc(circuit)
        assert solution["out"] == pytest.approx(1.0, rel=1e-4)

    def test_voltage_between(self):
        circuit = Circuit()
        circuit.add(VoltageSource("VIN", "in", GROUND, 1.0))
        circuit.add(Resistor("R1", "in", "out", 1e3))
        circuit.add(Resistor("R2", "out", GROUND, 3e3))
        solution = solve_dc(circuit)
        assert solution.voltage_between("in", "out") == pytest.approx(0.25, rel=1e-6)


class TestNonlinearDC:
    def test_nmos_pulls_output_low_when_on(self):
        circuit = Circuit("common_source")
        circuit.add(VoltageSource("VDD", "vdd", GROUND, 0.9))
        circuit.add(VoltageSource("VG", "gate", GROUND, 0.9))
        circuit.add(Resistor("RD", "vdd", "drain", 20e3))
        circuit.add(
            Mosfet("M1", "drain", "gate", GROUND, MosfetModel(2e-6, 100e-9, nmos_28nm()))
        )
        solution = solve_dc(circuit, damping=0.5)
        assert solution["drain"] < 0.3

    def test_nmos_off_keeps_output_high(self):
        circuit = Circuit("common_source_off")
        circuit.add(VoltageSource("VDD", "vdd", GROUND, 0.9))
        circuit.add(VoltageSource("VG", "gate", GROUND, 0.0))
        circuit.add(Resistor("RD", "vdd", "drain", 20e3))
        circuit.add(
            Mosfet("M1", "drain", "gate", GROUND, MosfetModel(2e-6, 100e-9, nmos_28nm()))
        )
        solution = solve_dc(circuit, damping=0.5)
        assert solution["drain"] > 0.85

    def test_cmos_inverter_transfer(self):
        def inverter_output(vin: float) -> float:
            circuit = Circuit("inverter")
            circuit.add(VoltageSource("VDD", "vdd", GROUND, 0.9))
            circuit.add(VoltageSource("VIN", "in", GROUND, vin))
            circuit.add(
                Mosfet("MN", "out", "in", GROUND, MosfetModel(1e-6, 60e-9, nmos_28nm()))
            )
            circuit.add(
                Mosfet("MP", "out", "in", "vdd", MosfetModel(2e-6, 60e-9, pmos_28nm()))
            )
            circuit.add(Resistor("Rload", "out", GROUND, 10e6))
            return solve_dc(circuit, damping=0.3, max_iterations=400)["out"]

        assert inverter_output(0.0) > 0.7
        assert inverter_output(0.9) < 0.2

    def test_vth_mismatch_changes_operating_point(self):
        def drain_voltage(vth_shift: float) -> float:
            circuit = Circuit()
            circuit.add(VoltageSource("VDD", "vdd", GROUND, 0.9))
            circuit.add(VoltageSource("VG", "gate", GROUND, 0.45))
            circuit.add(Resistor("RD", "vdd", "drain", 50e3))
            circuit.add(
                Mosfet(
                    "M1",
                    "drain",
                    "gate",
                    GROUND,
                    MosfetModel(2e-6, 100e-9, nmos_28nm()),
                    vth_shift=vth_shift,
                )
            )
            return solve_dc(circuit, damping=0.5)["drain"]

        # A higher threshold means less current, so the drain sits higher.
        assert drain_voltage(+0.05) > drain_voltage(-0.05)
