"""Tests for the PVTSizing / RobustAnalog / random-search baselines."""

import numpy as np
import pytest

from repro.baselines import (
    PVTSizingOptimizer,
    RandomSearchOptimizer,
    RobustAnalogOptimizer,
)
from repro.baselines.robustanalog import kmeans_cluster
from repro.circuits import StrongArmLatch
from repro.core.config import GlovaConfig, VerificationMethod


@pytest.fixture
def corner_config():
    return GlovaConfig(
        verification=VerificationMethod.CORNER,
        seed=0,
        max_iterations=60,
        initial_samples=40,
    )


class TestKMeans:
    def test_two_well_separated_clusters(self, rng):
        a = rng.normal(0.0, 0.1, size=(10, 2))
        b = rng.normal(5.0, 0.1, size=(10, 2))
        labels = kmeans_cluster(np.vstack([a, b]), 2, rng)
        assert len(set(labels[:10])) == 1
        assert len(set(labels[10:])) == 1
        assert labels[0] != labels[-1]

    def test_cluster_count_capped_by_points(self, rng):
        labels = kmeans_cluster(rng.normal(size=(3, 2)), 10, rng)
        assert len(labels) == 3


class TestPVTSizing:
    def test_succeeds_on_corner_scenario(self, corner_config):
        result = PVTSizingOptimizer(StrongArmLatch(), corner_config).run()
        assert result.success
        assert result.method.startswith("pvtsizing")

    def test_corner_exhaustive_costs_more_than_glova(self, corner_config):
        from repro import GlovaOptimizer

        glova = GlovaOptimizer(StrongArmLatch(), corner_config).run()
        pvt = PVTSizingOptimizer(StrongArmLatch(), corner_config).run()
        assert glova.success and pvt.success
        # The paper's headline: GLOVA needs fewer simulations because it does
        # not evaluate every corner at every iteration.
        assert glova.total_simulations < pvt.total_simulations

    def test_risk_neutral_critic(self, corner_config):
        optimizer = PVTSizingOptimizer(StrongArmLatch(), corner_config)
        assert optimizer.agent.critic.ensemble_size == 1


class TestRobustAnalog:
    def test_runs_and_reports(self):
        config = GlovaConfig(
            verification=VerificationMethod.CORNER,
            seed=0,
            max_iterations=40,
            initial_samples=30,
        )
        result = RobustAnalogOptimizer(StrongArmLatch(), config).run()
        assert result.iterations <= 40
        assert result.total_simulations > 0
        assert result.method.startswith("robustanalog")

    def test_dominant_corner_subset_is_smaller_than_full_set(self):
        config = GlovaConfig(
            verification=VerificationMethod.CORNER,
            seed=0,
            max_iterations=15,
            initial_samples=20,
        )
        optimizer = RobustAnalogOptimizer(
            StrongArmLatch(), config, n_clusters=4, recluster_every=5
        )
        optimizer.run()
        assert len(optimizer._dominant_corners) <= 4


class TestRandomSearch:
    def test_respects_iteration_budget(self):
        config = GlovaConfig(
            verification=VerificationMethod.CORNER,
            seed=0,
            max_iterations=5,
            initial_samples=5,
        )
        result = RandomSearchOptimizer(StrongArmLatch(), config).run()
        assert result.iterations <= 5
        # Every iteration evaluates all 30 corners at least once.
        assert result.total_simulations >= 5 * 30 or result.success
