"""Tests for the replay buffers (repro.core.replay)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.replay import LastWorstCaseBuffer, WorstCaseReplayBuffer
from repro.variation.corners import full_corner_set, vt_corner_set


class TestWorstCaseReplayBuffer:
    def test_add_and_len(self):
        buffer = WorstCaseReplayBuffer(capacity=8)
        buffer.add(np.zeros(3), 0.1)
        assert len(buffer) == 1

    def test_capacity_wraps_fifo(self):
        buffer = WorstCaseReplayBuffer(capacity=3)
        for index in range(5):
            buffer.add(np.full(2, index), float(index))
        assert len(buffer) == 3
        assert set(buffer.all_rewards()) == {2.0, 3.0, 4.0}

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            WorstCaseReplayBuffer(capacity=0)

    def test_sample_shapes(self, rng):
        buffer = WorstCaseReplayBuffer()
        for index in range(20):
            buffer.add(np.full(4, index), float(index))
        designs, rewards = buffer.sample(8, rng)
        assert designs.shape == (8, 4)
        assert rewards.shape == (8,)

    def test_sample_with_replacement_when_small(self, rng):
        buffer = WorstCaseReplayBuffer()
        buffer.add(np.zeros(2), 0.0)
        designs, rewards = buffer.sample(10, rng)
        assert designs.shape == (10, 2)

    def test_sample_empty_rejected(self, rng):
        with pytest.raises(ValueError):
            WorstCaseReplayBuffer().sample(4, rng)

    def test_best_returns_highest_reward(self):
        buffer = WorstCaseReplayBuffer()
        buffer.add(np.zeros(2), -0.5)
        buffer.add(np.ones(2), 0.2)
        buffer.add(np.full(2, 2.0), -0.1)
        best = buffer.best()
        assert best.reward == pytest.approx(0.2)
        assert np.allclose(best.design, 1.0)

    def test_best_empty_rejected(self):
        with pytest.raises(ValueError):
            WorstCaseReplayBuffer().best()

    def test_stored_designs_are_copies(self):
        buffer = WorstCaseReplayBuffer()
        design = np.zeros(2)
        buffer.add(design, 0.0)
        design[:] = 99.0
        assert np.allclose(buffer.all_designs()[0], 0.0)

    @settings(max_examples=30, deadline=None)
    @given(
        rewards=st.lists(
            st.floats(min_value=-5, max_value=0.2, allow_nan=False), min_size=1, max_size=50
        )
    )
    def test_best_is_maximum_property(self, rewards):
        buffer = WorstCaseReplayBuffer(capacity=100)
        for index, reward in enumerate(rewards):
            buffer.add(np.full(2, index), reward)
        assert buffer.best().reward == pytest.approx(max(rewards))


class TestLastWorstCaseBuffer:
    def test_unvisited_corners_are_worst(self):
        corners = vt_corner_set()
        buffer = LastWorstCaseBuffer(corners)
        buffer.update(corners[1], 0.2)
        worst = buffer.worst_corner()
        assert worst != corners[1]

    def test_worst_corner_is_minimum_reward(self):
        corners = vt_corner_set()
        buffer = LastWorstCaseBuffer(corners)
        for index, corner in enumerate(corners):
            buffer.update(corner, float(index))
        assert buffer.worst_corner() == corners[0]

    def test_update_unknown_corner_rejected(self):
        buffer = LastWorstCaseBuffer(vt_corner_set())
        # An SS-process corner is never part of the VT (typical-process) set.
        stranger = next(
            c for c in full_corner_set() if not c.process.is_typical
        )
        with pytest.raises(KeyError):
            buffer.update(stranger, 0.0)

    def test_sorted_corners_worst_first(self):
        corners = vt_corner_set()
        buffer = LastWorstCaseBuffer(corners)
        rewards = [0.2, -0.4, 0.1, -0.1, 0.0, 0.15]
        for corner, reward in zip(corners, rewards):
            buffer.update(corner, reward)
        ordered = buffer.sorted_corners()
        ordered_rewards = [buffer.reward_of(c) for c in ordered]
        assert ordered_rewards == sorted(rewards)

    def test_as_dict_snapshot(self):
        corners = vt_corner_set()
        buffer = LastWorstCaseBuffer(corners)
        buffer.update(corners[0], -0.3)
        snapshot = buffer.as_dict()
        assert snapshot[corners[0].name] == pytest.approx(-0.3)
        assert snapshot[corners[1].name] is None
