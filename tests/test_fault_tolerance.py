"""The fault-tolerant simulation fabric, end to end.

Covers the retry policy (budget-safe accounting, deterministic backoff,
failure classification), the chaos harness (scripted fault schedules
through the ``"chaos"`` backend), the self-healing worker pool
(worker-death-mid-shard through a *real* pool, re-dispatch of only the
lost shards, heal caps), the shard watchdog (hung shards degrade to
FAILURE_NAN and re-simulate), checkpoint/resume (interrupted sweeps
replay completed seeds with zero re-simulation), the spill-store
maintenance utilities, and the process-group kill in the ngspice runner.

The chaos-equivalence tests pin the PR's acceptance criterion: under
injected worker-kill, hang, and flaky-engine schedules, a retrying run
completes with metrics and budget counts bit-identical to the fault-free
run.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from concurrent.futures.process import BrokenProcessPool

import numpy as np
import pytest

import repro.api as api
from repro.api import ExperimentConfig, run_experiment
from repro.simulation import (
    BatchedMNABackend,
    ChaosFault,
    FailureKind,
    FaultInjectingBackend,
    FaultSchedule,
    NgspiceError,
    RetryPolicy,
    ShardWatchdog,
    SimJob,
    SimulationBudget,
    SimulationPhase,
    WorkerPool,
    classify_failure,
    clear_spill_store,
    prune_spill_store,
    spill_store_stats,
)
from repro.simulation.service import (
    CachingBackend,
    resolve_retry,
)
from repro.simulation.sharding import dispatch_job_sharded
from repro.simulation.ngspice import NgspiceRunner
from repro.variation.corners import typical_corner

TESTS_DIR = os.path.dirname(os.path.abspath(__file__))
SRC_DIR = os.path.join(os.path.dirname(TESTS_DIR), "src")


def conditions_job(circuit, rows=10, seed=0, phase=SimulationPhase.OPTIMIZATION):
    rng = np.random.default_rng(seed)
    return SimJob.conditions(
        circuit.name,
        rng.uniform(0.2, 0.8, circuit.dimension),
        (typical_corner(),),
        rng.standard_normal((rows, circuit.mismatch_dimension)),
        phase=phase,
    )


def assert_metrics_equal(circuit, metrics, reference):
    for name in circuit.metric_names:
        np.testing.assert_array_equal(metrics[name], reference[name])


def chaos_env(monkeypatch, schedule: FaultSchedule, inner: str = "batched"):
    """Publish a chaos schedule through monkeypatch (auto-undone)."""
    for key, value in schedule.to_env(inner).items():
        monkeypatch.setenv(key, value)


#: Fast, jitter-free policy used throughout (tests must not sleep).
FAST_RETRY = RetryPolicy(max_attempts=3, backoff=0.0)


# ----------------------------------------------------------------------
# RetryPolicy unit behaviour
# ----------------------------------------------------------------------
class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="non-negative"):
            RetryPolicy(backoff=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(retry_on=frozenset({"not-a-kind"}))

    def test_should_retry_respects_attempts_and_kinds(self):
        policy = RetryPolicy(max_attempts=2)
        assert policy.should_retry(FailureKind.WORKER_DEATH, 1)
        assert not policy.should_retry(FailureKind.WORKER_DEATH, 2)
        assert not policy.should_retry(FailureKind.OTHER, 1)

    def test_string_kinds_are_normalized(self):
        policy = RetryPolicy(retry_on=frozenset({"engine"}))
        assert policy.retry_on == frozenset({FailureKind.ENGINE})
        assert policy.should_retry(FailureKind.ENGINE, 1)
        assert not policy.should_retry(FailureKind.TIMEOUT, 1)

    def test_backoff_is_exponential_and_deterministic(self):
        policy = RetryPolicy(backoff=0.1, backoff_factor=2.0, jitter=0.5)
        job_id = "ab" * 32
        first = policy.delay(job_id, 1)
        second = policy.delay(job_id, 2)
        # Exponential growth survives the bounded jitter (factor 2 vs
        # jitter at most 1.5x).
        assert second > first
        assert first == policy.delay(job_id, 1)  # seeded, reproducible
        other = RetryPolicy(
            backoff=0.1, backoff_factor=2.0, jitter=0.5, seed=99
        )
        assert other.delay(job_id, 1) != first  # seed moves the jitter

    def test_zero_backoff_never_sleeps(self):
        start = time.monotonic()
        FAST_RETRY.sleep("00" * 32, 5)
        assert time.monotonic() - start < 0.05

    def test_dict_round_trip(self):
        policy = RetryPolicy(
            max_attempts=5,
            backoff=0.25,
            jitter=0.0,
            retry_on=frozenset({FailureKind.ENGINE, FailureKind.TIMEOUT}),
            watchdog_seconds_per_row=2.0,
        )
        assert RetryPolicy.from_dict(policy.to_dict()) == policy
        with pytest.raises(ValueError, match="unknown RetryPolicy"):
            RetryPolicy.from_dict({"max_attempts": 2, "bogus": 1})

    def test_resolve_retry(self):
        assert resolve_retry(None) is None
        policy = RetryPolicy(max_attempts=2)
        assert resolve_retry(policy) is policy
        assert resolve_retry({"max_attempts": 2}).max_attempts == 2

    def test_watchdog_construction(self):
        assert RetryPolicy().watchdog() is None
        watchdog = RetryPolicy(
            watchdog_seconds_per_row=1.5, watchdog_floor=4.0
        ).watchdog()
        assert watchdog == ShardWatchdog(seconds_per_row=1.5, floor=4.0)
        assert watchdog.deadline(1) == 4.0  # floored
        assert watchdog.deadline(10) == 15.0


class TestClassifyFailure:
    def test_classification_table(self):
        assert (
            classify_failure(BrokenProcessPool("dead"))
            is FailureKind.WORKER_DEATH
        )
        assert classify_failure(TimeoutError()) is FailureKind.TIMEOUT
        assert (
            classify_failure(subprocess.TimeoutExpired("ngspice", 1.0))
            is FailureKind.TIMEOUT
        )
        assert classify_failure(NgspiceError("exit 3")) is FailureKind.ENGINE
        assert classify_failure(ChaosFault("injected")) is FailureKind.ENGINE
        assert classify_failure(RuntimeError("bug")) is FailureKind.OTHER
        assert classify_failure(ValueError("bug")) is FailureKind.OTHER


# ----------------------------------------------------------------------
# Chaos harness (in-process)
# ----------------------------------------------------------------------
class TestFaultSchedule:
    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="unknown chaos mode"):
            FaultSchedule(mode="explode")

    def test_env_round_trip(self, monkeypatch):
        schedule = FaultSchedule(
            mode="nan",
            faults=4,
            ticket_dir="/tmp/tickets",
            hang_seconds=2.5,
            probability=0.25,
            seed=7,
        )
        chaos_env(monkeypatch, schedule, inner="scalar")
        assert FaultSchedule.from_env() == schedule
        assert os.environ["REPRO_CHAOS_INNER"] == "scalar"

    def test_tickets_are_consumed_exactly_once(self, tmp_path):
        schedule = FaultSchedule(
            mode="raise", faults=2, ticket_dir=str(tmp_path / "t")
        )
        assert schedule.arm() == 2
        assert schedule.tickets_left() == 2
        assert schedule._claim_ticket()
        assert schedule._claim_ticket()
        assert not schedule._claim_ticket()
        assert schedule.tickets_left() == 0

    def test_seeded_targeting_is_deterministic(self, strongarm):
        schedule = FaultSchedule(probability=0.5, seed=3)
        jobs = [conditions_job(strongarm, rows=2, seed=s) for s in range(32)]
        draws = [schedule.eligible(job) for job in jobs]
        assert draws == [schedule.eligible(job) for job in jobs]
        assert any(draws) and not all(draws)  # actually splits the jobs

    def test_probability_none_targets_everything(self, strongarm):
        schedule = FaultSchedule()
        assert schedule.eligible(conditions_job(strongarm, rows=2))


class TestChaosBackendInProcess:
    def test_flaky_then_succeed_with_retries(
        self, strongarm, service_factory, monkeypatch
    ):
        """The flaky-engine schedule: two injected failures, then clean.
        A 3-attempt policy rides them out; metrics and budget are
        bit-identical to the fault-free run."""
        chaos_env(monkeypatch, FaultSchedule(mode="raise", faults=2))
        service = service_factory(
            strongarm,
            backend="chaos",
            retry=FAST_RETRY,
            idempotent_charges=True,
        )
        job = conditions_job(strongarm, rows=6)
        result = service.run(job)
        reference = BatchedMNABackend().evaluate(strongarm, job)
        assert_metrics_equal(strongarm, result.metrics, reference)
        assert service.budget.total == 6  # charged exactly once
        assert service.backend.injected == 2

    def test_nan_block_schedule_retries_and_recovers(
        self, strongarm, service_factory, monkeypatch
    ):
        chaos_env(monkeypatch, FaultSchedule(mode="nan", faults=1))
        service = service_factory(
            strongarm, backend="chaos", retry=FAST_RETRY
        )
        job = conditions_job(strongarm, rows=5)
        result = service.run(job)
        reference = BatchedMNABackend().evaluate(strongarm, job)
        assert_metrics_equal(strongarm, result.metrics, reference)
        assert np.isfinite(
            result.metrics[strongarm.metric_names[0]]
        ).all()
        assert service.budget.total == 5

    def test_without_policy_chaos_fault_surfaces_refunded(
        self, strongarm, service_factory, monkeypatch
    ):
        chaos_env(monkeypatch, FaultSchedule(mode="raise", faults=1))
        service = service_factory(strongarm, backend="chaos")
        with pytest.raises(ChaosFault):
            service.run(conditions_job(strongarm, rows=4))
        assert service.budget.total == 0

    def test_retries_exhausted_surfaces_last_fault(
        self, strongarm, service_factory, monkeypatch
    ):
        chaos_env(monkeypatch, FaultSchedule(mode="raise", faults=None))
        service = service_factory(
            strongarm, backend="chaos", retry=FAST_RETRY
        )
        with pytest.raises(ChaosFault):
            service.run(conditions_job(strongarm, rows=4))
        assert service.budget.total == 0  # every attempt refunded

    def test_kill_mode_downgrades_to_raise_in_main_process(
        self, strongarm, monkeypatch
    ):
        """A mis-scripted kill schedule must never take down the driver
        (or the test runner): outside a pool worker it raises instead."""
        chaos_env(monkeypatch, FaultSchedule(mode="kill", faults=1))
        backend = FaultInjectingBackend()
        with pytest.raises(ChaosFault, match="kill"):
            backend.evaluate(strongarm, conditions_job(strongarm, rows=2))

    def test_async_resolution_retries_identically(
        self, strongarm, service_factory, monkeypatch
    ):
        """submit()/result() runs the same retry accounting as run()."""
        jobs = [conditions_job(strongarm, rows=4, seed=s) for s in range(3)]
        chaos_env(monkeypatch, FaultSchedule(mode="raise", faults=2))
        chaotic = service_factory(
            strongarm,
            backend="chaos",
            retry=FAST_RETRY,
            idempotent_charges=True,
        )
        futures = [chaotic.submit(job) for job in jobs]
        chaos_results = [future.result() for future in futures]

        clean = service_factory(strongarm, idempotent_charges=True)
        for job, chaos_result in zip(jobs, chaos_results):
            assert_metrics_equal(
                strongarm, chaos_result.metrics, clean.run(job).metrics
            )
        assert chaotic.budget.snapshot() == clean.budget.snapshot()


# ----------------------------------------------------------------------
# Self-healing WorkerPool
# ----------------------------------------------------------------------
class TestWorkerPoolHealing:
    def test_heal_rebuilds_a_working_executor(self, strongarm):
        with WorkerPool(
            2, circuit_names=(strongarm.name,), backend_names=("batched",)
        ) as pool:
            job = conditions_job(strongarm, rows=8)
            before = dispatch_job_sharded(
                strongarm, BatchedMNABackend(), job, pool
            ).result()
            assert pool.heal(reason="test")
            assert pool.heals == 1
            assert pool.generation == 1
            assert not pool.poisoned
            after = dispatch_job_sharded(
                strongarm, BatchedMNABackend(), job, pool
            ).result()
            assert_metrics_equal(strongarm, after, before)

    def test_heal_cap_poisons_the_pool(self, strongarm):
        with WorkerPool(2, max_heals=0, eager=False) as pool:
            with pytest.warns(RuntimeWarning, match="poisoned"):
                assert not pool.heal(reason="test")
            assert pool.poisoned
            # Dispatchers refuse a poisoned pool: in-process fallback.
            assert (
                dispatch_job_sharded(
                    strongarm,
                    BatchedMNABackend(),
                    conditions_job(strongarm, rows=8),
                    pool,
                )
                is None
            )
            with pytest.raises(RuntimeError, match="poisoned"):
                pool.submit(sorted, ())

    def test_heal_broken_is_generation_guarded(self, strongarm):
        with WorkerPool(2, eager=False) as pool:
            assert pool.heal_broken(0)  # current generation: heals
            assert pool.heals == 1
            # A sibling shard reporting the same dead generation is a
            # no-op: the rebuild already happened.
            assert pool.heal_broken(0)
            assert pool.heals == 1

    def test_worker_death_mid_shard_heals_and_redispatches(
        self, strongarm, service_factory, monkeypatch, tmp_path
    ):
        """THE worker-death acceptance test: a chaos ``kill`` schedule
        makes one real pool worker ``os._exit`` mid-shard.  The pool
        heals, only the lost shards re-dispatch (one fleet-wide ticket =
        one death), and the final metrics and budget are bit-identical to
        the fault-free run."""
        schedule = FaultSchedule(
            mode="kill", faults=1, ticket_dir=str(tmp_path / "tickets")
        )
        chaos_env(monkeypatch, schedule)
        schedule.arm()
        service = service_factory(
            strongarm,
            backend="chaos",
            workers=3,
            retry=FAST_RETRY,
            idempotent_charges=True,
        )
        job = conditions_job(strongarm, rows=12)
        result = service.run(job)

        reference = BatchedMNABackend().evaluate(strongarm, job)
        assert_metrics_equal(strongarm, result.metrics, reference)
        assert service.budget.total == 12
        assert schedule.tickets_left() == 0  # the fault really fired
        assert service.pool.heals >= 1  # the pool really died and healed
        assert not service.pool.poisoned
        # The healed pool keeps serving later jobs.
        second = conditions_job(strongarm, rows=12, seed=1)
        assert_metrics_equal(
            strongarm,
            service.run(second).metrics,
            BatchedMNABackend().evaluate(strongarm, second),
        )
        assert service.budget.total == 24


# ----------------------------------------------------------------------
# Shard watchdog
# ----------------------------------------------------------------------
class TestShardWatchdog:
    def test_deadline_scales_with_rows_and_floors(self):
        watchdog = ShardWatchdog(seconds_per_row=2.0, floor=5.0)
        assert watchdog.deadline(1) == 5.0
        assert watchdog.deadline(100) == 200.0

    def test_hung_shard_degrades_and_retry_recovers(
        self, strongarm, service_factory, monkeypatch, tmp_path
    ):
        """A chaos ``hang`` schedule wedges one shard far past its
        watchdog deadline.  The shard degrades to FAILURE_NAN instead of
        wedging the run, the hung worker is reclaimed by a heal, and the
        retry re-simulates the job — final metrics and budget identical
        to fault-free."""
        schedule = FaultSchedule(
            mode="hang",
            faults=1,
            hang_seconds=120.0,
            ticket_dir=str(tmp_path / "tickets"),
        )
        chaos_env(monkeypatch, schedule)
        schedule.arm()
        retry = RetryPolicy(
            max_attempts=3,
            backoff=0.0,
            watchdog_seconds_per_row=0.2,
            watchdog_floor=1.0,
        )
        service = service_factory(
            strongarm,
            backend="chaos",
            workers=3,
            retry=retry,
            idempotent_charges=True,
        )
        job = conditions_job(strongarm, rows=12)
        start = time.monotonic()
        with pytest.warns(RuntimeWarning, match="watchdog"):
            result = service.run(job)
        elapsed = time.monotonic() - start
        assert elapsed < 60.0  # nowhere near the 120s hang
        reference = BatchedMNABackend().evaluate(strongarm, job)
        assert_metrics_equal(strongarm, result.metrics, reference)
        assert service.budget.total == 12
        assert service.pool.heals >= 1


# ----------------------------------------------------------------------
# run_experiment chaos equivalence (the acceptance criterion)
# ----------------------------------------------------------------------
def _fast_config(**kwargs) -> ExperimentConfig:
    base = dict(
        circuit="sal",
        method="C",
        algorithm="random_search",
        seeds=(0,),
        max_iterations=2,
        initial_samples=4,
        verification_samples=1,
    )
    base.update(kwargs)
    return ExperimentConfig(**base)


def _comparable(report) -> list:
    return [run.to_dict() for run in report.runs]


class TestChaosEquivalence:
    @pytest.fixture()
    def baseline(self):
        return run_experiment(_fast_config())

    def test_flaky_engine_equivalence(self, baseline, monkeypatch):
        # faults < max_attempts: even back-to-back faults on one job stay
        # inside its retry budget.
        chaos_env(monkeypatch, FaultSchedule(mode="raise", faults=2))
        chaotic = run_experiment(
            _fast_config(
                backend="chaos", retry={"max_attempts": 3, "backoff": 0.0}
            )
        )
        assert _comparable(chaotic) == _comparable(baseline)

    def test_nan_block_equivalence(self, baseline, monkeypatch):
        chaos_env(monkeypatch, FaultSchedule(mode="nan", faults=2))
        chaotic = run_experiment(
            _fast_config(
                backend="chaos", retry={"max_attempts": 3, "backoff": 0.0}
            )
        )
        assert _comparable(chaotic) == _comparable(baseline)

    def test_worker_kill_equivalence(self, monkeypatch, tmp_path):
        """Sharded fault-free vs sharded chaos-kill: same report."""
        baseline = run_experiment(_fast_config(workers=3))
        schedule = FaultSchedule(
            mode="kill", faults=1, ticket_dir=str(tmp_path / "tickets")
        )
        chaos_env(monkeypatch, schedule)
        schedule.arm()
        chaotic = run_experiment(
            _fast_config(
                backend="chaos",
                workers=3,
                retry={"max_attempts": 3, "backoff": 0.0},
            )
        )
        assert schedule.tickets_left() == 0
        assert _comparable(chaotic) == _comparable(baseline)


# ----------------------------------------------------------------------
# Checkpoint / resume
# ----------------------------------------------------------------------
class TestCheckpointResume:
    def test_fingerprint_ignores_seeds_and_checkpoint_dir(self):
        config = _fast_config(checkpoint_dir="/tmp/a")
        same = _fast_config(seeds=(5, 6), checkpoint_dir="/tmp/b")
        assert api._config_fingerprint(config) == api._config_fingerprint(
            same
        )
        changed = _fast_config(max_iterations=3)
        assert api._config_fingerprint(config) != api._config_fingerprint(
            changed
        )

    def test_interrupted_sweep_resumes_with_zero_resimulation(
        self, tmp_path, monkeypatch
    ):
        config = _fast_config(seeds=(0, 1), checkpoint_dir=str(tmp_path))
        first = run_experiment(config)

        calls = []
        original = api._run_seed

        def counting(config, seed):
            calls.append(seed)
            return original(config, seed)

        monkeypatch.setattr(api, "_run_seed", counting)
        resumed = run_experiment(config)
        assert calls == []  # zero re-simulation of completed seeds
        assert _comparable(resumed) == _comparable(first)
        # Downstream aggregation still works off rehydrated results.
        assert len(resumed.results) == 2
        assert resumed.results[0].simulations == first.results[0].simulations

        # Widening the sweep only simulates the new seed.
        wider = run_experiment(config.with_overrides(seeds=(0, 1, 2)))
        assert calls == [2]
        assert _comparable(wider)[:2] == _comparable(first)

    def test_config_change_invalidates_checkpoints(
        self, tmp_path, monkeypatch
    ):
        config = _fast_config(checkpoint_dir=str(tmp_path))
        run_experiment(config)
        calls = []
        original = api._run_seed

        def counting(config, seed):
            calls.append(seed)
            return original(config, seed)

        monkeypatch.setattr(api, "_run_seed", counting)
        run_experiment(config.with_overrides(max_iterations=3))
        assert calls == [0]  # fingerprint mismatch: re-simulated

    def test_corrupt_checkpoint_reruns_the_seed(self, tmp_path, monkeypatch):
        config = _fast_config(checkpoint_dir=str(tmp_path))
        first = run_experiment(config)
        path = api._checkpoint_path(
            str(tmp_path), api._config_fingerprint(config), 0
        )
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("{corrupt")
        calls = []
        original = api._run_seed

        def counting(config, seed):
            calls.append(seed)
            return original(config, seed)

        monkeypatch.setattr(api, "_run_seed", counting)
        again = run_experiment(config)
        assert calls == [0]
        assert _comparable(again) == _comparable(first)

    def test_run_report_result_round_trip(self):
        report = run_experiment(_fast_config())
        run = report.runs[0]
        rehydrated = run.to_result()
        assert api.RunReport.from_result(run.seed, rehydrated).to_dict() == (
            run.to_dict()
        )


# ----------------------------------------------------------------------
# Spill-store maintenance (the `repro cache` CLI)
# ----------------------------------------------------------------------
class TestSpillStoreMaintenance:
    def _populated_store(self, circuit, tmp_path, jobs=4):
        spill_dir = str(tmp_path / "store")
        cache = CachingBackend(BatchedMNABackend(), spill_dir=spill_dir)
        for seed in range(jobs):
            job = conditions_job(circuit, rows=3, seed=seed)
            cache.run(circuit, job)
        return spill_dir

    def test_stats_counts_entries_and_bytes(self, strongarm, tmp_path):
        spill_dir = self._populated_store(strongarm, tmp_path, jobs=4)
        stats = spill_store_stats(spill_dir)
        assert stats["entries"] == 4
        assert stats["total_bytes"] > 0
        assert stats["oldest_mtime"] <= stats["newest_mtime"]
        assert spill_store_stats(str(tmp_path / "missing"))["entries"] == 0

    def test_prune_evicts_oldest_first(self, strongarm, tmp_path):
        spill_dir = self._populated_store(strongarm, tmp_path, jobs=4)
        records = sorted(
            (os.stat(path).st_mtime, path)
            for path in [
                os.path.join(root, name)
                for root, _dirs, names in os.walk(spill_dir)
                for name in names
            ]
        )
        # Make the eviction order unambiguous.
        for offset, (_mtime, path) in enumerate(records):
            os.utime(path, (offset, offset))
        survivor_budget = sum(
            os.stat(path).st_size for _mtime, path in records[-2:]
        )
        outcome = prune_spill_store(spill_dir, survivor_budget)
        assert outcome["removed_files"] == 2
        assert outcome["remaining_files"] == 2
        remaining = {
            name
            for _root, _dirs, names in os.walk(spill_dir)
            for name in names
        }
        newest = {os.path.basename(path) for _mtime, path in records[-2:]}
        assert remaining == newest

    def test_clear_empties_the_store(self, strongarm, tmp_path):
        spill_dir = self._populated_store(strongarm, tmp_path, jobs=3)
        assert clear_spill_store(spill_dir) == 3
        assert spill_store_stats(spill_dir)["entries"] == 0
        assert clear_spill_store(spill_dir) == 0  # idempotent

    def test_cache_cli_subcommand(self, strongarm, tmp_path):
        spill_dir = self._populated_store(strongarm, tmp_path, jobs=2)
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
        completed = subprocess.run(
            [sys.executable, "-m", "repro", "cache", "stats", spill_dir],
            capture_output=True,
            text=True,
            env=env,
            timeout=120,
        )
        assert completed.returncode == 0, completed.stderr
        stats = json.loads(completed.stdout)
        assert stats["entries"] == 2
        completed = subprocess.run(
            [sys.executable, "-m", "repro", "cache", "clear", spill_dir],
            capture_output=True,
            text=True,
            env=env,
            timeout=120,
        )
        assert completed.returncode == 0, completed.stderr
        assert json.loads(completed.stdout)["removed_files"] == 2


# ----------------------------------------------------------------------
# NgspiceRunner process-group kill
# ----------------------------------------------------------------------
@pytest.mark.skipif(os.name != "posix", reason="process groups are POSIX")
class TestNgspiceProcessGroupKill:
    def test_timeout_kills_the_whole_process_group(self, tmp_path):
        """A hung engine that spawned its own child: the timeout must
        reap *both* — the old ``subprocess.run`` path killed only the
        direct child and leaked the grandchild."""
        pid_file = tmp_path / "child.pid"
        engine = tmp_path / "hanging_engine.py"
        engine.write_text(
            "#!/usr/bin/env python3\n"
            "import subprocess, sys, time\n"
            f"child = subprocess.Popen(['sleep', '120'])\n"
            f"open({str(pid_file)!r}, 'w').write(str(child.pid))\n"
            "time.sleep(120)\n"
        )
        engine.chmod(0o755)
        wrapper = tmp_path / "engine.sh"
        wrapper.write_text(
            f"#!/bin/sh\nexec {sys.executable} {engine} \"$@\"\n"
        )
        wrapper.chmod(0o755)
        runner = NgspiceRunner(executable=str(wrapper), timeout=1.0)

        run = runner.run_deck("* dummy deck\n.end\n", tag="hang")
        assert run.timed_out
        assert run.returncode is None

        assert pid_file.exists(), "engine never started its child"
        child_pid = int(pid_file.read_text())
        # SIGKILL to the group is immediate; allow a short reaping grace.
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            try:
                os.kill(child_pid, 0)
            except ProcessLookupError:
                break  # the grandchild is gone: the group kill worked
            time.sleep(0.05)
        else:
            os.kill(child_pid, 9)  # clean up before failing
            pytest.fail("grandchild survived the process-group kill")
