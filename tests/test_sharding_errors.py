"""Error paths of the sharded dispatcher and the service's budget rollback.

The service charges a job's full cost *before* dispatch (so ``max_simulations``
aborts without spending work); before this suite a backend failure — a worker
raising mid-shard, an external simulator crashing in strict mode — left that
charge in place even though no metrics were ever produced, and with
``idempotent_charges`` the consumed job key made the eventual successful retry
run *uncounted*.  :meth:`SimulationService.run` now refunds the charge and
releases the key on failure; these tests pin that down in-process and through
a real process pool (one worker failing mid-shard while its siblings
succeed, injected via the fake simulator's one-shot failure marker).
"""

import numpy as np
import pytest

from repro.simulation import (
    BatchedMNABackend,
    NgspiceError,
    SimJob,
    SimulationBudget,
    SimulationPhase,
)
from repro.simulation.ngspice import STRICT_ENV
from repro.variation.corners import typical_corner


class ExplodingBackend(BatchedMNABackend):
    """Evaluates normally until armed, then raises mid-evaluation."""

    def __init__(self):
        self.fail_next = False
        self.calls = 0

    def evaluate(self, circuit, job):
        self.calls += 1
        if self.fail_next:
            self.fail_next = False
            raise RuntimeError("worker exploded mid-shard")
        return super().evaluate(circuit, job)


def conditions_job(circuit, rows=10, seed=0):
    rng = np.random.default_rng(seed)
    return SimJob.conditions(
        circuit.name,
        rng.uniform(0.2, 0.8, circuit.dimension),
        (typical_corner(),),
        rng.standard_normal((rows, circuit.mismatch_dimension)),
    )


# ----------------------------------------------------------------------
# Budget.refund primitive
# ----------------------------------------------------------------------
class TestBudgetRefund:
    def test_refund_rolls_back_count_and_key(self):
        budget = SimulationBudget()
        budget.charge(SimulationPhase.OPTIMIZATION, 5, job_id="job-a")
        budget.refund(SimulationPhase.OPTIMIZATION, 5, job_id="job-a")
        assert budget.total == 0
        assert "job-a" not in budget.charged_jobs
        # The retry charges like a first attempt.
        assert budget.charge(SimulationPhase.OPTIMIZATION, 5, job_id="job-a")
        assert budget.total == 5

    def test_refund_cannot_go_negative(self):
        budget = SimulationBudget()
        budget.charge(SimulationPhase.VERIFICATION, 2)
        with pytest.raises(ValueError, match="exceeds"):
            budget.refund(SimulationPhase.VERIFICATION, 3)
        assert budget.total == 2  # a rejected refund leaves counts intact

    def test_refund_rejects_negative_count(self):
        budget = SimulationBudget()
        with pytest.raises(ValueError, match="non-negative"):
            budget.refund(SimulationPhase.OPTIMIZATION, -1)


# ----------------------------------------------------------------------
# In-process failure: the service refunds the charge
# ----------------------------------------------------------------------
class TestServiceRollback:
    def test_failure_surfaces_and_budget_uncharged(
        self, strongarm, service_factory
    ):
        backend = ExplodingBackend()
        backend.fail_next = True
        service = service_factory(strongarm, backend=backend)
        job = conditions_job(strongarm)
        with pytest.raises(RuntimeError, match="mid-shard"):
            service.run(job)
        assert service.budget.total == 0
        assert backend.calls == 1

    def test_retry_after_failure_charges_exactly_once(
        self, strongarm, service_factory
    ):
        backend = ExplodingBackend()
        backend.fail_next = True
        service = service_factory(
            strongarm, backend=backend, idempotent_charges=True
        )
        job = conditions_job(strongarm, rows=6)
        with pytest.raises(RuntimeError):
            service.run(job)
        assert service.budget.total == 0  # key released with the refund
        result = service.run(job)  # the retry is a first attempt again
        assert service.budget.total == 6
        assert np.isfinite(result.metrics[strongarm.metric_names[0]]).all()
        # A genuine duplicate after success is still swallowed by the key.
        service.run(job)
        assert service.budget.total == 6

    def test_failure_never_poisons_the_cache(self, strongarm, service_factory):
        backend = ExplodingBackend()
        backend.fail_next = True
        service = service_factory(strongarm, backend=backend, cache=True)
        job = conditions_job(strongarm, rows=4)
        with pytest.raises(RuntimeError):
            service.run(job)
        assert len(service.cache) == 0
        result = service.run(job)
        assert not result.cached
        assert service.budget.total == 4


# ----------------------------------------------------------------------
# Real pool: one worker raising mid-shard
# ----------------------------------------------------------------------
class TestWorkerFailureMidShard:
    def test_worker_exception_surfaces_and_budget_uncharged(
        self, strongarm, fake_ngspice, service_factory, tmp_path, monkeypatch
    ):
        """One of several real worker processes fails its shard (one-shot
        marker consumed by whichever worker gets there first, in strict
        mode); the original NgspiceError surfaces in the parent, the whole
        job's charge is refunded, and the retry — now clean — succeeds and
        charges exactly once through the idempotent path."""
        marker = tmp_path / "fail-once"
        marker.write_text("arm")
        monkeypatch.setenv("FAKE_NGSPICE_FAIL_ONCE", str(marker))
        monkeypatch.setenv(STRICT_ENV, "1")
        # workers=5 forces a pool forked *after* the env above is set
        # (pools are cached per worker count and snapshot the environment);
        # no other test uses a 5-worker pool.
        service = service_factory(
            strongarm, backend="ngspice", workers=5, idempotent_charges=True
        )
        job = conditions_job(strongarm, rows=10)

        with pytest.raises(NgspiceError, match="exit 3"):
            service.run(job)
        assert service.budget.total == 0
        assert not marker.exists()  # the failing worker consumed it

        result = service.run(job)  # retry: all shards succeed
        assert service.budget.total == 10
        reference = BatchedMNABackend().evaluate(strongarm, job)
        for name in strongarm.metric_names:
            np.testing.assert_allclose(
                result.metrics[name], reference[name], rtol=1e-12, atol=0
            )
