"""Tests of the remote simulation fabric (PR 7).

Covers, roughly client-outward:

* the frame protocol — round trips, and a fuzz battery proving every
  malformed input (truncated, garbage, oversized, wrong-version,
  corrupted) dies with a clean typed :class:`ProtocolError`, never a
  hang or a partial result, on both the client and server side;
* the ``repro serve`` daemon — bit-identical execution, duplicate
  coalescing, lease expiry with result retention, surviving hostile
  connections;
* the ``RemoteBackend`` client — endpoint parsing, circuit breakers
  (open / half-open / recovery), retries under injected network chaos
  (drop / delay / truncate / duplicate frames), and graceful
  degradation to the local fallback;
* the end-to-end acceptance property: a seeded sizing run over the
  fabric — including one whose server is killed mid-run while frames
  drop — produces bit-identical reports to the in-process backend;
* chaos-harness hygiene: ``FaultSchedule.disarm()`` and the
  ``repro cache`` CLI's zero-exit behaviour on missing stores.

A ``stress``-marked soak (excluded from tier-1) hammers the fabric with
probabilistic chaos across many jobs.
"""

from __future__ import annotations

import json
import os
import re
import signal
import socket
import struct
import subprocess
import sys
import threading
import time

import numpy as np
import pytest

from repro.circuits.registry import get_circuit
from repro.simulation.budget import SimulationPhase
from repro.simulation.faults import (
    FaultSchedule,
    NetworkFaultSchedule,
    install_network_chaos,
)
from repro.simulation.protocol import (
    ConnectionClosed,
    FrameType,
    HEADER_BYTES,
    MAGIC,
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    RemoteError,
    dumps_payload,
    encode_frame,
    loads_metrics,
    read_frame_from_bytes,
    request_id_bytes,
)
from repro.simulation.remote import (
    ENDPOINTS_ENV,
    CircuitBreaker,
    RemoteBackend,
    parse_endpoints,
)
from repro.simulation.server import SimulationServer
from repro.simulation.service import (
    BACKENDS,
    SimJob,
    SimulationBackend,
    SimulationService,
    resolve_backend,
)
from repro.variation.corners import typical_corner

TESTS_DIR = os.path.dirname(os.path.abspath(__file__))
SRC_DIR = os.path.join(os.path.dirname(TESTS_DIR), "src")


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------
def conditions_job(circuit, rows=8, seed=0):
    rng = np.random.default_rng(seed)
    return SimJob.conditions(
        circuit.name,
        rng.uniform(0.2, 0.8, circuit.dimension),
        (typical_corner(),),
        rng.standard_normal((rows, circuit.mismatch_dimension)),
        phase=SimulationPhase.OPTIMIZATION,
    )


def assert_metrics_equal(circuit, metrics, reference):
    for name in circuit.metric_names:
        np.testing.assert_array_equal(metrics[name], reference[name])


class _SleepyBackend(SimulationBackend):
    """Terminal backend that sleeps before delegating — long enough for
    heartbeat/lease machinery to engage, short enough for tests."""

    name = "sleepytest"
    sleep_seconds = 0.8

    def __init__(self):
        self.inner = resolve_backend("batched")

    def evaluate(self, circuit, job):
        time.sleep(self.sleep_seconds)
        return self.inner.evaluate(circuit, job)


class _BoomBackend(SimulationBackend):
    """Terminal backend whose every evaluation is a deployment error."""

    name = "boomtest"

    def evaluate(self, circuit, job):
        raise RuntimeError("boom: misconfigured server backend")


@pytest.fixture()
def test_backends():
    """Register the test-only terminal backends for the fixture's scope."""
    BACKENDS[_SleepyBackend.name] = _SleepyBackend
    BACKENDS[_BoomBackend.name] = _BoomBackend
    yield
    BACKENDS.pop(_SleepyBackend.name, None)
    BACKENDS.pop(_BoomBackend.name, None)


@pytest.fixture(autouse=True)
def no_leaked_network_chaos():
    """Every test leaves the process without an armed network plan."""
    yield
    install_network_chaos(None)


@pytest.fixture()
def server():
    with SimulationServer(heartbeat_interval=0.1) as srv:
        yield srv


def remote_for(server, **kwargs):
    kwargs.setdefault("attempts", 3)
    kwargs.setdefault("connect_timeout", 1.0)
    kwargs.setdefault("activity_timeout", 5.0)
    return RemoteBackend(endpoints=server.endpoint, **kwargs)


# ----------------------------------------------------------------------
# Frame protocol: round trips
# ----------------------------------------------------------------------
class TestProtocolRoundTrip:
    def test_frame_round_trip(self):
        request_id = bytes(range(32))
        payload = dumps_payload({"hello": [1.0, 2.0]})
        frame = encode_frame(FrameType.RESULT, payload, request_id)
        kind, rid, body = read_frame_from_bytes(frame)
        assert kind == FrameType.RESULT
        assert rid == request_id
        assert body == payload

    def test_empty_payload_frame(self):
        frame = encode_frame(FrameType.HEARTBEAT)
        kind, rid, body = read_frame_from_bytes(frame)
        assert kind == FrameType.HEARTBEAT
        assert body == b""

    def test_request_id_bytes_round_trip(self, strongarm):
        job = conditions_job(strongarm)
        assert request_id_bytes(job.job_id).hex() == job.job_id

    def test_request_id_bytes_rejects_garbage(self):
        with pytest.raises(ProtocolError):
            request_id_bytes("not-hex")
        with pytest.raises(ProtocolError):
            request_id_bytes("abcd")  # wrong length

    def test_bad_request_id_length_refused_at_encode(self):
        with pytest.raises(ProtocolError, match="32 bytes"):
            encode_frame(FrameType.RESULT, b"x" * 10, b"y" * 31)

    def test_oversized_payload_refused_at_encode(self):
        with pytest.raises(ProtocolError, match="frame limit"):
            encode_frame(FrameType.RESULT, bytes(MAX_FRAME_BYTES + 1))

    def test_oversized_declared_length_refused_before_allocation(self):
        # Hand-craft a header whose length field claims 2 GiB; the parser
        # must die on the declared length, never attempt the read.
        header = struct.pack(
            "!4sHBBII32s",
            MAGIC,
            PROTOCOL_VERSION,
            int(FrameType.RESULT),
            0,
            2**31,
            0,
            b"\x00" * 32,
        )
        with pytest.raises(ProtocolError, match="exceeds"):
            read_frame_from_bytes(header)


# ----------------------------------------------------------------------
# Frame protocol: fuzz battery (satellite: protocol robustness)
# ----------------------------------------------------------------------
class TestProtocolFuzz:
    def _valid_frame(self):
        payload = dumps_payload({"metric": np.arange(4.0)})
        return encode_frame(FrameType.RESULT, payload, b"\x07" * 32)

    def test_every_truncation_is_a_typed_error(self):
        frame = self._valid_frame()
        for cut in range(len(frame)):
            with pytest.raises(ProtocolError):
                read_frame_from_bytes(frame[:cut])

    def test_garbage_bytes_are_typed_errors(self):
        rng = np.random.default_rng(1234)
        for size in (1, 7, HEADER_BYTES, HEADER_BYTES + 13, 500):
            garbage = rng.integers(0, 256, size, dtype=np.uint8).tobytes()
            with pytest.raises(ProtocolError):
                read_frame_from_bytes(garbage)

    def test_wrong_magic(self):
        frame = bytearray(self._valid_frame())
        frame[:4] = b"HTTP"
        with pytest.raises(ProtocolError, match="magic"):
            read_frame_from_bytes(bytes(frame))

    def test_wrong_version(self):
        payload = b""
        header = struct.pack(
            "!4sHBBII32s",
            MAGIC,
            PROTOCOL_VERSION + 1,
            int(FrameType.HEARTBEAT),
            0,
            0,
            0,
            b"\x00" * 32,
        )
        with pytest.raises(ProtocolError, match="version"):
            read_frame_from_bytes(header + payload)

    def test_unknown_frame_type(self):
        header = struct.pack(
            "!4sHBBII32s", MAGIC, PROTOCOL_VERSION, 250, 0, 0, 0, b"\x00" * 32
        )
        with pytest.raises(ProtocolError, match="frame type"):
            read_frame_from_bytes(header)

    def test_corrupted_payload_fails_checksum(self):
        frame = bytearray(self._valid_frame())
        frame[-1] ^= 0xFF
        with pytest.raises(ProtocolError, match="checksum"):
            read_frame_from_bytes(bytes(frame))

    def test_undecodable_payload_is_typed(self):
        frame = encode_frame(FrameType.RESULT, b"\x80\x04notpickle")
        _kind, _rid, payload = read_frame_from_bytes(frame)
        with pytest.raises(ProtocolError, match="undecodable"):
            loads_metrics(payload, 4, ("metric",))

    def test_result_validation_never_yields_partial_blocks(self, strongarm):
        batch = 4
        names = strongarm.metric_names
        good = {
            name: np.zeros(batch) for name in names
        }
        # Missing metric
        partial = dict(good)
        partial.pop(names[0])
        with pytest.raises(ProtocolError, match="do not match"):
            loads_metrics(dumps_payload(partial), batch, names)
        # Wrong shape
        short = dict(good)
        short[names[0]] = np.zeros(batch - 1)
        with pytest.raises(ProtocolError, match="shape"):
            loads_metrics(dumps_payload(short), batch, names)
        # Not a dict at all
        with pytest.raises(ProtocolError, match="metrics dict"):
            loads_metrics(dumps_payload([1, 2, 3]), batch, names)

    def test_empty_stream_is_connection_closed(self):
        with pytest.raises(ConnectionClosed):
            read_frame_from_bytes(b"")


# ----------------------------------------------------------------------
# Endpoint parsing and circuit breaker units
# ----------------------------------------------------------------------
class TestParseEndpoints:
    def test_parses_comma_separated(self):
        assert parse_endpoints("a:1,b:2, c:3 ,") == (
            ("a", 1),
            ("b", 2),
            ("c", 3),
        )

    def test_parses_sequence(self):
        assert parse_endpoints(["host:7741"]) == (("host", 7741),)

    def test_rejects_malformed(self):
        with pytest.raises(ValueError):
            parse_endpoints("nonsense")
        with pytest.raises(ValueError):
            parse_endpoints("host:notaport")


class TestCircuitBreaker:
    def test_opens_after_threshold_consecutive_failures(self):
        clock = [0.0]
        breaker = CircuitBreaker(3, 5.0, clock=lambda: clock[0])
        assert breaker.state == "closed"
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == "closed" and breaker.allows()
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allows()

    def test_success_resets_the_failure_streak(self):
        breaker = CircuitBreaker(2, 5.0)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_half_open_probe_and_recovery(self):
        clock = [0.0]
        breaker = CircuitBreaker(1, 5.0, clock=lambda: clock[0])
        breaker.record_failure()
        assert not breaker.allows()
        clock[0] = 5.1
        assert breaker.allows()  # the single half-open probe
        assert breaker.state == "half-open"
        assert not breaker.allows()  # no second concurrent probe
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allows()

    def test_failed_probe_reopens_for_a_full_reset(self):
        clock = [0.0]
        breaker = CircuitBreaker(1, 5.0, clock=lambda: clock[0])
        breaker.record_failure()
        clock[0] = 5.1
        assert breaker.allows()
        breaker.record_failure()  # probe failed
        assert breaker.state == "open"
        clock[0] = 10.0
        assert not breaker.allows()  # not yet a full reset after reopen
        clock[0] = 10.3
        assert breaker.allows()


# ----------------------------------------------------------------------
# Server behaviour
# ----------------------------------------------------------------------
class TestServer:
    def test_round_trip_bit_identical(self, strongarm, server):
        job = conditions_job(strongarm)
        remote = remote_for(server)
        reference = resolve_backend("batched").evaluate(strongarm, job)
        assert_metrics_equal(
            strongarm, remote.evaluate(strongarm, job), reference
        )
        assert remote.remote_evaluations == 1
        assert remote.fallback_used == 0

    def test_repeat_submission_hits_retention(self, strongarm, server):
        job = conditions_job(strongarm)
        remote = remote_for(server)
        first = remote.evaluate(strongarm, job)
        second = remote.evaluate(strongarm, job)
        assert_metrics_equal(strongarm, second, first)
        assert server.stats["executions"] == 1
        assert server.stats["retention_hits"] == 1

    def test_ping(self, server):
        remote = remote_for(server)
        assert remote.ping(server.address)

    def test_concurrent_duplicates_coalesce(self, strongarm, test_backends):
        with SimulationServer(
            backend="sleepytest", heartbeat_interval=0.1
        ) as server:
            job = conditions_job(strongarm)
            results = [None, None]

            def submit(slot):
                remote = remote_for(server)
                results[slot] = remote.evaluate(strongarm, job)

            threads = [
                threading.Thread(target=submit, args=(slot,))
                for slot in range(2)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30)
            assert server.stats["executions"] == 1
            assert server.stats["coalesced"] == 1
            assert_metrics_equal(strongarm, results[0], results[1])

    def test_lease_expires_for_silent_client_and_result_is_retained(
        self, strongarm, test_backends
    ):
        with SimulationServer(
            backend="sleepytest",
            heartbeat_interval=0.05,
            lease_seconds=0.3,
        ) as server:
            job = conditions_job(strongarm)
            # A hand-rolled client that submits, then never echoes a
            # heartbeat — the signature of a client that froze.
            sock = socket.create_connection(server.address, timeout=5.0)
            sock.sendall(
                encode_frame(
                    FrameType.REQUEST,
                    dumps_payload(job),
                    request_id_bytes(job.job_id),
                )
            )
            deadline = time.monotonic() + 10.0
            while (
                server.stats["lease_expiries"] == 0
                and time.monotonic() < deadline
            ):
                time.sleep(0.05)
            sock.close()
            assert server.stats["lease_expiries"] == 1
            # The abandoned execution still completes and is retained:
            # the reconnecting retry is a lookup, not a re-simulation.
            deadline = time.monotonic() + 10.0
            while not server._retained and time.monotonic() < deadline:
                time.sleep(0.05)
            assert server._retained
            remote = remote_for(server)
            reference = resolve_backend("batched").evaluate(strongarm, job)
            assert_metrics_equal(
                strongarm, remote.evaluate(strongarm, job), reference
            )
            assert server.stats["executions"] == 1
            assert server.stats["retention_hits"] == 1

    def test_survives_garbage_and_keeps_serving(self, strongarm, server):
        sock = socket.create_connection(server.address, timeout=5.0)
        sock.sendall(b"GET / HTTP/1.1\r\nHost: nope\r\n\r\n")
        sock.close()
        deadline = time.monotonic() + 5.0
        while (
            server.stats["protocol_errors"] == 0
            and time.monotonic() < deadline
        ):
            time.sleep(0.02)
        assert server.stats["protocol_errors"] >= 1
        # The daemon shrugged it off: real traffic still works.
        job = conditions_job(strongarm)
        remote = remote_for(server)
        reference = resolve_backend("batched").evaluate(strongarm, job)
        assert_metrics_equal(
            strongarm, remote.evaluate(strongarm, job), reference
        )

    def test_mismatched_request_id_is_rejected(self, strongarm, server):
        job = conditions_job(strongarm)
        sock = socket.create_connection(server.address, timeout=5.0)
        try:
            sock.sendall(
                encode_frame(
                    FrameType.REQUEST, dumps_payload(job), b"\x42" * 32
                )
            )
            from repro.simulation.protocol import recv_frame

            kind, _rid, payload = recv_frame(sock)
            assert kind == FrameType.ERROR
            from repro.simulation.protocol import loads_payload

            detail = loads_payload(payload)
            assert detail["kind"] == "protocol"
            assert "content hash" in detail["message"]
        finally:
            sock.close()
        assert server.stats["executions"] == 0

    def test_server_deployment_error_raises_client_side(
        self, strongarm, test_backends
    ):
        with SimulationServer(
            backend="boomtest", heartbeat_interval=0.1
        ) as server:
            remote = remote_for(server, attempts=1)
            with pytest.raises(RemoteError) as excinfo:
                remote.evaluate(strongarm, conditions_job(strongarm))
            assert excinfo.value.kind == "deployment"
            assert remote.fallback_used == 0


# ----------------------------------------------------------------------
# RemoteBackend: degradation and recovery
# ----------------------------------------------------------------------
class TestDegradeToLocal:
    def test_connection_refused_degrades_bit_identically(self, strongarm):
        # Point at a closed port: every attempt is refused, the breaker
        # opens, and the job runs on the local fallback — same numbers.
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            dead_port = probe.getsockname()[1]
        remote = RemoteBackend(
            endpoints=f"127.0.0.1:{dead_port}",
            attempts=2,
            connect_timeout=0.25,
            breaker_threshold=2,
        )
        job = conditions_job(strongarm)
        reference = resolve_backend("batched").evaluate(strongarm, job)
        assert_metrics_equal(
            strongarm, remote.evaluate(strongarm, job), reference
        )
        assert remote.fallback_used == 1
        assert remote.remote_evaluations == 0
        breaker = remote.breakers[("127.0.0.1", dead_port)]
        assert breaker.state == "open"
        # With the breaker open the next job skips the endpoint entirely
        # (no connect timeout paid) and goes straight to the fallback.
        started = time.monotonic()
        remote.evaluate(strongarm, job)
        assert remote.fallback_used == 2
        assert time.monotonic() - started < 2.0

    def test_fleet_recovery_through_half_open_probe(self, strongarm):
        job = conditions_job(strongarm)
        first = SimulationServer(heartbeat_interval=0.1).start()
        host, port = first.address
        first.stop()
        remote = RemoteBackend(
            endpoints=f"{host}:{port}",
            attempts=1,
            connect_timeout=0.25,
            breaker_threshold=1,
            breaker_reset_seconds=0.2,
        )
        remote.evaluate(strongarm, job)  # fleet down: degrade
        assert remote.fallback_used == 1
        assert remote.breakers[(host, port)].state == "open"
        # The fleet comes back on the same port; after the reset window
        # the half-open probe finds it and the breaker closes again.
        with SimulationServer(port=port, heartbeat_interval=0.1):
            time.sleep(0.25)
            reference = resolve_backend("batched").evaluate(strongarm, job)
            assert_metrics_equal(
                strongarm, remote.evaluate(strongarm, job), reference
            )
            assert remote.remote_evaluations == 1
            assert remote.breakers[(host, port)].state == "closed"

    def test_env_configured_backend_is_worker_reconstructible(
        self, monkeypatch, server
    ):
        monkeypatch.setenv(ENDPOINTS_ENV, server.endpoint)
        assert RemoteBackend().worker_reconstructible
        assert not RemoteBackend(endpoints=server.endpoint).worker_reconstructible

    def test_no_endpoints_is_a_deployment_error(self, monkeypatch):
        monkeypatch.delenv(ENDPOINTS_ENV, raising=False)
        with pytest.raises(ValueError, match="endpoint"):
            RemoteBackend()


# ----------------------------------------------------------------------
# Network chaos (drop / delay / truncate / duplicate)
# ----------------------------------------------------------------------
class TestNetworkChaos:
    @pytest.mark.parametrize("mode", ["drop", "truncate", "delay", "duplicate"])
    def test_single_fault_then_success(
        self, strongarm, server, tmp_path, mode
    ):
        schedule = NetworkFaultSchedule(
            mode=mode,
            faults=1,
            ticket_dir=str(tmp_path / "net-tickets"),
            delay_seconds=0.02,
        )
        chaos = install_network_chaos(schedule)
        try:
            job = conditions_job(strongarm)
            remote = remote_for(server)
            reference = resolve_backend("batched").evaluate(strongarm, job)
            assert_metrics_equal(
                strongarm, remote.evaluate(strongarm, job), reference
            )
            assert chaos.injected >= 1
            assert schedule.tickets_left() == 0
        finally:
            schedule.disarm()
            install_network_chaos(None)

    def test_unlimited_drop_chaos_degrades_to_local(
        self, strongarm, server
    ):
        schedule = NetworkFaultSchedule(mode="drop", faults=None)
        install_network_chaos(schedule)
        try:
            job = conditions_job(strongarm)
            remote = remote_for(server, attempts=2)
            reference = resolve_backend("batched").evaluate(strongarm, job)
            assert_metrics_equal(
                strongarm, remote.evaluate(strongarm, job), reference
            )
            assert remote.fallback_used == 1
        finally:
            install_network_chaos(None)

    def test_env_round_trip(self, monkeypatch, tmp_path):
        schedule = NetworkFaultSchedule(
            mode="truncate",
            faults=3,
            ticket_dir=str(tmp_path),
            delay_seconds=0.125,
            probability=0.5,
            seed=7,
        )
        for key, value in schedule.to_env().items():
            monkeypatch.setenv(key, value)
        assert NetworkFaultSchedule.from_env() == schedule

    def test_seeded_eligibility_is_deterministic(self):
        schedule = NetworkFaultSchedule(probability=0.5, seed=3)
        request = "ab" * 32
        draws = {schedule.eligible(request) for _ in range(5)}
        assert len(draws) == 1


# ----------------------------------------------------------------------
# Ticket hygiene (satellite: FaultSchedule.disarm)
# ----------------------------------------------------------------------
class TestDisarm:
    def test_fault_schedule_disarm_removes_unclaimed_tickets(self, tmp_path):
        schedule = FaultSchedule(
            mode="raise", faults=5, ticket_dir=str(tmp_path / "tickets")
        )
        schedule.arm()
        assert schedule.tickets_left() == 5
        assert schedule._claim_ticket()
        assert schedule.disarm() == 4
        assert schedule.tickets_left() == 0
        leftover = [
            name
            for name in os.listdir(schedule.ticket_dir)
            if name.startswith("ticket-")
        ]
        assert leftover == []

    def test_network_schedule_disarm(self, tmp_path):
        schedule = NetworkFaultSchedule(
            mode="drop", faults=3, ticket_dir=str(tmp_path / "net")
        )
        schedule.arm()
        assert schedule.disarm() == 3
        assert schedule.tickets_left() == 0

    def test_disarm_without_ticket_dir_is_a_noop(self):
        assert FaultSchedule(mode="raise").disarm() == 0
        assert NetworkFaultSchedule(mode="drop").disarm() == 0


# ----------------------------------------------------------------------
# Service composition: accounting stays client-side
# ----------------------------------------------------------------------
class TestServiceComposition:
    def test_service_budget_trajectory_identical_to_batched(
        self, strongarm, server, service_factory
    ):
        jobs = [conditions_job(strongarm, rows=6, seed=s) for s in range(3)]
        local = service_factory(strongarm, backend="batched", cache=True)
        remote = service_factory(
            strongarm, backend=remote_for(server), cache=True
        )
        for job in jobs + jobs:  # repeats exercise the client-side cache
            result_local = local.run(job)
            result_remote = remote.run(job)
            assert_metrics_equal(
                strongarm, result_remote.metrics, result_local.metrics
            )
            assert result_remote.cached == result_local.cached
        assert remote.budget.snapshot() == local.budget.snapshot()
        # The cache absorbed the repeats client-side: the server only ever
        # saw each unique job once.
        assert server.stats["executions"] == len(jobs)


# ----------------------------------------------------------------------
# Acceptance: end-to-end sizing over the fabric, with and without chaos
# ----------------------------------------------------------------------
def _spawn_serve_daemon(extra_env=None, *extra_args):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    env.update(extra_env or {})
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--port",
            "0",
            "--heartbeat-interval",
            "0.2",
            *extra_args,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    line = proc.stdout.readline()
    match = re.search(r"listening on (\S+):(\d+)", line)
    if not match:
        proc.kill()
        raise RuntimeError(f"repro serve failed to start: {line!r}")
    return proc, f"{match.group(1)}:{match.group(2)}"


def _comparable_report(report):
    payload = report.to_dict()
    payload.pop("config", None)  # backend/endpoints legitimately differ
    return json.dumps(payload, sort_keys=True, default=str)


_ACCEPTANCE_CONFIG = dict(
    circuit="sal",
    method="C",
    seeds=(0,),
    max_iterations=3,
    initial_samples=6,
    optimization_samples=2,
    verification_samples=4,
)


class TestAcceptance:
    def test_remote_sizing_run_is_bit_identical(self):
        from repro import api

        reference = api.run_experiment(
            api.ExperimentConfig(**_ACCEPTANCE_CONFIG)
        )
        proc, endpoint = _spawn_serve_daemon()
        try:
            remote = api.run_experiment(
                api.ExperimentConfig(
                    **_ACCEPTANCE_CONFIG,
                    backend="remote",
                    endpoints=endpoint,
                )
            )
        finally:
            proc.send_signal(signal.SIGTERM)
            proc.wait(timeout=10)
        assert _comparable_report(remote) == _comparable_report(reference)

    def test_remote_sizing_run_survives_chaos_bit_identically(
        self, monkeypatch, tmp_path
    ):
        """The ISSUE's acceptance property: kill the server mid-run while
        frames drop/truncate — the breaker opens, the run degrades to the
        local fallback, and the report is unchanged to the last bit."""
        from repro import api

        reference = api.run_experiment(
            api.ExperimentConfig(**_ACCEPTANCE_CONFIG)
        )
        # Client-side frame chaos: two dropped + one truncated frame,
        # ticket-bounded so retries eventually get through while the
        # server is alive.
        schedule = NetworkFaultSchedule(
            mode="drop", faults=2, ticket_dir=str(tmp_path / "drop-tickets")
        )
        install_network_chaos(schedule)
        truncate = NetworkFaultSchedule(
            mode="truncate",
            faults=1,
            ticket_dir=str(tmp_path / "trunc-tickets"),
        )
        truncate.arm()
        # Fail fast so the degraded run completes promptly once the
        # server dies: short timeouts, one retry, a breaker that opens
        # after two failures and stays open for the rest of the run.
        monkeypatch.setenv("REPRO_REMOTE_ATTEMPTS", "2")
        monkeypatch.setenv("REPRO_REMOTE_CONNECT_TIMEOUT", "0.5")
        monkeypatch.setenv("REPRO_REMOTE_ACTIVITY_TIMEOUT", "3.0")
        monkeypatch.setenv("REPRO_REMOTE_BREAKER_THRESHOLD", "2")
        monkeypatch.setenv("REPRO_REMOTE_BREAKER_RESET", "600")
        proc, endpoint = _spawn_serve_daemon()
        killer = threading.Timer(1.5, proc.kill)  # SIGKILL mid-run
        killer.start()
        try:
            remote = api.run_experiment(
                api.ExperimentConfig(
                    **_ACCEPTANCE_CONFIG,
                    backend="remote",
                    endpoints=endpoint,
                )
            )
        finally:
            killer.cancel()
            proc.kill()
            proc.wait(timeout=10)
            schedule.disarm()
            truncate.disarm()
            install_network_chaos(None)
        assert _comparable_report(remote) == _comparable_report(reference)


# ----------------------------------------------------------------------
# `repro cache` CLI on a missing store (satellite: monitoring probe)
# ----------------------------------------------------------------------
class TestCacheCliMissingStore:
    def _run_cli(self, *args):
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_DIR + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        return subprocess.run(
            [sys.executable, "-m", "repro", "cache", *args],
            capture_output=True,
            text=True,
            env=env,
            timeout=120,
        )

    def test_stats_on_missing_dir_exits_zero_with_zeroed_report(
        self, tmp_path
    ):
        missing = str(tmp_path / "never-created")
        completed = self._run_cli("stats", missing)
        assert completed.returncode == 0, completed.stderr
        report = json.loads(completed.stdout)
        assert report["exists"] is False
        assert report["entries"] == 0
        assert report["total_bytes"] == 0
        assert report["payload_bytes"] == 0

    def test_prune_on_missing_dir_exits_zero(self, tmp_path):
        missing = str(tmp_path / "never-created")
        completed = self._run_cli("prune", missing, "--max-bytes", "1000")
        assert completed.returncode == 0, completed.stderr
        report = json.loads(completed.stdout)
        assert report["removed_files"] == 0

    def test_stats_on_empty_dir_exits_zero(self, tmp_path):
        empty = tmp_path / "empty-store"
        empty.mkdir()
        completed = self._run_cli("stats", str(empty))
        assert completed.returncode == 0, completed.stderr
        report = json.loads(completed.stdout)
        assert report["exists"] is True
        assert report["entries"] == 0


# ----------------------------------------------------------------------
# Compressed spill store (satellite: disk-cache compression)
# ----------------------------------------------------------------------
class TestCompressedSpill:
    def test_spills_are_zip_compressed_and_stats_report_payload(
        self, strongarm, tmp_path
    ):
        import zipfile

        from repro.simulation.service import (
            CachingBackend,
            spill_store_stats,
        )

        store = str(tmp_path / "store")
        cache = CachingBackend(resolve_backend("batched"), spill_dir=store)
        cache.evaluate(strongarm, conditions_job(strongarm, rows=32))
        paths = []
        for dirpath, _dirs, files in os.walk(store):
            paths.extend(
                os.path.join(dirpath, f) for f in files if f.endswith(".npz")
            )
        assert len(paths) == 1
        with zipfile.ZipFile(paths[0]) as archive:
            assert any(
                info.compress_type == zipfile.ZIP_DEFLATED
                for info in archive.infolist()
            )
        stats = spill_store_stats(store)
        assert stats["entries"] == 1
        assert stats["payload_bytes"] > 0
        assert stats["compression_ratio"] is not None

    def test_v1_uncompressed_records_still_load(self, strongarm, tmp_path):
        from repro.simulation.service import (
            CachingBackend,
            _CACHE_VERSION_KEY,
        )

        store = str(tmp_path / "store")
        writer = CachingBackend(resolve_backend("batched"), spill_dir=store)
        job = conditions_job(strongarm, rows=16)
        metrics = writer.evaluate(strongarm, job)
        # Rewrite the record exactly as the version-1 (uncompressed)
        # code did, then load it back through a fresh cache.
        path = writer._spill_path(job.job_id)
        payload = {
            name: np.asarray(values, dtype=float)
            for name, values in metrics.items()
        }
        payload[_CACHE_VERSION_KEY] = np.array(1)
        with open(path, "wb") as handle:
            np.savez(handle, **payload)
        reader = CachingBackend(resolve_backend("batched"), spill_dir=store)
        loaded = reader.lookup(job)
        assert loaded is not None
        assert reader.disk_hits == 1
        assert_metrics_equal(strongarm, loaded, metrics)

    def test_unknown_future_version_is_a_miss(self, strongarm, tmp_path):
        from repro.simulation.service import (
            CachingBackend,
            _CACHE_VERSION_KEY,
        )

        store = str(tmp_path / "store")
        writer = CachingBackend(resolve_backend("batched"), spill_dir=store)
        job = conditions_job(strongarm, rows=4)
        metrics = writer.evaluate(strongarm, job)
        path = writer._spill_path(job.job_id)
        payload = {
            name: np.asarray(values, dtype=float)
            for name, values in metrics.items()
        }
        payload[_CACHE_VERSION_KEY] = np.array(999)
        with open(path, "wb") as handle:
            np.savez(handle, **payload)
        reader = CachingBackend(resolve_backend("batched"), spill_dir=store)
        assert reader.lookup(job) is None


# ----------------------------------------------------------------------
# Stress soak (tier-1-excluded)
# ----------------------------------------------------------------------
@pytest.mark.stress
def test_remote_chaos_soak(strongarm, tmp_path):
    """Hammer the fabric: many jobs under probabilistic frame chaos with
    a mid-soak server restart — every job must come back bit-identical
    to the local reference, whichever path (remote, retained, degraded)
    produced it."""
    reference_backend = resolve_backend("batched")
    schedule = NetworkFaultSchedule(
        mode="drop", faults=None, probability=0.3, seed=11
    )
    install_network_chaos(schedule)
    server = SimulationServer(heartbeat_interval=0.1).start()
    host, port = server.address
    try:
        remote = RemoteBackend(
            endpoints=f"{host}:{port}",
            attempts=3,
            connect_timeout=0.5,
            breaker_threshold=5,
            breaker_reset_seconds=0.2,
        )
        for index in range(40):
            if index == 20:
                # Mid-soak restart on the same port: breakers must ride
                # through the outage and recover via half-open probes.
                # The rebind can race the old listener's release, exactly
                # like a real daemon restart — retry briefly.
                server.stop()
                for _attempt in range(100):
                    try:
                        server = SimulationServer(
                            port=port, heartbeat_interval=0.1
                        ).start()
                        break
                    except OSError:
                        time.sleep(0.1)
                else:
                    raise RuntimeError(f"could not rebind port {port}")
            job = conditions_job(strongarm, rows=4, seed=index)
            reference = reference_backend.evaluate(strongarm, job)
            assert_metrics_equal(
                strongarm, remote.evaluate(strongarm, job), reference
            )
    finally:
        server.stop()
        install_network_chaos(None)
