"""Equivalence suite for the LU-cached Sherman–Morrison–Woodbury kernel.

The SMW path (``solver="lu"``) must reproduce the dense stacked solve
(``solver="dense"``) — and therefore the scalar reference solver — at 1e-9
on node voltages and source currents, for DC and transient, with dense and
sparse static-stamp factorizations.
"""

import numpy as np
import pytest

from repro.spice import (
    Circuit,
    GROUND,
    Mosfet,
    MosfetModel,
    Resistor,
    VoltageSource,
    nmos_28nm,
    pmos_28nm,
    solve_dc,
    solve_dc_batched,
    solve_transient,
    solve_transient_batched,
)
from repro.spice.batched import (
    BatchedMNAStamper,
    SMW_RANK_LIMIT_FRACTION,
)
from repro.spice.examples import (
    common_source_amplifier,
    common_source_ladder,
    loaded_cmos_inverter,
    rc_lowpass,
)
from repro.variation.corners import ProcessCorner, PVTCorner

TOLERANCE = 1e-9
BATCH = 12


def mosfet_heavy_circuit() -> Circuit:
    """More MOSFETs than half the system size: forces the dense fallback."""
    circuit = Circuit("mosfet_heavy")
    circuit.add(VoltageSource("VDD", "vdd", GROUND, 0.9))
    circuit.add(VoltageSource("VIN", "in", GROUND, 0.4))
    circuit.add(
        Mosfet("MP", "out", "in", "vdd", MosfetModel(2e-6, 60e-9, pmos_28nm()))
    )
    for index in range(3):
        circuit.add(
            Mosfet(
                f"MN{index}",
                "out",
                "in",
                GROUND,
                MosfetModel(1e-6, 60e-9, nmos_28nm()),
            )
        )
    return circuit


class TestDCSolverEquivalence:
    @pytest.mark.parametrize("sparse_static", [False, True])
    def test_common_source_matches_dense_and_scalar(self, sparse_static):
        shifts = np.random.default_rng(0).normal(0.0, 0.03, BATCH)
        corner = PVTCorner(ProcessCorner.SS, 0.8, 80.0)
        mismatch = {"M1": {"vth": shifts}}
        dense = solve_dc_batched(
            common_source_amplifier(), corner, mismatch, damping=0.5,
            solver="dense",
        )
        smw = solve_dc_batched(
            common_source_amplifier(), corner, mismatch, damping=0.5,
            solver="lu", sparse_static=sparse_static,
        )
        assert np.max(np.abs(dense.voltages - smw.voltages)) < TOLERANCE
        assert np.max(np.abs(dense.source_currents - smw.source_currents)) < TOLERANCE
        assert np.array_equal(dense.iterations, smw.iterations)
        for index, shift in enumerate(shifts):
            scalar = solve_dc(common_source_amplifier(shift), corner, damping=0.5)
            assert smw.voltage("drain")[index] == pytest.approx(
                scalar["drain"], abs=TOLERANCE
            )

    def test_ladder_matches_dense(self):
        circuit = common_source_ladder(stages=8, filter_nodes=2)
        shifts = np.random.default_rng(1).normal(0.0, 0.02, BATCH)
        mismatch = {f"M{stage}": {"vth": shifts} for stage in range(8)}
        dense = solve_dc_batched(circuit, mismatch=mismatch, damping=0.7, solver="dense")
        smw = solve_dc_batched(circuit, mismatch=mismatch, damping=0.7, solver="lu")
        assert np.all(smw.converged)
        assert np.max(np.abs(dense.voltages - smw.voltages)) < TOLERANCE
        assert np.max(np.abs(dense.source_currents - smw.source_currents)) < TOLERANCE

    def test_auto_uses_smw_for_ladder(self):
        stamper = BatchedMNAStamper(common_source_ladder(stages=8, filter_nodes=2))
        assert stamper.solver_kernel("auto") is not None

    def test_auto_falls_back_to_dense_when_rank_too_high(self):
        circuit = mosfet_heavy_circuit()
        stamper = BatchedMNAStamper(circuit)
        assert len(stamper._mosfets) > SMW_RANK_LIMIT_FRACTION * stamper.size
        assert stamper.solver_kernel("auto") is None
        # A forced SMW solve still matches the dense path even beyond the
        # auto threshold — the threshold is a performance, not a
        # correctness, boundary.
        dense = solve_dc_batched(circuit, batch_size=3, damping=0.5, solver="dense")
        smw = solve_dc_batched(circuit, batch_size=3, damping=0.5, solver="lu")
        assert np.max(np.abs(dense.voltages - smw.voltages)) < TOLERANCE

    def test_linear_circuit_single_cached_solve(self):
        solution = solve_dc_batched(rc_lowpass(), batch_size=4, solver="lu")
        assert np.allclose(solution.voltage("out"), 1.0)
        assert np.all(solution.iterations == 1)

    def test_kernel_cached_across_calls_on_shared_stamper(self):
        circuit = common_source_amplifier()
        stamper = BatchedMNAStamper(circuit)
        kernel_first = stamper.solver_kernel("auto")
        solve_dc_batched(circuit, batch_size=2, damping=0.5, stamper=stamper)
        solve_dc_batched(circuit, batch_size=2, damping=0.5, stamper=stamper)
        assert stamper.solver_kernel("auto") is kernel_first

    def test_unknown_solver_rejected(self):
        with pytest.raises(ValueError, match="unknown solver"):
            solve_dc_batched(common_source_amplifier(), batch_size=1, solver="qr")


class TestTransientSolverEquivalence:
    WAVE = {"VIN": lambda t: 0.0 if t < 1e-9 else 0.9}

    @pytest.mark.parametrize("sparse_static", [False, True])
    def test_inverter_matches_dense_and_scalar(self, sparse_static):
        shifts = np.random.default_rng(2).normal(0.0, 0.03, 6)
        dense = solve_transient_batched(
            loaded_cmos_inverter(),
            stop_time=2e-9,
            time_step=0.02e-9,
            mismatch={"MN": {"vth": shifts}},
            source_waveforms=self.WAVE,
            solver="dense",
        )
        smw = solve_transient_batched(
            loaded_cmos_inverter(),
            stop_time=2e-9,
            time_step=0.02e-9,
            mismatch={"MN": {"vth": shifts}},
            source_waveforms=self.WAVE,
            solver="lu",
            sparse_static=sparse_static,
        )
        assert np.max(np.abs(dense.data - smw.data)) < TOLERANCE
        for index, shift in enumerate(shifts):
            scalar = solve_transient(
                loaded_cmos_inverter(shift),
                stop_time=2e-9,
                time_step=0.02e-9,
                source_waveforms=self.WAVE,
            )
            assert np.max(
                np.abs(scalar.voltage("out") - smw.voltage("out")[index])
            ) < TOLERANCE

    def test_transient_factorizes_once_per_scale(self):
        circuit = loaded_cmos_inverter()
        stamper = BatchedMNAStamper(circuit)
        # Emulate the transient driver: a DC kernel and a backward-Euler
        # kernel; repeated requests at the same scale hit the cache.
        dc_kernel = stamper.solver_kernel("auto", 0.0)
        step_kernel = stamper.solver_kernel("auto", 1.0 / 0.02e-9)
        assert dc_kernel is not step_kernel
        assert stamper.solver_kernel("auto", 1.0 / 0.02e-9) is step_kernel
