"""Equivalence suite for the batched simulation engine.

The batched paths (circuit ``evaluate_batch``, ``solve_dc_batched``,
``solve_transient_batched``, simulator fast paths) must reproduce the scalar
paths within 1e-9 — in practice they are bit-identical, since the scalar
evaluation routes through the same vectorized code with a batch of one.
"""

import numpy as np
import pytest

from repro.circuits import DramCoreSenseAmp, FloatingInverterAmplifier, StrongArmLatch
from repro.simulation import CircuitSimulator, SimulationPhase
from repro.spice import (
    Circuit,
    GROUND,
    Resistor,
    VoltageSource,
    solve_dc,
    solve_dc_batched,
    solve_transient,
    solve_transient_batched,
)
from repro.spice.examples import (
    common_source_amplifier,
    loaded_cmos_inverter,
    rc_lowpass,
)
from repro.variation.corners import (
    CornerBatch,
    ProcessCorner,
    PVTCorner,
    full_corner_set,
    typical_corner,
)
from repro.variation.mismatch import MismatchSampler

ALL_CIRCUITS = [StrongArmLatch, FloatingInverterAmplifier, DramCoreSenseAmp]
TOLERANCE = 1e-9
BATCH = 16


def seeded_mismatch(circuit, x_normalized, count=BATCH, seed=42):
    sampler = MismatchSampler(
        circuit.mismatch_model,
        include_global=True,
        include_local=True,
        rng=np.random.default_rng(seed),
    )
    return sampler.sample(circuit.denormalize(x_normalized), count)


@pytest.mark.parametrize("circuit_cls", ALL_CIRCUITS)
class TestEvaluateBatchEquivalence:
    """evaluate_batch == scalar evaluate, all corners x 16 seeded samples."""

    def test_mismatch_batch_matches_scalar_at_all_corners(self, circuit_cls):
        circuit = circuit_cls()
        rng = np.random.default_rng(7)
        x = circuit.random_sizing(rng)
        mismatch_set = seeded_mismatch(circuit, x)
        for corner in full_corner_set():
            batch = circuit.evaluate_batch(x, corner, mismatch_set.samples)
            for index in range(len(mismatch_set)):
                scalar = circuit.evaluate(x, corner, mismatch_set[index])
                for name in circuit.metric_names:
                    assert batch[name][index] == pytest.approx(
                        scalar[name], abs=TOLERANCE
                    )

    def test_corner_batch_matches_scalar(self, circuit_cls):
        circuit = circuit_cls()
        rng = np.random.default_rng(11)
        x = circuit.random_sizing(rng)
        corners = full_corner_set()
        batch = circuit.evaluate_batch(x, CornerBatch.from_corners(corners))
        for index, corner in enumerate(corners):
            scalar = circuit.evaluate(x, corner)
            for name in circuit.metric_names:
                assert batch[name][index] == pytest.approx(
                    scalar[name], abs=TOLERANCE
                )

    def test_nominal_batch_defaults(self, circuit_cls):
        circuit = circuit_cls()
        x = np.full(circuit.dimension, 0.5)
        batch = circuit.evaluate_batch(x)
        scalar = circuit.evaluate(x)
        for name in circuit.metric_names:
            assert batch[name].shape == (1,)
            assert batch[name][0] == pytest.approx(scalar[name], abs=TOLERANCE)

    def test_supports_batch_flag(self, circuit_cls):
        assert circuit_cls().supports_batch


class TestSimulatorFastPaths:
    def test_simulate_mismatch_set_matches_scalar_calls(self, strongarm):
        x = np.full(strongarm.dimension, 0.5)
        corner = PVTCorner(ProcessCorner.SF, 0.8, 80.0)
        mismatch_set = seeded_mismatch(strongarm, x)

        fast = CircuitSimulator(strongarm)
        records = fast.simulate_mismatch_set(x, corner, mismatch_set)
        assert fast.budget.total == len(mismatch_set)

        slow = CircuitSimulator(strongarm)
        for index, record in enumerate(records):
            reference = slow.simulate(x, corner, mismatch_set[index])
            for name in strongarm.metric_names:
                assert record.metrics[name] == pytest.approx(
                    reference.metrics[name], abs=TOLERANCE
                )

    def test_simulate_corners_matches_scalar_calls(self, fia):
        x = np.full(fia.dimension, 0.5)
        corners = full_corner_set()
        fast = CircuitSimulator(fia)
        records = fast.simulate_corners(x, corners)
        assert fast.budget.total == len(corners)
        for record, corner in zip(records, corners):
            scalar = fia.evaluate(x, corner)
            assert record.corner == corner
            for name in fia.metric_names:
                assert record.metrics[name] == pytest.approx(
                    scalar[name], abs=TOLERANCE
                )

    def test_batched_records_carry_metric_vectors(self, dram):
        x = np.full(dram.dimension, 0.5)
        simulator = CircuitSimulator(dram)
        mismatch_set = seeded_mismatch(dram, x, count=4)
        records = simulator.simulate_mismatch_set(x, typical_corner(), mismatch_set)
        matrix = simulator.metrics_matrix(records)
        assert matrix.shape == (4, len(dram.metric_names))
        for row, record in zip(matrix, records):
            assert np.allclose(row, [record.metrics[n] for n in dram.metric_names])

    def test_phase_charged_in_one_batch(self, strongarm):
        simulator = CircuitSimulator(strongarm)
        x = np.full(strongarm.dimension, 0.5)
        mismatch_set = seeded_mismatch(strongarm, x, count=5)
        simulator.simulate_mismatch_set(
            x, typical_corner(), mismatch_set, phase=SimulationPhase.VERIFICATION
        )
        assert simulator.budget.snapshot()["verification"] == 5


common_source = common_source_amplifier
loaded_inverter = loaded_cmos_inverter


class TestBatchedDC:
    def test_matches_scalar_per_sample(self):
        shifts = np.random.default_rng(0).normal(0.0, 0.03, BATCH)
        corner = PVTCorner(ProcessCorner.SS, 0.8, 80.0)
        batched = solve_dc_batched(
            common_source(),
            corner,
            mismatch={"M1": {"vth": shifts}},
            damping=0.5,
        )
        assert np.all(batched.converged)
        for index, shift in enumerate(shifts):
            scalar = solve_dc(common_source(shift), corner, damping=0.5)
            assert batched.voltage("drain")[index] == pytest.approx(
                scalar["drain"], abs=TOLERANCE
            )
            assert batched.iterations[index] == scalar.iterations

    def test_convergence_mask_handles_slow_sample(self):
        # A wide vth spread makes some samples need more Newton iterations
        # than others; the mask must keep iterating the laggards without
        # disturbing already-converged samples.
        shifts = np.array([-0.12, -0.02, 0.0, 0.02, 0.12, 0.25])
        batched = solve_dc_batched(
            common_source(),
            mismatch={"M1": {"vth": shifts}},
            damping=0.5,
        )
        assert np.all(batched.converged)
        iteration_counts = batched.iterations
        assert iteration_counts.min() < iteration_counts.max()
        for index, shift in enumerate(shifts):
            scalar = solve_dc(common_source(shift), damping=0.5)
            assert batched.voltage("drain")[index] == pytest.approx(
                scalar["drain"], abs=TOLERANCE
            )
            assert iteration_counts[index] == scalar.iterations

    def test_linear_circuit_single_step(self):
        circuit = Circuit("divider")
        circuit.add(VoltageSource("VIN", "in", GROUND, 1.0))
        circuit.add(Resistor("R1", "in", "out", 1e3))
        circuit.add(Resistor("R2", "out", GROUND, 1e3))
        batched = solve_dc_batched(circuit, batch_size=3)
        assert batched.voltages.shape[0] == 3
        assert np.allclose(batched.voltage("out"), 0.5)
        assert np.all(batched.iterations == 1)

    def test_source_currents_match(self):
        batched = solve_dc_batched(
            common_source(), mismatch={"M1": {"vth": np.array([0.0, 0.05])}},
            damping=0.5,
        )
        for index, shift in enumerate((0.0, 0.05)):
            scalar = solve_dc(common_source(shift), damping=0.5)
            for name in ("VDD", "VG"):
                assert batched.solution_for(index).source_currents[
                    name
                ] == pytest.approx(scalar.source_currents[name], abs=TOLERANCE)

    def test_inconsistent_batch_rejected(self):
        with pytest.raises(ValueError):
            solve_dc_batched(
                common_source(),
                mismatch={"M1": {"vth": np.zeros(4), "beta": np.zeros(5)}},
            )

    def test_unknown_device_rejected(self):
        with pytest.raises(ValueError, match="unknown MOSFET"):
            solve_dc_batched(
                common_source(), mismatch={"M_typo": {"vth": np.zeros(3)}}
            )


class TestBatchedTransient:
    WAVE = {"VIN": lambda t: 0.0 if t < 1e-9 else 0.9}

    def test_matches_scalar_waveforms(self):
        shifts = np.random.default_rng(1).normal(0.0, 0.03, 8)
        batched = solve_transient_batched(
            loaded_inverter(),
            stop_time=4e-9,
            time_step=0.02e-9,
            mismatch={"MN": {"vth": shifts}},
            source_waveforms=self.WAVE,
        )
        for index, shift in enumerate(shifts):
            scalar = solve_transient(
                loaded_inverter(shift),
                stop_time=4e-9,
                time_step=0.02e-9,
                source_waveforms=self.WAVE,
            )
            assert np.max(
                np.abs(scalar.voltage("out") - batched.voltage("out")[index])
            ) < TOLERANCE

    def test_crossing_times_match_scalar(self):
        shifts = np.array([0.0, 0.04])
        batched = solve_transient_batched(
            loaded_inverter(),
            stop_time=4e-9,
            time_step=0.02e-9,
            mismatch={"MN": {"vth": shifts}},
            source_waveforms=self.WAVE,
        )
        crossings = batched.crossing_time("out", 0.45, rising=False)
        for index, shift in enumerate(shifts):
            scalar = solve_transient(
                loaded_inverter(shift),
                stop_time=4e-9,
                time_step=0.02e-9,
                source_waveforms=self.WAVE,
            ).crossing_time("out", 0.45, rising=False)
            assert crossings[index] == pytest.approx(scalar, abs=1e-15)

    def test_rc_batch_matches_scalar(self):
        rc = rc_lowpass

        batched = solve_transient_batched(
            rc(),
            stop_time=5e-6,
            time_step=5e-9,
            batch_size=2,
            initial_conditions={"out": 0.0, "in": 1.0},
        )
        scalar = solve_transient(
            rc(),
            stop_time=5e-6,
            time_step=5e-9,
            initial_conditions={"out": 0.0, "in": 1.0},
        )
        assert np.max(np.abs(batched.voltage("out") - scalar.voltage("out"))) < TOLERANCE
        assert batched.result_for(0).crossing_time(
            "out", 1.0 - np.exp(-1.0)
        ) == pytest.approx(scalar.crossing_time("out", 1.0 - np.exp(-1.0)))


class TestSourceRestoration:
    """Transient analysis must not corrupt circuit state (satellite fix)."""

    def test_scalar_transient_leaves_sources_untouched(self):
        circuit = loaded_inverter()
        solve_transient(
            circuit,
            stop_time=1e-9,
            time_step=0.02e-9,
            source_waveforms={"VIN": lambda t: 0.9},
        )
        assert circuit.element("VIN").voltage == 0.0

    def test_dc_after_transient_sees_original_sources(self):
        circuit = loaded_inverter()
        before = solve_dc(circuit, damping=0.5)["out"]
        solve_transient(
            circuit,
            stop_time=1e-9,
            time_step=0.02e-9,
            source_waveforms={"VIN": lambda t: 0.9},
        )
        after = solve_dc(circuit, damping=0.5)["out"]
        assert after == pytest.approx(before, abs=1e-12)

    def test_batched_transient_leaves_sources_untouched(self):
        circuit = loaded_inverter()
        solve_transient_batched(
            circuit,
            stop_time=1e-9,
            time_step=0.02e-9,
            batch_size=2,
            source_waveforms={"VIN": lambda t: 0.9},
        )
        assert circuit.element("VIN").voltage == 0.0


class TestCrossingTimeVectorized:
    def test_rising_and_falling(self):
        times = np.linspace(0.0, 1.0, 11)
        from repro.spice.transient import TransientResult

        ramp = TransientResult(
            times, np.linspace(0.0, 1.0, 11)[None, :], {"n": 0}
        )
        assert ramp.crossing_time("n", 0.55) == pytest.approx(0.55)
        fall = TransientResult(
            times, np.linspace(1.0, 0.0, 11)[None, :], {"n": 0}
        )
        assert fall.crossing_time("n", 0.55, rising=False) == pytest.approx(0.45)

    def test_flat_segment_crosses_at_segment_end(self):
        times = np.array([0.0, 1.0, 2.0])
        wave = np.array([[0.0, 0.5, 0.5]])
        result_cls = __import__(
            "repro.spice.transient", fromlist=["TransientResult"]
        ).TransientResult
        result = result_cls(times, wave, {"n": 0})
        # Threshold equal to a flat segment's value: crossing is detected on
        # the first segment via interpolation.
        assert result.crossing_time("n", 0.5) == pytest.approx(1.0)

    def test_none_when_never_crossed(self):
        from repro.spice.transient import TransientResult

        result = TransientResult(
            np.linspace(0.0, 1.0, 5), np.zeros((1, 5)), {"n": 0}
        )
        assert result.crossing_time("n", 0.5) is None
