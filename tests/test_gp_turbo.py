"""Tests for the GP surrogate and the TuRBO initial sampler."""

import numpy as np
import pytest

from repro.core.gp import GaussianProcess
from repro.core.reward import FEASIBLE_REWARD
from repro.core.turbo import TurboResult, TurboSampler


class TestGaussianProcess:
    def test_fit_requires_two_points(self):
        with pytest.raises(ValueError):
            GaussianProcess().fit(np.zeros((1, 2)), np.zeros(1))

    def test_fit_requires_matching_lengths(self):
        with pytest.raises(ValueError):
            GaussianProcess().fit(np.zeros((3, 2)), np.zeros(4))

    def test_predict_before_fit_rejected(self):
        with pytest.raises(RuntimeError):
            GaussianProcess().predict(np.zeros((1, 2)))

    def test_interpolates_training_points(self, rng):
        inputs = rng.uniform(size=(30, 2))
        targets = np.sin(3 * inputs[:, 0]) + inputs[:, 1]
        gp = GaussianProcess().fit(inputs, targets)
        mean, _ = gp.predict(inputs)
        assert np.allclose(mean, targets, atol=0.1)

    def test_variance_larger_away_from_data(self, rng):
        inputs = rng.uniform(0.0, 0.3, size=(30, 2))
        targets = inputs.sum(axis=1)
        gp = GaussianProcess().fit(inputs, targets)
        _, variance_near = gp.predict(np.array([[0.15, 0.15]]))
        _, variance_far = gp.predict(np.array([[0.95, 0.95]]))
        assert variance_far[0] > variance_near[0]

    def test_posterior_samples_have_right_shape(self, rng):
        inputs = rng.uniform(size=(20, 3))
        targets = inputs.sum(axis=1)
        gp = GaussianProcess().fit(inputs, targets)
        samples = gp.sample_posterior(rng.uniform(size=(7, 3)), rng)
        assert samples.shape == (7,)

    def test_constant_targets_handled(self, rng):
        inputs = rng.uniform(size=(10, 2))
        gp = GaussianProcess().fit(inputs, np.full(10, 3.0))
        mean, _ = gp.predict(inputs[:3])
        assert np.allclose(mean, 3.0, atol=0.2)


class TestTurboSampler:
    def test_invalid_dimension(self):
        with pytest.raises(ValueError):
            TurboSampler(0)

    def test_initial_points_cover_unit_cube(self, rng):
        sampler = TurboSampler(5, rng=rng, initial_points=16)
        points = sampler.ask_initial()
        assert points.shape == (16, 5)
        assert np.all(points >= 0.0) and np.all(points <= 1.0)

    def test_ask_returns_batch_inside_unit_cube(self, rng):
        sampler = TurboSampler(4, rng=rng, batch_size=3)
        designs = rng.uniform(size=(10, 4))
        sampler.tell(designs, -np.linalg.norm(designs - 0.5, axis=1))
        batch = sampler.ask()
        assert batch.shape == (3, 4)
        assert np.all(batch >= 0.0) and np.all(batch <= 1.0)

    def test_trust_region_shrinks_after_failures(self, rng):
        sampler = TurboSampler(3, rng=rng, failure_tolerance=2)
        sampler.tell(np.full((1, 3), 0.5), np.array([1.0]))
        initial_length = sampler.length
        # Repeated non-improving observations shrink the region.
        for _ in range(4):
            sampler.tell(rng.uniform(size=(1, 3)), np.array([-5.0]))
        assert sampler.length < initial_length

    def test_trust_region_grows_after_successes(self, rng):
        sampler = TurboSampler(3, rng=rng, success_tolerance=2)
        initial_length = sampler.length
        for reward in (0.1, 0.2, 0.3, 0.4):
            sampler.tell(rng.uniform(size=(1, 3)), np.array([reward]))
        assert sampler.length >= initial_length

    def test_run_finds_feasible_region(self, rng):
        """Reward landscape with a feasible plateau around x = 0.7."""

        def objective(design):
            distance = np.linalg.norm(design - 0.7)
            return FEASIBLE_REWARD if distance < 0.25 else -distance

        sampler = TurboSampler(3, rng=rng, batch_size=4)
        result = sampler.run(objective, max_evaluations=120, feasible_target=1)
        assert isinstance(result, TurboResult)
        assert result.found_feasible
        assert result.best_reward == FEASIBLE_REWARD
        assert result.evaluations <= 120

    def test_run_respects_budget(self, rng):
        calls = []

        def objective(design):
            calls.append(1)
            return -1.0

        sampler = TurboSampler(2, rng=rng)
        result = sampler.run(objective, max_evaluations=25, feasible_target=1)
        assert len(calls) == 25
        assert result.evaluations == 25
        assert not result.found_feasible
