"""External-simulator (ngspice) backend: deck compiler, measure parser,
subprocess runner and the hermetic fake-simulator harness.

Everything here runs with **no ngspice installed**: the ``fake_ngspice``
fixture installs ``tests/fake_ngspice.py`` as the simulator executable, so
the full ``NgspiceBackend`` pipeline — SimJob → deck → subprocess →
measure log → metrics tensor — is exercised end-to-end in CI.  The single
test that wants a real binary is marked ``requires_ngspice`` and
auto-skips.

Covers:

* deck structure (measure cards per metric per row, sorted params, valid
  single-row ngspice) and the committed golden decks for all three paper
  circuits (regenerate with ``REPRO_REGEN_GOLDEN=1``);
* the netlist → deck → re-parse round trip over randomized designs,
  corners, mismatch blocks, phases and both batch axes (full-precision
  payload: the reconstructed job has the *same content hash*);
* measure-log reassembly: ``failed``/missing/garbage measures become NaN
  cells of a full-shape tensor;
* per-job agreement between ``NgspiceBackend`` (through the fake) and
  ``BatchedMNABackend`` within the fake's declared tolerance;
* failure handling: timeouts, nonzero exits and missing executables
  degrade to NaN blocks (or raise in strict mode);
* composition with ``CachingBackend`` and ``ShardedDispatcher``; and
* ``ExperimentConfig(backend="ngspice")`` driving a full tiny-budget
  sizing loop whose trajectory matches the batched backend bit-for-bit.
"""

import json
import os
import re

import numpy as np
import pytest

import fake_ngspice as fake_module
from repro.circuits import StrongArmLatch
from repro.simulation import (
    BACKENDS,
    BatchedMNABackend,
    CachingBackend,
    NgspiceBackend,
    NgspiceError,
    NgspiceRunner,
    SimJob,
    SimulationPhase,
    SimulationService,
    available_backends,
    resolve_backend,
)
from repro.simulation.ngspice import (
    EXECUTABLE_ENV,
    PAYLOAD_AWARE_ENV,
    STRICT_ENV,
)
from repro.spice.deck import (
    DeckParseError,
    compile_job_deck,
    measure_name,
    parse_deck_job,
    parse_measure_log,
    reference_job,
)
from repro.variation.corners import (
    ProcessCorner,
    PVTCorner,
    full_corner_set,
    typical_corner,
)

GOLDEN_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "golden")


def sample_conditions_job(circuit, seed=1, rows=4, corners=None, seeded_mismatch=None):
    rng = np.random.default_rng(seed)
    x = rng.uniform(0.2, 0.8, circuit.dimension)
    if seeded_mismatch is not None:
        mismatch = seeded_mismatch(circuit, x, rows, seed=seed).samples
    else:
        mismatch = rng.standard_normal((rows, circuit.mismatch_dimension))
    corners = corners if corners is not None else (typical_corner(),)
    return SimJob.conditions(circuit.name, x, corners, mismatch)


# ----------------------------------------------------------------------
# Deck structure
# ----------------------------------------------------------------------
class TestDeckCompiler:
    def test_measure_cards_for_every_metric_and_row(self, paper_circuit):
        job = sample_conditions_job(paper_circuit, rows=3)
        deck = compile_job_deck(job, paper_circuit)
        for row in range(3):
            for metric in paper_circuit.metric_names:
                assert measure_name(metric, row) in deck.text
        assert deck.text.rstrip().endswith(".end")
        assert deck.rows == 3
        assert deck.metric_names == tuple(paper_circuit.metric_names)

    def test_param_cards_are_sorted_and_fixed_format(self, strongarm):
        job = sample_conditions_job(strongarm, rows=1)
        deck = compile_job_deck(job, strongarm)
        params = re.findall(r"^\.param (\S+)=(\S+)$", deck.text, re.MULTILINE)
        names = [name for name, _ in params]
        assert names == sorted(names)
        for _, value in params:
            assert re.fullmatch(r"-?\d\.\d{9}e[+-]\d{2,3}", value), value

    def test_compile_is_deterministic(self, fia):
        job = sample_conditions_job(fia, rows=2)
        assert (
            compile_job_deck(job, fia).text == compile_job_deck(job, fia).text
        )

    def test_wrong_circuit_rejected(self, strongarm, fia):
        job = sample_conditions_job(fia)
        with pytest.raises(ValueError, match="deck compiler"):
            compile_job_deck(job, strongarm)

    def test_generic_default_testbench_compiles(self):
        """Circuits without a bespoke testbench still get a valid deck —
        and their placeholder measures emit *no* ``.meas`` card (a real
        engine must report NaN, not a fabricated number)."""
        from repro.circuits.base import AnalogCircuit, SizingParameter
        from repro.variation.distributions import DeviceKind, DeviceSpec

        class Probe(AnalogCircuit):
            name = "deck_probe"

            def _build_parameters(self):
                return [SizingParameter("w", 1.0, 2.0, unit="um")]

            def _build_constraints(self):
                return {"margin": 1.0}

            def _build_devices(self):
                return [
                    DeviceSpec(
                        "D",
                        DeviceKind.NMOS,
                        width_of=lambda x: 0.04,
                        length_of=lambda x: 0.03,
                    )
                ]

            def _evaluate_physical_batch(self, x, corner, mismatch):
                return {"margin": 0.5 + 0.0 * mismatch["D"]["vth"]}

        probe = Probe()
        job = SimJob.conditions(
            probe.name, np.array([0.5]), (typical_corner(),), None
        )
        deck = compile_job_deck(job, probe)
        assert measure_name("margin", 0) in deck.text
        assert "MD out bias 0" in deck.text  # generic diode-loaded bench
        # Placeholder metrics: a comment names the measure, but no .meas
        # card (ngspice would evaluate it to a fabricated 0.0) and no
        # .tran analysis is forced by placeholder-only decks.
        assert "placeholder measure" in deck.text
        assert ".meas" not in deck.text
        assert ".tran" not in deck.text


class TestGoldenDecks:
    """Committed expected decks: serialization regressions diff readably.

    The reference job lives in :func:`repro.spice.deck.reference_job` so
    the ``repro deck`` CLI regenerates the exact same bytes.
    """

    def golden_job(self, circuit):
        return reference_job(circuit)

    def _check_golden(self, deck, path):
        if os.environ.get("REPRO_REGEN_GOLDEN"):
            os.makedirs(GOLDEN_DIR, exist_ok=True)
            deck.write(path)
        with open(path, "r", encoding="utf-8") as handle:
            expected = handle.read()
        assert deck.text == expected, (
            f"compiled deck drifted from {path}; regenerate with "
            f"REPRO_REGEN_GOLDEN=1 if intended"
        )

    def test_deck_matches_golden(self, paper_circuit):
        deck = compile_job_deck(self.golden_job(paper_circuit), paper_circuit)
        self._check_golden(
            deck, os.path.join(GOLDEN_DIR, f"{paper_circuit.name}.cir")
        )

    def test_waveform_deck_matches_golden(self, paper_circuit):
        deck = compile_job_deck(
            self.golden_job(paper_circuit),
            paper_circuit,
            measurement="waveform",
        )
        self._check_golden(
            deck,
            os.path.join(GOLDEN_DIR, f"{paper_circuit.name}.waveform.cir"),
        )

    def test_corner_shifts_produce_distinct_model_cards(self, paper_circuit):
        """Satellite regression: the reference job mixes a TT and an SS
        corner, so the per-row ``.model`` cards must differ between rows —
        corner vth/mu shifts are lowered into the deck, not just recorded
        in the payload."""
        deck = compile_job_deck(self.golden_job(paper_circuit), paper_circuit)
        rows = re.split(r"^\* ---- row \d+ ----$", deck.text, flags=re.MULTILINE)
        assert len(rows) == 3  # preamble + two rows
        models_by_row = [
            sorted(
                line
                for line in section.splitlines()
                if line.startswith(".model ")
            )
            for section in rows[1:]
        ]
        assert models_by_row[0], "expected .model cards inside each row"
        assert models_by_row[0] != models_by_row[1]

    def test_cli_deck_regenerates_golden_bytes(self, paper_circuit, capsys):
        """``repro deck <circuit>`` must emit the committed golden deck
        byte-for-byte (both measurement modes share ``reference_job``)."""
        from repro.__main__ import deck_main

        for suffix, extra in (("", []), (".waveform", ["--measurement", "waveform"])):
            assert deck_main([paper_circuit.name] + extra) == 0
            produced = capsys.readouterr().out
            path = os.path.join(
                GOLDEN_DIR, f"{paper_circuit.name}{suffix}.cir"
            )
            with open(path, "r", encoding="utf-8") as handle:
                assert produced == handle.read()


class TestDeckRoundTrip:
    """netlist → deck → re-parse property test over randomized designs."""

    @pytest.mark.parametrize("seed", range(5))
    def test_conditions_job_round_trips_exactly(self, paper_circuit, seed):
        rng = np.random.default_rng(seed)
        corners = tuple(
            rng.choice(len(full_corner_set()), size=3, replace=False)
        )
        corner_set = list(full_corner_set())
        job = SimJob.conditions(
            paper_circuit.name,
            rng.uniform(0.0, 1.0, paper_circuit.dimension),
            tuple(corner_set[index] for index in corners),
            rng.standard_normal((3, paper_circuit.mismatch_dimension)),
            phase=rng.choice(list(SimulationPhase)),
        )
        rebuilt = parse_deck_job(compile_job_deck(job, paper_circuit).text)
        assert rebuilt == job  # content hash + phase equality
        assert rebuilt.job_id == job.job_id
        assert rebuilt.axis == job.axis

    @pytest.mark.parametrize("seed", range(3))
    def test_design_batch_round_trips_exactly(self, paper_circuit, seed):
        rng = np.random.default_rng(100 + seed)
        job = SimJob.design_batch(
            paper_circuit.name,
            rng.uniform(0.0, 1.0, (4, paper_circuit.dimension)),
            PVTCorner(ProcessCorner.FS, 0.8, 80.0),
        )
        rebuilt = parse_deck_job(compile_job_deck(job, paper_circuit).text)
        assert rebuilt == job
        assert rebuilt.axis == "designs"
        assert rebuilt.mismatch is None

    def test_nominal_mismatch_round_trips(self, strongarm):
        job = SimJob.conditions(
            strongarm.name,
            np.full(strongarm.dimension, 0.5),
            (typical_corner(),),
            None,
        )
        rebuilt = parse_deck_job(compile_job_deck(job, strongarm).text)
        assert rebuilt == job
        assert rebuilt.mismatch is None

    def test_payloadless_text_rejected(self):
        with pytest.raises(DeckParseError, match="payload"):
            parse_deck_job("* just a comment\n.end\n")

    def test_other_format_versions_rejected(self, strongarm):
        job = sample_conditions_job(strongarm, rows=1)
        text = compile_job_deck(job, strongarm).text
        with pytest.raises(DeckParseError, match="format 99"):
            parse_deck_job(text.replace("format=2", "format=99"))
        # Version 1 predates the corners=/mismatch= counts: the format
        # gate must reject it before the shape checks produce a
        # misleading "truncated" error.
        with pytest.raises(DeckParseError, match="format 1"):
            parse_deck_job(text.replace("format=2", "format=1"))

    def test_truncated_mismatch_payload_rejected(self, strongarm):
        """A deck missing a payload row must raise, not silently rebuild a
        smaller job."""
        text = compile_job_deck(
            sample_conditions_job(strongarm, rows=3), strongarm
        ).text
        lines = [
            line
            for line in text.splitlines()
            if not line.startswith("*:mismatch 2 ")
        ]
        assert len(lines) == len(text.splitlines()) - 1
        with pytest.raises(DeckParseError, match="truncated"):
            parse_deck_job("\n".join(lines))

    def test_truncated_design_payload_rejected(self, strongarm):
        designs = np.random.default_rng(3).uniform(
            0.2, 0.8, (4, strongarm.dimension)
        )
        job = SimJob.design_batch(strongarm.name, designs, typical_corner())
        text = compile_job_deck(job, strongarm).text
        lines = [
            line
            for line in text.splitlines()
            if not line.startswith("*:design 3 ")
        ]
        assert len(lines) == len(text.splitlines()) - 1
        with pytest.raises(DeckParseError, match="rows=4"):
            parse_deck_job("\n".join(lines))

    def test_truncated_per_row_corner_block_rejected(self, strongarm):
        """Dropping per-row corner lines must not silently re-parse as a
        broadcast (length-1) corner block: the declared corners= count
        pins the block length exactly."""
        rng = np.random.default_rng(9)
        corner_set = list(full_corner_set())
        job = SimJob.conditions(
            strongarm.name,
            rng.uniform(0.2, 0.8, strongarm.dimension),
            (corner_set[0], corner_set[1]),  # one corner per mismatch row
            rng.standard_normal((2, strongarm.mismatch_dimension)),
        )
        text = compile_job_deck(job, strongarm).text
        lines = [
            line
            for line in text.splitlines()
            if not line.startswith("*:corner 1 ")
        ]
        assert len(lines) == len(text.splitlines()) - 1
        with pytest.raises(DeckParseError, match="corners=2"):
            parse_deck_job("\n".join(lines))

    def test_tampered_rows_count_rejected(self, strongarm):
        text = compile_job_deck(
            sample_conditions_job(strongarm, rows=3), strongarm
        ).text.replace("rows=3", "rows=5")
        with pytest.raises(DeckParseError, match="rows=5"):
            parse_deck_job(text)

    def test_noncontiguous_payload_indices_rejected(self, strongarm):
        job = SimJob.conditions(
            strongarm.name,
            np.full(strongarm.dimension, 0.5),
            (typical_corner(),),
            None,
        )
        text = compile_job_deck(job, strongarm).text.replace(
            "*:design 0 ", "*:design 1 "
        )
        with pytest.raises(DeckParseError, match="not contiguous"):
            parse_deck_job(text)


# ----------------------------------------------------------------------
# Measure-log parsing
# ----------------------------------------------------------------------
class TestMeasureLogParser:
    METRICS = ("power", "noise")

    def test_full_log_fills_tensor(self):
        log = "\n".join(
            [
                "m_power_r0 = 1.5e-05",
                "M_POWER_R1  =  2.5e-05",  # ngspice may shout
                "m_noise_r0=3e-04",
                "m_noise_r1 = 4e-04 ; trailing",
            ]
        )
        metrics = parse_measure_log(log, 2, self.METRICS)
        assert metrics["power"].tolist() == [1.5e-05, 2.5e-05]
        assert metrics["noise"].tolist() == [3e-04, 4e-04]

    def test_failed_and_missing_measures_become_nan(self):
        log = "m_power_r0 = failed\nm_noise_r1 = 4e-04\n"
        metrics = parse_measure_log(log, 2, self.METRICS)
        assert np.isnan(metrics["power"]).all()
        assert np.isnan(metrics["noise"][0])
        assert metrics["noise"][1] == 4e-04

    def test_garbage_log_is_all_nan_with_full_shape(self):
        metrics = parse_measure_log("no measures at all", 3, self.METRICS)
        for name in self.METRICS:
            assert metrics[name].shape == (3,)
            assert np.isnan(metrics[name]).all()

    def test_absent_vs_reported_failed_cells_are_distinguished(self):
        """Both read as NaN, but only cells the engine never produced carry
        the FAILURE_NAN tag the service's failure accounting checks."""
        from repro.spice.deck import failure_nan_mask

        log = "m_power_r0 = failed\nm_noise_r0 = 1e-3\n"
        metrics = parse_measure_log(log, 2, self.METRICS)
        assert np.isnan(metrics["power"][0])  # reported as failed...
        assert not failure_nan_mask(metrics["power"])[0]  # ...a result
        assert failure_nan_mask(metrics["power"])[1]  # row 1 never produced
        assert failure_nan_mask(metrics["noise"])[1]

    def test_unknown_measures_ignored(self):
        log = "m_power_r9 = 1.0\nm_other_r0 = 2.0\nm_power_r0 = 3.0\n"
        metrics = parse_measure_log(log, 1, self.METRICS)
        assert metrics["power"].tolist() == [3.0]


# ----------------------------------------------------------------------
# NgspiceBackend through the fake simulator
# ----------------------------------------------------------------------
class TestNgspiceBackendWithFake:
    def test_registered_and_resolvable(self):
        assert "ngspice" in available_backends()
        assert BACKENDS["ngspice"] is NgspiceBackend
        assert isinstance(resolve_backend("ngspice"), NgspiceBackend)

    def test_agrees_with_batched_backend_conditions(
        self, paper_circuit, fake_ngspice, seeded_mismatch
    ):
        job = sample_conditions_job(
            paper_circuit, rows=4, seeded_mismatch=seeded_mismatch
        )
        fake = NgspiceBackend().evaluate(paper_circuit, job)
        reference = BatchedMNABackend().evaluate(paper_circuit, job)
        for name in paper_circuit.metric_names:
            np.testing.assert_allclose(
                fake[name], reference[name], rtol=fake_module.TOLERANCE, atol=0
            )

    def test_agrees_with_batched_backend_corner_block(
        self, paper_circuit, fake_ngspice
    ):
        x = np.full(paper_circuit.dimension, 0.45)
        job = SimJob.conditions(
            paper_circuit.name, x, tuple(full_corner_set())[:6], None
        )
        fake = NgspiceBackend().evaluate(paper_circuit, job)
        reference = BatchedMNABackend().evaluate(paper_circuit, job)
        for name in paper_circuit.metric_names:
            np.testing.assert_allclose(
                fake[name], reference[name], rtol=fake_module.TOLERANCE, atol=0
            )

    def test_agrees_with_batched_backend_design_axis(
        self, paper_circuit, fake_ngspice
    ):
        designs = np.random.default_rng(7).uniform(
            0.2, 0.8, (5, paper_circuit.dimension)
        )
        job = SimJob.design_batch(paper_circuit.name, designs, typical_corner())
        fake = NgspiceBackend().evaluate(paper_circuit, job)
        reference = BatchedMNABackend().evaluate(paper_circuit, job)
        for name in paper_circuit.metric_names:
            np.testing.assert_allclose(
                fake[name], reference[name], rtol=fake_module.TOLERANCE, atol=0
            )

    def test_service_runs_and_charges_budget(
        self, strongarm, fake_ngspice, service_factory
    ):
        service = service_factory(strongarm, backend="ngspice")
        job = sample_conditions_job(strongarm, rows=3)
        result = service.run(job)
        assert result.backend == "ngspice"
        assert service.budget.total == 3
        for name in strongarm.metric_names:
            assert np.isfinite(result.metrics[name]).all()


class TestPerRowFallback:
    """Real (non-payload-aware) engines get one single-row deck per row.

    A real ngspice binary resolves the repeated per-row ``.param`` sections
    of a multi-row deck last-wins, so handing it the batch deck whole would
    silently return wrong numbers for every row but the last.  The backend
    therefore splits batched jobs row-wise by default; only the fixture's
    explicitly payload-aware fake gets the multi-row fast path.
    """

    def count_runs(self, monkeypatch):
        calls = []
        original = NgspiceRunner.run_deck

        def counting(runner, deck_text, tag="job"):
            calls.append(tag)
            return original(runner, deck_text, tag)

        monkeypatch.setattr(NgspiceRunner, "run_deck", counting)
        return calls

    def test_payload_awareness_defaults_off_and_env_selectable(
        self, monkeypatch
    ):
        monkeypatch.delenv(PAYLOAD_AWARE_ENV, raising=False)
        assert not NgspiceBackend().payload_aware
        monkeypatch.setenv(PAYLOAD_AWARE_ENV, "1")
        assert NgspiceBackend().payload_aware
        assert not NgspiceBackend(payload_aware=False).payload_aware

    def test_multi_row_job_splits_into_single_row_decks(
        self, strongarm, fake_ngspice, monkeypatch
    ):
        calls = self.count_runs(monkeypatch)
        job = sample_conditions_job(strongarm, rows=3)
        backend = NgspiceBackend(payload_aware=False)
        metrics = backend.evaluate(strongarm, job)
        assert len(calls) == 3  # one subprocess per batch row
        reference = BatchedMNABackend().evaluate(strongarm, job)
        for name in strongarm.metric_names:
            np.testing.assert_allclose(
                metrics[name],
                reference[name],
                rtol=fake_module.TOLERANCE,
                atol=0,
            )

    def test_payload_aware_runner_keeps_single_deck_fast_path(
        self, strongarm, fake_ngspice, monkeypatch
    ):
        calls = self.count_runs(monkeypatch)
        job = sample_conditions_job(strongarm, rows=3)
        NgspiceBackend().evaluate(strongarm, job)  # fixture sets the env
        assert len(calls) == 1

    def test_design_axis_splits_per_row_too(
        self, paper_circuit, fake_ngspice, monkeypatch
    ):
        calls = self.count_runs(monkeypatch)
        designs = np.random.default_rng(11).uniform(
            0.2, 0.8, (4, paper_circuit.dimension)
        )
        job = SimJob.design_batch(
            paper_circuit.name, designs, typical_corner()
        )
        metrics = NgspiceBackend(payload_aware=False).evaluate(
            paper_circuit, job
        )
        assert len(calls) == 4
        reference = BatchedMNABackend().evaluate(paper_circuit, job)
        for name in paper_circuit.metric_names:
            np.testing.assert_allclose(
                metrics[name],
                reference[name],
                rtol=fake_module.TOLERANCE,
                atol=0,
            )

    def test_failed_row_degrades_alone(
        self, strongarm, fake_ngspice, monkeypatch, tmp_path
    ):
        marker = tmp_path / "fail-once"
        marker.write_text("")
        monkeypatch.setenv("FAKE_NGSPICE_FAIL_ONCE", str(marker))
        job = sample_conditions_job(strongarm, rows=3)
        backend = NgspiceBackend(payload_aware=False)
        with pytest.warns(RuntimeWarning, match="1/3 ngspice row runs"):
            metrics = backend.evaluate(strongarm, job)
        reference = BatchedMNABackend().evaluate(strongarm, job)
        for name in strongarm.metric_names:
            assert np.isnan(metrics[name][0])  # the failed row only
            np.testing.assert_allclose(
                metrics[name][1:],
                reference[name][1:],
                rtol=fake_module.TOLERANCE,
                atol=0,
            )

    def test_failed_row_raises_in_strict_mode(
        self, strongarm, fake_ngspice, monkeypatch
    ):
        monkeypatch.setenv("FAKE_NGSPICE_MODE", "exit3")
        job = sample_conditions_job(strongarm, rows=2)
        backend = NgspiceBackend(strict=True, payload_aware=False)
        with pytest.raises(NgspiceError, match="row 0 of 2"):
            backend.evaluate(strongarm, job)

    def test_placeholder_only_circuit_rejected_for_real_engines(
        self, fake_ngspice
    ):
        """A circuit with only placeholder measures emits no .meas card, so
        a real engine could never report a metric: that is a deployment
        error (raised even non-strict), not a per-run NaN degradation —
        otherwise every run would be refunded and a budget-capped loop
        would spin forever."""
        from repro.circuits.base import AnalogCircuit, SizingParameter
        from repro.variation.distributions import DeviceKind, DeviceSpec

        class PlaceholderProbe(AnalogCircuit):
            name = "placeholder_probe"

            def _build_parameters(self):
                return [SizingParameter("w", 1.0, 2.0, unit="um")]

            def _build_constraints(self):
                return {"margin": 1.0}

            def _build_devices(self):
                return [
                    DeviceSpec(
                        "D",
                        DeviceKind.NMOS,
                        width_of=lambda x: 0.04,
                        length_of=lambda x: 0.03,
                    )
                ]

            def _evaluate_physical_batch(self, x, corner, mismatch):
                return {"margin": 0.5 + 0.0 * mismatch["D"]["vth"]}

        probe = PlaceholderProbe()
        job = SimJob.conditions(
            probe.name, np.array([0.5]), (typical_corner(),), None
        )
        with pytest.raises(NgspiceError, match="placeholder"):
            NgspiceBackend(payload_aware=False).evaluate(probe, job)


class TestNgspiceFailureHandling:
    def test_nonzero_exit_degrades_to_nan(
        self, strongarm, fake_ngspice, monkeypatch
    ):
        monkeypatch.setenv("FAKE_NGSPICE_MODE", "exit3")
        job = sample_conditions_job(strongarm, rows=2)
        with pytest.warns(RuntimeWarning, match="exit 3"):
            metrics = NgspiceBackend().evaluate(strongarm, job)
        for name in strongarm.metric_names:
            assert metrics[name].shape == (2,)
            assert np.isnan(metrics[name]).all()

    def test_nonzero_exit_raises_in_strict_mode(
        self, strongarm, fake_ngspice, monkeypatch
    ):
        monkeypatch.setenv("FAKE_NGSPICE_MODE", "exit3")
        job = sample_conditions_job(strongarm, rows=2)
        with pytest.raises(NgspiceError, match="exit 3"):
            NgspiceBackend(strict=True).evaluate(strongarm, job)

    def test_strict_env_default(self, fake_ngspice, monkeypatch):
        monkeypatch.setenv(STRICT_ENV, "1")
        assert NgspiceBackend().strict
        monkeypatch.delenv(STRICT_ENV)
        assert not NgspiceBackend().strict
        assert NgspiceBackend(strict=True).strict

    def test_timeout_degrades_to_nan(self, strongarm, fake_ngspice, monkeypatch):
        monkeypatch.setenv("FAKE_NGSPICE_MODE", "hang")
        job = sample_conditions_job(strongarm, rows=1)
        backend = NgspiceBackend(timeout=1.0)
        with pytest.warns(RuntimeWarning, match="timed out"):
            metrics = backend.evaluate(strongarm, job)
        assert all(
            np.isnan(metrics[name]).all() for name in strongarm.metric_names
        )

    def test_partial_measures_are_nan_cells(
        self, strongarm, fake_ngspice, monkeypatch
    ):
        monkeypatch.setenv("FAKE_NGSPICE_MODE", "partial")
        job = sample_conditions_job(strongarm, rows=3)
        metrics = NgspiceBackend().evaluate(strongarm, job)
        reference = BatchedMNABackend().evaluate(strongarm, job)
        first = strongarm.metric_names[0]
        assert np.isnan(metrics[first][0])  # reported "failed"
        for name in strongarm.metric_names:
            assert np.isnan(metrics[name][2])  # whole row omitted
            np.testing.assert_allclose(  # intact cells still exact
                metrics[name][1], reference[name][1], rtol=1e-12, atol=0
            )

    def test_garbage_log_is_all_nan(self, strongarm, fake_ngspice, monkeypatch):
        monkeypatch.setenv("FAKE_NGSPICE_MODE", "garbage")
        job = sample_conditions_job(strongarm, rows=2)
        metrics = NgspiceBackend().evaluate(strongarm, job)
        assert all(
            np.isnan(metrics[name]).all() for name in strongarm.metric_names
        )

    def test_missing_executable_raises(self, strongarm, monkeypatch, tmp_path):
        monkeypatch.setenv(EXECUTABLE_ENV, str(tmp_path / "nope"))
        job = sample_conditions_job(strongarm, rows=1)
        with pytest.raises(NgspiceError, match="not found"):
            NgspiceBackend().evaluate(strongarm, job)


class TestNgspiceComposition:
    def test_composes_with_cache(self, strongarm, fake_ngspice, service_factory):
        service = service_factory(strongarm, backend="ngspice", cache=True)
        job = sample_conditions_job(strongarm, rows=2)
        first = service.run(job)
        second = service.run(job)
        assert not first.cached and second.cached
        assert service.budget.total == 2  # the hit charged nothing
        assert service.cache.hits == 1
        for name in strongarm.metric_names:
            np.testing.assert_array_equal(
                first.metrics[name], second.metrics[name]
            )

    def test_failure_nan_blocks_never_poison_the_cache(
        self, strongarm, fake_ngspice, service_factory, monkeypatch
    ):
        """A transient simulator failure (all-NaN degradation block) must
        not be memoized: once the simulator recovers, the same job gets a
        real evaluation instead of the cached failure forever."""
        service = service_factory(strongarm, backend="ngspice", cache=True)
        job = sample_conditions_job(strongarm, rows=2)
        monkeypatch.setenv("FAKE_NGSPICE_MODE", "exit3")
        with pytest.warns(RuntimeWarning):
            failed = service.run(job)
        assert np.isnan(failed.metrics[strongarm.metric_names[0]]).all()
        assert len(service.cache) == 0  # the NaN block was not stored
        monkeypatch.delenv("FAKE_NGSPICE_MODE")
        recovered = service.run(job)  # simulator healthy again
        assert not recovered.cached
        for name in strongarm.metric_names:
            assert np.isfinite(recovered.metrics[name]).all()
        assert service.run(job).cached  # the real result is what memoizes

    def test_nonstrict_failure_refunds_budget(
        self, strongarm, fake_ngspice, service_factory, monkeypatch
    ):
        """Graceful (non-raising) simulator failure accounts like the
        strict/raise path: a run that produced no metrics — the all-NaN
        degradation block the cache already refuses to store — is not
        counted, and its idempotency key is released so the retry charges
        exactly once."""
        service = service_factory(
            strongarm, backend="ngspice", idempotent_charges=True
        )
        job = sample_conditions_job(strongarm, rows=2)
        monkeypatch.setenv("FAKE_NGSPICE_MODE", "exit3")
        with pytest.warns(RuntimeWarning):
            failed = service.run(job)
        assert np.isnan(failed.metrics[strongarm.metric_names[0]]).all()
        assert service.budget.total == 0  # the charge was refunded
        monkeypatch.delenv("FAKE_NGSPICE_MODE")
        recovered = service.run(job)  # retry charges like a first attempt
        assert service.budget.total == 2
        for name in strongarm.metric_names:
            assert np.isfinite(recovered.metrics[name]).all()

    def test_all_failed_measures_is_a_result_not_a_failure(
        self, strongarm, fake_ngspice, service_factory, monkeypatch
    ):
        """The engine ran fine but every .measure reported ``failed`` (a
        design that simply doesn't switch): that is a genuine result —
        charged and cached — not the infrastructure-failure signature,
        which only FAILURE_NAN-tagged cells (never produced at all) carry."""
        monkeypatch.setenv("FAKE_NGSPICE_MODE", "allfail")
        service = service_factory(strongarm, backend="ngspice", cache=True)
        job = sample_conditions_job(strongarm, rows=2)
        first = service.run(job)
        for name in strongarm.metric_names:
            assert np.isnan(first.metrics[name]).all()
        assert service.budget.total == 2  # the engine ran: charged
        assert service.run(job).cached  # and the result memoizes
        assert service.budget.total == 2  # the hit charged nothing

    def test_failed_measure_cells_are_still_cacheable(
        self, strongarm, fake_ngspice, service_factory, monkeypatch
    ):
        monkeypatch.setenv("FAKE_NGSPICE_MODE", "failcell")
        service = service_factory(strongarm, backend="ngspice", cache=True)
        job = sample_conditions_job(strongarm, rows=3)
        first = service.run(job)
        assert np.isnan(first.metrics[strongarm.metric_names[0]][0])
        assert service.run(job).cached  # individual failed measures cache

    def test_fully_nan_rows_are_not_cached(
        self, strongarm, fake_ngspice, service_factory, monkeypatch
    ):
        """A row that produced no metrics at all (per-row flake / omitted
        from the log) must be re-simulated next time, not memoized."""
        monkeypatch.setenv("FAKE_NGSPICE_MODE", "partial")
        service = service_factory(strongarm, backend="ngspice", cache=True)
        job = sample_conditions_job(strongarm, rows=3)
        first = service.run(job)
        for name in strongarm.metric_names:
            assert np.isnan(first.metrics[name][2])  # whole row omitted
        assert len(service.cache) == 0
        monkeypatch.delenv("FAKE_NGSPICE_MODE")
        recovered = service.run(job)  # simulator healthy again
        assert not recovered.cached
        assert np.isfinite(recovered.metrics[strongarm.metric_names[0]][2])
        assert service.run(job).cached  # the full result is what memoizes

    def test_composes_with_sharding(
        self, strongarm, fake_ngspice, service_factory
    ):
        # workers=3 keeps this pool private to the ngspice tests: process
        # pools are cached per worker count and fork with a snapshot of the
        # environment, so reusing a pool created before the fake-simulator
        # fixture ran would resolve a stale executable path.
        service = service_factory(strongarm, backend="ngspice", workers=3)
        job = sample_conditions_job(strongarm, rows=9)
        sharded = service.run(job)
        reference = NgspiceBackend().evaluate(strongarm, job)
        assert service.budget.total == 9
        for name in strongarm.metric_names:
            np.testing.assert_array_equal(sharded.metrics[name], reference[name])


class TestNgspiceExperimentConfig:
    """Acceptance: backend="ngspice" drives a full tiny sizing loop."""

    def tiny_config(self, backend):
        from repro.api import ExperimentConfig

        return ExperimentConfig(
            circuit="sal",
            method="C",
            algorithm="glova",
            seeds=(0,),
            max_iterations=2,
            initial_samples=4,
            optimization_samples=2,
            verification_samples=2,
            backend=backend,
        )

    def test_sizing_loop_matches_batched_trajectory(self, fake_ngspice):
        from repro.api import run_sizing

        ngspice_report = run_sizing(self.tiny_config("ngspice"))
        batched_report = run_sizing(self.tiny_config("batched"))
        ng, ba = ngspice_report.runs[0], batched_report.runs[0]
        # Bit-exact measure logs => identical optimization trajectory.
        assert ng.simulations == ba.simulations
        assert ng.success == ba.success
        assert ng.iterations == ba.iterations
        assert ng.final_design == pytest.approx(ba.final_design, rel=1e-12)
        json.loads(ngspice_report.to_json())  # still fully serializable

    def test_unknown_backend_rejected_by_config(self):
        from repro.api import ExperimentConfig

        with pytest.raises(ValueError, match="simulation backend"):
            ExperimentConfig(backend="hspice")

    def test_cli_dry_run_accepts_ngspice(self, fake_ngspice, capsys, monkeypatch):
        from repro.__main__ import main

        monkeypatch.setenv(EXECUTABLE_ENV, fake_ngspice)
        assert (
            main(
                [
                    "--circuit",
                    "sal",
                    "--method",
                    "C",
                    "--backend",
                    "ngspice",
                    "--ngspice-executable",
                    fake_ngspice,
                    "--dry-run",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "ngspice" in out
        assert os.environ[EXECUTABLE_ENV] == fake_ngspice


# ----------------------------------------------------------------------
# Opt-in smoke test against a real ngspice binary
# ----------------------------------------------------------------------
@pytest.mark.requires_ngspice
def test_real_ngspice_runs_single_row_deck(strongarm):
    """One real deck through a real binary: single-row decks are plain
    valid ngspice, and whatever measures it manages to evaluate parse into
    the full-shape tensor (unevaluated ones stay NaN)."""
    job = SimJob.conditions(
        strongarm.name,
        np.full(strongarm.dimension, 0.5),
        (typical_corner(),),
        None,
    )
    deck = compile_job_deck(job, strongarm)
    run = NgspiceRunner(executable="ngspice", timeout=60.0).run_deck(
        deck.text, tag="smoke"
    )
    assert run.returncode == 0, run.describe_failure()
    metrics = parse_measure_log(
        run.log_text + "\n" + run.stdout, job.batch, strongarm.metric_names
    )
    for name in strongarm.metric_names:
        assert metrics[name].shape == (1,)
