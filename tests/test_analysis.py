"""Tests for result aggregation and table formatting (repro.analysis)."""

import numpy as np
import pytest

from repro.analysis import (
    ExperimentRunner,
    ExperimentSettings,
    MethodSummary,
    aggregate_results,
    format_ablation_table,
    format_comparison_table,
    normalize_runtimes,
)
from repro.analysis.metrics import sample_efficiency_gain
from repro.core.config import VerificationMethod
from repro.core.result import OptimizationResult


def make_result(success=True, iterations=10, sims=100, runtime=30.0):
    return OptimizationResult(
        success=success,
        iterations=iterations,
        simulations={
            "initial_sampling": sims // 4,
            "optimization": sims // 4,
            "verification": sims // 2,
            "total": sims,
        },
        runtime=runtime,
        method="C",
        circuit="strongarm_latch",
    )


class TestAggregation:
    def test_empty_results_rejected(self):
        with pytest.raises(ValueError):
            aggregate_results("glova", "C", [])

    def test_success_rate(self):
        results = [make_result(True), make_result(False), make_result(True)]
        summary = aggregate_results("glova", "C", results)
        assert summary.success_rate == pytest.approx(2 / 3)
        assert summary.runs == 3
        assert summary.successes == 2

    def test_averages_use_successful_runs_only(self):
        results = [
            make_result(True, iterations=10, sims=100),
            make_result(False, iterations=500, sims=9000),
        ]
        summary = aggregate_results("glova", "C", results)
        assert summary.mean_iterations == pytest.approx(10)
        assert summary.mean_simulations == pytest.approx(100)

    def test_all_failed_falls_back_to_every_run(self):
        results = [make_result(False, iterations=50), make_result(False, iterations=70)]
        summary = aggregate_results("glova", "C", results)
        assert summary.mean_iterations == pytest.approx(60)
        assert summary.success_rate == 0.0

    def test_normalize_runtimes_reference_is_one(self):
        summaries = [
            aggregate_results("glova", "C", [make_result(runtime=10.0)]),
            aggregate_results("pvtsizing", "C", [make_result(runtime=35.0)]),
        ]
        normalized = normalize_runtimes(summaries, reference_method="glova")
        by_method = {s.method: s for s in normalized}
        assert by_method["glova"].normalized_runtime == pytest.approx(1.0)
        assert by_method["pvtsizing"].normalized_runtime == pytest.approx(3.5)

    def test_sample_efficiency_gain(self):
        summaries = [
            aggregate_results("glova", "C", [make_result(sims=100)]),
            aggregate_results("pvtsizing", "C", [make_result(sims=800)]),
        ]
        gains = sample_efficiency_gain(summaries, reference_method="glova")
        assert gains["pvtsizing"] == pytest.approx(8.0)

    def test_as_row_keys(self):
        summary = aggregate_results("glova", "C", [make_result()])
        row = summary.as_row()
        assert set(row) == {
            "method",
            "rl_iterations",
            "simulations",
            "normalized_runtime",
            "success_rate",
        }


class TestTableFormatting:
    def _summaries(self):
        summaries = [
            aggregate_results("glova", "C", [make_result(runtime=10.0)]),
            aggregate_results("pvtsizing", "C", [make_result(runtime=30.0)]),
        ]
        return {"C": normalize_runtimes(summaries)}

    def test_comparison_table_contains_all_rows(self):
        text = format_comparison_table(self._summaries(), title="Table II (SAL)")
        assert "Table II (SAL)" in text
        assert "RL Iteration" in text
        assert "# Simulation" in text
        assert "Norm. Runtime" in text
        assert "Success Rate" in text
        assert "glova" in text
        assert "pvtsizing" in text

    def test_missing_scenario_rendered_as_dash(self):
        summaries = self._summaries()
        summaries["C-MCL"] = [
            aggregate_results("glova", "C-MCL", [make_result(runtime=10.0)])
        ]
        text = format_comparison_table(summaries)
        assert "-" in text

    def test_ablation_table_uses_same_layout(self):
        text = format_ablation_table(self._summaries(), title="Table III")
        assert "Table III" in text


class TestExperimentRunner:
    def test_settings_build_config(self):
        settings = ExperimentSettings(
            circuit_name="sal",
            verification=VerificationMethod.CORNER,
            seeds=(0,),
            max_iterations=5,
            initial_samples=10,
        )
        config = settings.build_config(seed=0)
        assert config.max_iterations == 5
        assert config.verification is VerificationMethod.CORNER

    def test_unknown_method_rejected(self):
        settings = ExperimentSettings(
            circuit_name="sal", verification=VerificationMethod.CORNER, seeds=(0,)
        )
        runner = ExperimentRunner(settings)
        with pytest.raises(KeyError):
            runner.run_method("simulated_annealing")

    def test_run_glova_single_seed(self):
        settings = ExperimentSettings(
            circuit_name="sal",
            verification=VerificationMethod.CORNER,
            seeds=(0,),
            max_iterations=40,
            initial_samples=30,
        )
        runner = ExperimentRunner(settings)
        result = runner.run_glova(seed=0)
        assert result.circuit == "strongarm_latch"
