"""Tests for transient analysis and noise helpers (repro.spice)."""

import numpy as np
import pytest

from repro.spice import (
    Capacitor,
    Circuit,
    GROUND,
    Resistor,
    VoltageSource,
    ktc_noise,
    mosfet_thermal_noise_current,
    solve_transient,
    thermal_noise_voltage,
)


def rc_circuit(resistance=1e3, capacitance=1e-9):
    circuit = Circuit("rc")
    circuit.add(VoltageSource("VIN", "in", GROUND, 1.0))
    circuit.add(Resistor("R1", "in", "out", resistance))
    circuit.add(Capacitor("C1", "out", GROUND, capacitance))
    return circuit


class TestTransient:
    def test_rc_step_response_reaches_supply(self):
        circuit = rc_circuit()
        result = solve_transient(
            circuit,
            stop_time=10e-6,
            time_step=20e-9,
            initial_conditions={"out": 0.0, "in": 1.0},
        )
        assert result.final_voltage("out") == pytest.approx(1.0, abs=0.01)

    def test_rc_time_constant(self):
        circuit = rc_circuit(resistance=1e3, capacitance=1e-9)  # tau = 1 us
        result = solve_transient(
            circuit,
            stop_time=5e-6,
            time_step=5e-9,
            initial_conditions={"out": 0.0, "in": 1.0},
        )
        crossing = result.crossing_time("out", 1.0 - np.exp(-1.0))
        assert crossing == pytest.approx(1e-6, rel=0.05)

    def test_crossing_time_none_when_never_crossed(self):
        circuit = rc_circuit()
        result = solve_transient(
            circuit,
            stop_time=1e-7,
            time_step=1e-9,
            initial_conditions={"out": 0.0, "in": 1.0},
        )
        assert result.crossing_time("out", 0.99) is None

    def test_source_waveform_drives_output(self):
        circuit = rc_circuit(resistance=1e2, capacitance=1e-12)  # very fast RC
        result = solve_transient(
            circuit,
            stop_time=1e-6,
            time_step=1e-9,
            initial_conditions={"out": 0.0, "in": 0.0},
            source_waveforms={"VIN": lambda t: 0.0 if t < 0.5e-6 else 1.0},
        )
        midpoint = result.voltage("out")[len(result.times) // 4]
        assert midpoint == pytest.approx(0.0, abs=0.01)
        assert result.final_voltage("out") == pytest.approx(1.0, abs=0.02)

    def test_ground_voltage_is_zero(self):
        circuit = rc_circuit()
        result = solve_transient(circuit, stop_time=1e-7, time_step=1e-9)
        assert np.allclose(result.voltage(GROUND), 0.0)

    def test_invalid_timing_rejected(self):
        with pytest.raises(ValueError):
            solve_transient(rc_circuit(), stop_time=0.0, time_step=1e-9)


class TestNoiseHelpers:
    def test_ktc_noise_room_temperature(self):
        # sqrt(kT/C) at 300 K for 1 pF is about 64 uV.
        assert ktc_noise(1e-12, 300.0) == pytest.approx(64e-6, rel=0.05)

    def test_ktc_noise_decreases_with_capacitance(self):
        assert ktc_noise(10e-15) > ktc_noise(1e-12)

    def test_ktc_requires_positive_capacitance(self):
        with pytest.raises(ValueError):
            ktc_noise(0.0)

    def test_mosfet_noise_current_scales_with_gm(self):
        assert mosfet_thermal_noise_current(2e-3) == pytest.approx(
            2 * mosfet_thermal_noise_current(1e-3)
        )

    def test_mosfet_noise_rejects_negative_gm(self):
        with pytest.raises(ValueError):
            mosfet_thermal_noise_current(-1e-3)

    def test_thermal_noise_voltage_decreases_with_gain(self):
        low_gain = thermal_noise_voltage(1e-3, 50e-15, gain=1.0)
        high_gain = thermal_noise_voltage(1e-3, 50e-15, gain=10.0)
        assert high_gain == pytest.approx(low_gain / 10.0)

    def test_thermal_noise_voltage_validation(self):
        with pytest.raises(ValueError):
            thermal_noise_voltage(1e-3, -1e-15)
        with pytest.raises(ValueError):
            thermal_noise_voltage(1e-3, 1e-15, gain=0.0)
