"""Tests for the mu-sigma evaluation (Eq. 7) and simulation reordering (Eq. 8-10)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mu_sigma import MuSigmaEvaluator
from repro.core.reordering import (
    h_scores,
    order_by_scores,
    pearson_correlation,
    t_score,
)
from repro.core.spec import Constraint, DesignSpec


@pytest.fixture
def spec():
    return DesignSpec([Constraint("power", 10.0), Constraint("delay", 5.0)])


@pytest.fixture
def evaluator(spec):
    return MuSigmaEvaluator(spec, beta2=4.0)


class TestMuSigmaEvaluator:
    def test_negative_beta2_rejected(self, spec):
        with pytest.raises(ValueError):
            MuSigmaEvaluator(spec, beta2=-1.0)

    def test_empty_samples_rejected(self, evaluator):
        with pytest.raises(ValueError):
            evaluator.evaluate([])

    def test_comfortable_margin_passes(self, evaluator):
        samples = [{"power": 5.0, "delay": 2.0}, {"power": 5.2, "delay": 2.1}]
        result = evaluator.evaluate(samples)
        assert result.passed
        assert result.worst_margin > 0

    def test_mean_violation_fails(self, evaluator):
        samples = [{"power": 12.0, "delay": 2.0}, {"power": 11.0, "delay": 2.1}]
        assert not evaluator.evaluate(samples).passed

    def test_high_variance_fails_even_with_good_mean(self, evaluator):
        # Mean power 8 < 10 but sigma 2.5 -> mean + 4*sigma = 18 > 10.
        samples = [{"power": 5.5, "delay": 2.0}, {"power": 10.5, "delay": 2.0}]
        assert not evaluator.evaluate(samples).passed

    def test_single_sample_degenerates_to_plain_check(self, evaluator):
        assert evaluator.evaluate([{"power": 9.9, "delay": 4.9}]).passed
        assert not evaluator.evaluate([{"power": 10.1, "delay": 4.9}]).passed

    def test_estimates_vector_order(self, spec, evaluator):
        samples = [{"power": 4.0, "delay": 2.0}]
        result = evaluator.evaluate(samples)
        vector = evaluator.estimates_vector(result)
        assert vector[0] == pytest.approx(4.0)
        assert vector[1] == pytest.approx(2.0)

    def test_estimate_equals_mean_plus_beta2_sigma(self, spec):
        evaluator = MuSigmaEvaluator(spec, beta2=2.0)
        samples = [{"power": 4.0, "delay": 1.0}, {"power": 6.0, "delay": 3.0}]
        result = evaluator.evaluate(samples)
        assert result.means["power"] == pytest.approx(5.0)
        assert result.stds["power"] == pytest.approx(1.0)
        assert result.estimates["power"] == pytest.approx(7.0)


class TestTScore:
    def test_worse_corner_scores_higher(self, spec, evaluator):
        mild = evaluator.evaluate([{"power": 3.0, "delay": 1.0}])
        severe = evaluator.evaluate([{"power": 9.0, "delay": 4.5}])
        assert t_score(spec, severe) > t_score(spec, mild)


class TestPearsonCorrelation:
    def test_matches_numpy_corrcoef(self, rng):
        samples = rng.normal(size=(50, 4))
        performance = 2.0 * samples[:, 1] - samples[:, 3] + 0.1 * rng.normal(size=50)
        correlation = pearson_correlation(samples, performance)
        for index in range(4):
            expected = np.corrcoef(samples[:, index], performance)[0, 1]
            assert correlation[index] == pytest.approx(expected, abs=1e-9)

    def test_constant_dimension_gives_zero(self, rng):
        samples = rng.normal(size=(20, 3))
        samples[:, 1] = 0.5
        correlation = pearson_correlation(samples, samples[:, 0])
        assert correlation[1] == 0.0

    def test_too_few_samples_gives_zeros(self):
        assert np.allclose(pearson_correlation(np.ones((1, 3)), np.ones(1)), 0.0)

    def test_length_mismatch_rejected(self, rng):
        with pytest.raises(ValueError):
            pearson_correlation(rng.normal(size=(10, 2)), rng.normal(size=8))

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 2**16))
    def test_correlation_bounded_property(self, seed):
        rng = np.random.default_rng(seed)
        samples = rng.normal(size=(30, 5))
        performance = rng.normal(size=30)
        correlation = pearson_correlation(samples, performance)
        assert np.all(correlation >= -1.0 - 1e-9)
        assert np.all(correlation <= 1.0 + 1e-9)


class TestHScores:
    def test_dangerous_conditions_rank_first(self, rng):
        """Mismatch vectors aligned with a performance-degrading direction score high."""
        correlation = np.array([-0.9, 0.1])  # dimension 0 hurts g when positive
        conditions = np.array([[3.0, 0.0], [0.0, 0.0], [-3.0, 0.0]])
        scores = h_scores(conditions, correlation)
        order = order_by_scores(scores)
        assert order[0] == 0  # the +3 on the harmful dimension goes first
        assert order[-1] == 2

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ValueError):
            h_scores(np.ones((4, 3)), np.ones(2))

    def test_order_by_scores_ascending(self):
        order = order_by_scores([3.0, 1.0, 2.0], descending=False)
        assert list(order) == [1, 2, 0]

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 2**16))
    def test_h_score_linear_in_condition_property(self, seed):
        rng = np.random.default_rng(seed)
        correlation = rng.uniform(-1, 1, size=4)
        condition = rng.normal(size=(1, 4))
        single = h_scores(condition, correlation)[0]
        doubled = h_scores(2 * condition, correlation)[0]
        assert doubled == pytest.approx(2 * single, rel=1e-9, abs=1e-12)
