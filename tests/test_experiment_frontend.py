"""Tests of the crash-safe multi-tenant experiment front end (PR 10).

Covers, roughly client-outward:

* the new SUBMIT/STATUS/CANCEL/BUSY frame types — round trips plus the
  fuzz battery (every truncation of a SUBMIT frame dies with a typed
  :class:`ProtocolError`);
* run identity — :func:`run_key` is deterministic, tenant-scoped, and
  insensitive to the fingerprint-excluded plumbing fields;
* the write-ahead journal — atomic records, unreadable records skipped;
* the ``repro serve --mode experiment`` daemon in-process — bit-identical
  execution against the local path, idempotent resubmission, admission
  control (BUSY shedding, tenant quotas, cancel), journal replay;
* overload shedding end-to-end — concurrent clients over a full queue:
  BUSY frames observed, every *accepted* run completes correctly;
* the job-mode satellites — bounded result retention (LRU + eviction
  stats) and graceful drain (in-flight work completes, SIGTERM exits 0);
* the acceptance property — SIGKILL the experiment daemon mid-run under
  a network fault schedule, restart it on the same journal, and the
  client's resumed run completes with a report (budget trajectory
  included) bit-identical to an uninterrupted in-process run, with the
  completed seed replayed from its checkpoint rather than re-simulated.

A ``stress``-marked soak (excluded from tier-1; ``scripts/stress.sh``)
hammers the front end with repeated kill/restart cycles.
"""

from __future__ import annotations

import glob
import json
import os
import re
import signal
import socket
import subprocess
import sys
import threading
import time

import numpy as np
import pytest

from repro import api
from repro.simulation.budget import SimulationPhase, TenantBudgetLedger
from repro.simulation.faults import (
    NetworkFaultSchedule,
    install_network_chaos,
)
from repro.simulation.frontend import (
    RUN_CANCELLED,
    RUN_DONE,
    RUN_QUEUED,
    ExperimentClient,
    ExperimentFrontend,
    ExperimentJournal,
    FrontendBusy,
    _Run,
    run_key,
)
from repro.simulation.protocol import (
    FrameType,
    ProtocolError,
    RemoteError,
    dumps_payload,
    encode_frame,
    loads_payload,
    read_frame_from_bytes,
    recv_frame,
    request_id_bytes,
    send_frame,
)
from repro.simulation.remote import RemoteBackend
from repro.simulation.server import SimulationServer
from repro.simulation.service import (
    BACKENDS,
    SimJob,
    SimulationBackend,
    resolve_backend,
)
from repro.variation.corners import typical_corner

TESTS_DIR = os.path.dirname(os.path.abspath(__file__))
SRC_DIR = os.path.join(os.path.dirname(TESTS_DIR), "src")


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------
#: Small-but-real sizing run: completes in well under a second locally.
_FAST_CONFIG = dict(
    circuit="sal",
    method="C",
    seeds=(0,),
    max_iterations=2,
    initial_samples=4,
    optimization_samples=2,
    verification_samples=3,
)

#: Two-seed run for the kill/restart acceptance test: seed 0's checkpoint
#: landing is the kill trigger, seed 1 is the work in flight.
_RESUME_CONFIG = dict(
    circuit="sal",
    method="C",
    seeds=(0, 1),
    max_iterations=3,
    initial_samples=6,
    optimization_samples=2,
    verification_samples=4,
)


def _config(**overrides):
    payload = dict(_FAST_CONFIG)
    payload.update(overrides)
    return api.ExperimentConfig(**payload)


def _comparable_report(report):
    payload = report.to_dict()
    payload.pop("config", None)  # checkpoint_dir/endpoints legitimately differ
    return json.dumps(payload, sort_keys=True, default=str)


def _submit_frames(config, tenant="default"):
    """(request_id, SUBMIT payload) exactly as ExperimentClient sends them."""
    rid = request_id_bytes(run_key(config, tenant))
    payload = dumps_payload({"config": config.to_dict(), "tenant": tenant})
    return rid, payload


@pytest.fixture(autouse=True)
def no_leaked_network_chaos():
    yield
    install_network_chaos(None)


@pytest.fixture()
def frontend(tmp_path):
    fe = ExperimentFrontend(str(tmp_path / "journal"))
    fe.start()
    yield fe
    fe.stop()


@pytest.fixture()
def unstarted_frontend(tmp_path):
    """A frontend whose workers never run: queued runs stay queued, which
    makes admission-control behaviour deterministic to test."""
    fe = ExperimentFrontend(str(tmp_path / "journal"), max_queue=1)
    yield fe
    fe.stop()


class _HandlerHarness:
    """Drive a frontend's connection handler over a socketpair."""

    def __init__(self, frontend):
        self.frontend = frontend
        self.server_sock, self.client_sock = socket.socketpair()

    def close(self):
        for sock in (self.server_sock, self.client_sock):
            try:
                sock.close()
            except OSError:
                pass

    def submit(self, config, tenant="default"):
        rid, payload = _submit_frames(config, tenant)
        assert self.frontend._handle_submit(self.server_sock, rid, payload)
        return self.reply()

    def reply(self):
        return recv_frame(self.client_sock)


# ----------------------------------------------------------------------
# New frame types: round trips + fuzz
# ----------------------------------------------------------------------
class TestExperimentFrames:
    def test_submit_round_trip(self):
        config = _config()
        rid, payload = _submit_frames(config, "tenant-a")
        frame = encode_frame(FrameType.SUBMIT, payload, rid)
        kind, got_rid, body = read_frame_from_bytes(frame)
        assert kind == FrameType.SUBMIT
        assert got_rid == rid
        decoded = loads_payload(body)
        assert decoded["tenant"] == "tenant-a"
        assert decoded["config"]["circuit"] == "sal"

    @pytest.mark.parametrize(
        "frame_type",
        [FrameType.STATUS, FrameType.CANCEL, FrameType.BUSY],
    )
    def test_control_frames_round_trip(self, frame_type):
        rid = bytes(range(32))
        payload = dumps_payload({"retry_after": 0.5})
        kind, got_rid, body = read_frame_from_bytes(
            encode_frame(frame_type, payload, rid)
        )
        assert kind == frame_type
        assert got_rid == rid
        assert loads_payload(body) == {"retry_after": 0.5}

    def test_every_submit_truncation_is_a_typed_error(self):
        rid, payload = _submit_frames(_config())
        frame = encode_frame(FrameType.SUBMIT, payload, rid)
        # Every header cut plus a sample of payload cuts (the payload is
        # large; exhaustive cutting is the job of the header fuzz).
        cuts = list(range(60)) + list(
            range(60, len(frame), max(1, len(frame) // 64))
        )
        for cut in cuts:
            with pytest.raises(ProtocolError):
                read_frame_from_bytes(frame[:cut])

    def test_corrupted_submit_fails_checksum(self):
        rid, payload = _submit_frames(_config())
        frame = bytearray(encode_frame(FrameType.SUBMIT, payload, rid))
        frame[len(frame) // 2] ^= 0xFF
        with pytest.raises(ProtocolError, match="checksum"):
            read_frame_from_bytes(bytes(frame))


# ----------------------------------------------------------------------
# Run identity
# ----------------------------------------------------------------------
class TestRunKey:
    def test_deterministic(self):
        assert run_key(_config(), "t") == run_key(_config(), "t")

    def test_tenant_scoped(self):
        assert run_key(_config(), "alice") != run_key(_config(), "bob")

    def test_sensitive_to_result_bearing_fields(self):
        assert run_key(_config(), "t") != run_key(
            _config(max_iterations=3), "t"
        )
        assert run_key(_config(), "t") != run_key(_config(seeds=(0, 1)), "t")

    def test_insensitive_to_plumbing_fields(self):
        base = run_key(_config(), "t")
        assert base == run_key(_config(checkpoint_dir="/elsewhere"), "t")
        assert base == run_key(_config(endpoints="10.0.0.1:7741"), "t")

    def test_is_a_valid_request_id(self):
        assert request_id_bytes(run_key(_config(), "t")).hex() == run_key(
            _config(), "t"
        )


# ----------------------------------------------------------------------
# Write-ahead journal
# ----------------------------------------------------------------------
class TestJournal:
    def test_record_and_load_round_trip(self, tmp_path):
        journal = ExperimentJournal(str(tmp_path))
        run = _Run("ab" * 32, "alice", _config().to_dict())
        path = journal.record(run)
        assert os.path.exists(path)
        records = journal.load_all()
        assert len(records) == 1
        assert records[0]["run_id"] == "ab" * 32
        assert records[0]["tenant"] == "alice"
        assert records[0]["state"] == RUN_QUEUED

    def test_records_are_replaced_atomically(self, tmp_path):
        journal = ExperimentJournal(str(tmp_path))
        run = _Run("cd" * 32, "bob", _config().to_dict())
        journal.record(run)
        run.state = RUN_DONE
        run.report = {"runs": []}
        journal.record(run)
        records = journal.load_all()
        assert len(records) == 1
        assert records[0]["state"] == RUN_DONE
        # No temp-file litter left behind either.
        assert [
            name
            for name in os.listdir(journal.runs_dir)
            if name.endswith(".tmp")
        ] == []

    def test_unreadable_records_are_skipped(self, tmp_path):
        journal = ExperimentJournal(str(tmp_path))
        journal.record(_Run("ef" * 32, "t", _config().to_dict()))
        with open(
            os.path.join(journal.runs_dir, "broken.json"), "w"
        ) as handle:
            handle.write("{ not json")
        with open(
            os.path.join(journal.runs_dir, "wrongversion.json"), "w"
        ) as handle:
            json.dump({"version": 999, "run_id": "x", "config": {}}, handle)
        records = journal.load_all()
        assert [record["run_id"] for record in records] == ["ef" * 32]


# ----------------------------------------------------------------------
# End-to-end: submit → result, bit-identical to the local path
# ----------------------------------------------------------------------
class TestFrontendEndToEnd:
    def test_submitted_run_matches_local_run(self, frontend):
        config = _config()
        reference = api.run_experiment(config)
        report = api.run_experiment(
            config, endpoint=frontend.endpoint, tenant="alice"
        )
        assert _comparable_report(report) == _comparable_report(reference)
        assert frontend.stats["accepted"] == 1
        assert frontend.stats["completed"] == 1
        # The completed run is booked against its tenant, phase-split.
        ledger = frontend.ledger.snapshot()
        assert ledger["alice"]["total"] == report.total_simulations

    def test_resubmission_is_idempotent(self, frontend):
        config = _config()
        client = ExperimentClient(frontend.endpoint, tenant="alice")
        first = client.run(config)
        second = client.run(config)
        assert _comparable_report(first) == _comparable_report(second)
        assert frontend.stats["accepted"] == 1  # one run, not two
        assert frontend.stats["resubmissions"] == 1
        # And the tenant paid for it exactly once.
        assert (
            frontend.ledger.snapshot()["alice"]["total"]
            == first.total_simulations
        )

    def test_failed_run_surfaces_as_typed_remote_error(
        self, frontend, monkeypatch
    ):
        # A run that blows up inside the daemon becomes a journaled
        # failure and a typed error on the wire — never a hang.
        def _boom(config, **kwargs):
            raise RuntimeError("engine exploded")

        monkeypatch.setattr(api, "run_experiment", _boom)
        client = ExperimentClient(frontend.endpoint)
        with pytest.raises(RemoteError) as excinfo:
            client.run(_config())
        assert excinfo.value.kind == "experiment"
        assert "engine exploded" in str(excinfo.value)
        assert frontend.stats["failed"] == 1
        records = frontend.journal.load_all()
        assert records[0]["state"] == "failed"
        assert "engine exploded" in records[0]["error"]["message"]


# ----------------------------------------------------------------------
# Admission control (deterministic, workers never running)
# ----------------------------------------------------------------------
class TestAdmissionControl:
    def test_queue_full_sheds_with_busy(self, unstarted_frontend):
        harness = _HandlerHarness(unstarted_frontend)
        try:
            kind, _rid, payload = harness.submit(_config())
            assert kind == FrameType.STATUS
            assert loads_payload(payload)["state"] == RUN_QUEUED
            kind, _rid, payload = harness.submit(_config(seeds=(1,)))
            assert kind == FrameType.BUSY
            busy = loads_payload(payload)
            assert busy["reason"] == "run queue full"
            assert busy["retry_after"] > 0
            assert unstarted_frontend.stats["busy_rejections"] == 1
            # The shed run was never registered — nothing to lose.
            assert unstarted_frontend.stats["accepted"] == 1
        finally:
            harness.close()

    def test_draining_frontend_sheds_with_busy(self, unstarted_frontend):
        unstarted_frontend._draining.set()
        harness = _HandlerHarness(unstarted_frontend)
        try:
            kind, _rid, payload = harness.submit(_config())
            assert kind == FrameType.BUSY
            assert loads_payload(payload)["reason"] == "draining"
        finally:
            harness.close()

    def test_tenant_quota_gates_admission(self, tmp_path):
        fe = ExperimentFrontend(
            str(tmp_path / "journal"), tenant_quota=100
        )
        # "greedy" has already burnt its quota; "frugal" has not.
        fe.ledger.charge_run(
            "greedy", "earlier-run", {"optimization": 150}
        )
        harness = _HandlerHarness(fe)
        try:
            kind, _rid, payload = harness.submit(_config(), tenant="greedy")
            assert kind == FrameType.ERROR
            assert loads_payload(payload)["kind"] == "quota"
            assert fe.stats["quota_rejections"] == 1
            kind, _rid, _payload = harness.submit(_config(), tenant="frugal")
            assert kind == FrameType.STATUS
        finally:
            harness.close()
            fe.stop()

    def test_cancel_queued_run(self, unstarted_frontend):
        harness = _HandlerHarness(unstarted_frontend)
        try:
            config = _config()
            rid, _payload = _submit_frames(config)
            harness.submit(config)
            assert unstarted_frontend._handle_cancel(harness.server_sock, rid)
            kind, _rid, payload = harness.reply()
            assert kind == FrameType.ERROR
            assert loads_payload(payload)["kind"] == "cancelled"
            assert unstarted_frontend.stats["cancelled"] == 1
            # The cancellation is durable.
            records = unstarted_frontend.journal.load_all()
            assert records[0]["state"] == RUN_CANCELLED
        finally:
            harness.close()

    def test_malformed_config_is_typed_config_error(self, unstarted_frontend):
        harness = _HandlerHarness(unstarted_frontend)
        try:
            payload = dumps_payload(
                {
                    "config": dict(
                        _config().to_dict(), circuit="no-such-circuit"
                    ),
                    "tenant": "t",
                }
            )
            # A bad config is the client's problem, not a stream-integrity
            # problem: the handler answers and keeps the connection.
            assert unstarted_frontend._handle_submit(
                harness.server_sock, b"\x11" * 32, payload
            )
            kind, _rid, body = harness.reply()
            assert kind == FrameType.ERROR
            decoded = loads_payload(body)
            assert decoded["kind"] == "config"
            assert "no-such-circuit" in decoded["message"]
            assert unstarted_frontend.stats["accepted"] == 0
        finally:
            harness.close()

    def test_unknown_run_status_is_typed_error(self, unstarted_frontend):
        harness = _HandlerHarness(unstarted_frontend)
        try:
            assert unstarted_frontend._handle_status(
                harness.server_sock, b"\x99" * 32
            )
            kind, _rid, payload = harness.reply()
            assert kind == FrameType.ERROR
            assert loads_payload(payload)["kind"] == "unknown-run"
        finally:
            harness.close()

    def test_mismatched_run_key_is_rejected(self, unstarted_frontend):
        harness = _HandlerHarness(unstarted_frontend)
        try:
            _rid, payload = _submit_frames(_config())
            assert not unstarted_frontend._handle_submit(
                harness.server_sock, b"\x42" * 32, payload
            )
            kind, _rid2, body = harness.reply()
            assert kind == FrameType.ERROR
            assert loads_payload(body)["kind"] == "protocol"
            assert unstarted_frontend.stats["accepted"] == 0
        finally:
            harness.close()

    def test_job_frames_rejected_on_experiment_endpoint(self, frontend):
        with socket.create_connection(frontend.address, timeout=5.0) as sock:
            send_frame(
                sock,
                FrameType.REQUEST,
                dumps_payload({"not": "a job"}),
                request_id=b"\x01" * 32,
            )
            kind, _rid, payload = recv_frame(sock)
            assert kind == FrameType.ERROR
            assert loads_payload(payload)["kind"] == "protocol"


# ----------------------------------------------------------------------
# Overload shedding end-to-end: BUSY observed, no accepted run lost
# ----------------------------------------------------------------------
class TestOverloadShedding:
    def test_concurrent_submissions_shed_but_none_lost(self, tmp_path):
        fe = ExperimentFrontend(
            str(tmp_path / "journal"), run_workers=1, max_queue=1
        )
        fe.start()
        configs = [_config(seeds=(seed,)) for seed in (0, 1, 2)]
        references = {
            seed: api.run_experiment(config)
            for seed, config in zip((0, 1, 2), configs)
        }
        reports, errors = {}, {}

        def _submit(seed, config):
            client = ExperimentClient(
                fe.endpoint,
                tenant="shared",
                poll_interval=0.05,
                busy_attempts=50,
            )
            try:
                reports[seed] = client.run(config)
            except BaseException as error:  # noqa: BLE001
                errors[seed] = error

        threads = [
            threading.Thread(target=_submit, args=(seed, config))
            for seed, config in zip((0, 1, 2), configs)
        ]
        try:
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
        finally:
            fe.stop()
        assert errors == {}
        # With one worker and a queue of one, three simultaneous
        # submissions cannot all be admitted: at least one was shed and
        # had to retry — and still completed correctly.
        assert fe.stats["busy_rejections"] >= 1
        for seed in (0, 1, 2):
            assert _comparable_report(reports[seed]) == _comparable_report(
                references[seed]
            )
        # Every *accepted* run reached a journaled terminal state.
        states = [record["state"] for record in fe.journal.load_all()]
        assert states == [RUN_DONE] * fe.stats["accepted"]

    def test_client_raises_frontend_busy_when_retries_exhausted(
        self, tmp_path
    ):
        fe = ExperimentFrontend(str(tmp_path / "journal"), max_queue=0)
        fe.start()
        try:
            client = ExperimentClient(fe.endpoint, busy_attempts=2)
            started = time.monotonic()
            with pytest.raises(FrontendBusy):
                client.run(_config())
            assert client.busy_sheds == 3  # initial try + 2 retries
            # Backoff actually waited between sheds (seeded, not a spin).
            assert time.monotonic() - started > 0.05
        finally:
            fe.stop()


# ----------------------------------------------------------------------
# Journal replay (crash recovery, in-process)
# ----------------------------------------------------------------------
class TestJournalReplay:
    def test_interrupted_run_is_resumed_by_successor(self, tmp_path):
        journal_dir = str(tmp_path / "journal")
        config = _config()
        # Daemon A accepts the run and dies before executing it: all that
        # survives is the journal record (written before the ack).
        first = ExperimentFrontend(journal_dir)
        harness = _HandlerHarness(first)
        try:
            kind, _rid, _payload = harness.submit(config, tenant="alice")
            assert kind == FrameType.STATUS
        finally:
            harness.close()
            first.stop()
        # Daemon B on the same journal replays and executes it.
        second = ExperimentFrontend(journal_dir)
        assert second.stats["replayed_runs"] == 1
        second.start()
        try:
            report = api.run_experiment(
                config, endpoint=second.endpoint, tenant="alice"
            )
        finally:
            second.stop()
        assert _comparable_report(report) == _comparable_report(
            api.run_experiment(config)
        )
        assert second.stats["resubmissions"] == 1  # attached, not duplicated
        assert second.stats["accepted"] == 0
        records = second.journal.load_all()
        assert records[0]["state"] == RUN_DONE

    def test_completed_run_is_served_without_reexecution(self, tmp_path):
        journal_dir = str(tmp_path / "journal")
        config = _config()
        first = ExperimentFrontend(journal_dir)
        first.start()
        try:
            reference = api.run_experiment(config, endpoint=first.endpoint)
        finally:
            first.stop()
        second = ExperimentFrontend(journal_dir)
        second.start()
        try:
            report = api.run_experiment(config, endpoint=second.endpoint)
        finally:
            second.stop()
        assert _comparable_report(report) == _comparable_report(reference)
        assert second.stats["completed"] == 0  # nothing re-ran
        assert second.stats["resubmissions"] == 1
        # Replay also re-booked the tenant's charge, exactly once.
        assert (
            second.ledger.snapshot()["default"]["total"]
            == report.total_simulations
        )


# ----------------------------------------------------------------------
# Satellite: bounded result retention in the job-mode daemon
# ----------------------------------------------------------------------
def _conditions_job(circuit, seed):
    rng = np.random.default_rng(seed)
    return SimJob.conditions(
        circuit.name,
        rng.uniform(0.2, 0.8, circuit.dimension),
        (typical_corner(),),
        rng.standard_normal((4, circuit.mismatch_dimension)),
        phase=SimulationPhase.OPTIMIZATION,
    )


class TestRetentionBound:
    def test_lru_eviction_by_deposit_time(self, strongarm):
        with SimulationServer(
            heartbeat_interval=0.1,
            retention_seconds=600.0,
            retention_max_entries=2,
        ) as server:
            backend = RemoteBackend(endpoints=server.endpoint, attempts=2)
            jobs = [_conditions_job(strongarm, seed) for seed in (1, 2, 3)]
            for job in jobs:
                backend.evaluate(strongarm, job)
            assert server.stats["executions"] == 3
            assert backend.fallback_used == 0
            with server._lock:
                retained = list(server._retained)
            # Oldest deposit evicted, newest two kept, eviction counted.
            assert retained == [jobs[1].job_id, jobs[2].job_id]
            assert server.stats["retention_evictions"] == 1

    def test_rejects_nonpositive_bound(self):
        with pytest.raises(ValueError):
            SimulationServer(retention_max_entries=0)


# ----------------------------------------------------------------------
# Satellite: graceful drain for the job-mode daemon
# ----------------------------------------------------------------------
class _SlowBackend(SimulationBackend):
    """Terminal backend slow enough for a drain to race an execution."""

    name = "slowdrain-test"
    sleep_seconds = 0.6

    def __init__(self):
        self.inner = resolve_backend("batched")

    def evaluate(self, circuit, job):
        time.sleep(self.sleep_seconds)
        return self.inner.evaluate(circuit, job)


@pytest.fixture()
def slow_backend():
    BACKENDS[_SlowBackend.name] = _SlowBackend
    yield
    BACKENDS.pop(_SlowBackend.name, None)


class TestJobModeDrain:
    def test_drain_completes_inflight_execution(self, strongarm, slow_backend):
        server = SimulationServer(
            backend=_SlowBackend.name, heartbeat_interval=0.1
        ).start()
        address = server.address
        job = _conditions_job(strongarm, seed=7)
        reference = resolve_backend("batched").evaluate(strongarm, job)
        outcome = {}

        def _evaluate():
            backend = RemoteBackend(endpoints=server.endpoint, attempts=1)
            try:
                outcome["metrics"] = backend.evaluate(strongarm, job)
                outcome["fallback_used"] = backend.fallback_used
            except BaseException as error:  # noqa: BLE001
                outcome["error"] = error

        thread = threading.Thread(target=_evaluate)
        thread.start()
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            with server._lock:
                if server._inflight:
                    break
            time.sleep(0.01)
        else:
            server.stop()
            pytest.fail("execution never became in-flight")
        server.drain(timeout=30.0)
        thread.join(timeout=30.0)
        # The leased execution completed and its result reached the
        # client despite the drain racing it — over the wire, not via
        # the client's local fallback.
        assert "error" not in outcome, outcome.get("error")
        assert outcome["fallback_used"] == 0
        for name in strongarm.metric_names:
            np.testing.assert_array_equal(
                outcome["metrics"][name], reference[name]
            )
        # And the daemon really stopped accepting.
        with pytest.raises(OSError):
            socket.create_connection(address, timeout=0.5)


# ----------------------------------------------------------------------
# Satellite: SIGTERM/SIGINT → drain → exit 0 (subprocess, both modes)
# ----------------------------------------------------------------------
def _spawn_serve_daemon(extra_env=None, *extra_args):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    env.update(extra_env or {})
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--port",
            "0",
            "--heartbeat-interval",
            "0.2",
            *extra_args,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    # A resuming daemon logs its journal replay before the listening
    # line; scan until the endpoint appears (or startup clearly failed).
    lines = []
    for _ in range(50):
        line = proc.stdout.readline()
        if not line:
            break
        lines.append(line)
        match = re.search(r"listening on (\S+):(\d+)", line)
        if match:
            return proc, f"{match.group(1)}:{match.group(2)}"
    proc.kill()
    raise RuntimeError(f"repro serve failed to start: {lines!r}")


def _spawn_experiment_daemon(journal_dir, *extra_args):
    return _spawn_serve_daemon(
        None,
        "--mode",
        "experiment",
        "--journal-dir",
        str(journal_dir),
        *extra_args,
    )


class TestSignals:
    def test_job_mode_sigterm_exits_zero(self):
        proc, _endpoint = _spawn_serve_daemon()
        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=30) == 0

    def test_experiment_mode_sigterm_exits_zero(self, tmp_path):
        proc, _endpoint = _spawn_experiment_daemon(tmp_path / "journal")
        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=30) == 0

    def test_experiment_mode_requires_journal_dir(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_DIR + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        completed = subprocess.run(
            [sys.executable, "-m", "repro", "serve", "--mode", "experiment"],
            capture_output=True,
            text=True,
            env=env,
            timeout=60,
        )
        assert completed.returncode != 0
        assert "--journal-dir" in completed.stderr


# ----------------------------------------------------------------------
# Acceptance: SIGKILL mid-run under network chaos, restart, resume
# ----------------------------------------------------------------------
class TestKillRestartAcceptance:
    def test_sigkill_mid_run_resumes_bit_identically(self, tmp_path):
        """The ISSUE's acceptance property.

        A client submits a two-seed run under a frame-drop fault
        schedule; the daemon is SIGKILLed the instant seed 0's checkpoint
        lands (seed 1 in flight); a successor on the same journal replays
        the run.  The client — which never learns any of this happened
        beyond latency — receives a report bit-identical to an
        uninterrupted local run, budget trajectory included, and the
        journal proves seed 0 was replayed from its checkpoint rather
        than re-simulated.
        """
        reference = api.run_experiment(api.ExperimentConfig(**_RESUME_CONFIG))
        journal_dir = tmp_path / "journal"
        proc, endpoint = _spawn_experiment_daemon(journal_dir)
        port = endpoint.rsplit(":", 1)[1]
        schedule = NetworkFaultSchedule(
            mode="drop", faults=2, ticket_dir=str(tmp_path / "tickets")
        )
        install_network_chaos(schedule)
        outcome = {}

        def _client():
            try:
                outcome["report"] = api.run_experiment(
                    api.ExperimentConfig(**_RESUME_CONFIG),
                    endpoint=endpoint,
                    tenant="acceptance",
                    client_options=dict(
                        poll_interval=0.05,
                        activity_timeout=5.0,
                        reconnect_timeout=120.0,
                    ),
                )
            except BaseException as error:  # noqa: BLE001
                outcome["error"] = error

        thread = threading.Thread(target=_client)
        thread.start()
        successor = None
        try:
            # Kill the daemon the moment seed 0's checkpoint is durable:
            # deterministic "mid-run", no timer races.
            pattern = str(journal_dir / "checkpoints" / "*" / "seed-0.json")
            deadline = time.monotonic() + 120.0
            while time.monotonic() < deadline:
                if glob.glob(pattern):
                    break
                time.sleep(0.005)
            else:
                pytest.fail("seed 0 checkpoint never appeared")
            proc.kill()  # SIGKILL: no drain, no goodbye
            proc.wait(timeout=10)
            # Restart on the same port and journal (brief retry while the
            # kernel releases the port).
            for _attempt in range(100):
                try:
                    successor, _endpoint2 = _spawn_experiment_daemon(
                        journal_dir, "--host", "127.0.0.1", "--port", port
                    )
                    break
                except RuntimeError:
                    time.sleep(0.1)
            else:
                pytest.fail("successor daemon never bound the port")
            thread.join(timeout=120.0)
            assert not thread.is_alive(), "client never completed"
        finally:
            schedule.disarm()
            install_network_chaos(None)
            proc.kill()
            if successor is not None:
                successor.send_signal(signal.SIGTERM)
        assert "error" not in outcome, outcome.get("error")
        assert _comparable_report(outcome["report"]) == _comparable_report(
            reference
        )
        # The journal proves zero re-simulation of the completed seed:
        # the resumed execution replayed seed 0 from its checkpoint.
        records = []
        for path in glob.glob(str(journal_dir / "runs" / "*.json")):
            with open(path) as handle:
                records.append(json.load(handle))
        done = [record for record in records if record["state"] == RUN_DONE]
        assert len(done) == 1
        assert 0 in done[0]["replayed_seeds"]
        assert done[0]["tenant"] == "acceptance"
        if successor is not None:
            assert successor.wait(timeout=30) == 0  # drained cleanly


# ----------------------------------------------------------------------
# Tenant ledger unit coverage
# ----------------------------------------------------------------------
class TestTenantBudgetLedger:
    def test_quota_admission_and_idempotent_charges(self):
        ledger = TenantBudgetLedger(quota=10)
        assert ledger.admits("a")
        assert ledger.remaining("a") == 10
        assert ledger.charge_run("a", "run-1", {"optimization": 6})
        assert ledger.admits("a")
        assert not ledger.charge_run("a", "run-1", {"optimization": 6})
        assert ledger.remaining("a") == 4
        # Completed work may overshoot the cap; admission then closes.
        assert ledger.charge_run("a", "run-2", {"verification": 9})
        assert not ledger.admits("a")
        assert ledger.remaining("a") == 0
        # Other tenants are unaffected.
        assert ledger.admits("b")

    def test_unlimited_ledger_always_admits(self):
        ledger = TenantBudgetLedger()
        ledger.charge_run("a", "run-1", {"initial_sampling": 10**6})
        assert ledger.admits("a")
        assert ledger.remaining("a") is None

    def test_snapshot_is_phase_split(self):
        ledger = TenantBudgetLedger()
        ledger.charge_run(
            "a", "r", {"initial_sampling": 1, "optimization": 2, "verification": 3}
        )
        assert ledger.snapshot() == {
            "a": {
                "initial_sampling": 1,
                "optimization": 2,
                "verification": 3,
                "total": 6,
            }
        }


# ----------------------------------------------------------------------
# Stress soak (opt-in: pytest -m stress, scripts/stress.sh)
# ----------------------------------------------------------------------
@pytest.mark.stress
class TestFrontendSoak:
    def test_kill_restart_cycles_never_lose_a_run(self, tmp_path):
        """Repeatedly SIGKILL and restart the daemon while a stream of
        runs flows through it; every run must eventually complete with a
        report bit-identical to its local twin."""
        journal_dir = tmp_path / "journal"
        configs = [_config(seeds=(seed,)) for seed in range(6)]
        references = [api.run_experiment(config) for config in configs]
        proc, endpoint = _spawn_experiment_daemon(journal_dir)
        port = endpoint.rsplit(":", 1)[1]
        reports, errors = {}, {}

        def _client(index, config):
            client = ExperimentClient(
                endpoint,
                tenant=f"tenant-{index % 2}",
                poll_interval=0.05,
                busy_attempts=100,
                reconnect_timeout=300.0,
            )
            try:
                reports[index] = client.run(config)
            except BaseException as error:  # noqa: BLE001
                errors[index] = error

        threads = [
            threading.Thread(target=_client, args=(index, config))
            for index, config in enumerate(configs)
        ]
        for thread in threads:
            thread.start()
        try:
            for _cycle in range(3):
                time.sleep(1.0)
                proc.kill()
                proc.wait(timeout=10)
                for _attempt in range(200):
                    try:
                        proc, _endpoint = _spawn_experiment_daemon(
                            journal_dir, "--port", port
                        )
                        break
                    except RuntimeError:
                        time.sleep(0.1)
                else:
                    pytest.fail("daemon never came back")
            for thread in threads:
                thread.join(timeout=300.0)
        finally:
            proc.kill()
        assert errors == {}
        for index, reference in enumerate(references):
            assert _comparable_report(reports[index]) == _comparable_report(
                reference
            )
