"""Tests for the risk-sensitive RL agent (Algorithm 1)."""

import numpy as np
import pytest

from repro.core.agent import RiskSensitiveAgent
from repro.core.config import GlovaConfig
from repro.core.reward import FEASIBLE_REWARD


@pytest.fixture
def config():
    return GlovaConfig(seed=0, gradient_steps_per_iteration=10, hidden_size=32)


@pytest.fixture
def agent(config, rng):
    return RiskSensitiveAgent(design_dimension=5, config=config, rng=rng)


class TestAgentBasics:
    def test_update_requires_data(self, agent):
        with pytest.raises(RuntimeError):
            agent.update()

    def test_propose_stays_in_unit_box(self, agent, rng):
        design = rng.uniform(size=5)
        proposal = agent.propose(design)
        assert proposal.shape == (5,)
        assert np.all(proposal >= 0.0) and np.all(proposal <= 1.0)

    def test_exploration_noise_decays_to_floor(self, agent, rng):
        design = rng.uniform(size=5)
        for _ in range(3000):
            agent.propose(design)
        assert agent.exploration_noise == pytest.approx(agent.NOISE_FLOOR)

    def test_observe_fills_buffer(self, agent, rng):
        agent.observe(rng.uniform(size=5), 0.1)
        assert len(agent.buffer) == 1

    def test_ensemble_size_follows_config(self, rng):
        full = RiskSensitiveAgent(4, GlovaConfig(seed=0), rng)
        ablated = RiskSensitiveAgent(
            4, GlovaConfig(seed=0, use_ensemble_critic=False), rng
        )
        assert full.critic.ensemble_size == GlovaConfig().ensemble_size
        assert ablated.critic.ensemble_size == 1
        assert ablated.critic.beta1 == 0.0

    def test_best_buffered_design(self, agent, rng):
        good = rng.uniform(size=5)
        agent.observe(rng.uniform(size=5), -0.5)
        agent.observe(good, 0.2)
        assert np.allclose(agent.best_buffered_design(), good)


class TestAgentLearning:
    def test_update_returns_finite_losses(self, agent, rng):
        for _ in range(30):
            agent.observe(rng.uniform(size=5), rng.uniform(-1.0, 0.2))
        summary = agent.update()
        assert np.isfinite(summary.critic_loss)
        assert np.isfinite(summary.actor_loss)
        assert summary.gradient_steps == 10

    def test_critic_learns_reward_gradient(self, rng):
        """On a landscape where reward grows with x, the bound must too."""
        config = GlovaConfig(seed=1, gradient_steps_per_iteration=40, hidden_size=32)
        agent = RiskSensitiveAgent(3, config, np.random.default_rng(1))
        for _ in range(200):
            design = agent.rng.uniform(size=3)
            reward = min(FEASIBLE_REWARD, float(design.mean()) - 0.6)
            agent.observe(design, reward)
        for _ in range(10):
            agent.update()
        low = agent.predicted_bound(np.full(3, 0.1))
        high = agent.predicted_bound(np.full(3, 0.9))
        assert high > low

    def test_policy_moves_towards_feasible_region(self, rng):
        """After training, the actor should propose designs with a higher
        predicted bound than an arbitrary starting point."""
        config = GlovaConfig(
            seed=2, gradient_steps_per_iteration=40, hidden_size=32, exploration_noise=0.0
        )
        agent = RiskSensitiveAgent(3, config, np.random.default_rng(2))
        for _ in range(200):
            design = agent.rng.uniform(size=3)
            reward = min(FEASIBLE_REWARD, float(design.mean()) - 0.6)
            agent.observe(design, reward)
        start = np.full(3, 0.3)
        agent.actor.pretrain_towards(np.tile(start, (8, 1)), start, steps=200)
        for _ in range(15):
            agent.update()
        proposal = agent.actor.act(start)
        assert agent.predicted_bound(proposal) >= agent.predicted_bound(start) - 0.05
