"""Tests for the service-oriented simulation API and the experiment facade.

Covers the PR-3 redesign surface:

* :class:`SimJob` content hashing (stability, equality, shard slicing);
* :class:`CachingBackend` hit/miss behavior and its budget accounting;
* the idempotent ``SimulationBudget.charge`` path (double-charge hazard);
* scalar-vs-batched backend equivalence on all three paper circuits;
* design-axis sharding through the uniform job dispatcher;
* the circuit registry redesign (decorator, factories, aliases);
* :class:`ExperimentConfig` dict/JSON round trip; and
* a ``python -m repro`` CLI smoke test.
"""

import json
import os
import subprocess
import sys

import numpy as np
import pytest

from repro.circuits import DramCoreSenseAmp, FloatingInverterAmplifier, StrongArmLatch
from repro.circuits.registry import (
    available_circuits,
    get_circuit,
    register_circuit_factory,
    registered_class,
    registered_entry,
)
from repro.simulation import (
    BatchedMNABackend,
    CachingBackend,
    CircuitSimulator,
    ReferenceScalarBackend,
    SimJob,
    SimulationBudget,
    SimulationPhase,
    SimulationService,
    resolve_backend,
)
from repro.variation.corners import (
    ProcessCorner,
    PVTCorner,
    full_corner_set,
    typical_corner,
)

# Circuit fixtures (paper_circuit, strongarm, ...) and the seeded_mismatch /
# service_factory helpers live in conftest.py, shared with the loop-batching
# and verification suites.
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


# ----------------------------------------------------------------------
# SimJob value object
# ----------------------------------------------------------------------
class TestSimJob:
    def make_job(self, seed=0):
        rng = np.random.default_rng(seed)
        x = rng.uniform(0.2, 0.8, size=14)
        mismatch = rng.standard_normal((4, 20))
        return SimJob.conditions(
            "strongarm_latch", x, (typical_corner(),), mismatch
        )

    def test_hash_is_stable_and_content_keyed(self):
        first, second = self.make_job(), self.make_job()
        assert first is not second
        assert first == second
        assert first.job_id == second.job_id
        assert hash(first) == hash(second)
        # Usable as a cache key.
        assert {first: "hit"}[second] == "hit"

    def test_hash_changes_with_content(self):
        base = self.make_job(seed=0)
        other = self.make_job(seed=1)
        assert base != other
        assert base.job_id != other.job_id
        # Corners participate in the digest too.
        moved = SimJob.conditions(
            "strongarm_latch",
            base.designs[0],
            (PVTCorner(ProcessCorner.SS, 0.8, -40.0),),
            base.mismatch,
        )
        assert moved.job_id != base.job_id

    def test_hash_distinguishes_rounded_corner_displays(self):
        # PVTCorner.name rounds vdd to one decimal; the digest must use the
        # raw floats so physically different corners never collide.
        base = self.make_job()
        low = SimJob.conditions(
            "strongarm_latch",
            base.designs[0],
            (PVTCorner(ProcessCorner.TT, 0.82, 27.0),),
            base.mismatch,
        )
        high = SimJob.conditions(
            "strongarm_latch",
            base.designs[0],
            (PVTCorner(ProcessCorner.TT, 0.84, 27.0),),
            base.mismatch,
        )
        assert low.corners[0].name == high.corners[0].name
        assert low.job_id != high.job_id

    def test_job_does_not_freeze_caller_arrays(self):
        x = np.full(14, 0.5)
        mismatch = np.zeros((4, 20))
        SimJob.conditions("strongarm_latch", x, (typical_corner(),), mismatch)
        mismatch[0, 0] = 1.0  # the caller's array must stay writable
        x[0] = 0.9

    def test_batch_and_cost(self):
        job = self.make_job()
        assert job.batch == 4
        assert job.cost == 4
        designs = np.random.default_rng(2).uniform(size=(6, 14))
        design_job = SimJob.design_batch(
            "strongarm_latch", designs, typical_corner()
        )
        assert design_job.batch == 6
        assert design_job.cost == 6

    def test_shard_slices_rows(self):
        job = self.make_job()
        shard = job.shard(1, 3)
        assert shard.batch == 2
        assert np.array_equal(shard.mismatch, job.mismatch[1:3])
        assert shard.job_id != job.job_id

    def test_validation(self):
        x = np.zeros(14)
        with pytest.raises(ValueError, match="at least one corner"):
            SimJob.conditions("sal", x, (), None)
        with pytest.raises(ValueError, match="lengths differ"):
            SimJob.conditions(
                "sal",
                x,
                (typical_corner(), typical_corner()),
                np.zeros((3, 20)),
            )
        with pytest.raises(ValueError, match="nominal mismatch"):
            SimJob(
                circuit_name="sal",
                designs=np.zeros((2, 14)),
                corners=(typical_corner(),),
                mismatch=np.zeros((2, 20)),
                axis="designs",
            )

    def test_jobs_are_immutable(self):
        job = self.make_job()
        with pytest.raises((ValueError, RuntimeError)):
            job.designs[0, 0] = 1.0
        with pytest.raises((ValueError, RuntimeError)):
            job.mismatch[0, 0] = 1.0


# ----------------------------------------------------------------------
# Budget idempotency + caching
# ----------------------------------------------------------------------
class TestBudgetIdempotentCharge:
    def test_same_job_id_charges_once(self):
        budget = SimulationBudget()
        assert budget.charge(SimulationPhase.OPTIMIZATION, 5, job_id="job-a")
        assert not budget.charge(SimulationPhase.OPTIMIZATION, 5, job_id="job-a")
        assert budget.total == 5
        assert budget.charge(SimulationPhase.OPTIMIZATION, 2, job_id="job-b")
        assert budget.total == 7

    def test_plain_charges_accumulate(self):
        budget = SimulationBudget()
        budget.charge(SimulationPhase.VERIFICATION, 3)
        budget.charge(SimulationPhase.VERIFICATION, 3)
        assert budget.total == 6

    def test_over_cap_charge_leaves_no_trace(self):
        """A rejected over-cap charge rolls back and keeps its key free, so
        a retry aborts again instead of running uncounted."""
        budget = SimulationBudget(max_simulations=4)
        budget.charge(SimulationPhase.OPTIMIZATION, 3, job_id="ok")
        for _ in range(2):  # the retry behaves exactly like the first try
            with pytest.raises(SimulationBudget.BudgetExhausted):
                budget.charge(SimulationPhase.OPTIMIZATION, 2, job_id="over")
        assert budget.total == 3
        assert "over" not in budget.charged_jobs

    def test_cache_hit_charges_respect_both_flags(self, strongarm):
        """charge_cache_hits must keep charging even with idempotent_charges
        on — a hit never consumes the real run's idempotency key."""
        service = SimulationService(
            strongarm,
            cache=True,
            charge_cache_hits=True,
            idempotent_charges=True,
        )
        x = np.full(strongarm.dimension, 0.5)
        job = SimJob.conditions(strongarm.name, x, (typical_corner(),), None)
        service.run(job)
        service.run(job)
        service.run(job)
        assert service.budget.total == 3

    def test_reset_forgets_job_ids(self):
        budget = SimulationBudget()
        budget.charge(SimulationPhase.OPTIMIZATION, 1, job_id="job-a")
        budget.reset()
        assert budget.charge(SimulationPhase.OPTIMIZATION, 1, job_id="job-a")
        assert budget.total == 1

    def test_cap_raises_before_evaluation(self, strongarm):
        """The legacy contract: ``max_simulations`` aborts before any work."""

        class CountingBackend(BatchedMNABackend):
            def __init__(self):
                self.calls = 0

            def evaluate(self, circuit, job):
                self.calls += 1
                return super().evaluate(circuit, job)

        backend = CountingBackend()
        service = SimulationService(
            strongarm,
            budget=SimulationBudget(max_simulations=3),
            backend=backend,
        )
        job = SimJob.conditions(
            strongarm.name,
            np.full(strongarm.dimension, 0.5),
            (typical_corner(),),
            np.zeros((5, strongarm.mismatch_dimension)),
        )
        with pytest.raises(SimulationBudget.BudgetExhausted):
            service.run(job)
        assert backend.calls == 0

    def test_service_idempotent_charges(self, strongarm):
        service = SimulationService(strongarm, idempotent_charges=True)
        x = np.full(strongarm.dimension, 0.5)
        job = SimJob.conditions(strongarm.name, x, (typical_corner(),), None)
        service.run(job)
        service.run(job)  # a retry of the identical request
        assert service.budget.total == 1

    def test_idempotent_charges_are_per_phase(self, strongarm):
        """Re-simulating the same block in another phase is still charged."""
        from dataclasses import replace

        service = SimulationService(strongarm, idempotent_charges=True)
        x = np.full(strongarm.dimension, 0.5)
        job = SimJob.conditions(
            strongarm.name,
            x,
            (typical_corner(),),
            None,
            SimulationPhase.OPTIMIZATION,
        )
        service.run(job)
        service.run(replace(job, phase=SimulationPhase.VERIFICATION))
        snapshot = service.budget.snapshot()
        assert snapshot["optimization"] == 1
        assert snapshot["verification"] == 1


class TestCachingBackend:
    def test_hit_charges_zero_budget(self, strongarm, seeded_mismatch):
        service = SimulationService(strongarm, cache=True)
        x = np.full(strongarm.dimension, 0.4)
        mismatch = seeded_mismatch(strongarm, x, 6)
        job = SimJob.conditions(
            strongarm.name, x, (typical_corner(),), mismatch.samples
        )
        first = service.run(job)
        assert not first.cached
        assert service.budget.total == 6
        second = service.run(job)
        assert second.cached
        assert service.budget.total == 6  # hit = zero charge
        assert service.cache.hits == 1
        assert service.cache.misses == 1
        for name in strongarm.metric_names:
            assert np.array_equal(first.metrics[name], second.metrics[name])

    def test_charge_cache_hits_restores_paper_counting(self, strongarm):
        service = SimulationService(strongarm, cache=True, charge_cache_hits=True)
        x = np.full(strongarm.dimension, 0.4)
        job = SimJob.conditions(strongarm.name, x, (typical_corner(),), None)
        service.run(job)
        service.run(job)
        assert service.budget.total == 2

    def test_hit_returns_fresh_arrays(self, strongarm):
        cache = CachingBackend(BatchedMNABackend())
        x = np.full(strongarm.dimension, 0.4)
        job = SimJob.conditions(strongarm.name, x, (typical_corner(),), None)
        first = cache.run(strongarm, job)
        first.metrics[strongarm.metric_names[0]][0] = -1.0
        second = cache.run(strongarm, job)
        assert second.metrics[strongarm.metric_names[0]][0] != -1.0

    def test_distinct_jobs_miss(self, strongarm):
        service = SimulationService(strongarm, cache=True)
        x = np.full(strongarm.dimension, 0.4)
        service.run(SimJob.conditions(strongarm.name, x, (typical_corner(),), None))
        service.run(
            SimJob.conditions(
                strongarm.name, x, (PVTCorner(ProcessCorner.FF, 0.8, 80.0),), None
            )
        )
        assert service.cache.misses == 2
        assert service.budget.total == 2

    def test_mismatched_circuit_rejected(self, strongarm):
        service = SimulationService(strongarm)
        job = SimJob.conditions(
            "floating_inverter_amplifier", np.zeros(6), (typical_corner(),), None
        )
        with pytest.raises(ValueError, match="targets circuit"):
            service.run(job)


# ----------------------------------------------------------------------
# Backend equivalence + sharding
# ----------------------------------------------------------------------
class TestScalarVsBatchedBackend:
    def simulators(self, circuit):
        return (
            CircuitSimulator(circuit, backend="batched"),
            CircuitSimulator(circuit, backend="scalar"),
        )

    def test_mismatch_set_equivalent(self, paper_circuit, seeded_mismatch):
        circuit = paper_circuit
        batched, scalar = self.simulators(circuit)
        x = np.full(circuit.dimension, 0.55)
        mismatch = seeded_mismatch(circuit, x, 8)
        fast = batched.simulate_mismatch_set(x, typical_corner(), mismatch)
        slow = scalar.simulate_mismatch_set(x, typical_corner(), mismatch)
        assert batched.budget.total == scalar.budget.total == 8
        for one, two in zip(fast, slow):
            for name in circuit.metric_names:
                assert one.metrics[name] == pytest.approx(
                    two.metrics[name], rel=0, abs=1e-12
                )

    def test_corner_sweep_equivalent(self, paper_circuit):
        circuit = paper_circuit
        batched, scalar = self.simulators(circuit)
        x = np.full(circuit.dimension, 0.45)
        corners = full_corner_set()
        fast = batched.simulate_corners(x, corners)
        slow = scalar.simulate_corners(x, corners)
        for one, two in zip(fast, slow):
            assert one.corner == two.corner
            for name in circuit.metric_names:
                assert one.metrics[name] == pytest.approx(
                    two.metrics[name], rel=0, abs=1e-12
                )

    def test_design_batch_equivalent(self, paper_circuit):
        circuit = paper_circuit
        batched, scalar = self.simulators(circuit)
        designs = np.random.default_rng(11).uniform(
            0.2, 0.8, size=(5, circuit.dimension)
        )
        fast = batched.simulate_designs(designs)
        slow = scalar.simulate_designs(designs)
        for one, two in zip(fast, slow):
            for name in circuit.metric_names:
                assert one.metrics[name] == pytest.approx(
                    two.metrics[name], rel=0, abs=1e-12
                )


class TestDesignAxisSharding:
    def test_sharded_design_batch_identical(self, strongarm):
        designs = np.random.default_rng(7).uniform(
            0.2, 0.8, size=(8, strongarm.dimension)
        )
        single = CircuitSimulator(strongarm, workers=1).simulate_designs(designs)
        with CircuitSimulator(strongarm, workers=2) as sharded_sim:
            sharded = sharded_sim.simulate_designs(designs)
            assert sharded_sim.budget.total == 8
        for fast, slow in zip(sharded, single):
            for name in strongarm.metric_names:
                assert fast.metrics[name] == slow.metrics[name]

    def test_unknown_backend_rejected(self):
        with pytest.raises(KeyError, match="unknown simulation backend"):
            resolve_backend("hspice")


# ----------------------------------------------------------------------
# Registry redesign
# ----------------------------------------------------------------------
class TestRegistry:
    def test_builtins_and_aliases(self):
        assert available_circuits() == [
            "strongarm_latch",
            "floating_inverter_amplifier",
            "dram_core_ocsa",
        ]
        assert isinstance(get_circuit("sal"), StrongArmLatch)
        assert isinstance(get_circuit("DRAM"), DramCoreSenseAmp)
        assert registered_class("strongarm_latch") is StrongArmLatch
        assert registered_class("nonexistent") is None

    def test_ladder_netlist_factory(self):
        ladder = get_circuit("common_source_ladder", stages=3, filter_nodes=1)
        assert ladder.name == "cs_ladder_3x1"
        # Parameterized: a different shape on request.
        assert get_circuit("cs_ladder", stages=2).name.startswith("cs_ladder_2")
        entry = registered_entry("common_source_ladder")
        assert entry.kind == "netlist"
        assert registered_class("common_source_ladder") is None

    def test_duplicate_name_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_circuit_factory("sal", lambda: None)

    def test_unknown_circuit_error_lists_options(self):
        with pytest.raises(KeyError, match="strongarm_latch"):
            get_circuit("no_such_circuit")


# ----------------------------------------------------------------------
# Experiment facade
# ----------------------------------------------------------------------
class TestExperimentConfig:
    def test_json_round_trip(self):
        from repro.api import ExperimentConfig

        config = ExperimentConfig(
            circuit="fia",
            method="C-MCL",
            algorithm="pvtsizing",
            seeds=(0, 1),
            max_iterations=12,
            verification_samples=4,
            backend="scalar",
            workers=2,
            cache_simulations=True,
            overrides={"use_reordering": False},
        )
        clone = ExperimentConfig.from_json(config.to_json())
        assert clone == config
        assert clone.to_dict() == config.to_dict()
        assert json.loads(config.to_json())["seeds"] == [0, 1]
        # Frozen value object: usable as a dict key (overrides excluded
        # from the generated hash).
        assert {config: "report"}[clone] == "report"

    def test_rejects_unknown_fields_and_values(self):
        from repro.api import ExperimentConfig

        with pytest.raises(ValueError, match="unknown ExperimentConfig fields"):
            ExperimentConfig.from_dict({"circus": "sal"})
        with pytest.raises(ValueError, match="verification method"):
            ExperimentConfig(method="corner-ish")
        with pytest.raises(ValueError, match="algorithm"):
            ExperimentConfig(algorithm="gradient_descent")
        with pytest.raises(ValueError, match="sizing circuit"):
            ExperimentConfig(circuit="common_source_ladder")
        with pytest.raises(ValueError, match="at least one seed"):
            ExperimentConfig(seeds=())

    def test_glova_config_plumbs_service_knobs(self):
        from repro.api import ExperimentConfig

        config = ExperimentConfig(
            circuit="sal", workers=3, backend="scalar", cache_simulations=True
        )
        glova = config.glova_config(seed=0)
        operational = glova.operational()
        assert operational.workers == 3
        assert operational.backend == "scalar"
        assert operational.cache_simulations

    def test_run_baseline_requires_baseline(self):
        from repro.api import ExperimentConfig, run_baseline

        with pytest.raises(ValueError, match="baseline algorithm"):
            run_baseline(ExperimentConfig(algorithm="glova"))


class TestFacadeRuns:
    def test_random_search_report_is_serializable(self):
        from repro.api import ExperimentConfig, run_baseline

        config = ExperimentConfig(
            circuit="sal",
            method="C",
            algorithm="random_search",
            seeds=(0,),
            max_iterations=2,
        )
        report = run_baseline(config)
        assert len(report.runs) == 1
        payload = json.loads(report.to_json())
        assert payload["config"]["circuit"] == "sal"
        assert payload["runs"][0]["simulations"]["total"] > 0
        assert report.total_simulations == payload["runs"][0]["simulations"]["total"]


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestCommandLine:
    def run_cli(self, *argv):
        env = dict(os.environ)
        src = os.path.join(REPO_ROOT, "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        return subprocess.run(
            [sys.executable, "-m", "repro", *argv],
            capture_output=True,
            text=True,
            env=env,
            cwd=REPO_ROOT,
            timeout=120,
        )

    def test_dry_run_smoke(self):
        result = self.run_cli("--circuit", "sal", "--method", "C", "--dry-run")
        assert result.returncode == 0, result.stderr
        assert "dry run" in result.stdout
        assert "strongarm_latch" in result.stdout
        assert "Predefined corners:   30" in result.stdout

    def test_list_circuits(self):
        result = self.run_cli("--list-circuits")
        assert result.returncode == 0, result.stderr
        assert "strongarm_latch" in result.stdout
        assert "common_source_ladder" in result.stdout

    def test_netlist_circuit_rejected_for_sizing(self):
        result = self.run_cli("--circuit", "common_source_ladder", "--dry-run")
        assert result.returncode != 0
        assert "netlist factory" in result.stderr

    def test_no_cache_flag_overrides_config_file(self, tmp_path):
        config_path = tmp_path / "experiment.json"
        config_path.write_text(
            json.dumps({"circuit": "sal", "cache_simulations": True})
        )
        result = self.run_cli(
            "--config", str(config_path), "--no-cache", "--dry-run"
        )
        assert result.returncode == 0, result.stderr
        assert "cache=off" in result.stdout
