"""Equivalence suite for the batched control loop.

PR 1 batched the simulator; this suite pins down the layers above it:

* design-axis batching (``evaluate_design_batch`` / ``simulate_designs``),
* the corners × mismatch-sets mega-batch (``simulate_corner_sweep``),
* TuRBO's batched objective (identical trajectory to the scalar schedule),
* the optimizer seed phase through the mega-batch (identical buffers),
* the baselines' batched population sampling, and
* multiprocessing sharding (bit-identical to single-process).
"""

import numpy as np
import pytest

from repro.baselines import RobustAnalogOptimizer
from repro.circuits import StrongArmLatch
from repro.core.config import GlovaConfig, VerificationMethod
from repro.core.optimizer import GlovaOptimizer
from repro.core.turbo import TurboSampler
from repro.simulation import CircuitSimulator, SimulationPhase
from repro.variation.corners import ProcessCorner, PVTCorner, full_corner_set, typical_corner

# The paper-circuit parametrization (paper_circuit) and the deterministic
# mismatch_sampler factory are shared conftest.py fixtures.
TOLERANCE = 1e-9


class TestDesignAxisBatching:
    def test_evaluate_design_batch_matches_scalar(self, paper_circuit):
        circuit = paper_circuit
        rng = np.random.default_rng(3)
        designs = rng.uniform(0.1, 0.9, size=(7, circuit.dimension))
        corner = PVTCorner(ProcessCorner.SF, 0.8, -40.0)
        batch = circuit.evaluate_design_batch(designs, corner)
        for index in range(len(designs)):
            scalar = circuit.evaluate(designs[index], corner)
            for name in circuit.metric_names:
                assert batch[name][index] == pytest.approx(
                    scalar[name], abs=TOLERANCE
                )

    def test_denormalize_batch_matches_scalar(self, paper_circuit):
        circuit = paper_circuit
        rng = np.random.default_rng(4)
        designs = rng.uniform(0.0, 1.0, size=(5, circuit.dimension))
        batch = circuit.denormalize_batch(designs)
        for index in range(len(designs)):
            assert np.array_equal(batch[index], circuit.denormalize(designs[index]))

    def test_simulate_designs_records_and_budget(
        self, paper_circuit, simulator_factory
    ):
        circuit = paper_circuit
        simulator = simulator_factory(circuit)
        rng = np.random.default_rng(5)
        designs = rng.uniform(0.2, 0.8, size=(6, circuit.dimension))
        records = simulator.simulate_designs(designs)
        assert simulator.budget.snapshot()["initial_sampling"] == 6
        for index, record in enumerate(records):
            scalar = circuit.evaluate(designs[index], typical_corner())
            for name in circuit.metric_names:
                assert record.metrics[name] == pytest.approx(
                    scalar[name], abs=TOLERANCE
                )


class TestCornerSweepMegaBatch:
    def test_matches_per_corner_mismatch_sets(self, strongarm, mismatch_sampler):
        x = np.full(strongarm.dimension, 0.55)
        corners = list(full_corner_set())
        sets = [
            mismatch_sampler(strongarm).sample(strongarm.denormalize(x), 3)
            for _ in corners
        ]

        mega = CircuitSimulator(strongarm)
        grouped = mega.simulate_corner_sweep(
            x, corners, sets, phase=SimulationPhase.INITIAL_SAMPLING
        )
        assert mega.budget.snapshot()["initial_sampling"] == 3 * len(corners)

        sequential = CircuitSimulator(strongarm)
        for corner, mismatch_set, records in zip(corners, sets, grouped):
            reference = sequential.simulate_mismatch_set(
                x, corner, mismatch_set, phase=SimulationPhase.INITIAL_SAMPLING
            )
            assert len(records) == len(reference) == 3
            for fast, slow in zip(records, reference):
                assert fast.corner == corner
                for name in strongarm.metric_names:
                    assert fast.metrics[name] == pytest.approx(
                        slow.metrics[name], abs=TOLERANCE
                    )

    def test_rejects_mismatched_lengths(self, strongarm):
        simulator = CircuitSimulator(strongarm)
        x = np.full(strongarm.dimension, 0.5)
        with pytest.raises(ValueError, match="one mismatch set per corner"):
            simulator.simulate_corner_sweep(x, list(full_corner_set()), [])


class TestTurboBatchedObjective:
    @staticmethod
    def scalar_objective(design):
        # Feasible (reward 0.2) inside a corner of the cube, so the
        # feasible-target stop is exercised too.
        return 0.2 if design[0] > 0.8 and design[1] > 0.6 else float(-np.sum(design**2))

    def run_sampler(self, batched: bool):
        sampler = TurboSampler(
            dimension=4, rng=np.random.default_rng(17), batch_size=3
        )
        if batched:
            return sampler.run(
                None,
                max_evaluations=40,
                feasible_target=2,
                objective_batch=lambda designs: np.array(
                    [self.scalar_objective(design) for design in designs]
                ),
            )
        return sampler.run(
            self.scalar_objective, max_evaluations=40, feasible_target=2
        )

    def test_batched_trajectory_identical_to_scalar(self):
        scalar = self.run_sampler(batched=False)
        batched = self.run_sampler(batched=True)
        assert scalar.evaluations == batched.evaluations
        assert np.array_equal(scalar.designs, batched.designs)
        assert np.array_equal(scalar.rewards, batched.rewards)
        assert len(scalar.feasible_designs) == len(batched.feasible_designs)

    def test_requires_some_objective(self):
        sampler = TurboSampler(dimension=2, rng=np.random.default_rng(0))
        with pytest.raises(ValueError, match="objective"):
            sampler.run(None, max_evaluations=5)


class TestSeedPhaseMegaBatch:
    def make_optimizer(self, seed=11):
        config = GlovaConfig(
            verification=VerificationMethod.CORNER_LOCAL_MC,
            optimization_samples=3,
            verification_samples=6,
            initial_samples=10,
            max_iterations=2,
            seed=seed,
        )
        return GlovaOptimizer(StrongArmLatch(), config)

    def test_seed_buffers_match_sequential_schedule(self):
        mega = self.make_optimizer()
        reference = self.make_optimizer()

        # Rewire the reference optimizer onto the strictly sequential
        # per-corner schedule the seed phase used before mega-batching.
        simulator = reference.simulator

        def sequential_sweep(x, corners, mismatch_sets, phase):
            return [
                simulator.simulate_mismatch_set(x, corner, mismatch_set, phase=phase)
                for corner, mismatch_set in zip(corners, mismatch_sets)
            ]

        reference.simulator.simulate_corner_sweep = sequential_sweep

        designs = [
            np.full(mega.circuit.dimension, 0.45),
            np.full(mega.circuit.dimension, 0.7),
        ]
        mega._seed_buffers([design.copy() for design in designs])
        reference._seed_buffers([design.copy() for design in designs])

        assert mega.budget.total == reference.budget.total
        for corner in mega.operational.corners:
            assert mega.last_worst.reward_of(corner) == pytest.approx(
                reference.last_worst.reward_of(corner), abs=TOLERANCE
            )
        assert np.allclose(
            mega.agent.buffer.all_rewards(),
            reference.agent.buffer.all_rewards(),
            atol=TOLERANCE,
        )


class TestRobustAnalogBatchedSampling:
    def test_population_rewards_match_scalar(self, strongarm):
        optimizer = RobustAnalogOptimizer(
            strongarm,
            GlovaConfig(seed=9, initial_samples=8),
            random_initial_samples=8,
        )
        best = optimizer._random_initial_sampling()
        designs = optimizer.agent.buffer.all_designs()
        rewards = optimizer.agent.buffer.all_rewards()
        assert len(designs) == 8
        for design, reward in zip(designs, rewards):
            assert reward == pytest.approx(
                optimizer.typical_reward(design), abs=TOLERANCE
            )
        assert float(np.max(rewards)) == pytest.approx(
            optimizer.typical_reward(best), abs=TOLERANCE
        )


class TestWorkerSharding:
    def test_sharded_mismatch_sweep_identical(
        self, strongarm, mismatch_sampler, simulator_factory
    ):
        x = np.full(strongarm.dimension, 0.5)
        mismatch_set = mismatch_sampler(strongarm).sample(
            strongarm.denormalize(x), 8
        )
        single = simulator_factory(strongarm, workers=1)
        sharded = simulator_factory(strongarm, workers=2)
        reference = single.simulate_mismatch_set(x, typical_corner(), mismatch_set)
        records = sharded.simulate_mismatch_set(x, typical_corner(), mismatch_set)
        assert sharded.budget.total == 8
        for fast, slow in zip(records, reference):
            for name in strongarm.metric_names:
                assert fast.metrics[name] == slow.metrics[name]

    def test_sharded_corner_sweep_identical(
        self, fia, mismatch_sampler, simulator_factory
    ):
        x = np.full(fia.dimension, 0.5)
        corners = list(full_corner_set())
        sets = [
            mismatch_sampler(fia, seed=33).sample(fia.denormalize(x), 2)
            for _ in corners
        ]
        single = simulator_factory(fia, workers=1).simulate_corner_sweep(
            x, corners, sets
        )
        sharded = simulator_factory(fia, workers=2).simulate_corner_sweep(
            x, corners, sets
        )
        for group_single, group_sharded in zip(single, sharded):
            for fast, slow in zip(group_sharded, group_single):
                for name in fia.metric_names:
                    assert fast.metrics[name] == slow.metrics[name]

    def test_small_batches_stay_in_process(
        self, strongarm, mismatch_sampler, simulator_factory
    ):
        # Below MIN_ROWS_PER_WORKER * workers the sharded path is bypassed;
        # results are identical either way.
        x = np.full(strongarm.dimension, 0.5)
        mismatch_set = mismatch_sampler(strongarm).sample(strongarm.denormalize(x), 2)
        sharded = simulator_factory(strongarm, workers=4)
        records = sharded.simulate_mismatch_set(x, typical_corner(), mismatch_set)
        assert len(records) == 2
