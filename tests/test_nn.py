"""Tests for the numpy neural-network building blocks (repro.core.nn)."""

import numpy as np
import pytest

from repro.core.nn import AdamOptimizer, DenseLayer, MultiLayerPerceptron


class TestDenseLayer:
    def test_forward_shape(self, rng):
        layer = DenseLayer(4, 3, rng=rng)
        outputs = layer.forward(np.zeros((5, 4)))
        assert outputs.shape == (5, 3)

    def test_unknown_activation_rejected(self):
        with pytest.raises(ValueError):
            DenseLayer(2, 2, activation="softplus")

    def test_backward_before_forward_rejected(self, rng):
        layer = DenseLayer(2, 2, rng=rng)
        with pytest.raises(RuntimeError):
            layer.backward(np.zeros((1, 2)))

    def test_zero_grad(self, rng):
        layer = DenseLayer(2, 2, rng=rng)
        layer.forward(np.ones((1, 2)))
        layer.backward(np.ones((1, 2)))
        assert np.any(layer.grad_weights != 0)
        layer.zero_grad()
        assert np.all(layer.grad_weights == 0)


class TestMlpGradients:
    def test_parameter_gradient_matches_finite_difference(self, rng):
        network = MultiLayerPerceptron([3, 8, 1], rng=rng)
        inputs = rng.normal(size=(4, 3))
        targets = rng.normal(size=(4, 1))

        def loss_value():
            predictions = network.forward(inputs, cache=False)
            return float(np.mean((predictions - targets) ** 2))

        predictions = network.forward(inputs, cache=True)
        grad = 2.0 * (predictions - targets) / predictions.shape[0]
        network.zero_grad()
        network.backward(grad)

        weight = network.layers[0].weights
        analytic = network.layers[0].grad_weights[0, 0]
        epsilon = 1e-6
        weight[0, 0] += epsilon
        loss_plus = loss_value()
        weight[0, 0] -= 2 * epsilon
        loss_minus = loss_value()
        weight[0, 0] += epsilon
        numeric = (loss_plus - loss_minus) / (2 * epsilon)
        assert analytic == pytest.approx(numeric, rel=1e-4, abs=1e-8)

    def test_input_gradient_matches_finite_difference(self, rng):
        network = MultiLayerPerceptron([3, 8, 1], rng=rng)
        x = rng.normal(size=(1, 3))
        network.forward(x, cache=True)
        analytic = network.input_gradient(np.ones((1, 1)))[0]

        epsilon = 1e-6
        numeric = np.zeros(3)
        for index in range(3):
            x_plus, x_minus = x.copy(), x.copy()
            x_plus[0, index] += epsilon
            x_minus[0, index] -= epsilon
            numeric[index] = (
                network.forward(x_plus, cache=False)[0, 0]
                - network.forward(x_minus, cache=False)[0, 0]
            ) / (2 * epsilon)
        assert np.allclose(analytic, numeric, rtol=1e-4, atol=1e-7)

    def test_input_gradient_does_not_touch_parameter_grads(self, rng):
        network = MultiLayerPerceptron([3, 4, 1], rng=rng)
        network.zero_grad()
        network.forward(np.ones((2, 3)), cache=True)
        network.input_gradient(np.ones((2, 1)))
        assert all(np.all(g == 0) for g in network.gradients())


class TestMlpTraining:
    def test_regression_converges(self, rng):
        network = MultiLayerPerceptron([1, 16, 16, 1], rng=rng)
        optimizer = AdamOptimizer(network, learning_rate=5e-3)
        inputs = np.linspace(-1, 1, 64).reshape(-1, 1)
        targets = np.sin(2.0 * inputs)

        first_loss = None
        for _ in range(400):
            predictions = network.forward(inputs, cache=True)
            error = predictions - targets
            loss = float(np.mean(error**2))
            if first_loss is None:
                first_loss = loss
            optimizer.zero_grad()
            network.backward(2.0 * error / error.shape[0])
            optimizer.step()
        assert loss < first_loss * 0.1

    def test_sigmoid_output_bounded(self, rng):
        network = MultiLayerPerceptron(
            [4, 8, 4], output_activation="sigmoid", rng=rng
        )
        outputs = network.forward(rng.normal(size=(10, 4)) * 5)
        assert np.all(outputs >= 0.0)
        assert np.all(outputs <= 1.0)

    def test_copy_weights_from(self, rng):
        a = MultiLayerPerceptron([2, 4, 1], rng=rng)
        b = MultiLayerPerceptron([2, 4, 1], rng=rng)
        b.copy_weights_from(a)
        x = rng.normal(size=(3, 2))
        assert np.allclose(a.forward(x, cache=False), b.forward(x, cache=False))

    def test_minimum_two_layer_sizes(self):
        with pytest.raises(ValueError):
            MultiLayerPerceptron([4])
