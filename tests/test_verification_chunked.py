"""Chunked full-MC verification must match the sequential schedule.

Pass 2 of Algorithm 2 now evaluates h-SCORE-ordered chunks through the
batched simulator.  For every seeded design of every circuit the chunked
verifier must return the same pass/fail outcome, ``failed_corner``,
``failure_stage`` and ``worst_reward`` as the strictly sequential schedule
(``verification_chunk=1``), and its budget may exceed the sequential one by
at most ``chunk - 1`` simulations (the over-simulation past the first
failure inside the aborting chunk).
"""

import numpy as np
import pytest

from repro.circuits import StrongArmLatch
from repro.circuits.base import AnalogCircuit, SizingParameter
from repro.core.config import VerificationMethod, operational_config
from repro.core.replay import LastWorstCaseBuffer
from repro.core.spec import DesignSpec
from repro.core.verification import Verifier
from repro.simulation import CircuitSimulator
from repro.variation.distributions import DeviceKind, DeviceSpec

# The three-paper-circuit parametrization comes from the shared conftest
# fixture ``paper_circuit``.


class MismatchProbeCircuit(AnalogCircuit):
    """Synthetic testbench whose only metric tracks the sampled vth shift.

    The paper's circuits are robust enough that random designs never reach
    the full-MC abort (screening catches them first); this probe makes the
    sample-level failure probability an explicit dial so the chunked budget
    semantics can be pinned down exactly.
    """

    name = "mismatch_probe"

    def _build_parameters(self):
        return [SizingParameter("w", 1.0, 2.0, unit="um")]

    def _build_constraints(self):
        return {"margin": 1.0}

    def _build_devices(self):
        return [
            DeviceSpec(
                "D",
                DeviceKind.NMOS,
                width_of=lambda x: 0.04,
                length_of=lambda x: 0.03,
            )
        ]

    def _evaluate_physical_batch(self, x, corner, mismatch):
        vth = np.asarray(mismatch["D"]["vth"], dtype=float)
        # sigma(vth) ~ 0.058 V here, so ~1% of samples push the margin past
        # its bound of 1.0 — screening usually passes, full MC usually fails.
        return {"margin": 0.9 + 0.74 * vth}

#: Odd on purpose: 11 - 3 = 8 extra samples split unevenly by chunks of 3.
VERIFICATION_SAMPLES = 11


def verify_with_chunk(
    circuit_cls,
    design,
    chunk,
    method=VerificationMethod.CORNER_LOCAL_MC,
    seed=0,
):
    circuit = circuit_cls()
    simulator = CircuitSimulator(circuit)
    operational = operational_config(
        method,
        optimization_samples=3,
        verification_samples=VERIFICATION_SAMPLES,
        verification_chunk=chunk,
    )
    verifier = Verifier(
        simulator,
        DesignSpec.from_circuit(circuit),
        operational,
        rng=np.random.default_rng(seed),
    )
    outcome = verifier.verify(design, LastWorstCaseBuffer(operational.corners))
    return outcome


def seeded_designs(circuit_cls, count=4):
    """Design candidates spanning hopeless, marginal and robust regions."""
    rng = np.random.default_rng(hash(circuit_cls.name) % (2**32))
    dimension = circuit_cls().dimension
    designs = [rng.uniform(0.3, 0.8, dimension) for _ in range(count - 1)]
    designs.append(np.full(dimension, 0.35))
    return designs


@pytest.mark.parametrize("chunk", [3, 8])
def test_chunked_matches_sequential_outcome(paper_circuit, chunk):
    circuit_cls = type(paper_circuit)
    for index, design in enumerate(seeded_designs(circuit_cls)):
        sequential = verify_with_chunk(circuit_cls, design, chunk=1, seed=index)
        chunked = verify_with_chunk(circuit_cls, design, chunk=chunk, seed=index)
        assert chunked.passed == sequential.passed, (circuit_cls.name, index)
        assert chunked.failed_corner == sequential.failed_corner
        assert chunked.failure_stage == sequential.failure_stage
        assert chunked.worst_reward == pytest.approx(
            sequential.worst_reward, abs=1e-12
        )
        # Budget: identical when the design passes (or fails before the full
        # pass); at most chunk-1 over-simulations past a full-MC abort.
        if chunked.failure_stage == "full_mc":
            assert 0 <= chunked.simulations - sequential.simulations <= chunk - 1
        else:
            assert chunked.simulations == sequential.simulations


@pytest.mark.parametrize("chunk", [4, 8])
def test_chunked_matches_sequential_global_local(chunk):
    """Same equivalence under the C-MCG-L hierarchy (6 VT corners)."""
    design = np.full(StrongArmLatch().dimension, 0.55)
    sequential = verify_with_chunk(
        StrongArmLatch,
        design,
        chunk=1,
        method=VerificationMethod.CORNER_GLOBAL_LOCAL_MC,
        seed=3,
    )
    chunked = verify_with_chunk(
        StrongArmLatch,
        design,
        chunk=chunk,
        method=VerificationMethod.CORNER_GLOBAL_LOCAL_MC,
        seed=3,
    )
    assert chunked.passed == sequential.passed
    assert chunked.failed_corner == sequential.failed_corner
    assert chunked.failure_stage == sequential.failure_stage
    assert chunked.worst_reward == pytest.approx(sequential.worst_reward, abs=1e-12)


def probe_outcome(chunk, seed):
    circuit = MismatchProbeCircuit()
    simulator = CircuitSimulator(circuit)
    operational = operational_config(
        VerificationMethod.CORNER_LOCAL_MC,
        optimization_samples=3,
        verification_samples=VERIFICATION_SAMPLES,
        verification_chunk=chunk,
    )
    verifier = Verifier(
        simulator,
        DesignSpec.from_circuit(circuit),
        operational,
        use_mu_sigma=False,  # reach pass 2 instead of the Eq.-7 screen
        rng=np.random.default_rng(seed),
    )
    design = np.array([0.5])
    return verifier.verify(design, LastWorstCaseBuffer(operational.corners))


@pytest.mark.parametrize("chunk", [3, 8])
def test_budget_charges_prefix_rounded_to_chunk(chunk):
    """A full-MC failure charges the simulated prefix rounded to the chunk."""
    corners = 30
    screen_simulations = corners * 3
    extras_per_corner = VERIFICATION_SAMPLES - 3
    exercised = 0
    for seed in range(40):
        sequential = probe_outcome(chunk=1, seed=seed)
        if sequential.failure_stage != "full_mc":
            continue
        exercised += 1
        chunked = probe_outcome(chunk=chunk, seed=seed)
        assert chunked.passed == sequential.passed
        assert chunked.failed_corner == sequential.failed_corner
        assert chunked.failure_stage == "full_mc"
        assert chunked.worst_reward == pytest.approx(
            sequential.worst_reward, abs=1e-12
        )
        # Exact accounting: identical screening + identical completed
        # corners, then the aborting corner's prefix rounded up to the chunk.
        prefix_total = sequential.simulations - screen_simulations
        completed_corners = (prefix_total - 1) // extras_per_corner
        prefix = prefix_total - completed_corners * extras_per_corner
        charged_in_corner = min(
            int(np.ceil(prefix / chunk)) * chunk, extras_per_corner
        )
        expected = (
            screen_simulations
            + completed_corners * extras_per_corner
            + charged_in_corner
        )
        assert chunked.simulations == expected
        if exercised >= 5:
            break
    assert exercised >= 3, "too few seeds exercised the full-MC abort"


def test_simulations_field_reflects_charged_budget():
    design = np.full(StrongArmLatch().dimension, 0.55)
    circuit = StrongArmLatch()
    simulator = CircuitSimulator(circuit)
    operational = operational_config(
        VerificationMethod.CORNER_LOCAL_MC,
        optimization_samples=3,
        verification_samples=VERIFICATION_SAMPLES,
        verification_chunk=8,
    )
    verifier = Verifier(
        simulator,
        DesignSpec.from_circuit(circuit),
        operational,
        rng=np.random.default_rng(1),
    )
    outcome = verifier.verify(design, LastWorstCaseBuffer(operational.corners))
    assert outcome.simulations == simulator.budget.verification_simulations
