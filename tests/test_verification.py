"""Tests for the hierarchical verification algorithm (Algorithm 2)."""

import numpy as np
import pytest

from repro.core.config import VerificationMethod, operational_config
from repro.core.replay import LastWorstCaseBuffer
from repro.core.spec import DesignSpec
from repro.core.verification import Verifier
from repro.simulation import CircuitSimulator
from repro.circuits import StrongArmLatch


def make_verifier(
    verification_samples=6,
    use_mu_sigma=True,
    use_reordering=True,
    method=VerificationMethod.CORNER_LOCAL_MC,
    seed=0,
):
    circuit = StrongArmLatch()
    simulator = CircuitSimulator(circuit)
    spec = DesignSpec.from_circuit(circuit)
    operational = operational_config(
        method, optimization_samples=3, verification_samples=verification_samples
    )
    verifier = Verifier(
        simulator,
        spec,
        operational,
        beta2=4.0,
        use_mu_sigma=use_mu_sigma,
        use_reordering=use_reordering,
        rng=np.random.default_rng(seed),
    )
    buffer = LastWorstCaseBuffer(operational.corners)
    return circuit, simulator, verifier, buffer


class TestCornerVerification:
    def test_feasible_design_passes_corner_only(self, feasible_strongarm_design):
        # Corner-only: one simulation per corner, no Monte Carlo.
        circuit, simulator, verifier, buffer = make_verifier(
            method=VerificationMethod.CORNER, verification_samples=1
        )
        # Robust designs at typical may still fail some corner; search a few
        # candidates derived from the fixture by inflating caps and widths.
        design = np.clip(feasible_strongarm_design + 0.1, 0.0, 1.0)
        outcome = verifier.verify(design, buffer)
        assert outcome.simulations <= 30
        if outcome.passed:
            assert outcome.failed_corner is None
        else:
            assert outcome.failed_corner is not None

    def test_infeasible_design_fails_fast(self):
        circuit, simulator, verifier, buffer = make_verifier(
            method=VerificationMethod.CORNER, verification_samples=1
        )
        hopeless = np.zeros(circuit.dimension)  # minimum sizes everywhere
        outcome = verifier.verify(hopeless, buffer)
        assert not outcome.passed
        assert outcome.failure_stage in ("mu_sigma", "screen")
        # Early abort: far fewer simulations than the full 30-corner sweep.
        assert outcome.simulations < 30


class TestMonteCarloVerification:
    def test_simulation_accounting(self):
        circuit, simulator, verifier, buffer = make_verifier(verification_samples=5)
        design = np.full(circuit.dimension, 0.7)
        outcome = verifier.verify(design, buffer)
        assert outcome.simulations == simulator.budget.verification_simulations
        # Never more than the full budget: 30 corners x 5 samples.
        assert outcome.simulations <= 30 * 5

    def test_passed_verification_runs_full_budget(self, feasible_strongarm_design):
        circuit, simulator, verifier, buffer = make_verifier(verification_samples=4)
        robust = np.clip(feasible_strongarm_design + 0.15, 0.0, 1.0)
        outcome = verifier.verify(robust, buffer)
        if outcome.passed:
            assert outcome.simulations == 30 * 4
            assert outcome.worst_reward == pytest.approx(0.2)

    def test_reusable_records_are_not_resimulated(self, feasible_strongarm_design):
        circuit, simulator, verifier, buffer = make_verifier(verification_samples=4)
        design = np.clip(feasible_strongarm_design + 0.15, 0.0, 1.0)
        worst_corner = buffer.worst_corner()

        from repro.simulation.budget import SimulationPhase
        from repro.variation.mismatch import MismatchSampler

        sampler = MismatchSampler(
            circuit.mismatch_model,
            include_global=False,
            include_local=True,
            rng=np.random.default_rng(3),
        )
        mismatch_set = sampler.sample(circuit.denormalize(design), 3)
        records = simulator.simulate_mismatch_set(
            design, worst_corner, mismatch_set, phase=SimulationPhase.OPTIMIZATION
        )
        before = simulator.budget.verification_simulations
        verifier.verify(
            design,
            buffer,
            reusable_records={worst_corner.name: records},
            reusable_mismatch={worst_corner.name: mismatch_set},
        )
        used = simulator.budget.verification_simulations - before
        # The reused corner's N' screening simulations were not re-run.
        assert used <= 30 * 4 - 3

    def test_failure_reports_corner_and_stage(self):
        circuit, simulator, verifier, buffer = make_verifier(verification_samples=5)
        marginal = np.full(circuit.dimension, 0.35)
        outcome = verifier.verify(marginal, buffer)
        if not outcome.passed:
            assert outcome.failed_corner is not None
            assert outcome.failure_stage in ("mu_sigma", "screen", "full_mc")
            assert outcome.worst_reward <= 0.2


class TestAblationSwitches:
    def test_no_mu_sigma_uses_plain_screen(self):
        circuit, simulator, verifier, buffer = make_verifier(use_mu_sigma=False)
        hopeless = np.zeros(circuit.dimension)
        outcome = verifier.verify(hopeless, buffer)
        assert not outcome.passed
        assert outcome.failure_stage == "screen"

    def test_reordering_flag_changes_order_not_outcome(self, feasible_strongarm_design):
        design = np.clip(feasible_strongarm_design + 0.15, 0.0, 1.0)
        results = []
        for use_reordering in (True, False):
            circuit, simulator, verifier, buffer = make_verifier(
                verification_samples=4, use_reordering=use_reordering, seed=7
            )
            results.append(verifier.verify(design, buffer).passed)
        assert results[0] == results[1]
