"""Tests for the Pelgrom mismatch model (repro.variation.distributions)."""

import numpy as np
import pytest

from repro.variation.distributions import (
    DeviceKind,
    DeviceSpec,
    MismatchModel,
    PelgromCoefficients,
)


def two_device_model():
    devices = [
        DeviceSpec(
            name="M1",
            kind=DeviceKind.NMOS,
            width_of=lambda x: x[0],
            length_of=lambda x: x[1],
        ),
        DeviceSpec(
            name="C1",
            kind=DeviceKind.CAPACITOR,
            cap_of=lambda x: x[2],
        ),
    ]
    return MismatchModel(devices)


class TestPelgromCoefficients:
    def test_sigma_decreases_with_area(self):
        coeffs = PelgromCoefficients()
        small = coeffs.local_sigma_vth(0.28, 0.03)
        large = coeffs.local_sigma_vth(10.0, 0.3)
        assert small > large

    def test_sigma_follows_inverse_sqrt_area(self):
        coeffs = PelgromCoefficients()
        sigma_1 = coeffs.local_sigma_vth(1.0, 1.0)
        sigma_4 = coeffs.local_sigma_vth(2.0, 2.0)
        assert sigma_1 / sigma_4 == pytest.approx(2.0, rel=1e-9)

    def test_cap_sigma_decreases_with_capacitance(self):
        coeffs = PelgromCoefficients()
        assert coeffs.local_sigma_cap(5e-15) > coeffs.local_sigma_cap(1e-12)


class TestDeviceSpec:
    def test_mos_requires_geometry(self):
        with pytest.raises(ValueError):
            DeviceSpec(name="bad", kind=DeviceKind.NMOS)

    def test_capacitor_requires_cap_function(self):
        with pytest.raises(ValueError):
            DeviceSpec(name="bad", kind=DeviceKind.CAPACITOR)

    def test_multiplicity_must_be_positive(self):
        with pytest.raises(ValueError):
            DeviceSpec(
                name="bad",
                kind=DeviceKind.NMOS,
                width_of=lambda x: 1.0,
                length_of=lambda x: 1.0,
                multiplicity=0,
            )


class TestMismatchModel:
    def test_dimension_counts_mos_and_cap_parameters(self):
        model = two_device_model()
        # MOS contributes vth + beta, capacitor contributes one parameter.
        assert model.dimension == 3

    def test_parameter_names(self):
        model = two_device_model()
        assert model.parameter_names() == ["M1.vth", "M1.beta", "C1.cap"]

    def test_index_of(self):
        model = two_device_model()
        assert model.index_of("M1", "beta") == 1
        with pytest.raises(KeyError):
            model.index_of("M1", "cap")

    def test_local_covariance_is_diagonal_and_positive(self):
        model = two_device_model()
        x = np.array([1.0, 0.1, 50e-15])
        cov = model.local_covariance(x)
        assert cov.shape == (3, 3)
        assert np.all(np.diag(cov) > 0)
        assert np.allclose(cov, np.diag(np.diag(cov)))

    def test_local_covariance_shrinks_with_device_area(self):
        model = two_device_model()
        small = model.local_covariance(np.array([0.3, 0.03, 10e-15]))
        large = model.local_covariance(np.array([10.0, 0.3, 10e-15]))
        assert large[0, 0] < small[0, 0]
        assert large[1, 1] < small[1, 1]

    def test_global_covariance_independent_of_sizing(self):
        model = two_device_model()
        cov_a = model.global_covariance(np.array([0.3, 0.03, 10e-15]))
        cov_b = model.global_covariance(np.array([10.0, 0.3, 1e-12]))
        assert np.allclose(cov_a, cov_b)

    def test_multiplicity_reduces_variance(self):
        base = [
            DeviceSpec(
                name="M1",
                kind=DeviceKind.NMOS,
                width_of=lambda x: 1.0,
                length_of=lambda x: 0.1,
                multiplicity=1,
            )
        ]
        quad = [
            DeviceSpec(
                name="M1",
                kind=DeviceKind.NMOS,
                width_of=lambda x: 1.0,
                length_of=lambda x: 0.1,
                multiplicity=4,
            )
        ]
        x = np.zeros(1)
        var_single = MismatchModel(base).local_covariance(x)[0, 0]
        var_quad = MismatchModel(quad).local_covariance(x)[0, 0]
        assert var_quad == pytest.approx(var_single / 4.0)

    def test_device_view_round_trip(self):
        model = two_device_model()
        h = np.array([0.01, -0.02, 0.005])
        view = model.as_device_view(h)
        assert view["M1"]["vth"] == pytest.approx(0.01)
        assert view["M1"]["beta"] == pytest.approx(-0.02)
        assert view["C1"]["cap"] == pytest.approx(0.005)

    def test_device_view_rejects_wrong_shape(self):
        model = two_device_model()
        with pytest.raises(ValueError):
            model.as_device_view(np.zeros(5))

    def test_duplicate_device_names_rejected(self):
        device = DeviceSpec(
            name="M1",
            kind=DeviceKind.NMOS,
            width_of=lambda x: 1.0,
            length_of=lambda x: 0.1,
        )
        with pytest.raises(ValueError):
            MismatchModel([device, device])

    def test_global_groups_share_labels_by_device_kind(self):
        devices = [
            DeviceSpec(
                name="Ma",
                kind=DeviceKind.NMOS,
                width_of=lambda x: 1.0,
                length_of=lambda x: 0.1,
            ),
            DeviceSpec(
                name="Mb",
                kind=DeviceKind.NMOS,
                width_of=lambda x: 1.0,
                length_of=lambda x: 0.1,
            ),
            DeviceSpec(
                name="Mp",
                kind=DeviceKind.PMOS,
                width_of=lambda x: 1.0,
                length_of=lambda x: 0.1,
            ),
        ]
        model = MismatchModel(devices)
        groups = model.global_groups()
        # Both NMOS devices share the same vth and beta group labels.
        assert groups[0] == groups[2] == "nmos.vth"
        assert groups[1] == groups[3] == "nmos.beta"
        assert groups[4] == "pmos.vth"
