"""Async service path: determinism, accounting, pools, disk cache.

The futures-based execution path (``SimulationService.submit`` →
:class:`SimFuture`) promises that *pipelined* control loops are
**bit-identical** to their sequential twins — metrics, seeded streams,
budget totals, idempotency keys, failure refunds — because all accounting
happens at resolution time, in resolution order.  This suite pins that
contract down:

* ``submit``/``result`` vs ``run`` equivalence on all three paper
  circuits (and through a real worker pool);
* resolution-time accounting: memoized single-shot resolution, cancelled
  futures charge nothing, cache hits at submission, idempotent keys,
  failure refunds for raising workers and graceful all-failure blocks,
  ``max_simulations`` aborts at the same point as the sync schedule;
* double-buffered verification and the overlapped seed phase replaying
  the sequential schedule bit-for-bit (including on abort paths);
* the persistent warm :class:`WorkerPool` lifecycle — explicit
  ``close()``, context managers, in-process fallback after close — and
  the ngspice per-row fan-out (``row_parallel``);
* the cross-run disk cache: atomic spill, version stamping, corruption
  and failure-block refusal, and a full ``run_experiment`` replay with
  zero backend invocations and zero budget charged;
* the measured ``sparse_auto_size`` crossover replacing the hardcoded
  threshold.
"""

from __future__ import annotations

import os
from concurrent.futures import CancelledError

import numpy as np
import pytest

from repro.circuits.base import (
    AnalogCircuit,
    DeviceKind,
    DeviceSpec,
    SizingParameter,
)
from repro.core.config import GlovaConfig, VerificationMethod, operational_config
from repro.core.optimizer import GlovaOptimizer
from repro.core.replay import LastWorstCaseBuffer
from repro.core.spec import DesignSpec
from repro.core.verification import Verifier
from repro.simulation import (
    BatchedMNABackend,
    CachingBackend,
    NgspiceError,
    ShardedDispatcher,
    SimJob,
    SimulationBudget,
    SimulationPhase,
    SimulationService,
    WorkerPool,
)
from repro.simulation.ngspice import (
    NgspiceBackend,
    PAYLOAD_AWARE_ENV,
    STRICT_ENV,
)
from repro.simulation.sharding import shardable
from repro.simulation.service import CACHE_FORMAT_VERSION, _CACHE_VERSION_KEY
from repro.spice.deck import FAILURE_NAN
from repro.variation.corners import typical_corner


def conditions_job(circuit, rows=10, seed=0, phase=SimulationPhase.OPTIMIZATION):
    rng = np.random.default_rng(seed)
    return SimJob.conditions(
        circuit.name,
        rng.uniform(0.2, 0.8, circuit.dimension),
        (typical_corner(),),
        rng.standard_normal((rows, circuit.mismatch_dimension)),
        phase,
    )


# ----------------------------------------------------------------------
# submit / result equivalence
# ----------------------------------------------------------------------
class TestSubmitEquivalence:
    def test_submit_matches_run_all_circuits(self, paper_circuit):
        job = conditions_job(paper_circuit, rows=8)
        with SimulationService(paper_circuit) as sync_service:
            expected = sync_service.run(job)
        with SimulationService(paper_circuit) as async_service:
            result = async_service.submit(job).result()
        for name in paper_circuit.metric_names:
            np.testing.assert_array_equal(
                result.metrics[name], expected.metrics[name]
            )
        assert result.job.job_id == expected.job.job_id

    def test_submit_matches_run_through_pool(self, strongarm):
        job = conditions_job(strongarm, rows=12)
        with SimulationService(strongarm) as reference:
            expected = reference.run(job)
        with SimulationService(strongarm, workers=3) as service:
            future = service.submit(job)
            result = future.result()
        for name in strongarm.metric_names:
            np.testing.assert_array_equal(
                result.metrics[name], expected.metrics[name]
            )
        assert service.budget.total == 12

    def test_design_axis_submit(self, strongarm):
        rng = np.random.default_rng(3)
        designs = rng.uniform(0.2, 0.8, (6, strongarm.dimension))
        job = SimJob.design_batch(strongarm.name, designs, typical_corner())
        with SimulationService(strongarm) as service:
            sync = service.run(job)
            async_result = service.submit(job).result()
        for name in strongarm.metric_names:
            np.testing.assert_array_equal(
                async_result.metrics[name], sync.metrics[name]
            )

    def test_interleaved_submissions_resolve_in_order(self, strongarm):
        """Several futures in flight; resolving in submission order gives
        the synchronous budget trajectory."""
        with SimulationService(strongarm) as service:
            jobs = [conditions_job(strongarm, rows=4, seed=s) for s in range(4)]
            futures = [service.submit(job) for job in jobs]
            assert service.budget.total == 0  # nothing charged until resolved
            totals = []
            for future in futures:
                future.result()
                totals.append(service.budget.total)
        assert totals == [4, 8, 12, 16]


# ----------------------------------------------------------------------
# Resolution-time accounting
# ----------------------------------------------------------------------
class TestResolutionAccounting:
    def test_result_is_memoized_and_charges_once(self, strongarm):
        with SimulationService(strongarm) as service:
            future = service.submit(conditions_job(strongarm, rows=5))
            first = future.result()
            second = future.result()
        assert first is second
        assert service.budget.total == 5

    def test_cancel_before_resolve_charges_nothing(self, strongarm):
        calls = []

        class CountingBackend(BatchedMNABackend):
            def evaluate(self, circuit, job):
                calls.append(job.batch)
                return super().evaluate(circuit, job)

        with SimulationService(strongarm, backend=CountingBackend()) as service:
            future = service.submit(conditions_job(strongarm, rows=5))
            assert future.cancel()
            with pytest.raises(CancelledError):
                future.result()
        assert service.budget.total == 0
        assert calls == []  # the lazy thunk never even evaluated

    def test_cancel_after_resolve_is_refused(self, strongarm):
        with SimulationService(strongarm) as service:
            future = service.submit(conditions_job(strongarm, rows=3))
            future.result()
            assert not future.cancel()
        assert service.budget.total == 3

    def test_cache_hit_at_submission(self, strongarm):
        with SimulationService(strongarm, cache=True) as service:
            job = conditions_job(strongarm, rows=4)
            service.run(job)
            assert service.budget.total == 4
            future = service.submit(job)
            assert future.cached and future.done()
            result = future.result()
        assert result.cached
        assert service.budget.total == 4  # the hit charged zero

    def test_idempotent_charge_at_resolution(self, strongarm):
        with SimulationService(strongarm, idempotent_charges=True) as service:
            job = conditions_job(strongarm, rows=6)
            service.submit(job).result()
            service.submit(job).result()  # same content hash: swallowed
        assert service.budget.total == 6

    def test_budget_cap_aborts_at_resolution(self, strongarm):
        budget = SimulationBudget(max_simulations=10)
        with SimulationService(strongarm, budget=budget) as service:
            first = service.submit(conditions_job(strongarm, rows=8, seed=0))
            second = service.submit(conditions_job(strongarm, rows=8, seed=1))
            first.result()
            with pytest.raises(SimulationBudget.BudgetExhausted):
                second.result()
            # The over-cap charge left no trace, exactly like the sync path.
            assert service.budget.total == 8
            with pytest.raises(SimulationBudget.BudgetExhausted):
                second.result()  # memoized error, still no charge
            assert service.budget.total == 8

    def test_raising_backend_refunds_at_resolution(self, strongarm):
        class Exploding(BatchedMNABackend):
            def evaluate(self, circuit, job):
                raise RuntimeError("mid-flight explosion")

        with SimulationService(
            strongarm, backend=Exploding(), idempotent_charges=True
        ) as service:
            future = service.submit(conditions_job(strongarm, rows=5))
            with pytest.raises(RuntimeError, match="mid-flight"):
                future.result()
            assert service.budget.total == 0
            with pytest.raises(RuntimeError, match="mid-flight"):
                future.result()  # memoized, no double refund
            assert service.budget.total == 0

    def test_worker_raising_mid_flight_refunds_and_retries(
        self, strongarm, fake_ngspice, tmp_path, monkeypatch
    ):
        """The async twin of the sync mid-shard rollback test: one real
        worker process fails its shard of an in-flight future (one-shot
        marker, strict mode); resolution surfaces the error and refunds,
        and resubmitting the identical job charges exactly once."""
        marker = tmp_path / "fail-once"
        marker.write_text("arm")
        monkeypatch.setenv("FAKE_NGSPICE_FAIL_ONCE", str(marker))
        monkeypatch.setenv(STRICT_ENV, "1")
        with SimulationService(
            strongarm, backend="ngspice", workers=4, idempotent_charges=True
        ) as service:
            job = conditions_job(strongarm, rows=8)
            future = service.submit(job)
            with pytest.raises(NgspiceError, match="exit 3"):
                future.result()
            assert service.budget.total == 0
            assert not marker.exists()

            retry = service.submit(job)
            result = retry.result()
            assert service.budget.total == 8
            reference = BatchedMNABackend().evaluate(strongarm, job)
            for name in strongarm.metric_names:
                np.testing.assert_allclose(
                    result.metrics[name], reference[name], rtol=1e-12, atol=0
                )

    def test_graceful_failure_block_refunds_at_resolution(
        self, strongarm, fake_ngspice, monkeypatch
    ):
        """A non-raising whole-block failure (engine exits 3, non-strict →
        FAILURE_NAN degradation) is refunded at resolution like the sync
        path, and never cached."""
        monkeypatch.setenv("FAKE_NGSPICE_MODE", "exit3")
        with SimulationService(strongarm, backend="ngspice", cache=True) as service:
            future = service.submit(conditions_job(strongarm, rows=3))
            with pytest.warns(RuntimeWarning, match="NaN metrics"):
                result = future.result()
            assert np.isnan(result.metrics[strongarm.metric_names[0]]).all()
        assert service.budget.total == 0
        assert len(service.cache) == 0


# ----------------------------------------------------------------------
# Double-buffered verification ≡ sequential schedule
# ----------------------------------------------------------------------
class FullMCProbeCircuit(AnalogCircuit):
    """Synthetic testbench tuned so full-MC aborts actually happen.

    Mirrors the mismatch probe of ``test_verification_chunked``: the one
    metric tracks the sampled vth shift with ~1% of draws pushing the
    margin past its bound, so screening usually passes and the chunked
    full pass usually aborts mid-corner — exactly the path where a leaked
    speculative chunk would inflate the budget.
    """

    name = "async_fullmc_probe"

    def _build_parameters(self):
        return [SizingParameter("w", 1.0, 2.0, unit="um")]

    def _build_constraints(self):
        return {"margin": 1.0}

    def _build_devices(self):
        return [
            DeviceSpec(
                "D",
                DeviceKind.NMOS,
                width_of=lambda x: 0.04,
                length_of=lambda x: 0.03,
            )
        ]

    def _evaluate_physical_batch(self, x, corner, mismatch):
        vth = np.asarray(mismatch["D"]["vth"], dtype=float)
        return {"margin": 0.9 + 0.74 * vth}


def _probe_verify(seed, pipeline, chunk=3):
    circuit = FullMCProbeCircuit()
    from repro.simulation import CircuitSimulator

    with CircuitSimulator(circuit) as simulator:
        operational = operational_config(
            VerificationMethod.CORNER_LOCAL_MC,
            optimization_samples=3,
            verification_samples=11,
            verification_chunk=chunk,
            pipeline=pipeline,
        )
        verifier = Verifier(
            simulator,
            DesignSpec.from_circuit(circuit),
            operational,
            use_mu_sigma=False,  # reach pass 2 instead of the Eq.-7 screen
            rng=np.random.default_rng(seed),
        )
        return verifier.verify(
            np.full(circuit.dimension, 0.5),
            LastWorstCaseBuffer(operational.corners),
        )


def _verify_once(circuit, design_seed, pipeline, workers=1, chunk=4):
    spec = DesignSpec.from_circuit(circuit)
    operational = operational_config(
        VerificationMethod.CORNER_LOCAL_MC,
        optimization_samples=3,
        verification_samples=11,
        verification_chunk=chunk,
        pipeline=pipeline,
        workers=workers,
    )
    from repro.simulation import CircuitSimulator

    with CircuitSimulator(circuit, workers=workers) as simulator:
        verifier = Verifier(
            simulator,
            spec,
            operational,
            use_mu_sigma=False,
            rng=np.random.default_rng(7),
        )
        rng = np.random.default_rng(design_seed)
        design = np.clip(circuit.random_sizing(rng) + 0.1, 0.0, 1.0)
        outcome = verifier.verify(
            design, LastWorstCaseBuffer(operational.corners)
        )
        # The verifier's stream position afterwards is part of the
        # contract: the optimizer keeps drawing from the same generator.
        stream_probe = float(verifier.rng.standard_normal())
        return outcome, simulator.budget.total, stream_probe


class TestDoubleBufferedVerification:
    @pytest.mark.parametrize("design_seed", [0, 1, 2, 3, 11])
    def test_bit_identical_to_sequential(self, paper_circuit, design_seed):
        """Pass/fail, failed corner, failure stage, worst reward, charged
        budget and the post-verify RNG stream all match the sequential
        schedule — across seeds that exercise both pass and abort paths."""
        sequential = _verify_once(paper_circuit, design_seed, pipeline=False)
        pipelined = _verify_once(paper_circuit, design_seed, pipeline=True)
        for field in ("passed", "failed_corner", "failure_stage"):
            assert getattr(pipelined[0], field) == getattr(
                sequential[0], field
            )
        assert pipelined[0].worst_reward == sequential[0].worst_reward
        assert pipelined[0].simulations == sequential[0].simulations
        assert pipelined[1] == sequential[1]  # budget totals
        assert pipelined[2] == sequential[2]  # seeded stream position

    def test_bit_identical_through_pool(self, strongarm):
        sequential = _verify_once(strongarm, 2, pipeline=False, chunk=8)
        pipelined = _verify_once(strongarm, 2, pipeline=True, workers=2, chunk=8)
        assert pipelined[0].passed == sequential[0].passed
        assert pipelined[0].worst_reward == sequential[0].worst_reward
        assert pipelined[0].simulations == sequential[0].simulations
        assert pipelined[1] == sequential[1]
        assert pipelined[2] == sequential[2]

    def test_speculative_chunk_is_never_charged(self):
        """On a full-MC abort the in-flight speculative chunk is cancelled:
        the charged budget equals the sequential chunk-rounded prefix (the
        pipelined path would charge one chunk more if the cancel leaked).
        Uses a synthetic probe whose sample-level failure probability makes
        full-MC aborts common (the paper circuits fail at screening first,
        cf. ``test_verification_chunked``)."""
        full_mc_aborts = 0
        for seed in range(12):
            sequential = _probe_verify(seed, pipeline=False)
            pipelined = _probe_verify(seed, pipeline=True)
            assert pipelined.passed == sequential.passed
            assert pipelined.failed_corner == sequential.failed_corner
            assert pipelined.failure_stage == sequential.failure_stage
            assert pipelined.worst_reward == sequential.worst_reward
            assert pipelined.simulations == sequential.simulations
            if sequential.failure_stage == "full_mc":
                full_mc_aborts += 1
        # The probe is tuned so the abort path is actually exercised.
        assert full_mc_aborts >= 2


# ----------------------------------------------------------------------
# Pipelined optimizer ≡ sequential optimizer
# ----------------------------------------------------------------------
class TestPipelinedOptimizer:
    @pytest.mark.parametrize(
        "method",
        [VerificationMethod.CORNER, VerificationMethod.CORNER_LOCAL_MC],
    )
    def test_full_trajectory_identical(self, strongarm, method):
        """End-to-end GLOVA runs (seed phase + optimization + verification)
        are bit-identical with pipelining on and off — designs, rewards,
        budgets and iteration counts — for both the MC and the pure-corner
        seed schedules."""

        def run(pipeline):
            config = GlovaConfig(
                verification=method,
                seed=5,
                max_iterations=6,
                initial_samples=16,
                verification_samples=6,
                pipeline=pipeline,
            )
            optimizer = GlovaOptimizer(strongarm, config)
            try:
                return optimizer.run()
            finally:
                optimizer.simulator.close()

        sequential = run(False)
        pipelined = run(True)
        assert pipelined.success == sequential.success
        assert pipelined.iterations == sequential.iterations
        assert pipelined.simulations == sequential.simulations
        for a, b in zip(sequential.history, pipelined.history):
            np.testing.assert_array_equal(a.design, b.design)
            assert a.worst_reward == b.worst_reward
            assert a.corner_name == b.corner_name


# ----------------------------------------------------------------------
# Pool lifecycle
# ----------------------------------------------------------------------
class TestPoolLifecycle:
    def test_service_close_shuts_down_pool(self, strongarm):
        service = SimulationService(strongarm, workers=2)
        pool = service.pool
        assert pool is not None and not pool.closed
        service.close()
        assert pool.closed
        service.close()  # idempotent

    def test_closed_service_still_evaluates_in_process(self, strongarm):
        service = SimulationService(strongarm, workers=2)
        job = conditions_job(strongarm, rows=8)
        expected = service.run(job)
        service.close()
        again = service.run(job)
        for name in strongarm.metric_names:
            np.testing.assert_array_equal(
                again.metrics[name], expected.metrics[name]
            )

    def test_context_manager(self, strongarm):
        with SimulationService(strongarm, workers=2) as service:
            assert not service.pool.closed
        assert service.pool.closed and service.closed

    def test_worker_pool_eager_and_warm(self):
        with WorkerPool(2, circuit_names=("sal",), backend_names=("batched",)) as pool:
            pids = {pool.submit(os.getpid).result() for _ in range(8)}
            assert 1 <= len(pids) <= 2
            assert all(pid != os.getpid() for pid in pids)
        assert pool.closed
        with pytest.raises(RuntimeError, match="closed"):
            pool.submit(os.getpid)

    def test_self_owned_dispatcher_pool_closes(self, strongarm):
        dispatcher = ShardedDispatcher(BatchedMNABackend(), workers=2)
        job = conditions_job(strongarm, rows=8)
        metrics = dispatcher.evaluate(strongarm, job)
        assert metrics[strongarm.metric_names[0]].shape == (8,)
        pool = dispatcher.pool
        assert pool is not None
        dispatcher.close()
        assert pool.closed
        # A released dispatcher never resurrects its pool.
        assert dispatcher.pool is None
        fallback = dispatcher.evaluate(strongarm, job)
        np.testing.assert_array_equal(
            fallback[strongarm.metric_names[0]],
            metrics[strongarm.metric_names[0]],
        )


# ----------------------------------------------------------------------
# ngspice row fan-out
# ----------------------------------------------------------------------
class TestNgspiceRowParallel:
    def test_row_parallel_flag_follows_payload_awareness(self):
        assert NgspiceBackend(payload_aware=False).row_parallel
        assert not NgspiceBackend(payload_aware=True).row_parallel

    def test_row_parallel_lowers_shard_threshold(self, strongarm, monkeypatch):
        monkeypatch.delenv(PAYLOAD_AWARE_ENV, raising=False)
        per_row = NgspiceBackend()  # env-configured: not payload-aware
        # A 2-row job is 2 subprocess runs: worth fanning out even though
        # it is far below the in-process rows-per-worker threshold.
        assert shardable(strongarm, per_row, workers=4, batch=2)
        assert not shardable(strongarm, per_row, workers=4, batch=1)
        monkeypatch.setenv(PAYLOAD_AWARE_ENV, "1")
        payload_aware = NgspiceBackend()  # one deck per batch: normal floor
        assert not shardable(strongarm, payload_aware, workers=4, batch=2)

    def test_constructor_configured_backend_refuses_to_shard(self, strongarm):
        """An instance a worker's zero-argument rebuild could not reproduce
        (explicit executable/timeout/strictness) must never shard — its
        shards would silently run on a differently-configured twin."""
        configured = NgspiceBackend(executable="/opt/custom-sim")
        assert not configured.worker_reconstructible
        assert not shardable(strongarm, configured, workers=4, batch=32)
        assert NgspiceBackend().worker_reconstructible

    def test_per_row_decks_fan_out_through_pool(
        self, strongarm, fake_ngspice, monkeypatch
    ):
        """Non-payload-aware engines (one deck per row) run their rows
        concurrently through the warm pool, bit-equal to the analytic
        reference."""
        monkeypatch.delenv("REPRO_NGSPICE_PAYLOAD_AWARE", raising=False)
        job = conditions_job(strongarm, rows=3)
        with SimulationService(strongarm, backend="ngspice", workers=3) as service:
            assert shardable(
                strongarm, service._terminal, workers=3, batch=job.batch
            )
            result = service.submit(job).result()
        reference = BatchedMNABackend().evaluate(strongarm, job)
        for name in strongarm.metric_names:
            np.testing.assert_allclose(
                result.metrics[name], reference[name], rtol=1e-12, atol=0
            )
        assert service.budget.total == 3


# ----------------------------------------------------------------------
# Cross-run disk cache
# ----------------------------------------------------------------------
class TestDiskCache:
    def test_spill_and_reload_across_services(self, strongarm, tmp_path):
        cache_dir = str(tmp_path / "simcache")
        job = conditions_job(strongarm, rows=6)
        with SimulationService(strongarm, cache_dir=cache_dir) as first:
            expected = first.run(job)
            assert first.budget.total == 6
        # A brand-new service (fresh process in production) replays from
        # disk: zero budget, no backend invocation.
        calls = []

        class Counting(BatchedMNABackend):
            def evaluate(self, circuit, job):
                calls.append(job.job_id)
                return super().evaluate(circuit, job)

        with SimulationService(
            strongarm, backend=Counting(), cache_dir=cache_dir
        ) as second:
            replayed = second.run(job)
            assert replayed.cached
            assert second.budget.total == 0
            assert second.cache.disk_hits == 1
        assert calls == []
        for name in strongarm.metric_names:
            np.testing.assert_array_equal(
                replayed.metrics[name], expected.metrics[name]
            )

    def test_cache_dir_implies_caching(self, strongarm, tmp_path):
        service = SimulationService(strongarm, cache_dir=str(tmp_path / "c"))
        assert service.cache is not None
        assert service.cache.spill_dir is not None
        service.close()

    def test_version_mismatch_is_a_miss(self, strongarm, tmp_path):
        cache_dir = str(tmp_path / "simcache")
        job = conditions_job(strongarm, rows=4)
        with SimulationService(strongarm, cache_dir=cache_dir) as service:
            service.run(job)
            path = service.cache._spill_path(job.job_id)
        with np.load(path) as data:
            payload = {name: data[name] for name in data.files}
        payload[_CACHE_VERSION_KEY] = np.array(CACHE_FORMAT_VERSION + 1)
        with open(path, "wb") as handle:
            np.savez(handle, **payload)
        with SimulationService(strongarm, cache_dir=cache_dir) as fresh:
            result = fresh.run(job)
            assert not result.cached
            assert fresh.budget.total == 4

    def test_corrupt_spill_is_a_miss(self, strongarm, tmp_path):
        cache_dir = str(tmp_path / "simcache")
        job = conditions_job(strongarm, rows=4)
        with SimulationService(strongarm, cache_dir=cache_dir) as service:
            service.run(job)
            path = service.cache._spill_path(job.job_id)
        with open(path, "wb") as handle:
            handle.write(b"not a zip file")
        with SimulationService(strongarm, cache_dir=cache_dir) as fresh:
            result = fresh.run(job)
            assert not result.cached
            assert fresh.budget.total == 4

    def test_failure_tagged_spill_is_refused(self, strongarm, tmp_path):
        """A stale on-disk block carrying FAILURE_NAN rows (written by a
        hypothetical older build) is re-simulated, exactly like the
        in-memory admission rule."""
        cache_dir = str(tmp_path / "simcache")
        job = conditions_job(strongarm, rows=3)
        cache = CachingBackend(BatchedMNABackend(), spill_dir=cache_dir)
        poisoned = {
            name: np.full(3, FAILURE_NAN) for name in strongarm.metric_names
        }
        cache._spill(job.job_id, poisoned)  # bypass store()'s refusal
        assert cache.lookup(job) is None
        # And store() itself refuses to spill such a block at all.
        cache.store(job, poisoned)
        assert not os.path.exists(cache._spill_path(job.job_id)) or (
            cache.lookup(job) is None
        )

    def test_spill_write_is_atomic(self, strongarm, tmp_path):
        cache_dir = str(tmp_path / "simcache")
        job = conditions_job(strongarm, rows=2)
        cache = CachingBackend(BatchedMNABackend(), spill_dir=cache_dir)
        metrics = BatchedMNABackend().evaluate(strongarm, job)
        cache.store(job, metrics)
        directory = os.path.dirname(cache._spill_path(job.job_id))
        leftovers = [f for f in os.listdir(directory) if f.endswith(".tmp")]
        assert leftovers == []

    def test_repeated_experiment_replays_from_disk(self, tmp_path):
        """The acceptance scenario: a repeated ``run_experiment`` with
        ``cache_dir`` set replays entirely from disk — zero backend
        invocations, zero budget charged on the second run."""
        from repro import api
        from repro.simulation import service as service_module

        config = api.ExperimentConfig(
            circuit="sal",
            method="C-MCL",
            seeds=(0,),
            max_iterations=4,
            initial_samples=12,
            verification_samples=6,
            cache_dir=str(tmp_path / "expcache"),
        )
        first = api.run_experiment(config)
        assert first.total_simulations > 0

        calls = []
        original = BatchedMNABackend.evaluate

        def counting(self, circuit, job):
            calls.append(job.job_id)
            return original(self, circuit, job)

        BatchedMNABackend.evaluate = counting
        try:
            second = api.run_experiment(config)
        finally:
            BatchedMNABackend.evaluate = original
        assert calls == []  # every job replayed from the disk store
        assert second.total_simulations == 0
        # Identical outcome, replayed or simulated.
        assert second.runs[0].success == first.runs[0].success
        assert second.runs[0].iterations == first.runs[0].iterations


# ----------------------------------------------------------------------
# Sparse threshold auto-tune
# ----------------------------------------------------------------------
class TestSparseAutoSize:
    def test_measured_value_cached_and_clamped(self, monkeypatch):
        from repro.spice import batched

        monkeypatch.delenv(batched.SPARSE_AUTO_SIZE_ENV, raising=False)
        batched._reset_sparse_auto_size()
        try:
            value = batched.sparse_auto_size()
            assert batched._SPARSE_AUTO_MIN <= value <= batched._SPARSE_AUTO_MAX
            assert batched.sparse_auto_size() is not None
            assert batched._SPARSE_AUTO_SIZE_MEASURED == value  # cached
        finally:
            batched._reset_sparse_auto_size()

    def test_env_override_pins_threshold(self, monkeypatch):
        from repro.spice import batched

        monkeypatch.setenv(batched.SPARSE_AUTO_SIZE_ENV, "123")
        batched._reset_sparse_auto_size()
        try:
            assert batched.sparse_auto_size() == 123
        finally:
            batched._reset_sparse_auto_size()

    def test_malformed_env_override_falls_back(self, monkeypatch):
        from repro.spice import batched

        monkeypatch.setenv(batched.SPARSE_AUTO_SIZE_ENV, "not-a-number")
        batched._reset_sparse_auto_size()
        try:
            with pytest.warns(RuntimeWarning, match="malformed"):
                value = batched.sparse_auto_size()
            assert batched._SPARSE_AUTO_MIN <= value <= batched._SPARSE_AUTO_MAX
        finally:
            batched._reset_sparse_auto_size()

    def test_kernel_uses_measured_threshold(self, monkeypatch):
        from repro.spice.batched import BatchedMNAStamper, SMWKernel
        from repro.spice import batched
        from repro.spice.examples import common_source_ladder

        circuit = common_source_ladder(stages=4)
        stamper = BatchedMNAStamper(circuit)
        monkeypatch.setenv(batched.SPARSE_AUTO_SIZE_ENV, "1")
        batched._reset_sparse_auto_size()
        try:
            assert SMWKernel(stamper).sparse  # every system is "large" now
            monkeypatch.setenv(batched.SPARSE_AUTO_SIZE_ENV, "100000")
            batched._reset_sparse_auto_size()
            assert not SMWKernel(stamper).sparse
        finally:
            batched._reset_sparse_auto_size()
