"""Tests for PVT corner enumeration (repro.variation.corners)."""

import itertools

import pytest

from repro.variation.corners import (
    CornerSet,
    ProcessCorner,
    PVTCorner,
    full_corner_set,
    typical_corner,
    vt_corner_set,
)


class TestProcessCorner:
    def test_five_corners_exist(self):
        assert {c.value for c in ProcessCorner} == {"TT", "SS", "FF", "SF", "FS"}

    def test_typical_flag(self):
        assert ProcessCorner.TT.is_typical
        assert not ProcessCorner.SS.is_typical

    def test_slow_corner_raises_thresholds(self):
        assert ProcessCorner.SS.nmos_vth_shift > 0
        assert ProcessCorner.SS.pmos_vth_shift > 0
        assert ProcessCorner.SS.nmos_mobility_scale < 1.0

    def test_fast_corner_lowers_thresholds(self):
        assert ProcessCorner.FF.nmos_vth_shift < 0
        assert ProcessCorner.FF.pmos_mobility_scale > 1.0

    def test_skew_corners_move_polarities_oppositely(self):
        assert ProcessCorner.SF.nmos_vth_shift > 0 > ProcessCorner.SF.pmos_vth_shift
        assert ProcessCorner.FS.nmos_vth_shift < 0 < ProcessCorner.FS.pmos_vth_shift

    def test_tt_is_centred(self):
        assert ProcessCorner.TT.nmos_vth_shift == 0.0
        assert ProcessCorner.TT.nmos_mobility_scale == 1.0


class TestPVTCorner:
    def test_name_is_unique_per_condition(self):
        names = {c.name for c in full_corner_set()}
        assert len(names) == 30

    def test_temperature_kelvin(self):
        corner = PVTCorner(ProcessCorner.TT, 0.9, 27.0)
        assert corner.temperature_kelvin == pytest.approx(300.15)

    def test_typical_corner_is_typical(self):
        assert typical_corner().is_typical

    def test_non_typical_conditions(self):
        assert not PVTCorner(ProcessCorner.TT, 0.8, 27.0).is_typical
        assert not PVTCorner(ProcessCorner.SS, 0.9, 27.0).is_typical
        assert not PVTCorner(ProcessCorner.TT, 0.9, 80.0).is_typical


class TestCornerSets:
    def test_full_corner_set_has_30_conditions(self):
        corners = full_corner_set()
        assert len(corners) == 30
        processes = {c.process for c in corners}
        supplies = {c.vdd for c in corners}
        temperatures = {c.temperature for c in corners}
        assert len(processes) == 5
        assert supplies == {0.8, 0.9}
        assert temperatures == {-40.0, 27.0, 80.0}

    def test_vt_corner_set_has_6_typical_process_conditions(self):
        corners = vt_corner_set()
        assert len(corners) == 6
        assert all(c.process is ProcessCorner.TT for c in corners)

    def test_empty_corner_set_rejected(self):
        with pytest.raises(ValueError):
            CornerSet([])

    def test_duplicate_corners_rejected(self):
        corner = typical_corner()
        with pytest.raises(ValueError):
            CornerSet([corner, corner])

    def test_indexing_and_membership(self):
        corners = full_corner_set()
        assert corners[0] in corners
        assert corners.index(corners[3]) == 3

    def test_sorted_by_reorders_descending(self):
        corners = vt_corner_set()
        keys = list(range(len(corners)))
        reordered = corners.sorted_by(keys, descending=True)
        assert reordered[0] == corners[-1]
        assert reordered[-1] == corners[0]

    def test_sorted_by_requires_matching_length(self):
        corners = vt_corner_set()
        with pytest.raises(ValueError):
            corners.sorted_by([1.0, 2.0])
