"""Waveform-first measurement subsystem.

Covers the four layers the subsystem spans:

* :mod:`repro.analysis.waveform` — the engine-neutral metric library
  (crossing/delay, slew, overshoot, settling, averages) plus the
  :class:`WaveformSpec` declarations and the canonical synthesis inverse;
* :mod:`repro.spice.rawfile` — binary/ascii rawfile parse + render,
  including the committed golden rawfiles for all three paper circuits
  (regenerate with ``REPRO_REGEN_GOLDEN=1``) and a fuzz battery proving
  malformed bytes always raise the typed :class:`RawfileError`;
* :mod:`repro.spice.trim` — connectivity-based netlist trimming and its
  conservative fallbacks;
* ``measurement="waveform"`` through :class:`NgspiceBackend` — metrics
  bit-equal to the analytic engine via the hermetic fake, FAILURE_NAN
  degradation for missing/garbage rawfiles, plain NaN for engine-reported
  failed measures, and a tiny sizing run whose budget and trajectory match
  ``backend="batched"`` exactly.

Everything runs with no ngspice installed: the ``fake_ngspice_waveform``
fixture makes the fake double answer ``-r`` requests with real binary
rawfiles rendered from the analytic engine's values.
"""

import json
import math
import os

import numpy as np
import pytest

from repro.analysis.waveform import (
    TraceMissingError,
    WaveformSpec,
    amplitude,
    crossing_time,
    delay_between,
    extract_metric,
    extract_metrics,
    final_value,
    first_crossing,
    overshoot,
    resolved_threshold,
    sample_average,
    settling_time,
    slew_time,
    synthesize_canonical,
    time_average,
    value_at,
)
from repro.simulation import BatchedMNABackend, NgspiceBackend, NgspiceError, SimJob
from repro.spice.deck import (
    compile_job_deck,
    failure_nan_mask,
    netlist_cards,
    reference_job,
)
from repro.spice.examples import common_source_amplifier, common_source_ladder
from repro.spice.rawfile import (
    RawfileError,
    parse_rawfile,
    read_rawfile,
    render_rawfile,
)
from repro.spice.trim import describe_trim, probe_node_names, trim_circuit
from repro.variation.corners import typical_corner

GOLDEN_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "golden")


# ----------------------------------------------------------------------
# Metric library
# ----------------------------------------------------------------------
class TestWaveformMetrics:
    times = np.array([0.0, 1.0, 2.0, 3.0])

    def test_first_crossing_interpolates_rising(self):
        waves = np.array([[0.0, 1.0, 1.0, 1.0]])
        assert first_crossing(self.times, waves, 0.25)[0] == 0.25

    def test_first_crossing_falling(self):
        waves = np.array([[1.0, 1.0, 0.0, 0.0]])
        assert first_crossing(self.times, waves, 0.5, rising=False)[0] == 1.5

    def test_first_crossing_exact_threshold_hit_is_exact(self):
        # The canonical-synthesis contract: a segment ending exactly on the
        # threshold has interpolation fraction 1.0, landing on the grid time.
        waves = np.array([[0.0, 0.5, 1.0, 1.0]])
        assert first_crossing(self.times, waves, 0.5)[0] == 1.0

    def test_first_crossing_never_is_nan(self):
        waves = np.array([[0.0, 0.1, 0.2, 0.3]])
        assert math.isnan(first_crossing(self.times, waves, 0.9)[0])

    def test_first_crossing_is_vectorized(self):
        waves = np.array(
            [[0.0, 1.0, 1.0, 1.0], [0.0, 0.0, 1.0, 1.0], [0.0, 0.0, 0.0, 0.0]]
        )
        result = first_crossing(self.times, waves, 0.5)
        assert result[0] == 0.5
        assert result[1] == 1.5
        assert math.isnan(result[2])

    def test_crossing_time_matches_batched(self):
        wave = np.array([0.0, 0.0, 1.0, 1.0])
        assert crossing_time(self.times, wave, 0.5) == 1.5

    def test_delay_between_trigger_and_target(self):
        trig = np.array([0.0, 1.0, 1.0, 1.0])
        targ = np.array([0.0, 0.0, 1.0, 1.0])
        assert delay_between(self.times, trig, 0.5, targ, 0.5) == 1.0

    def test_delay_between_ignores_target_crossings_before_trigger(self):
        trig = np.array([0.0, 0.0, 1.0, 1.0])  # crosses at 1.5
        targ = np.array([0.0, 1.0, 0.0, 1.0])  # crosses at 0.5 and again at 2.5
        assert delay_between(self.times, trig, 0.5, targ, 0.5) == 1.0

    def test_delay_between_nan_when_either_never_crosses(self):
        flat = np.zeros(4)
        edge = np.array([0.0, 1.0, 1.0, 1.0])
        assert math.isnan(delay_between(self.times, flat, 0.5, edge, 0.5))
        assert math.isnan(delay_between(self.times, edge, 0.5, flat, 0.5))

    def test_slew_time_rising_and_falling(self):
        rising = np.array([0.0, 0.4, 0.8, 1.0])
        assert slew_time(self.times, rising, 0.1, 0.9) == pytest.approx(
            crossing_time(self.times, rising, 0.9)
            - crossing_time(self.times, rising, 0.1)
        )
        falling = rising[::-1].copy()
        assert slew_time(self.times, falling, 0.1, 0.9, rising=False) > 0.0

    def test_overshoot(self):
        assert overshoot(np.array([0.0, 1.2, 1.0]), 1.0) == pytest.approx(0.2)
        assert overshoot(np.array([0.0, 0.5]), 1.0) == 0.0
        assert math.isnan(overshoot(np.array([0.0, math.nan]), 1.0))

    def test_settling_time(self):
        wave = np.array([0.0, 2.0, 1.05, 1.01])
        assert settling_time(self.times, wave, 1.0, 0.1) == 2.0
        assert settling_time(self.times, np.full(4, 1.0), 1.0, 0.1) == 0.0
        assert math.isnan(settling_time(self.times, wave, 1.0, 0.001))

    def test_amplitude(self):
        assert amplitude(np.array([-0.25, 0.5, 0.0])) == 0.75

    def test_sample_average_is_exact_over_power_of_two(self):
        value = 0.1  # not a dyadic rational
        assert sample_average(np.full(8, value)) == value

    def test_time_average_is_trapezoidal(self):
        times = np.array([0.0, 1.0, 2.0])
        wave = np.array([0.0, 1.0, 1.0])
        assert time_average(times, wave) == pytest.approx(0.75)
        assert math.isnan(time_average(times[:1], wave[:1]))

    def test_value_at_grid_hit_returns_stored_sample(self):
        wave = np.array([0.0, 0.1, 0.2, 0.3])
        assert value_at(self.times, wave, 2.0) == 0.2
        assert value_at(self.times, wave, 0.5) == pytest.approx(0.05)
        assert math.isnan(value_at(self.times, wave, 9.0))

    def test_final_value(self):
        assert final_value(np.array([1.0, 2.0, 3.0])) == 3.0


class TestWaveformSpec:
    def test_unknown_recipe_rejected(self):
        with pytest.raises(ValueError, match="unknown waveform recipe"):
            WaveformSpec("m", recipe="integral", signal="v(x)")

    def test_signal_required(self):
        with pytest.raises(ValueError, match="names no signal"):
            WaveformSpec("m", recipe="final")

    def test_power_average_needs_aux(self):
        with pytest.raises(ValueError, match="aux voltage trace"):
            WaveformSpec("m", recipe="power_average", signal="i(vvdd)")

    def test_probes_collects_every_trace(self):
        spec = WaveformSpec(
            "m",
            recipe="power_average",
            signal="i(vvdd)",
            aux="v(vdd)",
        )
        assert spec.probes == ("i(vvdd)", "v(vdd)")
        diff = WaveformSpec(
            "d", recipe="value_at", signal="v(bl)", signal_minus="v(blb)"
        )
        assert diff.probes == ("v(bl)", "v(blb)")

    def test_resolved_threshold_uses_row_vdd(self):
        spec = WaveformSpec(
            "m", recipe="crossing", signal="v(out)", threshold=0.1, vdd_scale=0.5
        )
        assert resolved_threshold(spec, 0.8) == 0.1 + 0.5 * 0.8

    def test_extract_metric_missing_trace_raises(self):
        spec = WaveformSpec("m", recipe="final", signal="v(out)")
        with pytest.raises(TraceMissingError):
            extract_metric(spec, np.array([0.0, 1.0]), {}, 0.9)
        with pytest.raises(TraceMissingError, match="too short"):
            extract_metric(
                spec, np.array([0.0]), {"v(out)": np.array([1.0])}, 0.9
            )


# ----------------------------------------------------------------------
# Rawfile round trip + fuzz
# ----------------------------------------------------------------------
def _sample_rawfile(seed=0, n_points=16, allow_nan=False):
    rng = np.random.default_rng(seed)
    times = np.cumsum(rng.uniform(1e-12, 1e-9, n_points))
    traces = rng.standard_normal((2, n_points))
    data = np.vstack([times, traces])
    variables = [("time", "time"), ("v(outp)", "voltage"), ("i(vvdd)", "current")]
    return variables, data, render_rawfile("round_trip", variables, data)


class TestRawfileRoundTrip:
    @pytest.mark.parametrize("seed", range(5))
    def test_render_parse_is_bit_exact(self, seed):
        variables, data, blob = _sample_rawfile(seed, n_points=7 + 5 * seed)
        raw = parse_rawfile(blob)
        assert raw.title == "round_trip"
        assert raw.variables == tuple(variables)
        assert raw.n_vars == 3
        assert raw.n_points == data.shape[1]
        np.testing.assert_array_equal(raw.values, data)
        np.testing.assert_array_equal(raw.time, data[0])

    def test_traces_lowercase_and_exclude_axis(self):
        variables = [("time", "time"), ("V(OutP)", "voltage")]
        data = np.array([[0.0, 1.0], [0.5, 0.75]])
        raw = parse_rawfile(render_rawfile("t", variables, data))
        traces = raw.traces()
        assert set(traces) == {"v(outp)"}
        np.testing.assert_array_equal(traces["v(outp)"], data[1])

    def test_render_is_byte_stable(self):
        _, _, first = _sample_rawfile(3)
        _, _, second = _sample_rawfile(3)
        assert first == second  # canonical Date header, no wall clock

    def test_ascii_section_parses(self):
        header = (
            "Title: ascii\nDate: now\nPlotname: Transient Analysis\n"
            "Flags: real\nNo. Variables: 2\nNo. Points: 2\n"
            "Variables:\n\t0\ttime\ttime\n\t1\tv(out)\tvoltage\n"
        )
        body = "Values:\n0\t0.0\n\t1.5\n1\t1.0\n\t2.5\n"
        raw = parse_rawfile((header + body).encode("ascii"))
        np.testing.assert_array_equal(raw.time, [0.0, 1.0])
        np.testing.assert_array_equal(raw.traces()["v(out)"], [1.5, 2.5])

    def test_read_rawfile_from_disk(self, tmp_path):
        _, data, blob = _sample_rawfile(1)
        path = tmp_path / "out.raw"
        path.write_bytes(blob)
        np.testing.assert_array_equal(read_rawfile(path).values, data)


def _mutate_no_points(blob: bytes, replacement: bytes) -> bytes:
    head, _, tail = blob.partition(b"No. Points:")
    count, newline, rest = tail.partition(b"\n")
    return head + b"No. Points:" + replacement + newline + rest


class TestRawfileFuzz:
    """Every malformed rawfile must raise the typed RawfileError."""

    def _blob(self, **kwargs) -> bytes:
        return _sample_rawfile(0, **kwargs)[2]

    @pytest.mark.parametrize(
        "mutilate",
        [
            pytest.param(lambda blob: b"", id="empty"),
            pytest.param(lambda blob: b"this is not a rawfile\n", id="garbage"),
            pytest.param(lambda blob: blob[: len(blob) // 2], id="cut-mid-body"),
            pytest.param(lambda blob: blob[:-8], id="truncated-point"),
            pytest.param(lambda blob: blob + b"\x00" * 4, id="trailing-bytes"),
            pytest.param(
                lambda blob: blob.replace(b"No. Variables: 3", b"No. Variables: 4"),
                id="var-count-mismatch",
            ),
            pytest.param(
                lambda blob: _mutate_no_points(blob, b" zero"),
                id="non-integer-points",
            ),
            pytest.param(
                lambda blob: _mutate_no_points(blob, b" -3"), id="negative-points"
            ),
            pytest.param(
                lambda blob: blob.replace(b"Flags: real\n", b""), id="missing-flags"
            ),
            pytest.param(
                lambda blob: blob.replace(b"Flags: real", b"Flags: complex"),
                id="complex-flags",
            ),
            pytest.param(
                lambda blob: b"Title: \xff\xfe\n" + blob, id="non-ascii-header"
            ),
            pytest.param(
                lambda blob: blob.replace(b"\t1\tv(outp)", b"\t7\tv(outp)"),
                id="variable-index-out-of-order",
            ),
            pytest.param(
                lambda blob: blob.replace(
                    b"\t1\tv(outp)\tvoltage", b"\t1\tv(outp)"
                ),
                id="malformed-variable-line",
            ),
            pytest.param(
                lambda blob: blob.replace(
                    b"Title: round_trip", b"Title round_trip"
                ),
                id="header-line-without-colon",
            ),
        ],
    )
    def test_malformed_binary_raises(self, mutilate):
        with pytest.raises(RawfileError):
            parse_rawfile(mutilate(self._blob()))

    def test_non_bytes_input_rejected(self):
        with pytest.raises(RawfileError, match="expected rawfile bytes"):
            parse_rawfile("a string")  # type: ignore[arg-type]

    def test_nan_time_axis_always_rejected(self):
        variables, data, _ = _sample_rawfile(0)
        data[0, 3] = math.nan
        blob = render_rawfile("t", variables, data)
        for allow_nan in (False, True):
            with pytest.raises(RawfileError, match="time axis"):
                parse_rawfile(blob, allow_nan=allow_nan)

    def test_non_monotonic_time_axis_rejected(self):
        variables, data, _ = _sample_rawfile(0)
        data[0, 3] = data[0, 2]  # repeated timestamp
        with pytest.raises(RawfileError, match="strictly increasing"):
            parse_rawfile(render_rawfile("t", variables, data))

    def test_nan_trace_strict_by_default_allowed_on_request(self):
        variables, data, _ = _sample_rawfile(0)
        data[1, 5] = math.nan
        blob = render_rawfile("t", variables, data)
        with pytest.raises(RawfileError, match="non-finite"):
            parse_rawfile(blob)
        raw = parse_rawfile(blob, allow_nan=True)
        assert math.isnan(raw.traces()["v(outp)"][5])

    @pytest.mark.parametrize(
        "body, match",
        [
            ("Values:\n0\t0.0\n\t1.5\n", "tokens"),
            ("Values:\n9\t0.0\n\t1.5\n1\t1.0\n\t2.5\n", "starts with"),
            ("Values:\n0\t0.0\n\tabc\n1\t1.0\n\t2.5\n", "not a number"),
        ],
    )
    def test_malformed_ascii_raises(self, body, match):
        header = (
            "Title: ascii\nDate: now\nPlotname: p\nFlags: real\n"
            "No. Variables: 2\nNo. Points: 2\n"
            "Variables:\n\t0\ttime\ttime\n\t1\tv(out)\tvoltage\n"
        )
        with pytest.raises(RawfileError, match=match):
            parse_rawfile((header + body).encode("ascii"))

    def test_missing_file_raises_rawfile_error(self, tmp_path):
        with pytest.raises(RawfileError, match="cannot read"):
            read_rawfile(tmp_path / "no-such.raw")


# ----------------------------------------------------------------------
# Canonical synthesis (the exact inverse the fake engine uses)
# ----------------------------------------------------------------------
class TestCanonicalSynthesis:
    @pytest.mark.parametrize("seed", range(20))
    def test_round_trip_is_bit_exact_for_paper_specs(self, paper_circuit, seed):
        specs = paper_circuit.waveform_specs()
        rng = np.random.default_rng(seed)
        vdd = float(rng.uniform(0.7, 1.0))
        values = {
            spec.metric: float(rng.uniform(1e-12, 1e-9))
            if spec.recipe == "crossing"
            else float(rng.standard_normal())
            for spec in specs
        }
        times, traces = synthesize_canonical(specs, values, vdd)
        extracted = extract_metrics(specs, times, traces, vdd)
        for name, expected in values.items():
            assert extracted[name] == expected  # bit-for-bit

    def test_nan_targets_round_trip_as_nan(self, paper_circuit):
        specs = paper_circuit.waveform_specs()
        values = {spec.metric: math.nan for spec in specs}
        times, traces = synthesize_canonical(specs, values, 0.9)
        extracted = extract_metrics(specs, times, traces, 0.9)
        assert all(math.isnan(v) for v in extracted.values())

    def test_synthesized_traces_survive_the_rawfile_format(self, strongarm):
        """The full fake path in miniature: synthesize -> render -> parse ->
        extract, still bit-exact."""
        specs = strongarm.waveform_specs()
        values = {"power": 1.7e-5, "set_delay": 3.3e-10,
                  "reset_delay": 4.1e-10, "noise": 2.5e-4}
        times, traces = synthesize_canonical(specs, values, 0.9)
        variables = [("time", "time")] + [
            (name, "current" if name.startswith("i(") else "voltage")
            for name in sorted(traces)
        ]
        data = np.vstack([times] + [traces[name] for name in sorted(traces)])
        raw = parse_rawfile(render_rawfile("sal", variables, data))
        assert extract_metrics(specs, raw.time, raw.traces(), 0.9) == values


# ----------------------------------------------------------------------
# Golden rawfiles: the committed byte-level contract
# ----------------------------------------------------------------------
class TestGoldenRawfiles:
    """One committed binary rawfile per paper circuit, rendered from the
    analytic engine's metrics for the shared reference job (regenerate with
    ``REPRO_REGEN_GOLDEN=1``)."""

    def _golden_blob(self, circuit):
        job = reference_job(circuit, rows=1)
        metrics = BatchedMNABackend().evaluate(circuit, job)
        values = {name: float(metrics[name][0]) for name in circuit.metric_names}
        vdd = float(job.row_corners[0].vdd)
        times, traces = synthesize_canonical(circuit.waveform_specs(), values, vdd)
        variables = [("time", "time")] + [
            (name, "current" if name.startswith("i(") else "voltage")
            for name in sorted(traces)
        ]
        data = np.vstack([times] + [traces[name] for name in sorted(traces)])
        return render_rawfile(circuit.name, variables, data), values, vdd

    def test_rawfile_matches_golden_bytes(self, paper_circuit):
        blob, _, _ = self._golden_blob(paper_circuit)
        path = os.path.join(GOLDEN_DIR, f"{paper_circuit.name}.raw")
        if os.environ.get("REPRO_REGEN_GOLDEN"):
            os.makedirs(GOLDEN_DIR, exist_ok=True)
            with open(path, "wb") as handle:
                handle.write(blob)
        with open(path, "rb") as handle:
            expected = handle.read()
        assert blob == expected, (
            f"rendered rawfile for {paper_circuit.name} drifted from {path}; "
            f"regenerate with REPRO_REGEN_GOLDEN=1 if intended"
        )

    def test_golden_rawfile_extracts_analytic_metrics_exactly(self, paper_circuit):
        _, values, vdd = self._golden_blob(paper_circuit)
        path = os.path.join(GOLDEN_DIR, f"{paper_circuit.name}.raw")
        raw = read_rawfile(path, allow_nan=True)
        extracted = extract_metrics(
            paper_circuit.waveform_specs(), raw.time, raw.traces(), vdd
        )
        assert extracted == values  # bit-for-bit through committed bytes


# ----------------------------------------------------------------------
# Netlist trimming
# ----------------------------------------------------------------------
class TestTrim:
    def test_probe_node_names(self):
        nodes, current = probe_node_names(["v(outp)", "bias", "i(vvdd)", " "])
        assert nodes == {"outp", "bias"}
        assert current

    def test_isolated_ladder_trims_to_one_column(self):
        ladder = common_source_ladder(16, 4, coupling="isolated")
        result = trim_circuit(ladder, ["v(f15_3)"])
        assert result.trimmed
        assert len(result.kept) == 12
        assert len(result.kept) + len(result.dropped) == len(ladder.elements)
        assert result.element_reduction > 0.9
        # The kept cone: supplies, stage 15's load + device + filter chain.
        assert {"VDD", "VB", "RD15", "M15"} <= set(result.kept)
        assert "M0" in result.dropped
        assert "92.6% removed" in describe_trim(result)

    def test_trim_preserves_probed_dc_solution(self):
        from repro.spice.dc import solve_dc

        ladder = common_source_ladder(8, 2, coupling="isolated")
        result = trim_circuit(ladder, ["v(f7_1)"])
        assert result.trimmed
        full = solve_dc(ladder)
        trimmed = solve_dc(result.circuit)
        assert trimmed["f7_1"] == pytest.approx(full["f7_1"], rel=1e-12)

    def test_resistive_ladder_is_conservatively_untrimmed(self):
        # The divider ladder + drain bridges really do couple every stage to
        # the probe, and the walk proves it by keeping everything.
        ladder = common_source_ladder(16, 4)
        result = trim_circuit(ladder, ["v(f15_3)"])
        assert not result.trimmed
        assert not result.dropped
        assert describe_trim(result) == f"untrimmed ({len(ladder.elements)} elements)"

    def test_current_probe_disables_trimming(self):
        ladder = common_source_ladder(4, 1, coupling="isolated")
        assert not trim_circuit(ladder, ["v(f3_0)", "i(vdd)"]).trimmed

    def test_unknown_probe_only_set_is_untrimmed(self):
        ladder = common_source_ladder(4, 1, coupling="isolated")
        assert not trim_circuit(ladder, ["v(m_energy)"]).trimmed

    def test_trim_requires_waveform_mode(self, strongarm):
        job = reference_job(strongarm, rows=1)
        with pytest.raises(ValueError, match="measurement='waveform'"):
            compile_job_deck(job, strongarm, trim=True)

    def test_waveform_deck_records_trim_note(self, paper_circuit):
        job = reference_job(paper_circuit, rows=1)
        deck = compile_job_deck(job, paper_circuit, measurement="waveform")
        assert "* trim: " in deck.text
        assert ".meas" not in deck.text
        assert ".tran" in deck.text
        assert ".save" in deck.text


# ----------------------------------------------------------------------
# Model cards (lambda scaling + per-row corner shifts)
# ----------------------------------------------------------------------
class TestModelCards:
    def test_lambda_card_is_lambda_per_um_over_length(self):
        """Regression for the channel-length-modulation card: the deck must
        carry ``lambda_per_um / L_um`` — the value ``_ids_core`` actually
        uses — not the raw per-micron coefficient.  nmos_28nm has
        lambda_per_um=0.08, so L=100nm pins lambda at exactly 0.8."""
        cards = netlist_cards(common_source_amplifier())
        model_lines = [line for line in cards if line.startswith(".model")]
        assert model_lines == [
            ".model nmos_m1 nmos (level=1 vto=3.200000000e-01 "
            "kp=3.200000000e-04 lambda=8.000000000e-01)"
        ]

    def test_lambda_card_scales_with_length(self):
        from repro.spice.mosfet import MosfetModel, nmos_28nm
        from repro.spice.netlist import GROUND, Circuit, Mosfet, VoltageSource

        circuit = Circuit("lambda_probe")
        circuit.add(VoltageSource("VDD", "vdd", GROUND, 0.9))
        circuit.add(
            Mosfet("M1", "vdd", "vdd", GROUND, MosfetModel(2e-6, 200e-9, nmos_28nm()))
        )
        (model_line,) = [
            line for line in netlist_cards(circuit) if line.startswith(".model")
        ]
        assert "lambda=4.000000000e-01" in model_line


# ----------------------------------------------------------------------
# Waveform-mode backend (through the hermetic fake)
# ----------------------------------------------------------------------
def _conditions_job(circuit, rows=3, seed=7):
    rng = np.random.default_rng(seed)
    return SimJob.conditions(
        circuit.name,
        rng.uniform(0.2, 0.8, circuit.dimension),
        (typical_corner(),),
        rng.standard_normal((rows, circuit.mismatch_dimension)),
    )


class TestWaveformBackend:
    def test_measurement_env_resolution(self, fake_ngspice_waveform):
        assert NgspiceBackend().measurement == "waveform"
        assert NgspiceBackend(measurement="measure").measurement == "measure"
        with pytest.raises(ValueError, match="measurement mode"):
            NgspiceBackend(measurement="scope")

    def test_waveform_mode_forces_row_parallel_dispatch(self, fake_ngspice_waveform):
        # Rawfiles are per-run artifacts: even a payload-aware engine must
        # get one single-row deck per row in waveform mode.
        assert NgspiceBackend().row_parallel
        assert not NgspiceBackend(measurement="measure").row_parallel

    def test_metrics_bit_equal_to_analytic_engine(
        self, paper_circuit, fake_ngspice_waveform
    ):
        """The acceptance property: deck -> subprocess -> binary rawfile ->
        host-side extraction reproduces the analytic engine bit-for-bit."""
        job = _conditions_job(paper_circuit)
        waveform = NgspiceBackend().evaluate(paper_circuit, job)
        analytic = BatchedMNABackend().evaluate(paper_circuit, job)
        for name in paper_circuit.metric_names:
            np.testing.assert_array_equal(waveform[name], analytic[name])

    @pytest.mark.parametrize("mode", ["partial", "garbage"])
    def test_missing_or_garbage_rawfile_degrades_to_failure_nan(
        self, strongarm, fake_ngspice_waveform, monkeypatch, mode
    ):
        # partial = the engine exits 0 but writes no rawfile; garbage = the
        # rawfile is unparseable.  Both mean "the engine never produced the
        # cell", so every cell is FAILURE_NAN (refundable, uncacheable).
        monkeypatch.setenv("FAKE_NGSPICE_MODE", mode)
        job = _conditions_job(strongarm, rows=2)
        metrics = NgspiceBackend().evaluate(strongarm, job)
        for name in strongarm.metric_names:
            assert failure_nan_mask(metrics[name]).all()

    def test_engine_reported_nan_is_plain_nan(
        self, strongarm, fake_ngspice_waveform, monkeypatch
    ):
        # failcell = the run succeeded but the first metric's trace carries
        # NaN: a genuine failed measurement, chargeable and cacheable —
        # plain NaN, NOT the FAILURE_NAN signature.
        monkeypatch.setenv("FAKE_NGSPICE_MODE", "failcell")
        job = _conditions_job(strongarm, rows=2)
        metrics = NgspiceBackend().evaluate(strongarm, job)
        first = strongarm.metric_names[0]
        assert np.isnan(metrics[first]).all()
        assert not failure_nan_mask(metrics[first]).any()
        for name in strongarm.metric_names[1:]:
            assert np.isfinite(metrics[name]).all()

    def test_strict_mode_raises_on_garbage_rawfile(
        self, strongarm, fake_ngspice_waveform, monkeypatch
    ):
        monkeypatch.setenv("FAKE_NGSPICE_MODE", "garbage")
        with pytest.raises(NgspiceError):
            NgspiceBackend(strict=True).evaluate(
                strongarm, _conditions_job(strongarm, rows=1)
            )


class TestWaveformSizingLoop:
    """Acceptance: a seeded waveform-mode sizing run is budget- and
    trajectory-identical to ``backend="batched"``."""

    def tiny_config(self, backend):
        from repro.api import ExperimentConfig

        return ExperimentConfig(
            circuit="sal",
            method="C",
            algorithm="glova",
            seeds=(0,),
            max_iterations=2,
            initial_samples=4,
            optimization_samples=2,
            verification_samples=2,
            backend=backend,
        )

    def test_waveform_sizing_matches_batched_trajectory(
        self, fake_ngspice_waveform
    ):
        from repro.api import run_sizing

        waveform_report = run_sizing(self.tiny_config("ngspice"))
        batched_report = run_sizing(self.tiny_config("batched"))
        wf, ba = waveform_report.runs[0], batched_report.runs[0]
        assert wf.simulations == ba.simulations  # budget-identical
        assert wf.success == ba.success
        assert wf.iterations == ba.iterations
        if ba.final_design is None:
            assert wf.final_design is None
        else:
            assert wf.final_design == pytest.approx(ba.final_design, rel=1e-12)
        json.loads(waveform_report.to_json())
