"""Chaos soak: repeated fault rounds through a real worker pool.

Marked ``stress`` and excluded from the tier-1 lane (see ``pytest.ini``);
select with ``pytest -m stress``.  Each round arms a fresh fault schedule
against a live sharded service and asserts full equivalence with the
fault-free reference — metrics bit-identical, budget charged exactly
once per row — so the healing/retry machinery is exercised many times in
a single process, across heals, generations and schedule modes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.simulation import (
    BatchedMNABackend,
    FaultSchedule,
    RetryPolicy,
    SimJob,
    SimulationPhase,
)
from repro.variation.corners import typical_corner

pytestmark = pytest.mark.stress

ROUNDS = 6
ROWS = 12
WORKERS = 3


def _job(circuit, seed):
    rng = np.random.default_rng(seed)
    return SimJob.conditions(
        circuit.name,
        rng.uniform(0.2, 0.8, circuit.dimension),
        (typical_corner(),),
        rng.standard_normal((ROWS, circuit.mismatch_dimension)),
        phase=SimulationPhase.OPTIMIZATION,
    )


@pytest.mark.parametrize("mode", ["kill", "raise", "nan"])
def test_chaos_soak_stays_equivalent(
    mode, strongarm, service_factory, monkeypatch, tmp_path
):
    """ROUNDS consecutive fault rounds; every round must end bit-identical.

    ``kill`` rounds each cost one pool heal; the pool is given enough
    headroom that the soak never poisons it, and the test asserts the
    heals actually happened (the faults were not silently skipped).
    """
    schedule = FaultSchedule(
        mode=mode, faults=ROUNDS, ticket_dir=str(tmp_path / "tickets")
    )
    for key, value in schedule.to_env("batched").items():
        monkeypatch.setenv(key, value)
    schedule.arm()

    retry = RetryPolicy(max_attempts=4, backoff=0.0)
    service = service_factory(
        strongarm,
        backend="chaos",
        workers=WORKERS,
        retry=retry,
        idempotent_charges=True,
    )
    if mode == "kill":
        service.pool.max_heals = ROUNDS + 2

    reference = BatchedMNABackend()
    for round_index in range(ROUNDS):
        job = _job(strongarm, seed=round_index)
        result = service.run(job)
        expected = reference.evaluate(strongarm, job)
        for name in strongarm.metric_names:
            np.testing.assert_array_equal(result.metrics[name], expected[name])
        assert service.budget.total == ROWS * (round_index + 1)

    assert schedule.tickets_left() == 0, "some scheduled faults never fired"
    if mode == "kill":
        assert service.pool.heals >= 1
        assert not service.pool.poisoned
