"""Tests for the MOSFET compact model (repro.spice.mosfet)."""

import numpy as np
import pytest

from repro.spice.mosfet import MosfetModel, nmos_28nm, pmos_28nm
from repro.variation.corners import ProcessCorner, PVTCorner


@pytest.fixture
def nmos():
    return MosfetModel(1e-6, 100e-9, nmos_28nm())


@pytest.fixture
def pmos():
    return MosfetModel(1e-6, 100e-9, pmos_28nm())


class TestGeometryValidation:
    def test_rejects_tiny_width(self):
        with pytest.raises(ValueError):
            MosfetModel(1e-9, 100e-9)

    def test_rejects_tiny_length(self):
        with pytest.raises(ValueError):
            MosfetModel(1e-6, 1e-9)


class TestDrainCurrent:
    def test_off_device_conducts_little(self, nmos):
        assert nmos.drain_current(vgs=0.0, vds=0.9) < 1e-7

    def test_current_increases_with_vgs(self, nmos):
        currents = [nmos.drain_current(vgs, 0.9) for vgs in (0.4, 0.6, 0.8)]
        assert currents[0] < currents[1] < currents[2]

    def test_current_scales_with_width(self):
        narrow = MosfetModel(1e-6, 100e-9, nmos_28nm())
        wide = MosfetModel(4e-6, 100e-9, nmos_28nm())
        ratio = wide.drain_current(0.7, 0.9) / narrow.drain_current(0.7, 0.9)
        assert ratio == pytest.approx(4.0, rel=0.05)

    def test_current_decreases_with_length(self):
        short = MosfetModel(1e-6, 30e-9, nmos_28nm())
        long = MosfetModel(1e-6, 300e-9, nmos_28nm())
        assert short.drain_current(0.7, 0.9) > long.drain_current(0.7, 0.9)

    def test_negative_vds_clamped(self, nmos):
        assert nmos.drain_current(0.7, -0.1) >= 0.0

    def test_triode_current_below_saturation(self, nmos):
        assert nmos.drain_current(0.7, 0.02) < nmos.drain_current(0.7, 0.9)

    def test_pmos_weaker_than_nmos_at_same_size(self, nmos, pmos):
        assert pmos.drain_current(0.7, 0.9) < nmos.drain_current(0.7, 0.9)


class TestEnvironment:
    def test_ss_corner_reduces_current(self, nmos):
        nominal = PVTCorner(ProcessCorner.TT, 0.9, 27.0)
        slow = PVTCorner(ProcessCorner.SS, 0.9, 27.0)
        assert nmos.drain_current(0.6, 0.9, corner=slow) < nmos.drain_current(
            0.6, 0.9, corner=nominal
        )

    def test_ff_corner_increases_current(self, nmos):
        nominal = PVTCorner(ProcessCorner.TT, 0.9, 27.0)
        fast = PVTCorner(ProcessCorner.FF, 0.9, 27.0)
        assert nmos.drain_current(0.6, 0.9, corner=fast) > nmos.drain_current(
            0.6, 0.9, corner=nominal
        )

    def test_high_temperature_reduces_strong_inversion_current(self, nmos):
        cold = PVTCorner(ProcessCorner.TT, 0.9, -40.0)
        hot = PVTCorner(ProcessCorner.TT, 0.9, 80.0)
        assert nmos.drain_current(0.8, 0.9, corner=hot) < nmos.drain_current(
            0.8, 0.9, corner=cold
        )

    def test_positive_vth_mismatch_reduces_current(self, nmos):
        base = nmos.drain_current(0.6, 0.9)
        shifted = nmos.drain_current(0.6, 0.9, vth_shift=0.05)
        assert shifted < base

    def test_beta_error_scales_current(self, nmos):
        base = nmos.drain_current(0.7, 0.9)
        boosted = nmos.drain_current(0.7, 0.9, beta_error=0.10)
        assert boosted == pytest.approx(base * 1.10, rel=0.01)


class TestOperatingPoint:
    def test_region_classification(self, nmos):
        assert nmos.operating_point(0.2, 0.9).region == "subthreshold"
        assert nmos.operating_point(0.8, 0.9).region == "saturation"
        assert nmos.operating_point(0.8, 0.01).region == "triode"

    def test_gm_positive_in_saturation(self, nmos):
        op = nmos.operating_point(0.7, 0.9)
        assert op.gm > 0
        assert op.gds > 0

    def test_transconductance_matches_finite_difference(self, nmos):
        delta = 1e-4
        expected = (
            nmos.drain_current(0.7 + delta, 0.9) - nmos.drain_current(0.7, 0.9)
        ) / delta
        assert nmos.transconductance(0.7, 0.9) == pytest.approx(expected, rel=0.05)


class TestCapacitances:
    def test_gate_capacitance_scales_with_area(self):
        small = MosfetModel(1e-6, 30e-9, nmos_28nm())
        large = MosfetModel(4e-6, 30e-9, nmos_28nm())
        assert large.gate_capacitance() > small.gate_capacitance()

    def test_drain_capacitance_positive(self, nmos):
        assert nmos.drain_capacitance() > 0

    def test_gate_capacitance_reasonable_magnitude(self, nmos):
        # A 1 um x 0.1 um device should be in the low-femtofarad range.
        assert 0.1e-15 < nmos.gate_capacitance() < 20e-15
