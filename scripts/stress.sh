#!/usr/bin/env bash
# Opt-in stress lane: long-running chaos soaks (daemon kill/restart
# cycles, multi-tenant churn) marked `stress` and excluded from the
# default pytest run by pytest.ini's addopts.
#
# Usage: scripts/stress.sh [extra pytest args]
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"
exec python -m pytest -m stress -q "$@"
