"""Regenerate one Table-II block from the public API.

Runs GLOVA, the PVTSizing-style baseline and the RobustAnalog-style baseline
on the StrongARM latch under the corner (``C``) and corner + local-MC
(``C-MCL``) verification scenarios, then prints the same four rows the paper
reports: RL iterations, number of simulations, normalized runtime, and
success rate.  This is the scripting equivalent of
``pytest benchmarks/test_table2_sal.py --benchmark-only``.

Run with::

    python examples/table2_comparison.py
"""

from __future__ import annotations

from repro.analysis import (
    ExperimentRunner,
    ExperimentSettings,
    format_comparison_table,
)
from repro.core.config import VerificationMethod


def main() -> None:
    scenarios = {
        "C": VerificationMethod.CORNER,
        "C-MCL": VerificationMethod.CORNER_LOCAL_MC,
    }
    block = {}
    for label, verification in scenarios.items():
        settings = ExperimentSettings(
            circuit_name="sal",
            verification=verification,
            seeds=(0,),
            max_iterations=120,
            initial_samples=40,
            verification_samples=20,
        )
        runner = ExperimentRunner(settings)
        print(f"running methods for scenario {label} ...")
        block[label] = runner.compare_methods(
            methods=("glova", "pvtsizing", "robustanalog")
        )

    print()
    print(
        format_comparison_table(
            block, title="Table II — StrongARM latch (reduced scale)"
        )
    )
    print(
        "\nNote: reduced Monte-Carlo budgets (20 samples/corner) and a single"
        "\nseed; see EXPERIMENTS.md for the paper-scale interpretation."
    )


if __name__ == "__main__":
    main()
