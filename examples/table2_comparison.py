"""Regenerate one Table-II block from the experiment facade.

Runs GLOVA, the PVTSizing-style baseline and the RobustAnalog-style baseline
on the StrongARM latch under the corner (``C``) and corner + local-MC
(``C-MCL``) verification scenarios — one :func:`repro.api.run_comparison`
call per scenario — then prints the same four rows the paper reports:
RL iterations, number of simulations, normalized runtime, and success rate.
This is the scripting equivalent of
``pytest benchmarks/test_table2_sal.py --benchmark-only``.

Run with::

    python examples/table2_comparison.py
"""

from __future__ import annotations

from repro.analysis import format_comparison_table
from repro.api import ExperimentConfig, run_comparison


def main() -> None:
    config = ExperimentConfig(
        circuit="sal",
        seeds=(0,),
        max_iterations=120,
        initial_samples=40,
        verification_samples=20,
    )
    block = {}
    for label in ("C", "C-MCL"):
        print(f"running methods for scenario {label} ...")
        block[label] = run_comparison(
            config.with_overrides(method=label),
            algorithms=("glova", "pvtsizing", "robustanalog"),
        )

    print()
    print(
        format_comparison_table(
            block, title="Table II — StrongARM latch (reduced scale)"
        )
    )
    print(
        "\nNote: reduced Monte-Carlo budgets (20 samples/corner) and a single"
        "\nseed; see EXPERIMENTS.md for the paper-scale interpretation."
    )


if __name__ == "__main__":
    main()
