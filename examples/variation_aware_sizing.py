"""Variation-aware sizing of the floating inverter amplifier under global-local MC.

This example exercises the paper's hardest verification scenario shape
(``C-MCG-L``): the process axis is statistical (die-to-die global variation
plus within-die local mismatch sampled hierarchically, Eq. 3) and the design
must pass every sampled die at every VT corner.  The GLOVA run itself is one
facade call (:func:`repro.api.run_sizing`); the example then contrasts the
verified design with the *nominal-only* design a variation-blind optimizer
would pick, showing the failure rate gap under Monte Carlo.

Run with::

    python examples/variation_aware_sizing.py
"""

from __future__ import annotations

import numpy as np

from repro.api import ExperimentConfig, run_sizing
from repro.core.reward import reward_from_metrics
from repro.core.spec import DesignSpec
from repro.core.turbo import TurboSampler
from repro.simulation import CircuitSimulator
from repro.variation.corners import vt_corner_set
from repro.variation.mismatch import MismatchSampler


def monte_carlo_failure_rate(circuit, design, dies=100, samples_per_die=3, seed=7):
    """Fraction of global-local MC samples that violate any constraint."""
    spec = DesignSpec.from_circuit(circuit)
    sampler = MismatchSampler(
        circuit.mismatch_model,
        include_global=True,
        include_local=True,
        rng=np.random.default_rng(seed),
    )
    x_physical = circuit.denormalize(design)
    failures = 0
    total = 0
    for corner in vt_corner_set():
        for _ in range(dies // 6):
            for mismatch in sampler.sample(x_physical, samples_per_die):
                total += 1
                metrics = circuit.evaluate(design, corner, mismatch)
                if reward_from_metrics(spec, metrics) < 0.2:
                    failures += 1
    return failures / total


def nominal_only_design(circuit, seed=0, budget=120):
    """What a variation-blind optimizer would return: feasible at typical only."""
    simulator = CircuitSimulator(circuit)
    spec = DesignSpec.from_circuit(circuit)
    sampler = TurboSampler(circuit.dimension, rng=np.random.default_rng(seed))
    result = sampler.run(
        lambda x: reward_from_metrics(spec, simulator.simulate_typical(x).metrics),
        max_evaluations=budget,
        feasible_target=1,
    )
    return result.best_design


def main() -> None:
    config = ExperimentConfig(
        circuit="fia",
        method="C-MCG-L",
        seeds=(0,),
        max_iterations=150,
        initial_samples=40,
        verification_samples=60,
    )
    circuit = config.build_circuit()

    print("=== GLOVA: global-local variation-aware sizing (C-MCG-L) ===")
    report = run_sizing(config)
    print(report.summary())

    print("\n=== Comparison with a nominal-only (variation-blind) design ===")
    blind = nominal_only_design(circuit)
    blind_rate = monte_carlo_failure_rate(circuit, blind)
    print(f"nominal-only design: {blind_rate:.1%} of global-local MC samples fail")

    best = report.best_run
    if best is not None:
        design = np.array(best.final_design)
        robust_rate = monte_carlo_failure_rate(circuit, design)
        print(f"GLOVA design:        {robust_rate:.1%} of global-local MC samples fail")
        print("\nVerified sizing (physical units):")
        for parameter, value in zip(circuit.parameters, best.final_design_physical):
            print(f"  {parameter.name:<14} = {value:.4g} {parameter.unit}")


if __name__ == "__main__":
    main()
