"""Quickstart: size a StrongARM latch across all PVT corners with GLOVA.

Runs the complete framework — TuRBO initial sampling, risk-sensitive RL
optimization, and hierarchical corner verification — through the top-level
experiment facade (:mod:`repro.api`), then prints the verified sizing and
its performance at the typical condition.  The command-line equivalent is::

    python -m repro --circuit sal --method C --seeds 0 --max-iterations 80

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.api import ExperimentConfig, run_sizing


def main() -> None:
    config = ExperimentConfig(
        circuit="sal",
        method="C",
        seeds=(0,),
        max_iterations=80,
        initial_samples=40,
    )
    circuit = config.build_circuit()
    print(circuit.describe())
    print()

    report = run_sizing(config)
    print(report.summary())
    print()

    best = report.best_run
    if best is None:
        print("No verified design found within the iteration budget; "
              "try more iterations or a different seed.")
        return

    print("Verified sizing (physical units):")
    for parameter, value in zip(circuit.parameters, best.final_design_physical):
        print(f"  {parameter.name:<14} = {value:.4g} {parameter.unit}")
    print()
    print("Performance at the typical condition (TT / 0.9 V / 27 C):")
    for metric, value in best.final_metrics.items():
        bound = circuit.constraints[metric]
        print(f"  {metric:<14} = {value:.4g}   (target <= {bound:.4g})")


if __name__ == "__main__":
    main()
