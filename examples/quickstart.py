"""Quickstart: size a StrongARM latch across all PVT corners with GLOVA.

Runs the complete framework — TuRBO initial sampling, risk-sensitive RL
optimization, and hierarchical corner verification — on the StrongARM latch
testcase with the corner-only (``C``) verification scenario, then prints the
verified sizing and its performance at the typical condition.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import GlovaConfig, GlovaOptimizer, VerificationMethod
from repro.circuits import StrongArmLatch


def main() -> None:
    circuit = StrongArmLatch()
    print(circuit.describe())
    print()

    config = GlovaConfig(
        verification=VerificationMethod.CORNER,
        seed=0,
        max_iterations=80,
        initial_samples=40,
    )
    optimizer = GlovaOptimizer(circuit, config)
    result = optimizer.run()

    print(result.summary())
    print()
    if not result.success:
        print("No verified design found within the iteration budget; "
              "try more iterations or a different seed.")
        return

    print("Verified sizing (physical units):")
    for parameter, value in zip(circuit.parameters, result.final_design_physical):
        print(f"  {parameter.name:<14} = {value:.4g} {parameter.unit}")
    print()
    print("Performance at the typical condition (TT / 0.9 V / 27 C):")
    for metric, value in result.final_metrics.items():
        bound = circuit.constraints[metric]
        print(f"  {metric:<14} = {value:.4g}   (target <= {bound:.4g})")


if __name__ == "__main__":
    main()
