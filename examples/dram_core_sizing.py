"""Sizing the OCSA + subhole DRAM-core sense path (the paper's hardest case).

The DRAM-core testcase has two *conflicting* sensing-voltage targets — a
stronger NMOS sense path helps reading a '0' but hurts reading a '1' — plus
an energy budget that punishes simply oversizing everything, and the
offset-cancellation sense amplifier is extremely sensitive to local
mismatch.  This example runs GLOVA under the corner + local Monte-Carlo
scenario (``C-MCL``) through the experiment facade, then demonstrates the
verification phase on its own (mu-sigma screen, corner reordering by
t-SCORE, MC reordering by h-SCORE) against the verified design.

Run with::

    python examples/dram_core_sizing.py
"""

from __future__ import annotations

import numpy as np

from repro.api import ExperimentConfig, run_sizing
from repro.core.replay import LastWorstCaseBuffer
from repro.core.spec import DesignSpec
from repro.core.verification import Verifier
from repro.simulation import CircuitSimulator


def main() -> None:
    config = ExperimentConfig(
        circuit="dram",
        method="C-MCL",
        seeds=(0,),
        max_iterations=200,
        initial_samples=40,
        verification_samples=20,
    )
    circuit = config.build_circuit()
    print(circuit.describe())
    print()

    report = run_sizing(config)
    print(report.summary())

    best = report.best_run
    if best is None:
        print("No verified design within budget; rerun with more iterations.")
        return

    print("\nVerified sizing (physical units):")
    for parameter, value in zip(circuit.parameters, best.final_design_physical):
        print(f"  {parameter.name:<14} = {value:.4g} {parameter.unit}")

    print("\nSensing performance at the typical condition:")
    for metric, value in best.final_metrics.items():
        bound = circuit.constraints[metric]
        print(f"  {metric:<16} = {value:.4g}   (target <= {bound:.4g})")

    # ------------------------------------------------------------------
    # Standalone verification of the final design, to show the verification
    # phase's bookkeeping (Algorithm 2) on top of the simulation service.
    # ------------------------------------------------------------------
    print("\n=== Standalone hierarchical verification of the GLOVA design ===")
    simulator = CircuitSimulator(circuit)
    spec = DesignSpec.from_circuit(circuit)
    glova_config = config.glova_config(config.seeds[0])
    operational = glova_config.operational()
    verifier = Verifier(
        simulator,
        spec,
        operational,
        beta2=glova_config.reliability_beta2,
        rng=np.random.default_rng(1),
    )
    outcome = verifier.verify(
        np.array(best.final_design), LastWorstCaseBuffer(operational.corners)
    )
    budget = operational.total_verification_simulations
    print(f"verification passed: {outcome.passed}")
    print(f"simulations used:    {outcome.simulations} "
          f"(full budget would be {budget})")
    ranked = sorted(outcome.corner_reports, key=lambda s: s.t_score, reverse=True)
    print("corners ranked by t-SCORE (most dangerous first):")
    for screen in ranked[:5]:
        print(f"  {screen.corner.name:<16} t-SCORE = {screen.t_score:+.3f}")


if __name__ == "__main__":
    main()
