"""Command-line driver for the experiment facade (``python -m repro``).

Examples::

    # Inspect the resolved experiment without spending any simulations.
    python -m repro --circuit sal --method C --dry-run

    # Size the StrongARM latch under corner + local-MC verification.
    python -m repro --circuit sal --method C-MCL --seeds 0,1 --output report.json

    # Run a Table-II baseline on the DRAM core.
    python -m repro --circuit dram --method C --algorithm pvtsizing

    # What can I name?
    python -m repro --list-circuits

    # Survive flaky engines / dead workers, and checkpoint per-seed
    # progress so an interrupted sweep resumes without re-simulating.
    python -m repro --circuit sal --method C-MCL --retries 3 \
        --checkpoint-dir ./ckpt --cache-dir ./simcache

    # Disk-cache hygiene for long-lived --cache-dir stores.
    python -m repro cache stats ./simcache
    python -m repro cache prune ./simcache --max-bytes 500000000
    python -m repro cache clear ./simcache

    # Print the reference ngspice deck for a circuit (golden-deck guard);
    # waveform mode shows the trimmed .tran+rawfile flavour.
    python -m repro deck sal
    python -m repro deck dram --measurement waveform --summary

    # Remote simulation fabric: a worker daemon in one terminal ...
    python -m repro serve --backend batched --port 7741
    # ... and any number of sizing runs shipping jobs to it.
    python -m repro --circuit sal --method C --backend remote \
        --endpoints 127.0.0.1:7741

    # Experiment front end: a journaled daemon owning whole sizing runs
    # (crash-safe resume, per-tenant admission, BUSY shedding, SIGTERM
    # drain) ...
    python -m repro serve --mode experiment --journal-dir ./journal \
        --port 7742 --max-queue 8 --tenant-quota 50000
    # ... driven from Python: api.run_experiment(config,
    # endpoint="127.0.0.1:7742", tenant="alice").

The same binary is installed as the ``repro`` console script (setup.py).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

import os

from repro import api
from repro.circuits.registry import (
    NETLIST,
    TESTBENCH,
    available_circuits,
    get_circuit,
    registered_entry,
)
from repro.simulation import available_backends
from repro.simulation.ngspice import EXECUTABLE_ENV
from repro.version import __version__


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "GLOVA reproduction: variation-aware analog circuit sizing "
            "with risk-sensitive RL"
        ),
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    parser.add_argument(
        "--list-circuits",
        action="store_true",
        help="list registered circuits (testbenches and netlists) and exit",
    )
    parser.add_argument(
        "--config",
        metavar="PATH",
        help="load an ExperimentConfig JSON file (flags override its fields)",
    )
    parser.add_argument("--circuit", help="circuit name or alias (e.g. sal)")
    parser.add_argument(
        "--method",
        choices=sorted(api.METHODS),
        help="verification scenario (Table I)",
    )
    parser.add_argument(
        "--algorithm",
        choices=sorted(api.ALGORITHMS),
        help="sizing algorithm (default: glova)",
    )
    parser.add_argument(
        "--seeds", help="comma-separated RNG seeds, e.g. 0,1,2 (default: 0)"
    )
    parser.add_argument("--max-iterations", type=int, metavar="N")
    parser.add_argument("--initial-samples", type=int, metavar="N")
    parser.add_argument(
        "--optimization-samples", type=int, metavar="N", help="N' per iteration"
    )
    parser.add_argument(
        "--verification-samples", type=int, metavar="N", help="N per corner"
    )
    parser.add_argument(
        "--backend",
        choices=available_backends(),
        help="simulation backend (default: batched)",
    )
    parser.add_argument(
        "--ngspice-executable",
        metavar="PATH",
        help=(
            "simulator binary for --backend ngspice (sets $REPRO_NGSPICE; "
            "default: ngspice on PATH)"
        ),
    )
    parser.add_argument(
        "--endpoints",
        metavar="HOST:PORT[,HOST:PORT...]",
        help=(
            "repro serve daemons for --backend remote (sets "
            "$REPRO_REMOTE_ENDPOINTS); jobs degrade to a local backend "
            "when the fleet is unreachable"
        ),
    )
    parser.add_argument(
        "--workers", type=int, metavar="N", help="process-pool shard count"
    )
    # BooleanOptionalAction keeps the default None so only explicitly
    # given flags (--cache / --no-cache) override a --config file's value.
    parser.add_argument(
        "--cache",
        action=argparse.BooleanOptionalAction,
        default=None,
        help="memoize simulations by job hash (hits charge zero budget)",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="PATH",
        help=(
            "persist the simulation cache to this directory (implies "
            "--cache); a repeated run replays from disk with zero backend "
            "invocations and zero budget charged"
        ),
    )
    parser.add_argument(
        "--pipeline",
        action=argparse.BooleanOptionalAction,
        default=None,
        help=(
            "overlap the control loop with in-flight simulation "
            "(double-buffered verification, overlapped seed batches); "
            "--no-pipeline selects the bit-identical sequential reference"
        ),
    )
    parser.add_argument(
        "--paper-scale",
        action=argparse.BooleanOptionalAction,
        default=None,
        help="use the paper's full Table-I Monte-Carlo budgets",
    )
    parser.add_argument(
        "--retries",
        type=int,
        metavar="N",
        help=(
            "retry transient simulation failures (worker death, timeouts, "
            "engine errors, FAILURE_NAN blocks) up to N times per job with "
            "budget-safe accounting; 0 disables (default: fail fast)"
        ),
    )
    parser.add_argument(
        "--retry-backoff",
        type=float,
        metavar="SECONDS",
        help=(
            "base exponential backoff between retry attempts "
            "(default: 0.05; deterministic seeded jitter is added)"
        ),
    )
    parser.add_argument(
        "--checkpoint-dir",
        metavar="PATH",
        help=(
            "snapshot each completed seed here; re-running the identical "
            "config resumes the sweep, replaying completed seeds from disk "
            "with zero re-simulation"
        ),
    )
    parser.add_argument(
        "--dry-run",
        action="store_true",
        help="print the resolved experiment plan and exit without simulating",
    )
    parser.add_argument(
        "--output", metavar="PATH", help="write the experiment report JSON here"
    )
    return parser


def build_cache_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro cache",
        description=(
            "maintenance for the on-disk simulation cache "
            "(the --cache-dir spill store)"
        ),
    )
    actions = parser.add_subparsers(dest="action", required=True)
    stats = actions.add_parser(
        "stats", help="entry count, byte total and age span of the store"
    )
    stats.add_argument("cache_dir", metavar="DIR")
    prune = actions.add_parser(
        "prune",
        help=(
            "evict least-recently-written records until the store fits "
            "--max-bytes"
        ),
    )
    prune.add_argument("cache_dir", metavar="DIR")
    prune.add_argument(
        "--max-bytes", type=int, required=True, metavar="BYTES"
    )
    clear = actions.add_parser("clear", help="delete every cached record")
    clear.add_argument("cache_dir", metavar="DIR")
    return parser


def cache_main(argv: List[str]) -> int:
    """The ``repro cache {stats,prune,clear}`` maintenance subcommand."""
    from repro.simulation.service import (
        clear_spill_store,
        prune_spill_store,
        spill_store_stats,
    )

    args = build_cache_parser().parse_args(argv)
    if args.action == "stats":
        stats = spill_store_stats(args.cache_dir)
        print(json.dumps(stats, indent=2, sort_keys=True))
    elif args.action == "prune":
        outcome = prune_spill_store(args.cache_dir, args.max_bytes)
        print(json.dumps(outcome, indent=2, sort_keys=True))
    else:
        removed = clear_spill_store(args.cache_dir)
        print(json.dumps({"removed_files": removed}, indent=2))
    return 0


def build_deck_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro deck",
        description=(
            "compile and print the ngspice deck for a named circuit's "
            "deterministic reference job (the golden-deck reference) — "
            "guards deck-format drift and shows exactly what an external "
            "engine would be handed"
        ),
    )
    parser.add_argument("circuit", help="testbench circuit name or alias")
    parser.add_argument(
        "--measurement",
        choices=("measure", "waveform"),
        default="measure",
        help="deck flavour: .measure cards (default) or .tran+rawfile",
    )
    parser.add_argument(
        "--rows", type=int, default=2, metavar="N",
        help="batch rows in the reference job (default 2: TT + SS corners)",
    )
    parser.add_argument(
        "--no-trim",
        action="store_true",
        help="keep the full netlist in waveform mode (skip cone trimming)",
    )
    parser.add_argument(
        "--summary",
        action="store_true",
        help="print a JSON size/shape summary instead of the deck text",
    )
    return parser


def deck_main(argv: List[str]) -> int:
    """The ``repro deck`` subcommand: print a circuit's reference deck."""
    from repro.spice.deck import compile_job_deck, reference_job

    args = build_deck_parser().parse_args(argv)
    circuit = get_circuit(args.circuit)
    if not hasattr(circuit, "metric_names"):
        print(
            f"error: {args.circuit!r} is a netlist factory, not a sizing "
            f"testbench; decks are compiled for testbench circuits",
            file=sys.stderr,
        )
        return 2
    job = reference_job(circuit, rows=args.rows)
    trim = False if args.no_trim else None
    deck = compile_job_deck(
        job, circuit, measurement=args.measurement, trim=trim
    )
    if args.summary:
        print(
            json.dumps(
                {
                    "circuit": deck.circuit_name,
                    "rows": deck.rows,
                    "measurement": deck.measurement,
                    "metrics": list(deck.metric_names),
                    "bytes": len(deck.text.encode("utf-8")),
                    "cards": sum(
                        1 for line in deck.text.splitlines() if line.strip()
                    ),
                },
                indent=2,
                sort_keys=True,
            )
        )
    else:
        sys.stdout.write(deck.text)
    return 0


def _list_circuits() -> None:
    print("Testbench circuits (sizing targets):")
    for name in available_circuits(TESTBENCH):
        circuit = get_circuit(name)
        print(
            f"  {name:<28} {circuit.dimension:>2} parameters, "
            f"{len(circuit.metric_names)} metrics"
        )
    print("Netlist factories (solver benchmarks):")
    for name in available_circuits(NETLIST):
        print(f"  {name}")


def _resolve_config(args: argparse.Namespace) -> api.ExperimentConfig:
    payload = {}
    if args.config:
        with open(args.config, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        if not isinstance(payload, dict):
            raise ValueError(
                f"config file {args.config} must contain a JSON object, "
                f"got {type(payload).__name__}"
            )
    overrides = {
        "circuit": args.circuit,
        "method": args.method,
        "algorithm": args.algorithm,
        "max_iterations": args.max_iterations,
        "initial_samples": args.initial_samples,
        "optimization_samples": args.optimization_samples,
        "verification_samples": args.verification_samples,
        "backend": args.backend,
        "endpoints": args.endpoints,
        "workers": args.workers,
        "cache_simulations": args.cache,
        "cache_dir": args.cache_dir,
        "pipeline": args.pipeline,
        "paper_scale": args.paper_scale,
        "checkpoint_dir": args.checkpoint_dir,
    }
    if args.seeds is not None:
        overrides["seeds"] = [int(s) for s in args.seeds.split(",") if s != ""]
    if args.retries is not None or args.retry_backoff is not None:
        retry = dict(payload.get("retry") or {})
        if args.retries is not None:
            if args.retries == 0:
                retry = None  # explicit --retries 0 disables a config file's policy
            else:
                retry["max_attempts"] = args.retries + 1
        if retry is not None and args.retry_backoff is not None:
            retry["backoff"] = args.retry_backoff
        overrides["retry"] = retry
        if retry is None:
            payload["retry"] = None
    payload.update({k: v for k, v in overrides.items() if v is not None})
    return api.ExperimentConfig.from_dict(payload)


def _print_dry_run(config: api.ExperimentConfig) -> None:
    circuit = config.build_circuit()
    glova = config.glova_config(config.seeds[0])
    operational = glova.operational()
    print("=== dry run: resolved experiment (no simulations charged) ===")
    print(config.to_json())
    print()
    print(circuit.describe())
    print()
    print(f"Algorithm:            {config.algorithm}")
    print(f"Verification method:  {operational.method.value}")
    print(f"Predefined corners:   {len(operational.corners)}")
    print(f"N' (optimization):    {operational.optimization_samples}")
    print(f"N (verification):     {operational.verification_samples}")
    print(
        f"Full verification:    "
        f"{operational.total_verification_simulations} simulations/pass"
    )
    cache_state = "on" if operational.cache_simulations else "off"
    if operational.cache_dir:
        cache_state = f"disk:{operational.cache_dir}"
    print(
        f"Backend:              {operational.backend} "
        f"(workers={operational.workers}, cache={cache_state}, "
        f"pipeline={'on' if operational.pipeline else 'off'})"
    )
    if config.retry is not None:
        attempts = config.retry.get("max_attempts", "?")
        print(f"Retry policy:         up to {attempts} attempts/job")
    if config.checkpoint_dir is not None:
        print(f"Checkpoints:          {config.checkpoint_dir}")
    print(f"Seeds:                {list(config.seeds)}")


def main(argv: Optional[List[str]] = None) -> int:
    arguments = list(sys.argv[1:] if argv is None else argv)
    # Subcommands are dispatched ahead of the flag parser so the legacy
    # flag-style interface stays untouched.
    if arguments and arguments[0] == "cache":
        return cache_main(arguments[1:])
    if arguments and arguments[0] == "serve":
        from repro.simulation.server import serve_main

        return serve_main(arguments[1:])
    if arguments and arguments[0] == "deck":
        return deck_main(arguments[1:])

    parser = build_parser()
    args = parser.parse_args(arguments)

    if args.list_circuits:
        _list_circuits()
        return 0

    if args.ngspice_executable:
        os.environ[EXECUTABLE_ENV] = args.ngspice_executable

    # A netlist name is valid for --list-circuits but not for sizing runs;
    # fail with the registry's context before building an ExperimentConfig.
    if args.circuit is not None:
        entry = registered_entry(args.circuit)
        if entry is not None and entry.kind == NETLIST:
            parser.error(
                f"{args.circuit!r} is a netlist factory, not a sizing "
                f"testbench; choose from {available_circuits()}"
            )

    try:
        config = _resolve_config(args)
    except (ValueError, TypeError, OSError, json.JSONDecodeError) as error:
        parser.error(str(error))

    if args.dry_run:
        _print_dry_run(config)
        return 0

    report = api.run_experiment(config)
    print(report.summary())
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report.to_json() + "\n")
        print(f"report written to {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
