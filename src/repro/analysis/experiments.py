"""Experiment orchestration: the method x scenario sweeps behind the tables.

:class:`ExperimentRunner` runs GLOVA and the baselines repeatedly with
different seeds on one circuit and aggregates the outcomes the way the
paper's tables do.  Benchmarks construct it with reduced Monte-Carlo budgets
so the suite stays laptop-friendly; ``paper_scale=True`` restores the full
Table-I budgets.

Since the facade redesign this module is a thin veneer: every run is
delegated to :mod:`repro.api` (one :class:`~repro.api.ExperimentConfig`
per method/seed sweep), so the benchmarks and the public facade share one
orchestration path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.analysis.metrics import MethodSummary, aggregate_results, normalize_runtimes
from repro.core.config import GlovaConfig, VerificationMethod
from repro.core.result import OptimizationResult


@dataclass
class ExperimentSettings:
    """Knobs shared by every run in one experiment sweep."""

    circuit_name: str
    verification: VerificationMethod
    seeds: Sequence[int] = (0, 1, 2)
    max_iterations: int = 60
    initial_samples: int = 40
    verification_samples: Optional[int] = None
    optimization_samples: int = 3
    paper_scale: bool = False

    def build_config(self, seed: int, **overrides) -> GlovaConfig:
        """The per-seed :class:`GlovaConfig` (via the facade's one mapping)."""
        return self.experiment_config("glova", **overrides).glova_config(seed)

    def experiment_config(self, algorithm: str = "glova", **overrides):
        """The equivalent :class:`repro.api.ExperimentConfig` for one method."""
        from repro.api import ExperimentConfig

        return ExperimentConfig(
            circuit=self.circuit_name,
            method=self.verification.value,
            algorithm=algorithm,
            seeds=tuple(self.seeds),
            max_iterations=self.max_iterations,
            initial_samples=self.initial_samples,
            optimization_samples=self.optimization_samples,
            verification_samples=self.verification_samples,
            paper_scale=self.paper_scale,
            overrides=overrides,
        )


class ExperimentRunner:
    """Runs methods over seeds and aggregates Table-style summaries."""

    def __init__(self, settings: ExperimentSettings):
        self.settings = settings

    # ------------------------------------------------------------------
    def run_method(
        self, method: str, **config_overrides
    ) -> List[OptimizationResult]:
        """Run one method for every seed (delegates to :mod:`repro.api`)."""
        from repro import api

        try:
            config = self.settings.experiment_config(method, **config_overrides)
        except ValueError as error:
            raise KeyError(str(error)) from None
        return api.run_experiment(config).results

    def run_glova(self, seed: int, **config_overrides) -> OptimizationResult:
        from repro import api

        config = self.settings.experiment_config("glova", **config_overrides)
        return api.run_experiment(
            config.with_overrides(seeds=(seed,))
        ).results[0]

    def run_pvtsizing(self, seed: int) -> OptimizationResult:
        from repro import api

        config = self.settings.experiment_config("pvtsizing")
        return api.run_experiment(
            config.with_overrides(seeds=(seed,))
        ).results[0]

    def run_robustanalog(self, seed: int) -> OptimizationResult:
        from repro import api

        config = self.settings.experiment_config("robustanalog")
        return api.run_experiment(
            config.with_overrides(seeds=(seed,))
        ).results[0]

    def compare_methods(
        self, methods: Sequence[str] = ("glova", "pvtsizing", "robustanalog")
    ) -> List[MethodSummary]:
        """Run several methods and return normalized summaries."""
        scenario = self.settings.verification.value
        summaries = [
            aggregate_results(method, scenario, self.run_method(method))
            for method in methods
        ]
        return normalize_runtimes(summaries, reference_method="glova")

    def ablation(self) -> List[MethodSummary]:
        """The Table-III variants: full GLOVA and the three ablations."""
        scenario = self.settings.verification.value
        variants = {
            "glova": {},
            "glova_no_ensemble": {"use_ensemble_critic": False},
            "glova_no_mu_sigma": {"use_mu_sigma": False},
            "glova_no_reordering": {"use_reordering": False},
        }
        summaries = []
        for name, overrides in variants.items():
            results = [
                self.run_glova(seed, **overrides) for seed in self.settings.seeds
            ]
            summaries.append(aggregate_results(name, scenario, results))
        return normalize_runtimes(summaries, reference_method="glova")
