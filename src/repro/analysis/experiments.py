"""Experiment orchestration: the method x scenario sweeps behind the tables.

:class:`ExperimentRunner` runs GLOVA and the baselines repeatedly with
different seeds on one circuit and aggregates the outcomes the way the
paper's tables do.  Benchmarks construct it with reduced Monte-Carlo budgets
so the suite stays laptop-friendly; ``paper_scale=True`` restores the full
Table-I budgets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.analysis.metrics import MethodSummary, aggregate_results, normalize_runtimes
from repro.baselines.pvtsizing import PVTSizingOptimizer
from repro.baselines.robustanalog import RobustAnalogOptimizer
from repro.circuits.base import AnalogCircuit
from repro.circuits.registry import get_circuit
from repro.core.config import GlovaConfig, VerificationMethod
from repro.core.optimizer import GlovaOptimizer
from repro.core.result import OptimizationResult


@dataclass
class ExperimentSettings:
    """Knobs shared by every run in one experiment sweep."""

    circuit_name: str
    verification: VerificationMethod
    seeds: Sequence[int] = (0, 1, 2)
    max_iterations: int = 60
    initial_samples: int = 40
    verification_samples: Optional[int] = None
    optimization_samples: int = 3
    paper_scale: bool = False

    def build_config(self, seed: int, **overrides) -> GlovaConfig:
        verification_samples = self.verification_samples
        if self.paper_scale:
            verification_samples = None  # use the Table-I default budgets
        config = GlovaConfig(
            verification=self.verification,
            seed=seed,
            max_iterations=self.max_iterations,
            initial_samples=self.initial_samples,
            optimization_samples=self.optimization_samples,
            verification_samples=verification_samples,
        )
        return config.with_overrides(**overrides)


class ExperimentRunner:
    """Runs methods over seeds and aggregates Table-style summaries."""

    def __init__(self, settings: ExperimentSettings):
        self.settings = settings

    # ------------------------------------------------------------------
    def _circuit(self) -> AnalogCircuit:
        return get_circuit(self.settings.circuit_name)

    def run_glova(self, seed: int, **config_overrides) -> OptimizationResult:
        config = self.settings.build_config(seed, **config_overrides)
        optimizer = GlovaOptimizer(self._circuit(), config)
        return optimizer.run()

    def run_pvtsizing(self, seed: int) -> OptimizationResult:
        config = self.settings.build_config(seed)
        optimizer = PVTSizingOptimizer(self._circuit(), config)
        return optimizer.run()

    def run_robustanalog(self, seed: int) -> OptimizationResult:
        config = self.settings.build_config(seed)
        optimizer = RobustAnalogOptimizer(self._circuit(), config)
        return optimizer.run()

    # ------------------------------------------------------------------
    def run_method(
        self, method: str, **config_overrides
    ) -> List[OptimizationResult]:
        """Run one method for every seed."""
        runners: Dict[str, Callable[[int], OptimizationResult]] = {
            "glova": lambda seed: self.run_glova(seed, **config_overrides),
            "pvtsizing": self.run_pvtsizing,
            "robustanalog": self.run_robustanalog,
        }
        if method not in runners:
            raise KeyError(f"unknown method {method!r}")
        return [runners[method](seed) for seed in self.settings.seeds]

    def compare_methods(
        self, methods: Sequence[str] = ("glova", "pvtsizing", "robustanalog")
    ) -> List[MethodSummary]:
        """Run several methods and return normalized summaries."""
        scenario = self.settings.verification.value
        summaries = [
            aggregate_results(method, scenario, self.run_method(method))
            for method in methods
        ]
        return normalize_runtimes(summaries, reference_method="glova")

    def ablation(self) -> List[MethodSummary]:
        """The Table-III variants: full GLOVA and the three ablations."""
        scenario = self.settings.verification.value
        variants = {
            "glova": {},
            "glova_no_ensemble": {"use_ensemble_critic": False},
            "glova_no_mu_sigma": {"use_mu_sigma": False},
            "glova_no_reordering": {"use_reordering": False},
        }
        summaries = []
        for name, overrides in variants.items():
            results = [
                self.run_glova(seed, **overrides) for seed in self.settings.seeds
            ]
            summaries.append(aggregate_results(name, scenario, results))
        return normalize_runtimes(summaries, reference_method="glova")
