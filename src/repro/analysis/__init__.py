"""Experiment orchestration and reporting for the paper's evaluation.

:mod:`repro.analysis.metrics` aggregates repeated optimization runs into the
quantities Table II and Table III report (RL iterations, simulation counts,
normalized runtime, success rate); :mod:`repro.analysis.tables` renders them
as text tables; :mod:`repro.analysis.experiments` runs the method x
verification-scenario sweeps the benchmarks are built on.

:mod:`repro.analysis.waveform` is the engine-neutral waveform metric
library: vectorized crossing/delay/slew/settling/average measurements
shared by the analytic transient solver and the external-simulator
rawfile pipeline, plus the :class:`WaveformSpec` declarations circuits
use to describe how each metric is extracted from traces.
"""

from repro.analysis.metrics import (
    MethodSummary,
    aggregate_results,
    normalize_runtimes,
    straggler_idle_fraction,
)
from repro.analysis.tables import format_comparison_table, format_ablation_table
from repro.analysis.experiments import ExperimentRunner, ExperimentSettings
from repro.analysis.waveform import (
    TraceMissingError,
    WaveformError,
    WaveformSpec,
    crossing_time,
    delay_between,
    extract_metric,
    extract_metrics,
    first_crossing,
    overshoot,
    settling_time,
    slew_time,
)

__all__ = [
    "MethodSummary",
    "aggregate_results",
    "normalize_runtimes",
    "straggler_idle_fraction",
    "format_comparison_table",
    "format_ablation_table",
    "ExperimentRunner",
    "ExperimentSettings",
    "TraceMissingError",
    "WaveformError",
    "WaveformSpec",
    "crossing_time",
    "delay_between",
    "extract_metric",
    "extract_metrics",
    "first_crossing",
    "overshoot",
    "settling_time",
    "slew_time",
]
