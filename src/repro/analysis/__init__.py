"""Experiment orchestration and reporting for the paper's evaluation.

:mod:`repro.analysis.metrics` aggregates repeated optimization runs into the
quantities Table II and Table III report (RL iterations, simulation counts,
normalized runtime, success rate); :mod:`repro.analysis.tables` renders them
as text tables; :mod:`repro.analysis.experiments` runs the method x
verification-scenario sweeps the benchmarks are built on.
"""

from repro.analysis.metrics import MethodSummary, aggregate_results, normalize_runtimes
from repro.analysis.tables import format_comparison_table, format_ablation_table
from repro.analysis.experiments import ExperimentRunner, ExperimentSettings

__all__ = [
    "MethodSummary",
    "aggregate_results",
    "normalize_runtimes",
    "format_comparison_table",
    "format_ablation_table",
    "ExperimentRunner",
    "ExperimentSettings",
]
