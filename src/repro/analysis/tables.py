"""Text rendering of Table-II- and Table-III-style comparisons."""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence

from repro.analysis.metrics import MethodSummary

_ROW_LABELS = (
    ("rl_iterations", "RL Iteration", "{:.1f}"),
    ("simulations", "# Simulation", "{:.0f}"),
    ("normalized_runtime", "Norm. Runtime", "{:.2f}"),
    ("success_rate", "Success Rate", "{:.0%}"),
)


def format_comparison_table(
    summaries_by_scenario: Mapping[str, Sequence[MethodSummary]],
    title: str = "Optimization results",
) -> str:
    """Render a Table-II-style block: scenarios as columns, methods as rows.

    ``summaries_by_scenario`` maps a scenario label (``"C"``, ``"C-MCL"``,
    ``"C-MCG-L"``) to the per-method summaries for that scenario.
    """
    scenarios = list(summaries_by_scenario.keys())
    methods: List[str] = []
    for summaries in summaries_by_scenario.values():
        for summary in summaries:
            if summary.method not in methods:
                methods.append(summary.method)

    width = max(14, max(len(s) for s in scenarios) + 2)
    method_width = max(14, max(len(m) for m in methods) + 2)
    lines = [title, "=" * len(title)]
    header = " " * (method_width + 16) + "".join(f"{s:>{width}}" for s in scenarios)
    lines.append(header)

    for key, label, fmt in _ROW_LABELS:
        lines.append(label)
        for method in methods:
            cells = []
            for scenario in scenarios:
                summary = next(
                    (
                        s
                        for s in summaries_by_scenario[scenario]
                        if s.method == method
                    ),
                    None,
                )
                if summary is None:
                    cells.append(f"{'-':>{width}}")
                else:
                    cells.append(f"{fmt.format(summary.as_row()[key]):>{width}}")
            lines.append(f"  {method:<{method_width}}{'':<14}" + "".join(cells))
    return "\n".join(lines)


def format_ablation_table(
    summaries_by_scenario: Mapping[str, Sequence[MethodSummary]],
    title: str = "Ablation study",
) -> str:
    """Render the Table-III-style ablation block (same layout, variant rows)."""
    return format_comparison_table(summaries_by_scenario, title=title)
