"""Aggregation of optimization runs into Table-II / Table-III quantities.

The paper reports, per (circuit, verification scenario, method):

* **RL Iteration** — mean RL iterations over the successful runs;
* **# Simulation** — mean total SPICE-equivalent simulations over the
  successful runs ("In tests where the success rate is below 100 %, only
  data from successful optimizations are included");
* **Norm. Runtime** — modelled runtime normalized to GLOVA's;
* **Success Rate** — fraction of runs that produced a verified design.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Sequence

import numpy as np

from repro.core.result import OptimizationResult


@dataclass
class MethodSummary:
    """Aggregated statistics for one method under one scenario."""

    method: str
    circuit: str
    scenario: str
    runs: int
    successes: int
    mean_iterations: float
    mean_simulations: float
    mean_runtime: float
    normalized_runtime: float = float("nan")

    @property
    def success_rate(self) -> float:
        return self.successes / self.runs if self.runs else 0.0

    def as_row(self) -> Dict[str, float]:
        return {
            "method": self.method,
            "rl_iterations": self.mean_iterations,
            "simulations": self.mean_simulations,
            "normalized_runtime": self.normalized_runtime,
            "success_rate": self.success_rate,
        }


def aggregate_results(
    method: str,
    scenario: str,
    results: Sequence[OptimizationResult],
) -> MethodSummary:
    """Aggregate repeated runs of one method into a summary.

    Following the paper's footnote, iteration/simulation/runtime averages use
    only the successful runs; if no run succeeded, all runs are used so the
    cost of failure is still visible.
    """
    if not results:
        raise ValueError("aggregate_results needs at least one run")
    successes = [r for r in results if r.success]
    basis = successes if successes else list(results)
    return MethodSummary(
        method=method,
        circuit=results[0].circuit,
        scenario=scenario,
        runs=len(results),
        successes=len(successes),
        mean_iterations=float(np.mean([r.iterations for r in basis])),
        mean_simulations=float(np.mean([r.total_simulations for r in basis])),
        mean_runtime=float(np.mean([r.runtime for r in basis])),
    )


def normalize_runtimes(
    summaries: Sequence[MethodSummary], reference_method: str = "glova"
) -> List[MethodSummary]:
    """Fill ``normalized_runtime`` relative to the reference method's runtime."""
    summaries = list(summaries)
    reference = next(
        (s for s in summaries if s.method == reference_method), None
    )
    if reference is None or reference.mean_runtime <= 0:
        reference_runtime = min(s.mean_runtime for s in summaries)
    else:
        reference_runtime = reference.mean_runtime
    for summary in summaries:
        summary.normalized_runtime = (
            summary.mean_runtime / reference_runtime if reference_runtime else float("nan")
        )
    return summaries


def straggler_idle_fraction(
    row_seconds: Sequence[float], workers: int, wall_seconds: float
) -> float:
    """Fraction of worker capacity spent idle during a sharded dispatch.

    ``row_seconds`` is the per-row wall clock a sharded run recorded (the
    ``SimResult.row_seconds`` array); ``wall_seconds`` the dispatch's
    end-to-end duration.  Perfect load balance gives 0.0; one straggler
    pinning the whole pool while the other ``workers - 1`` drain drives
    this toward ``(workers - 1) / workers``.  Non-finite row entries
    (failed rows) are ignored.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if wall_seconds <= 0:
        return float("nan")
    rows = np.asarray(row_seconds, dtype=float)
    busy = float(np.sum(rows[np.isfinite(rows)]))
    capacity = workers * wall_seconds
    return float(max(0.0, 1.0 - busy / capacity))


def sample_efficiency_gain(
    summaries: Sequence[MethodSummary], reference_method: str = "glova"
) -> Dict[str, float]:
    """Simulation-count ratio of every method versus the reference."""
    reference = next(s for s in summaries if s.method == reference_method)
    gains = {}
    for summary in summaries:
        if summary.method == reference_method:
            continue
        gains[summary.method] = (
            summary.mean_simulations / reference.mean_simulations
            if reference.mean_simulations
            else float("nan")
        )
    return gains
