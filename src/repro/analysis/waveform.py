"""Waveform-first metric extraction shared by every simulation engine.

The analytic MNA engine and the external ngspice path used to compute
metrics through two unrelated code paths: vectorized numpy post-processing
on :class:`~repro.spice.transient.TransientResult` waveforms on one side,
hand-written ``.measure`` cards on the other.  This module collapses them
into **one** library of pure-array metric extractors — crossing/delay,
slew, overshoot, settling, amplitude and average power — operating on raw
``(time, trace)`` float64 arrays.  ``TransientResult.crossing_time`` is a
thin wrapper over :func:`first_crossing` below, and the waveform-mode
ngspice backend (:mod:`repro.simulation.ngspice`) feeds parsed rawfile
traces (:mod:`repro.spice.rawfile`) through the very same functions, so a
delay measured from an external engine and a delay measured from the
analytic engine are *literally the same code* applied to different arrays.

Circuits declare how each metric is extracted with a :class:`WaveformSpec`
(probe trace names plus an extraction recipe), the waveform twin of
:class:`~repro.spice.deck.MeasureSpec`.  Recipes are deliberately small and
closed — ``crossing``, ``value_at``, ``final``, ``average`` and
``power_average`` — because each one is *exactly invertible*:
:func:`synthesize_canonical` renders, for any target metric values, a
canonical set of traces whose extraction returns those values **bit-for-
bit** (crossings are anchored so the interpolation fraction is exactly
``1.0`` and the Sterbenz lemma makes the time arithmetic exact; averages
run over a power-of-two sample count so the compensated sum and the final
division are exact).  The hermetic fake-ngspice double uses this inverse
to emit real binary rawfiles carrying the analytic engine's values, which
is what lets the whole waveform subsystem be acceptance-tested end-to-end
— deck, subprocess, rawfile bytes, extraction — with zero tolerance loss.

This module imports nothing from the rest of the package (pure numpy +
stdlib), so any layer — spice solvers, simulation backends, the test
double — can depend on it without cycles.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

import numpy as np

__all__ = [
    "WaveformSpec",
    "WaveformError",
    "TraceMissingError",
    "first_crossing",
    "crossing_time",
    "delay_between",
    "slew_time",
    "overshoot",
    "settling_time",
    "amplitude",
    "sample_average",
    "time_average",
    "value_at",
    "final_value",
    "resolved_threshold",
    "extract_metric",
    "extract_metrics",
    "synthesize_canonical",
]


class WaveformError(ValueError):
    """A waveform metric could not be extracted from the given traces."""


class TraceMissingError(WaveformError):
    """A required probe trace is absent or too short to post-process."""


# ----------------------------------------------------------------------
# Core vectorized extractors
# ----------------------------------------------------------------------
def first_crossing(
    times: np.ndarray, waves: np.ndarray, threshold: float, rising: bool = True
) -> np.ndarray:
    """Vectorized first-crossing with linear interpolation.

    ``waves`` is ``(B, n_steps + 1)``; returns ``(B,)`` crossing times with
    ``NaN`` where a waveform never crosses.  This is the single crossing
    implementation for the whole codebase — the transient solvers'
    ``crossing_time`` methods delegate here, so analytic and external
    waveforms are measured bit-identically.
    """
    previous = waves[:, :-1]
    current = waves[:, 1:]
    if rising:
        crossed = (previous < threshold) & (threshold <= current)
    else:
        crossed = (previous > threshold) & (threshold >= current)

    result = np.full(waves.shape[0], np.nan)
    any_crossing = crossed.any(axis=1)
    if not np.any(any_crossing):
        return result

    rows = np.flatnonzero(any_crossing)
    first = np.argmax(crossed[rows], axis=1)
    prev_v = previous[rows, first]
    curr_v = current[rows, first]
    t_prev = times[first]
    t_curr = times[first + 1]
    step = curr_v - prev_v
    with np.errstate(divide="ignore", invalid="ignore"):
        fraction = np.where(step != 0.0, (threshold - prev_v) / step, 0.0)
    # A flat segment "crosses" at the segment's end, matching the scalar
    # semantics the per-index loop used to implement.
    result[rows] = np.where(
        step == 0.0, t_curr, t_prev + fraction * (t_curr - t_prev)
    )
    return result


def crossing_time(
    times: np.ndarray, wave: np.ndarray, threshold: float, rising: bool = True
) -> float:
    """Scalar convenience wrapper over :func:`first_crossing` (NaN = never)."""
    wave = np.asarray(wave, dtype=float)
    return float(first_crossing(times, wave[None, :], threshold, rising)[0])


def delay_between(
    times: np.ndarray,
    trig_wave: np.ndarray,
    trig_threshold: float,
    targ_wave: np.ndarray,
    targ_threshold: float,
    trig_rising: bool = True,
    targ_rising: bool = True,
) -> float:
    """``.meas trig/targ``-style delay: target crossing after the trigger.

    Returns the time from the trigger wave's first crossing to the first
    target-wave crossing at or after it; NaN when either never crosses.
    """
    t_trig = crossing_time(times, trig_wave, trig_threshold, trig_rising)
    if math.isnan(t_trig):
        return math.nan
    after = times >= t_trig
    if not np.any(after):
        return math.nan
    start = int(np.argmax(after))
    # Re-run the crossing search on the suffix so "first crossing after the
    # trigger" is exact even when an earlier crossing exists.
    t_targ = crossing_time(
        times[start:], np.asarray(targ_wave, dtype=float)[start:],
        targ_threshold, targ_rising,
    )
    if math.isnan(t_targ):
        return math.nan
    return t_targ - t_trig


def slew_time(
    times: np.ndarray,
    wave: np.ndarray,
    low_threshold: float,
    high_threshold: float,
    rising: bool = True,
) -> float:
    """10/90-style edge duration between two thresholds (NaN = no edge)."""
    if rising:
        t_low = crossing_time(times, wave, low_threshold, rising=True)
        t_high = crossing_time(times, wave, high_threshold, rising=True)
        return t_high - t_low
    t_high = crossing_time(times, wave, high_threshold, rising=False)
    t_low = crossing_time(times, wave, low_threshold, rising=False)
    return t_low - t_high


def overshoot(wave: np.ndarray, reference: float) -> float:
    """Peak excursion above ``reference`` (0 when the wave never exceeds it)."""
    wave = np.asarray(wave, dtype=float)
    peak = float(np.max(wave))
    if math.isnan(peak):
        return math.nan
    return max(peak - float(reference), 0.0)


def settling_time(
    times: np.ndarray, wave: np.ndarray, reference: float, tolerance: float
) -> float:
    """First time after which the wave stays inside ``reference +- tolerance``.

    Returns ``times[0]`` when the whole record is in band and NaN when the
    wave is still out of band at the final sample.
    """
    wave = np.asarray(wave, dtype=float)
    outside = ~(np.abs(wave - float(reference)) <= float(tolerance))
    if not bool(outside.any()):
        return float(times[0])
    last_outside = int(len(wave) - 1 - np.argmax(outside[::-1]))
    if last_outside >= len(wave) - 1:
        return math.nan
    return float(times[last_outside + 1])


def amplitude(wave: np.ndarray) -> float:
    """Peak-to-peak excursion ``max - min``."""
    wave = np.asarray(wave, dtype=float)
    return float(np.max(wave) - np.min(wave))


def sample_average(wave: np.ndarray) -> float:
    """Compensated (fsum) mean over the samples.

    On a uniform grid this equals the time average; it is the canonical
    ``average`` recipe because it is *exactly* invertible — a constant
    trace over a power-of-two sample count averages back to the constant
    bit-for-bit (the exact sum ``c * 2**k`` is representable and the
    division by ``2**k`` is an exponent shift).
    """
    wave = np.asarray(wave, dtype=float)
    if wave.size == 0:
        return math.nan
    return math.fsum(wave.tolist()) / wave.size


def time_average(times: np.ndarray, wave: np.ndarray) -> float:
    """Trapezoidal time-weighted average over the full record."""
    times = np.asarray(times, dtype=float)
    wave = np.asarray(wave, dtype=float)
    if wave.size < 2:
        return math.nan
    duration = float(times[-1] - times[0])
    if duration <= 0.0:
        return math.nan
    widths = np.diff(times)
    mids = 0.5 * (wave[:-1] + wave[1:])
    return math.fsum((mids * widths).tolist()) / duration


def value_at(times: np.ndarray, wave: np.ndarray, at_time: float) -> float:
    """Sample the wave at ``at_time`` (exact grid hit, else linear interp).

    An exact grid point returns the stored sample untouched — no
    interpolation arithmetic — which is what keeps ``find ... at=``-style
    metrics bit-exact through the canonical rawfile round trip.
    """
    times = np.asarray(times, dtype=float)
    wave = np.asarray(wave, dtype=float)
    at_time = float(at_time)
    if at_time < times[0] or at_time > times[-1]:
        return math.nan
    index = int(np.searchsorted(times, at_time))
    if index < len(times) and times[index] == at_time:
        return float(wave[index])
    return float(np.interp(at_time, times, wave))


def final_value(wave: np.ndarray) -> float:
    """The last sample of the record."""
    wave = np.asarray(wave, dtype=float)
    if wave.size == 0:
        return math.nan
    return float(wave[-1])


# ----------------------------------------------------------------------
# Waveform measurement declarations
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WaveformSpec:
    """How one circuit metric is extracted from transient waveforms.

    The waveform twin of :class:`~repro.spice.deck.MeasureSpec`: instead of
    a ``.measure`` card body, it names the probe trace(s) and one of the
    closed extraction recipes below, all evaluated host-side by
    :func:`extract_metric` on the parsed rawfile.

    Attributes
    ----------
    metric:
        Metric name; must match a key of the circuit's constraints.
    recipe:
        ``"crossing"`` — first crossing time of ``signal`` through the
        resolved threshold (absolute time; the stimulus is at the
        transient origin, so this *is* the delay);
        ``"value_at"`` — ``signal - signal_minus`` sampled at ``at_time``;
        ``"final"`` — last sample of ``signal - signal_minus``;
        ``"average"`` — compensated sample mean of ``signal - signal_minus``;
        ``"power_average"`` — compensated sample mean of
        ``-signal * aux`` (supply current x supply voltage).
    signal / signal_minus / aux:
        Rawfile trace names (ngspice vector spelling, e.g. ``"v(outp)"``,
        ``"i(vvdd)"``).  ``signal_minus`` subtracts a second trace;
        ``aux`` is the voltage trace of ``power_average``.
    threshold / vdd_scale:
        The crossing threshold is ``threshold + vdd_scale * vdd`` with the
        row corner's supply, so specs stay corner-portable exactly like the
        ``val='0.5*vdd_val'`` measure cards they replace.
    rising:
        Crossing direction.
    at_time:
        Sample instant for ``value_at`` (seconds).
    expression:
        Optional ngspice expression over the deck's ``.param`` cards; when
        set, the deck compiler emits a behavioural source pinning the
        ``signal`` node to this expression so real engines can report
        parameter-derived metrics (noise/energy estimates) as a trace.
    placeholder:
        The spec probes synthetic trace names with no testbench meaning;
        only payload-aware runners (the fake) can honour it, exactly like
        placeholder measure specs.
    """

    metric: str
    recipe: str = "final"
    signal: str = ""
    signal_minus: str = ""
    aux: str = ""
    threshold: float = 0.0
    vdd_scale: float = 0.0
    rising: bool = True
    at_time: float = 0.0
    expression: str = ""
    placeholder: bool = False

    _RECIPES = ("crossing", "value_at", "final", "average", "power_average")

    def __post_init__(self) -> None:
        if self.recipe not in self._RECIPES:
            raise ValueError(
                f"unknown waveform recipe {self.recipe!r} for metric "
                f"{self.metric!r} (expected one of {self._RECIPES})"
            )
        if not self.signal:
            raise ValueError(f"waveform spec {self.metric!r} names no signal")
        if self.recipe == "power_average" and not self.aux:
            raise ValueError(
                f"power_average spec {self.metric!r} needs an aux voltage trace"
            )

    @property
    def probes(self) -> Tuple[str, ...]:
        """Every rawfile trace this recipe reads."""
        names = [self.signal]
        if self.signal_minus:
            names.append(self.signal_minus)
        if self.aux:
            names.append(self.aux)
        return tuple(names)


def resolved_threshold(spec: WaveformSpec, vdd: float) -> float:
    """The crossing threshold at a given supply.

    Shared verbatim by extraction and canonical synthesis so the two sides
    compute the *identical* float.
    """
    return float(spec.threshold + spec.vdd_scale * float(vdd))


def _trace(traces: Mapping[str, np.ndarray], name: str) -> np.ndarray:
    wave = traces.get(name.lower())
    if wave is None:
        raise TraceMissingError(f"rawfile carries no trace {name!r}")
    wave = np.asarray(wave, dtype=float)
    if wave.size < 2:
        raise TraceMissingError(
            f"trace {name!r} is too short to post-process ({wave.size} samples)"
        )
    return wave


def extract_metric(
    spec: WaveformSpec,
    times: np.ndarray,
    traces: Mapping[str, np.ndarray],
    vdd: float,
) -> float:
    """Apply one spec's recipe to parsed traces.

    ``traces`` maps lower-cased trace names to ``(n_points,)`` arrays.
    Missing or too-short traces raise :class:`TraceMissingError` (the
    backend degrades those cells to ``FAILURE_NAN``); a trace that is
    present but never crosses / never settles yields a plain ``NaN`` — a
    genuine "the design does not measure" result.
    """
    times = np.asarray(times, dtype=float)
    signal = _trace(traces, spec.signal)
    if spec.signal_minus:
        signal = signal - _trace(traces, spec.signal_minus)
    if spec.recipe == "crossing":
        return crossing_time(
            times, signal, resolved_threshold(spec, vdd), spec.rising
        )
    if spec.recipe == "value_at":
        return value_at(times, signal, spec.at_time)
    if spec.recipe == "final":
        return final_value(signal)
    if spec.recipe == "average":
        return sample_average(signal)
    if spec.recipe == "power_average":
        return sample_average(-signal * _trace(traces, spec.aux))
    raise WaveformError(f"unhandled recipe {spec.recipe!r}")  # pragma: no cover


def extract_metrics(
    specs: Sequence[WaveformSpec],
    times: np.ndarray,
    traces: Mapping[str, np.ndarray],
    vdd: float,
) -> Dict[str, float]:
    """Extract every spec's metric; see :func:`extract_metric`."""
    return {
        spec.metric: extract_metric(spec, times, traces, vdd) for spec in specs
    }


# ----------------------------------------------------------------------
# Canonical synthesis (the exact inverse, used by the hermetic fake)
# ----------------------------------------------------------------------
#: Gap between a value_at sample and the release pin that returns the trace
#: to its baseline (seconds); a power of two so grid times stay exact.
_RELEASE_DELTA = 2.0 ** -40


class _TraceBuilder:
    """Right-continuous step functions defined by (time, value) pins."""

    def __init__(self) -> None:
        self._pins: Dict[str, Dict[float, float]] = {}

    def ensure(self, name: str) -> None:
        self._pins.setdefault(name.lower(), {})

    def pin(self, name: str, time: float, value: float) -> None:
        pins = self._pins.setdefault(name.lower(), {})
        existing = pins.get(time)
        if existing is not None and not (
            existing == value or (math.isnan(existing) and math.isnan(value))
        ):
            raise WaveformError(
                f"canonical synthesis conflict: trace {name!r} pinned to both "
                f"{existing!r} and {value!r} at t={time!r}"
            )
        pins[time] = value

    def value_before(self, name: str, time: float) -> float:
        """Step value just *before* ``time`` (0.0 when nothing pinned)."""
        pins = self._pins.get(name.lower(), {})
        best_t = None
        for t in pins:
            if t < time and (best_t is None or t > best_t):
                best_t = t
        return 0.0 if best_t is None else pins[best_t]

    def value_at(self, name: str, time: float) -> float:
        """Step value at ``time`` (pins are right-continuous)."""
        pins = self._pins.get(name.lower(), {})
        if time in pins:
            return pins[time]
        return self.value_before(name, time)

    def pin_times(self) -> List[float]:
        seen = set()
        for pins in self._pins.values():
            seen.update(pins)
        return sorted(seen)

    def materialize(self, grid: np.ndarray) -> Dict[str, np.ndarray]:
        traces = {}
        for name, pins in self._pins.items():
            wave = np.zeros(len(grid))
            if pins:
                pin_t = np.array(sorted(pins))
                pin_v = np.array([pins[t] for t in pin_t])
                index = np.searchsorted(pin_t, grid, side="right") - 1
                valid = index >= 0
                wave[valid] = pin_v[index[valid]]
            traces[name] = wave
        return traces


def synthesize_canonical(
    specs: Sequence[WaveformSpec],
    values: Mapping[str, float],
    vdd: float,
    stop_time: float = 5e-9,
) -> Tuple[np.ndarray, Dict[str, np.ndarray]]:
    """Render canonical traces whose extraction returns ``values`` exactly.

    The inverse of :func:`extract_metrics` for finite, representable
    targets: feeding the returned ``(times, traces)`` back through the
    specs reproduces each value **bit-for-bit**.  Exactness argument, per
    recipe:

    * ``crossing`` — the trace steps from a baseline strictly on the far
      side of the threshold to *exactly* the threshold at grid time ``d``,
      so the interpolation fraction is exactly ``1.0``; the grid also
      carries ``d/2``, so the segment start ``t_prev`` satisfies
      ``d/2 <= t_prev < d`` and by the Sterbenz lemma
      ``t_prev + (d - t_prev)`` evaluates to exactly ``d``.  A
      non-positive or non-finite target renders a flat trace (extraction:
      NaN), matching the analytic engine's "never crosses" answer.
    * ``value_at`` — the target lands on an exact grid sample (no
      interpolation); the trace releases back to its baseline just after,
      so later ``value_at`` pins on the *difference* partner trace see a
      zero subtrahend and stay exact.
    * ``final`` / ``average`` / ``power_average`` — constant traces;
      the grid is padded to a power-of-two sample count so the fsum mean
      divides exactly (``power_average`` renders the voltage trace as
      exactly ``1.0`` so the per-sample product is the target itself).

    The rendered traces are **canonical, not physical**: they carry the
    metric values in the stipulated recipes' encoding, nothing more.  That
    is the point — the hermetic fake double writes them into a real binary
    rawfile so the full parse-and-extract path is exercised with zero
    tolerance loss against the analytic engine.
    """
    builder = _TraceBuilder()
    needed = {0.0, float(stop_time)}
    wants_average = False

    def target(spec: WaveformSpec) -> float:
        return float(values[spec.metric])

    for spec in sorted(
        (s for s in specs if s.recipe == "value_at"), key=lambda s: s.at_time
    ):
        at_time = float(spec.at_time)
        value = target(spec)
        if not math.isfinite(at_time) or at_time < 0.0:
            raise WaveformError(
                f"value_at spec {spec.metric!r} has invalid at_time {at_time!r}"
            )
        minus = 0.0
        if spec.signal_minus:
            builder.ensure(spec.signal_minus)
            minus = builder.value_at(spec.signal_minus, at_time)
            if minus != 0.0:
                raise WaveformError(
                    f"canonical synthesis cannot keep {spec.metric!r} exact: "
                    f"subtrahend trace {spec.signal_minus!r} is nonzero at "
                    f"t={at_time!r}"
                )
        baseline = builder.value_at(spec.signal, at_time)
        builder.pin(spec.signal, at_time, value)
        builder.pin(spec.signal, at_time + _RELEASE_DELTA, baseline)
        needed.update((at_time, at_time + _RELEASE_DELTA))

    for spec in specs:
        value = target(spec)
        if spec.recipe == "crossing":
            threshold = resolved_threshold(spec, vdd)
            if spec.rising:
                start = 0.0 if threshold > 0.0 else threshold - 1.0
            else:
                start = threshold + 1.0
            builder.pin(spec.signal, 0.0, start)
            if math.isfinite(value) and value > 0.0:
                builder.pin(spec.signal, value, threshold)
                needed.update((value, value / 2.0))
        elif spec.recipe == "final":
            builder.pin(spec.signal, 0.0, value)
        elif spec.recipe == "average":
            wants_average = True
            builder.pin(spec.signal, 0.0, value)
            if spec.signal_minus:
                builder.pin(spec.signal_minus, 0.0, 0.0)
        elif spec.recipe == "power_average":
            wants_average = True
            builder.pin(spec.aux, 0.0, 1.0)
            builder.pin(spec.signal, 0.0, -value)
        elif spec.recipe != "value_at":  # pragma: no cover - closed set
            raise WaveformError(f"unhandled recipe {spec.recipe!r}")

    needed.update(builder.pin_times())
    grid = sorted(t for t in needed if math.isfinite(t) and t >= 0.0)
    if len(grid) < 2:
        grid.append(grid[-1] + _RELEASE_DELTA)
    if wants_average:
        # Pad to the next power-of-two sample count so fsum means divide
        # exactly; padding extends past the last event, where every trace
        # is constant, so no other recipe is disturbed.
        count = 1
        while count < len(grid):
            count *= 2
        tail = grid[-1]
        while len(grid) < count:
            tail = tail + _RELEASE_DELTA
            grid.append(tail)
    times = np.array(grid, dtype=float)
    return times, builder.materialize(times)
