"""Replay buffers used by the risk-sensitive agent.

Two buffers appear in Fig. 2 of the paper:

* the **worst-case replay buffer** ``B_worst`` stores ``(x, r_worst)``
  pairs, where ``r_worst`` is the minimum reward across the mismatch
  conditions simulated for that design at the worst corner;
* the **last worst-case buffer** remembers, per PVT corner, the most recent
  worst reward observed there — it is used both to pick the worst corner for
  the next optimization step and to order corners at the start of
  verification (Algorithm 2 sorts ``T`` by it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.variation.corners import CornerSet, PVTCorner


@dataclass(frozen=True)
class Transition:
    """One stored experience: a design and its worst-case reward."""

    design: np.ndarray
    reward: float


class WorstCaseReplayBuffer:
    """Fixed-capacity FIFO buffer of ``(design, worst reward)`` pairs."""

    def __init__(self, capacity: int = 2048):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self._capacity = capacity
        self._storage: List[Transition] = []
        self._cursor = 0

    def __len__(self) -> int:
        return len(self._storage)

    @property
    def capacity(self) -> int:
        return self._capacity

    def add(self, design: np.ndarray, reward: float) -> None:
        transition = Transition(np.array(design, dtype=float, copy=True), float(reward))
        if len(self._storage) < self._capacity:
            self._storage.append(transition)
        else:
            self._storage[self._cursor] = transition
            self._cursor = (self._cursor + 1) % self._capacity

    def sample(
        self, batch_size: int, rng: Optional[np.random.Generator] = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """A random batch (with replacement when the buffer is small)."""
        if not self._storage:
            raise ValueError("cannot sample from an empty buffer")
        rng = rng if rng is not None else np.random.default_rng()
        replace = len(self._storage) < batch_size
        indices = rng.choice(len(self._storage), size=batch_size, replace=replace)
        designs = np.stack([self._storage[i].design for i in indices])
        rewards = np.array([self._storage[i].reward for i in indices])
        return designs, rewards

    def best(self) -> Transition:
        """The stored transition with the highest worst-case reward."""
        if not self._storage:
            raise ValueError("buffer is empty")
        return max(self._storage, key=lambda t: t.reward)

    def all_designs(self) -> np.ndarray:
        return np.stack([t.design for t in self._storage])

    def all_rewards(self) -> np.ndarray:
        return np.array([t.reward for t in self._storage])


class LastWorstCaseBuffer:
    """Per-corner memory of the most recent worst reward.

    Corners that have not been visited yet report ``None`` and are treated
    as *worst* (lowest priority value) so the optimizer explores them first.
    """

    def __init__(self, corners: CornerSet):
        self._corners = corners
        self._last: Dict[str, Optional[float]] = {c.name: None for c in corners}

    @property
    def corners(self) -> CornerSet:
        return self._corners

    def update(self, corner: PVTCorner, reward: float) -> None:
        if corner.name not in self._last:
            raise KeyError(f"corner {corner.name} not tracked by this buffer")
        self._last[corner.name] = float(reward)

    def reward_of(self, corner: PVTCorner) -> Optional[float]:
        return self._last[corner.name]

    def worst_corner(self) -> PVTCorner:
        """The corner with the lowest recorded reward (unvisited first)."""
        def key(corner: PVTCorner) -> float:
            value = self._last[corner.name]
            return -np.inf if value is None else value

        return min(self._corners, key=key)

    def sorted_corners(self) -> CornerSet:
        """Corners ordered worst-first (Algorithm 2's initial sort of T)."""
        def key(corner: PVTCorner) -> float:
            value = self._last[corner.name]
            return -np.inf if value is None else value

        ordered = sorted(self._corners, key=key)
        return CornerSet(ordered)

    def as_dict(self) -> Dict[str, Optional[float]]:
        return dict(self._last)
