"""Framework configuration objects.

:class:`VerificationMethod` selects the target verification scenario and
:class:`OperationalConfig` captures the corresponding Table-I row: which
corners are predefined, which mismatch variances are active, and how many
mismatch samples are drawn during optimization (``N'``) versus full
verification (``N`` per corner).

:class:`GlovaConfig` gathers every tunable of the framework — agent
hyper-parameters, risk factors, sampling sizes and the ablation switches
used in Table III — with defaults matching the paper's experimental setup
(Section VI.B).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Any, Optional

from repro.variation.corners import CornerSet, full_corner_set, vt_corner_set


class VerificationMethod(enum.Enum):
    """Target verification scenario (Table I)."""

    CORNER = "C"
    CORNER_LOCAL_MC = "C-MCL"
    CORNER_GLOBAL_LOCAL_MC = "C-MCG-L"

    @property
    def uses_local_mc(self) -> bool:
        return self is not VerificationMethod.CORNER

    @property
    def uses_global_mc(self) -> bool:
        return self is VerificationMethod.CORNER_GLOBAL_LOCAL_MC


#: Paper defaults: 100 local-MC samples per corner for C-MCL (0.1K x 30
#: corners = 3,000 simulations) and 1,000 global-local samples per VT corner
#: for C-MCG-L (1K x 6 corners = 6,000 simulations).
PAPER_MC_SAMPLES = {
    VerificationMethod.CORNER: 1,
    VerificationMethod.CORNER_LOCAL_MC: 100,
    VerificationMethod.CORNER_GLOBAL_LOCAL_MC: 1000,
}


@dataclass(frozen=True)
class OperationalConfig:
    """One row of Table I: how the framework samples for a chosen method.

    Attributes
    ----------
    method:
        The verification scenario.
    include_global / include_local:
        Which mismatch variances are active when sampling ``h``.
    optimization_samples:
        ``N'`` — mismatch conditions simulated per RL iteration.
    verification_samples:
        ``N`` — mismatch conditions per corner during full verification.
    corners:
        The predefined corner set ``T`` (30 PVT corners, or 6 VT corners for
        the global-local MC scenario where the process axis is statistical).
    verification_chunk:
        Full-MC simulations issued per batched evaluation during the
        verification pass.  Chunks are scanned in h-SCORE order for the
        first infeasible reward, so the pass/fail outcome and the failed
        corner match the one-at-a-time schedule exactly; the budget charges
        the simulated prefix rounded up to the chunk (at most
        ``verification_chunk - 1`` extra simulations past the first
        failure).  ``1`` reproduces the strictly sequential schedule.
    workers:
        Process count for sharding batched evaluations across a
        ``ProcessPoolExecutor``; ``1`` (the default) stays in-process.
    backend:
        Simulation backend name resolved by the service layer
        (``"batched"`` — the vectorized engine — or ``"scalar"`` — the
        bit-exact reference path; see :mod:`repro.simulation.service`).
    cache_simulations:
        Memoize simulation results by job content hash; a cache hit
        charges zero budget.
    cache_dir:
        Directory for the cross-process simulation cache.  Setting it
        implies ``cache_simulations``: results spill to a job-hash-keyed
        on-disk store and repeated runs replay from it with zero backend
        invocations and zero budget charged.
    pipeline:
        Overlap the control loop with in-flight simulation through the
        futures-based service path: full-MC verification double-buffers
        its h-SCORE-ordered chunks and the optimizer seed phase overlaps
        its per-seed corner mega-batches.  Metrics, seeded streams and
        budget accounting are bit-identical to the sequential schedule
        (``False`` — the debugging / equivalence reference).
    retry:
        Fault-tolerance policy for the simulation service — a
        :class:`repro.simulation.service.RetryPolicy` or its dict form
        (resolved by the service).  ``None`` (the default) fails fast, the
        legacy behaviour.
    """

    method: VerificationMethod
    include_global: bool
    include_local: bool
    optimization_samples: int
    verification_samples: int
    corners: CornerSet
    verification_chunk: int = 8
    workers: int = 1
    backend: str = "batched"
    cache_simulations: bool = False
    cache_dir: Optional[str] = None
    pipeline: bool = True
    retry: Optional[Any] = field(default=None, hash=False)

    @property
    def total_verification_simulations(self) -> int:
        """Simulations needed for one complete full verification pass."""
        return len(self.corners) * self.verification_samples

    def __post_init__(self) -> None:
        if self.optimization_samples < 1:
            raise ValueError("optimization_samples (N') must be >= 1")
        if self.verification_samples < self.optimization_samples:
            raise ValueError("verification_samples (N) must be >= N'")
        if self.verification_chunk < 1:
            raise ValueError("verification_chunk must be >= 1")
        if self.workers < 1:
            raise ValueError("workers must be >= 1")


def operational_config(
    method: VerificationMethod,
    optimization_samples: int = 3,
    verification_samples: Optional[int] = None,
    verification_chunk: int = 8,
    workers: int = 1,
    backend: str = "batched",
    cache_simulations: bool = False,
    cache_dir: Optional[str] = None,
    pipeline: bool = True,
    retry: Optional[Any] = None,
) -> OperationalConfig:
    """Build the Table-I operational configuration for ``method``.

    ``verification_samples`` defaults to the paper's budget for the method
    (1 / 100 / 1000 per corner); benchmarks pass smaller values to keep the
    suite fast.
    """
    if verification_samples is None:
        verification_samples = PAPER_MC_SAMPLES[method]
    shared = dict(
        verification_chunk=verification_chunk,
        workers=workers,
        backend=backend,
        cache_simulations=cache_simulations,
        cache_dir=cache_dir,
        pipeline=pipeline,
        retry=retry,
    )
    if method is VerificationMethod.CORNER:
        return OperationalConfig(
            method=method,
            include_global=False,
            include_local=False,
            optimization_samples=1,
            verification_samples=1,
            corners=full_corner_set(),
            **shared,
        )
    if method is VerificationMethod.CORNER_LOCAL_MC:
        return OperationalConfig(
            method=method,
            include_global=False,
            include_local=True,
            optimization_samples=optimization_samples,
            verification_samples=verification_samples,
            corners=full_corner_set(),
            **shared,
        )
    return OperationalConfig(
        method=method,
        include_global=True,
        include_local=True,
        optimization_samples=optimization_samples,
        verification_samples=verification_samples,
        corners=vt_corner_set(),
        **shared,
    )


@dataclass
class GlovaConfig:
    """Every tunable of the GLOVA framework.

    The defaults follow Section VI.B of the paper: batch size 10, risk
    parameters ``beta1 = -3`` and ``beta2 = 4``, N' = 3 mismatch samples in
    parallel during optimization, and TuRBO-seeded initial sampling.
    """

    verification: VerificationMethod = VerificationMethod.CORNER
    # --- sampling -----------------------------------------------------
    optimization_samples: int = 3
    verification_samples: Optional[int] = None
    # Full-MC verification chunk: simulations issued per batched evaluation
    # during pass 2 of Algorithm 2 (1 = strictly sequential schedule).
    verification_chunk: int = 8
    # Process count for sharding batched evaluations (1 = in-process).
    workers: int = 1
    # Simulation backend name ("batched" engine or the "scalar" reference
    # path) and job-hash result caching (a hit charges zero budget).
    backend: str = "batched"
    cache_simulations: bool = False
    # Cross-process cache directory (implies cache_simulations): results
    # spill to a job-hash-keyed on-disk store and repeated runs replay
    # from it with zero backend invocations and zero budget charged.
    cache_dir: Optional[str] = None
    # Futures-based pipelining of the control loop (double-buffered
    # verification chunks, overlapped seed-phase mega-batches) —
    # bit-identical to the sequential schedule, False = reference path.
    pipeline: bool = True
    # Fault-tolerance retry policy for the simulation service (a
    # RetryPolicy or its dict form; None = fail fast, the legacy mode).
    # Failed attempts are budget-refunded before each retry, so the
    # paper's "# Simulation" counts stay identical to a fault-free run.
    retry: Optional[Any] = None
    # --- risk parameters ----------------------------------------------
    risk_beta1: float = -3.0
    reliability_beta2: float = 4.0
    # Store a risk-adjusted reward (the worse of the sampled worst case and
    # the mu + beta2*sigma estimate, Eq. 1 applied at the sample level) so
    # the agent sees a dense robustness signal even when individual mismatch
    # samples rarely fail.  See DESIGN.md, "implementation choices".
    risk_adjusted_reward: bool = True
    # --- agent --------------------------------------------------------
    ensemble_size: int = 5
    batch_size: int = 10
    hidden_size: int = 64
    actor_learning_rate: float = 1e-3
    critic_learning_rate: float = 2e-3
    gradient_steps_per_iteration: int = 25
    exploration_noise: float = 0.08
    noise_decay: float = 0.995
    # --- initial sampling (TuRBO) ---------------------------------------
    initial_samples: int = 60
    initial_feasible_target: int = 2
    seed_designs: int = 2
    # --- loop control ---------------------------------------------------
    max_iterations: int = 300
    seed: Optional[int] = None
    # --- ablation switches (Table III) ----------------------------------
    use_ensemble_critic: bool = True
    use_mu_sigma: bool = True
    use_reordering: bool = True
    # --- runtime model ---------------------------------------------------
    cost_per_simulation: float = 1.0
    optimization_parallelism: int = 3
    verification_parallelism: int = 30

    def operational(self) -> OperationalConfig:
        """The Table-I row implied by this configuration."""
        return operational_config(
            self.verification,
            optimization_samples=self.optimization_samples,
            verification_samples=self.verification_samples,
            verification_chunk=self.verification_chunk,
            workers=self.workers,
            backend=self.backend,
            cache_simulations=self.cache_simulations,
            cache_dir=self.cache_dir,
            pipeline=self.pipeline,
            retry=self.retry,
        )

    def effective_ensemble_size(self) -> int:
        """Ensemble size after applying the Table-III ablation switch."""
        return self.ensemble_size if self.use_ensemble_critic else 1

    def effective_beta1(self) -> float:
        """Risk parameter after applying the ablation switch (0 = neutral)."""
        return self.risk_beta1 if self.use_ensemble_critic else 0.0

    def with_overrides(self, **kwargs) -> "GlovaConfig":
        """A copy of this config with the given fields replaced."""
        return replace(self, **kwargs)
