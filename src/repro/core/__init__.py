"""GLOVA core: the paper's primary contribution.

Modules
-------
``config``
    Framework configuration, verification methods, and the Table-I
    operational configuration.
``spec`` / ``reward``
    Constraint normalisation (Eq. 5) and the consolidated reward (Eq. 4).
``nn``
    Minimal feed-forward neural networks with Adam, used by the agent.
``replay``
    Worst-case replay buffer and last-worst-case corner buffer.
``actor_critic``
    The actor network and the ensemble-based critic (Eq. 6).
``agent``
    Risk-sensitive DDPG-style training (Algorithm 1).
``gp`` / ``turbo``
    Gaussian-process surrogate and TuRBO trust-region initial sampling.
``mu_sigma``
    The mu-sigma feasibility screen (Eq. 7).
``reordering``
    Corner reordering by t-SCORE and MC reordering by h-SCORE (Eq. 8-10).
``verification``
    The hierarchical verification algorithm (Algorithm 2).
``optimizer``
    The full Fig.-2 workflow tying everything together.
"""

from repro.core.config import GlovaConfig, OperationalConfig, VerificationMethod
from repro.core.optimizer import GlovaOptimizer
from repro.core.result import OptimizationResult

__all__ = [
    "GlovaConfig",
    "OperationalConfig",
    "VerificationMethod",
    "GlovaOptimizer",
    "OptimizationResult",
]
