"""Minimal feed-forward neural networks with Adam, in pure numpy.

The paper's actor and critic are small 4-layer perceptrons trained with a
DDPG-style procedure.  This module provides exactly what that needs:

* :class:`DenseLayer` — affine layer with cached forward pass,
* :class:`MultiLayerPerceptron` — a stack of dense layers and activations
  with full backpropagation, *including gradients with respect to the
  input* (needed to push actor outputs through the critic), and
* :class:`AdamOptimizer` — per-network Adam state.

Everything operates on 2-D arrays of shape ``(batch, features)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np


def _relu(x: np.ndarray) -> np.ndarray:
    return np.maximum(x, 0.0)


def _relu_grad(x: np.ndarray) -> np.ndarray:
    return (x > 0.0).astype(x.dtype)


def _tanh(x: np.ndarray) -> np.ndarray:
    return np.tanh(x)


def _tanh_grad(x: np.ndarray) -> np.ndarray:
    return 1.0 - np.tanh(x) ** 2


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -60.0, 60.0)))


def _sigmoid_grad(x: np.ndarray) -> np.ndarray:
    s = _sigmoid(x)
    return s * (1.0 - s)


def _identity(x: np.ndarray) -> np.ndarray:
    return x


def _identity_grad(x: np.ndarray) -> np.ndarray:
    return np.ones_like(x)


_ACTIVATIONS: Dict[str, Tuple[Callable, Callable]] = {
    "relu": (_relu, _relu_grad),
    "tanh": (_tanh, _tanh_grad),
    "sigmoid": (_sigmoid, _sigmoid_grad),
    "linear": (_identity, _identity_grad),
}


class DenseLayer:
    """A fully connected layer ``y = x @ W + b`` with an activation."""

    def __init__(
        self,
        input_size: int,
        output_size: int,
        activation: str = "relu",
        rng: Optional[np.random.Generator] = None,
    ):
        if activation not in _ACTIVATIONS:
            raise ValueError(f"unknown activation {activation!r}")
        rng = rng if rng is not None else np.random.default_rng()
        scale = np.sqrt(2.0 / (input_size + output_size))
        self.weights = rng.normal(0.0, scale, size=(input_size, output_size))
        self.bias = np.zeros(output_size)
        self.activation = activation
        self._act, self._act_grad = _ACTIVATIONS[activation]
        # Caches populated during forward passes.
        self._last_input: Optional[np.ndarray] = None
        self._last_preactivation: Optional[np.ndarray] = None
        # Gradient accumulators.
        self.grad_weights = np.zeros_like(self.weights)
        self.grad_bias = np.zeros_like(self.bias)

    def forward(self, inputs: np.ndarray, cache: bool = True) -> np.ndarray:
        preactivation = inputs @ self.weights + self.bias
        if cache:
            self._last_input = inputs
            self._last_preactivation = preactivation
        return self._act(preactivation)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Backprop through the layer, accumulating parameter gradients."""
        if self._last_input is None or self._last_preactivation is None:
            raise RuntimeError("backward called before forward")
        grad_pre = grad_output * self._act_grad(self._last_preactivation)
        self.grad_weights += self._last_input.T @ grad_pre
        self.grad_bias += grad_pre.sum(axis=0)
        return grad_pre @ self.weights.T

    def input_gradient(self, grad_output: np.ndarray) -> np.ndarray:
        """Gradient w.r.t. the input only (no parameter-gradient update)."""
        if self._last_preactivation is None:
            raise RuntimeError("input_gradient called before forward")
        grad_pre = grad_output * self._act_grad(self._last_preactivation)
        return grad_pre @ self.weights.T

    def zero_grad(self) -> None:
        self.grad_weights.fill(0.0)
        self.grad_bias.fill(0.0)

    def parameters(self) -> List[np.ndarray]:
        return [self.weights, self.bias]

    def gradients(self) -> List[np.ndarray]:
        return [self.grad_weights, self.grad_bias]


class MultiLayerPerceptron:
    """A plain MLP with backprop and input-gradient support."""

    def __init__(
        self,
        layer_sizes: Sequence[int],
        hidden_activation: str = "relu",
        output_activation: str = "linear",
        rng: Optional[np.random.Generator] = None,
    ):
        if len(layer_sizes) < 2:
            raise ValueError("need at least an input and an output size")
        rng = rng if rng is not None else np.random.default_rng()
        self.layers: List[DenseLayer] = []
        for index in range(len(layer_sizes) - 1):
            is_last = index == len(layer_sizes) - 2
            activation = output_activation if is_last else hidden_activation
            self.layers.append(
                DenseLayer(
                    layer_sizes[index],
                    layer_sizes[index + 1],
                    activation=activation,
                    rng=rng,
                )
            )
        self.input_size = layer_sizes[0]
        self.output_size = layer_sizes[-1]

    def forward(self, inputs: np.ndarray, cache: bool = True) -> np.ndarray:
        outputs = np.atleast_2d(np.asarray(inputs, dtype=float))
        for layer in self.layers:
            outputs = layer.forward(outputs, cache=cache)
        return outputs

    def __call__(self, inputs: np.ndarray) -> np.ndarray:
        return self.forward(inputs)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Backprop a loss gradient; returns the gradient w.r.t. the input."""
        grad = np.atleast_2d(np.asarray(grad_output, dtype=float))
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def input_gradient(self, grad_output: np.ndarray) -> np.ndarray:
        """Input gradient without touching parameter-gradient accumulators."""
        grad = np.atleast_2d(np.asarray(grad_output, dtype=float))
        for layer in reversed(self.layers):
            grad = layer.input_gradient(grad)
        return grad

    def zero_grad(self) -> None:
        for layer in self.layers:
            layer.zero_grad()

    def parameters(self) -> List[np.ndarray]:
        params: List[np.ndarray] = []
        for layer in self.layers:
            params.extend(layer.parameters())
        return params

    def gradients(self) -> List[np.ndarray]:
        grads: List[np.ndarray] = []
        for layer in self.layers:
            grads.extend(layer.gradients())
        return grads

    def copy_weights_from(self, other: "MultiLayerPerceptron") -> None:
        """Hard-copy another network's parameters (target-network style)."""
        for mine, theirs in zip(self.parameters(), other.parameters()):
            mine[...] = theirs


@dataclass
class AdamOptimizer:
    """Adam optimiser bound to one network's parameter list."""

    network: MultiLayerPerceptron
    learning_rate: float = 1e-3
    beta1: float = 0.9
    beta2: float = 0.999
    epsilon: float = 1e-8

    def __post_init__(self) -> None:
        parameters = self.network.parameters()
        self._first_moment = [np.zeros_like(p) for p in parameters]
        self._second_moment = [np.zeros_like(p) for p in parameters]
        self._step_count = 0

    def step(self) -> None:
        """Apply one Adam update from the accumulated gradients."""
        self._step_count += 1
        parameters = self.network.parameters()
        gradients = self.network.gradients()
        for index, (param, grad) in enumerate(zip(parameters, gradients)):
            m = self._first_moment[index]
            v = self._second_moment[index]
            m[...] = self.beta1 * m + (1.0 - self.beta1) * grad
            v[...] = self.beta2 * v + (1.0 - self.beta2) * grad**2
            m_hat = m / (1.0 - self.beta1**self._step_count)
            v_hat = v / (1.0 - self.beta2**self._step_count)
            param -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)

    def zero_grad(self) -> None:
        self.network.zero_grad()
