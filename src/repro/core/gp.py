"""A small Gaussian-process regressor used by the TuRBO initial sampler.

Squared-exponential (RBF) kernel with automatic lengthscale selection from a
short grid search on the log marginal likelihood.  The design spaces here
have tens of dimensions and TuRBO only ever fits a few hundred points, so a
dense Cholesky implementation is entirely adequate.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
from scipy.linalg import cho_factor, cho_solve
from scipy.spatial.distance import cdist


class GaussianProcess:
    """GP regression with an RBF kernel and observation noise."""

    def __init__(
        self,
        lengthscale: Optional[float] = None,
        signal_variance: float = 1.0,
        noise_variance: float = 1e-6,
    ):
        self.lengthscale = lengthscale
        self.signal_variance = signal_variance
        self.noise_variance = noise_variance
        self._train_inputs: Optional[np.ndarray] = None
        self._train_targets: Optional[np.ndarray] = None
        self._target_mean = 0.0
        self._target_std = 1.0
        self._cho = None
        self._alpha: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    def _kernel(self, a: np.ndarray, b: np.ndarray, lengthscale: float) -> np.ndarray:
        distances = cdist(a, b, metric="sqeuclidean")
        return self.signal_variance * np.exp(-0.5 * distances / lengthscale**2)

    def _log_marginal_likelihood(
        self, inputs: np.ndarray, targets: np.ndarray, lengthscale: float
    ) -> float:
        kernel = self._kernel(inputs, inputs, lengthscale)
        kernel[np.diag_indices_from(kernel)] += self.noise_variance
        try:
            cho = cho_factor(kernel, lower=True)
        except np.linalg.LinAlgError:
            return -np.inf
        alpha = cho_solve(cho, targets)
        log_det = 2.0 * np.sum(np.log(np.diag(cho[0])))
        return float(
            -0.5 * targets @ alpha - 0.5 * log_det - 0.5 * len(targets) * np.log(2 * np.pi)
        )

    # ------------------------------------------------------------------
    def fit(self, inputs: np.ndarray, targets: np.ndarray) -> "GaussianProcess":
        """Fit the GP, selecting a lengthscale by grid search if unset."""
        inputs = np.atleast_2d(np.asarray(inputs, dtype=float))
        targets = np.asarray(targets, dtype=float).ravel()
        if inputs.shape[0] != targets.shape[0]:
            raise ValueError("inputs and targets must have the same length")
        if inputs.shape[0] < 2:
            raise ValueError("need at least two observations to fit a GP")

        self._target_mean = float(targets.mean())
        self._target_std = float(targets.std())
        if self._target_std < 1e-12:
            self._target_std = 1.0
        standardized = (targets - self._target_mean) / self._target_std

        if self.lengthscale is None:
            dimension = inputs.shape[1]
            base = np.sqrt(dimension) * 0.3
            candidates = base * np.array([0.25, 0.5, 1.0, 2.0, 4.0])
            scores = [
                self._log_marginal_likelihood(inputs, standardized, candidate)
                for candidate in candidates
            ]
            self.lengthscale = float(candidates[int(np.argmax(scores))])

        kernel = self._kernel(inputs, inputs, self.lengthscale)
        kernel[np.diag_indices_from(kernel)] += self.noise_variance
        self._cho = cho_factor(kernel, lower=True)
        self._alpha = cho_solve(self._cho, standardized)
        self._train_inputs = inputs
        self._train_targets = standardized
        return self

    def predict(self, query: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Posterior mean and variance at the query points."""
        if self._train_inputs is None:
            raise RuntimeError("predict called before fit")
        query = np.atleast_2d(np.asarray(query, dtype=float))
        cross = self._kernel(query, self._train_inputs, self.lengthscale)
        mean = cross @ self._alpha
        v = cho_solve(self._cho, cross.T)
        prior = self.signal_variance
        variance = np.maximum(prior - np.sum(cross * v.T, axis=1), 1e-12)
        return (
            mean * self._target_std + self._target_mean,
            variance * self._target_std**2,
        )

    def sample_posterior(
        self, query: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Independent (diagonal) Thompson samples from the posterior."""
        mean, variance = self.predict(query)
        return mean + rng.standard_normal(mean.shape) * np.sqrt(variance)
