"""Risk-sensitive RL agent (Algorithm 1 of the paper).

The agent owns the actor, the ensemble critic and the worst-case replay
buffer.  Each optimization iteration (driven by the
:class:`~repro.core.optimizer.GlovaOptimizer`) calls

1. :meth:`propose` — run the actor on the previous design and add
   exploration noise, producing the next design to simulate;
2. :meth:`observe` — store the worst-case reward of the simulated design;
3. :meth:`update`  — several gradient steps: every critic base model
   regresses onto worst-case rewards from its own batch, then the actor is
   pushed toward designs whose risk-sensitive bound reaches the feasible
   reward of 0.2 (the paper's actor loss ``MSE(0.2, Q(A(x)))``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.actor_critic import Actor, EnsembleCritic
from repro.core.config import GlovaConfig
from repro.core.replay import WorstCaseReplayBuffer
from repro.core.reward import FEASIBLE_REWARD


@dataclass
class AgentUpdateSummary:
    """Diagnostics from one :meth:`RiskSensitiveAgent.update` call."""

    critic_loss: float
    actor_loss: float
    gradient_steps: int


class RiskSensitiveAgent:
    """DDPG-style actor/ensemble-critic agent trained on worst-case rewards."""

    def __init__(
        self,
        design_dimension: int,
        config: GlovaConfig,
        rng: Optional[np.random.Generator] = None,
    ):
        self.design_dimension = design_dimension
        self.config = config
        self.rng = rng if rng is not None else np.random.default_rng(config.seed)
        self.actor = Actor(
            design_dimension,
            hidden_size=config.hidden_size,
            learning_rate=config.actor_learning_rate,
            rng=self.rng,
        )
        self.critic = EnsembleCritic(
            design_dimension,
            ensemble_size=config.effective_ensemble_size(),
            beta1=config.effective_beta1(),
            hidden_size=config.hidden_size,
            learning_rate=config.critic_learning_rate,
            rng=self.rng,
        )
        self.buffer = WorstCaseReplayBuffer()
        self._noise_scale = config.exploration_noise

    # ------------------------------------------------------------------
    @property
    def exploration_noise(self) -> float:
        return self._noise_scale

    #: Exploration noise never decays below this floor, so the agent keeps
    #: probing the neighbourhood of its incumbent even late in a run.
    NOISE_FLOOR = 0.03

    def propose(self, last_design: np.ndarray) -> np.ndarray:
        """Next design = actor(last design) + exploration noise (Alg. 1)."""
        proposal = self.actor.propose(last_design, self._noise_scale, self.rng)
        self._noise_scale = max(
            self._noise_scale * self.config.noise_decay, self.NOISE_FLOOR
        )
        return proposal

    def observe(self, design: np.ndarray, worst_reward: float) -> None:
        """Store a worst-case experience in the replay buffer."""
        self.buffer.add(design, worst_reward)

    # ------------------------------------------------------------------
    def update(self, gradient_steps: Optional[int] = None) -> AgentUpdateSummary:
        """Train critic and actor from the replay buffer."""
        if len(self.buffer) == 0:
            raise RuntimeError("cannot update the agent with an empty buffer")
        steps = (
            gradient_steps
            if gradient_steps is not None
            else self.config.gradient_steps_per_iteration
        )
        batch_size = min(self.config.batch_size, max(len(self.buffer), 1))

        critic_losses: List[float] = []
        actor_losses: List[float] = []
        for _ in range(steps):
            critic_losses.append(
                self.critic.train(self.buffer, batch_size, self.rng)
            )
            actor_losses.append(self._actor_step(batch_size))
        return AgentUpdateSummary(
            critic_loss=float(np.mean(critic_losses)),
            actor_loss=float(np.mean(actor_losses)),
            gradient_steps=steps,
        )

    def _actor_step(self, batch_size: int) -> float:
        """One policy-gradient step: minimise ``MSE(0.2, Q(A(x)))``."""
        designs, _ = self.buffer.sample(batch_size, self.rng)
        actions = self.actor.forward_batch(designs)
        loss, grad_actions = self.critic.actor_loss_gradient(
            actions, target=FEASIBLE_REWARD
        )
        self.actor.apply_gradient(grad_actions)
        return loss

    # ------------------------------------------------------------------
    def predicted_bound(self, design: np.ndarray) -> float:
        """Risk-sensitive reliability bound for a single design."""
        return float(self.critic.predict(design.reshape(1, -1))[0])

    def best_buffered_design(self) -> np.ndarray:
        """The design with the best stored worst-case reward."""
        return self.buffer.best().design
