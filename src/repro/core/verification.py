"""Hierarchical verification (Algorithm 2 of the paper).

Verification proceeds in two passes over the corner set:

1. **Screening pass** — corners are visited worst-first (ordered by the
   last-worst-case buffer); for each corner ``N'`` mismatch conditions are
   sampled and simulated, the mu-sigma screen (Eq. 7) is applied, and —
   if it passes — the corner's t-SCORE and Pearson correlation vector are
   computed.  Any mu-sigma failure aborts verification immediately.

2. **Full pass** — corners are re-ordered by t-SCORE (most dangerous
   first); for each corner the remaining ``N - N'`` mismatch conditions are
   sampled, ranked by h-SCORE, and simulated in that order.  The first
   simulation whose reward is not the feasible 0.2 aborts verification.

   The full pass evaluates the ranked conditions in **chunks** of
   ``OperationalConfig.verification_chunk`` (default 8) through the batched
   simulator, scanning each chunk in rank order for the first infeasible
   reward.  The pass/fail outcome, the failed corner and the failure stage
   are identical to the one-at-a-time schedule; the only difference is the
   budget, which charges the simulated prefix *rounded up to the chunk* —
   at most ``verification_chunk - 1`` simulations past the first failure
   (``VerificationResult.simulations`` reports exactly what was charged).
   A chunk of 1 reproduces the sequential schedule, budget included.

   With ``OperationalConfig.pipeline`` (the default) the chunk schedule is
   **double-buffered** through the futures-based service path: while chunk
   *k* evaluates in flight, the verifier has already ranked and submitted
   chunk *k+1*, so it never idles on the simulator between chunks.  The
   pipeline stays *within* one corner (the next corner's mismatch set is
   sampled only after the current corner fully passes, keeping the seeded
   stream bit-identical to the sequential schedule), resolution happens in
   rank order (budget accounting lands at resolution, in the same order and
   with the same chunk-rounding as the sequential schedule), and an abort
   cancels the speculative chunk before it is ever charged — pass/fail,
   failed corner, failure stage, worst reward, budget totals and RNG
   streams are all bit-for-bit identical (equivalence-tested).

If both passes complete, the design is verified for the chosen scenario.
The worst-corner subset simulated during the optimization phase can be
passed in and is reused rather than re-simulated (Section V.A notes this
reuse explicitly).

The two Table-III ablation switches live here as well:

* ``use_mu_sigma=False`` removes the Eq.-7 screen — every corner proceeds
  to full MC (failures are only caught by individual failing samples);
* ``use_reordering=False`` keeps the corner order from the last-worst-case
  buffer and simulates mismatch conditions in their sampled order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import OperationalConfig
from repro.core.mu_sigma import MuSigmaEvaluator, MuSigmaResult
from repro.core.reordering import h_scores, order_by_scores, pearson_correlation, t_score
from repro.core.replay import LastWorstCaseBuffer
from repro.core.reward import FEASIBLE_REWARD, rewards_from_matrix
from repro.core.spec import DesignSpec
from repro.simulation.budget import SimulationPhase
from repro.simulation.service import iter_resolved
from repro.simulation.simulator import CircuitSimulator, SimulationRecord
from repro.variation.corners import CornerSet, PVTCorner
from repro.variation.mismatch import MismatchSampler, MismatchSet


@dataclass
class CornerScreenResult:
    """Per-corner outcome of the screening pass."""

    corner: PVTCorner
    mu_sigma: MuSigmaResult
    t_score: float
    correlation: np.ndarray
    records: List[SimulationRecord]
    mismatch_set: MismatchSet


@dataclass
class VerificationResult:
    """Outcome of one verification attempt for a candidate design."""

    passed: bool
    simulations: int
    failed_corner: Optional[str] = None
    failure_stage: Optional[str] = None  # "mu_sigma" or "full_mc"
    worst_reward: float = FEASIBLE_REWARD
    corner_reports: List[CornerScreenResult] = field(default_factory=list)


class Verifier:
    """Runs Algorithm 2 for a candidate design."""

    def __init__(
        self,
        simulator: CircuitSimulator,
        spec: DesignSpec,
        operational: OperationalConfig,
        beta2: float = 4.0,
        use_mu_sigma: bool = True,
        use_reordering: bool = True,
        rng: Optional[np.random.Generator] = None,
    ):
        self.simulator = simulator
        self.spec = spec
        self.operational = operational
        self.evaluator = MuSigmaEvaluator(spec, beta2=beta2)
        self.use_mu_sigma = use_mu_sigma
        self.use_reordering = use_reordering
        self.rng = rng if rng is not None else np.random.default_rng()

    #: Chunks kept in flight ahead of the one being scanned (1 = classic
    #: double buffering; the pool is the real concurrency limit).
    PIPELINE_AHEAD = 1

    # ------------------------------------------------------------------
    def _sampler(self) -> MismatchSampler:
        return MismatchSampler(
            self.simulator.circuit.mismatch_model,
            include_global=self.operational.include_global,
            include_local=self.operational.include_local,
            rng=self.rng,
        )

    def _chunk_record_stream(
        self,
        design: np.ndarray,
        corner: PVTCorner,
        extra_set: MismatchSet,
        chunks: Sequence[np.ndarray],
    ) -> Iterator[List[SimulationRecord]]:
        """Yield each chunk's records, in rank order.

        Sequential mode (``pipeline`` off, or a single chunk): one blocking
        simulation per chunk, exactly the pre-async schedule.  Pipelined
        mode: chunk *k+1* is submitted through the futures-based service
        path before chunk *k* is resolved, so the simulator never idles
        between chunks.  Resolution happens strictly in rank order — budget
        charges land in the same order, with the same chunk rounding, as
        the sequential schedule — and abandoning the generator (the caller
        aborts on a failing chunk) cancels the speculative in-flight chunk
        before it is ever charged or cached.
        """
        if not self.operational.pipeline or len(chunks) <= 1:
            for chunk in chunks:
                yield self.simulator.simulate_mismatch_set(
                    design,
                    corner,
                    extra_set.subset(chunk),
                    phase=SimulationPhase.VERIFICATION,
                )
            return

        def submit(chunk: np.ndarray):
            return self.simulator.submit_mismatch_set(
                design,
                corner,
                extra_set.subset(chunk),
                phase=SimulationPhase.VERIFICATION,
            )

        for _, records in iter_resolved(chunks, submit, self.PIPELINE_AHEAD):
            yield records

    # ------------------------------------------------------------------
    def verify(
        self,
        design: np.ndarray,
        last_worst: LastWorstCaseBuffer,
        reusable_records: Optional[Dict[str, List[SimulationRecord]]] = None,
        reusable_mismatch: Optional[Dict[str, MismatchSet]] = None,
    ) -> VerificationResult:
        """Run Algorithm 2 for ``design``.

        Parameters
        ----------
        design:
            Normalised sizing vector to verify.
        last_worst:
            The last-worst-case corner buffer (supplies the initial order).
        reusable_records / reusable_mismatch:
            Optimization-phase simulations for specific corners (keyed by
            corner name), typically the worst corner's ``N'`` subset, which
            Algorithm 2 reuses instead of re-simulating.
        """
        reusable_records = reusable_records or {}
        reusable_mismatch = reusable_mismatch or {}
        sampler = self._sampler()
        x_physical = self.simulator.circuit.denormalize(design)
        simulations_before = self.simulator.budget.total

        # ----- pass 1: screening (mu-sigma + correlation) ---------------
        screen_order = last_worst.sorted_corners()
        screen_results: List[CornerScreenResult] = []
        worst_reward = FEASIBLE_REWARD

        for corner in screen_order:
            if corner.name in reusable_records:
                records = reusable_records[corner.name]
                mismatch_set = reusable_mismatch.get(
                    corner.name,
                    MismatchSet(
                        np.stack(
                            [
                                r.mismatch
                                if r.mismatch is not None
                                else sampler.model.zero()
                                for r in records
                            ]
                        ),
                        sampler.model.zero(),
                    ),
                )
            else:
                mismatch_set = sampler.sample(
                    x_physical, self.operational.optimization_samples
                )
                records = self.simulator.simulate_mismatch_set(
                    design, corner, mismatch_set, phase=SimulationPhase.VERIFICATION
                )

            # One matrix pass covers rewards and the Pearson performance
            # sums — no per-record Python loops on the MC hot path.
            metric_matrix = self.simulator.metrics_matrix(
                records, self.spec.metric_names
            )
            rewards = rewards_from_matrix(self.spec, metric_matrix)
            worst_reward = min(worst_reward, float(rewards.min()))
            mu_sigma = self.evaluator.evaluate([r.metrics for r in records])

            screen_failed = (
                not mu_sigma.passed
                if self.use_mu_sigma
                else bool(np.any(rewards < FEASIBLE_REWARD))
            )
            if screen_failed:
                return VerificationResult(
                    passed=False,
                    simulations=self.simulator.budget.total - simulations_before,
                    failed_corner=corner.name,
                    failure_stage="mu_sigma" if self.use_mu_sigma else "screen",
                    worst_reward=worst_reward,
                    corner_reports=screen_results,
                )

            performance = self.spec.normalized_matrix(metric_matrix).sum(axis=1)
            correlation = pearson_correlation(mismatch_set.samples, performance)
            screen_results.append(
                CornerScreenResult(
                    corner=corner,
                    mu_sigma=mu_sigma,
                    t_score=t_score(self.spec, mu_sigma),
                    correlation=correlation,
                    records=records,
                    mismatch_set=mismatch_set,
                )
            )

        # ----- pass 2: full verification with reordering ------------------
        remaining = (
            self.operational.verification_samples
            - self.operational.optimization_samples
        )
        if remaining > 0:
            if self.use_reordering:
                ordered = sorted(screen_results, key=lambda s: s.t_score, reverse=True)
            else:
                ordered = list(screen_results)

            chunk_size = max(1, self.operational.verification_chunk)
            for screen in ordered:
                extra_set = sampler.sample(
                    x_physical,
                    remaining,
                    global_shift=screen.mismatch_set.global_shift
                    if self.operational.include_global
                    else None,
                )
                if self.use_reordering:
                    scores = h_scores(extra_set.samples, screen.correlation)
                    order = order_by_scores(scores, descending=True)
                else:
                    order = np.arange(len(extra_set))

                # h-SCORE-ordered chunks: one batched evaluation per chunk,
                # then a rank-order scan for the first infeasible reward, so
                # the abort decision matches the sequential schedule while
                # the simulator runs at batch speed.  With pipelining the
                # stream below keeps the next chunk in flight while this
                # one is scanned (double buffering); aborting out of the
                # loop cancels the speculative chunk uncharged.
                chunks = [
                    order[start : start + chunk_size]
                    for start in range(0, len(order), chunk_size)
                ]
                for records in self._chunk_record_stream(
                    design, screen.corner, extra_set, chunks
                ):
                    rewards = rewards_from_matrix(
                        self.spec,
                        self.simulator.metrics_matrix(
                            records, self.spec.metric_names
                        ),
                    )
                    failing = np.flatnonzero(rewards < FEASIBLE_REWARD)
                    if failing.size:
                        # Only the prefix up to the aborting sample counts
                        # towards the worst reward, exactly as if the chunk
                        # had been simulated one condition at a time.
                        first = int(failing[0])
                        worst_reward = min(
                            worst_reward, float(rewards[: first + 1].min())
                        )
                        return VerificationResult(
                            passed=False,
                            simulations=self.simulator.budget.total
                            - simulations_before,
                            failed_corner=screen.corner.name,
                            failure_stage="full_mc",
                            worst_reward=worst_reward,
                            corner_reports=screen_results,
                        )
                    worst_reward = min(worst_reward, float(rewards.min()))

        return VerificationResult(
            passed=True,
            simulations=self.simulator.budget.total - simulations_before,
            worst_reward=worst_reward,
            corner_reports=screen_results,
        )
