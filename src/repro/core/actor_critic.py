"""Actor network and ensemble-based critic (Section IV of the paper).

The **actor** maps the previous normalised design vector to the next one
(4-layer MLP with a sigmoid output so designs stay inside the unit box).

The **ensemble critic** holds several independently initialised base models,
each a 4-layer MLP mapping a design to a predicted worst-case reward.  Its
aggregate output is the risk-sensitive bound of Eq. (6)::

    Q(x) = E[Q_i(x)] + beta1 * sigma[Q_i(x)]      (beta1 < 0: risk-avoiding)

Each base model is trained on its *own* batch drawn from the worst-case
replay buffer, so ensemble spread reflects epistemic uncertainty from the
limited number of sampled variations.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.nn import AdamOptimizer, MultiLayerPerceptron
from repro.core.replay import WorstCaseReplayBuffer
from repro.core.reward import FEASIBLE_REWARD


class Actor:
    """Policy network: previous design in, next design out (both in [0,1]^p)."""

    def __init__(
        self,
        design_dimension: int,
        hidden_size: int = 64,
        learning_rate: float = 1e-3,
        rng: Optional[np.random.Generator] = None,
    ):
        self.design_dimension = design_dimension
        self.network = MultiLayerPerceptron(
            [design_dimension, hidden_size, hidden_size, design_dimension],
            hidden_activation="relu",
            output_activation="sigmoid",
            rng=rng,
        )
        self.optimizer = AdamOptimizer(self.network, learning_rate=learning_rate)

    def act(self, design: np.ndarray) -> np.ndarray:
        """Deterministic policy output for a single design vector."""
        output = self.network.forward(design.reshape(1, -1), cache=False)
        return output[0]

    def propose(
        self,
        design: np.ndarray,
        noise_scale: float,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Policy output plus exploration noise, clipped to the unit box."""
        base = self.act(design)
        noisy = base + rng.normal(0.0, noise_scale, size=base.shape)
        return np.clip(noisy, 0.0, 1.0)

    def forward_batch(self, designs: np.ndarray) -> np.ndarray:
        """Cached forward pass used during the policy-gradient step."""
        return self.network.forward(designs, cache=True)

    def apply_gradient(self, grad_output: np.ndarray) -> None:
        """Backprop ``dLoss/dAction`` through the actor and take an Adam step."""
        self.optimizer.zero_grad()
        self.network.backward(grad_output)
        self.optimizer.step()

    def pretrain_towards(
        self,
        inputs: np.ndarray,
        target_design: np.ndarray,
        steps: int = 200,
    ) -> float:
        """Behaviour-clone the policy towards a known good design.

        GLOVA seeds its replay buffer with TuRBO solutions that already meet
        the constraints at the typical condition; cloning the actor onto the
        best of them makes the first RL proposals start from that region
        instead of from an arbitrary random policy, which is what keeps the
        framework's RL-iteration counts small.  Returns the final MSE.
        """
        inputs = np.atleast_2d(inputs)
        target = np.tile(np.asarray(target_design, dtype=float), (inputs.shape[0], 1))
        loss = float("inf")
        for _ in range(steps):
            outputs = self.network.forward(inputs, cache=True)
            error = outputs - target
            loss = float(np.mean(error**2))
            grad = 2.0 * error / error.shape[0]
            self.optimizer.zero_grad()
            self.network.backward(grad)
            self.optimizer.step()
        return loss


class CriticBaseModel:
    """One base model of the ensemble: design -> predicted worst-case reward."""

    def __init__(
        self,
        design_dimension: int,
        hidden_size: int = 64,
        learning_rate: float = 2e-3,
        rng: Optional[np.random.Generator] = None,
    ):
        self.network = MultiLayerPerceptron(
            [design_dimension, hidden_size, hidden_size, 1],
            hidden_activation="relu",
            output_activation="linear",
            rng=rng,
        )
        self.optimizer = AdamOptimizer(self.network, learning_rate=learning_rate)

    def predict(self, designs: np.ndarray) -> np.ndarray:
        return self.network.forward(np.atleast_2d(designs), cache=False)[:, 0]

    def train_batch(self, designs: np.ndarray, rewards: np.ndarray) -> float:
        """One MSE regression step; returns the batch loss."""
        designs = np.atleast_2d(designs)
        rewards = np.asarray(rewards, dtype=float).reshape(-1, 1)
        predictions = self.network.forward(designs, cache=True)
        error = predictions - rewards
        loss = float(np.mean(error**2))
        grad = 2.0 * error / error.shape[0]
        self.optimizer.zero_grad()
        self.network.backward(grad)
        self.optimizer.step()
        return loss


class EnsembleCritic:
    """The risk-sensitive reliability-bound estimator of Eq. (6)."""

    def __init__(
        self,
        design_dimension: int,
        ensemble_size: int = 5,
        beta1: float = -3.0,
        hidden_size: int = 64,
        learning_rate: float = 2e-3,
        rng: Optional[np.random.Generator] = None,
    ):
        if ensemble_size < 1:
            raise ValueError("ensemble_size must be >= 1")
        rng = rng if rng is not None else np.random.default_rng()
        self.design_dimension = design_dimension
        self.beta1 = float(beta1)
        self.base_models: List[CriticBaseModel] = [
            CriticBaseModel(design_dimension, hidden_size, learning_rate, rng)
            for _ in range(ensemble_size)
        ]

    @property
    def ensemble_size(self) -> int:
        return len(self.base_models)

    # ------------------------------------------------------------------
    def base_predictions(self, designs: np.ndarray) -> np.ndarray:
        """Predictions of every base model: shape ``(ensemble, batch)``."""
        designs = np.atleast_2d(designs)
        return np.stack([model.predict(designs) for model in self.base_models])

    def predict(self, designs: np.ndarray) -> np.ndarray:
        """Risk-sensitive bound ``E[Q_i] + beta1 * sigma[Q_i]`` per design."""
        predictions = self.base_predictions(designs)
        mean = predictions.mean(axis=0)
        if self.ensemble_size == 1:
            return mean
        std = predictions.std(axis=0)
        return mean + self.beta1 * std

    def predict_components(self, designs: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Ensemble mean and standard deviation (used by Fig.-3 analysis)."""
        predictions = self.base_predictions(designs)
        return predictions.mean(axis=0), predictions.std(axis=0)

    # ------------------------------------------------------------------
    def train(
        self,
        buffer: WorstCaseReplayBuffer,
        batch_size: int,
        rng: np.random.Generator,
    ) -> float:
        """Train every base model on its own batch; returns the mean loss."""
        losses = []
        for model in self.base_models:
            designs, rewards = buffer.sample(batch_size, rng)
            losses.append(model.train_batch(designs, rewards))
        return float(np.mean(losses))

    # ------------------------------------------------------------------
    def bound_gradient(self, designs: np.ndarray) -> np.ndarray:
        """Gradient of the risk-sensitive bound w.r.t. the input designs.

        Used by the actor update: the chain rule needs
        ``d(E[Q_i] + beta1*sigma[Q_i]) / dx``.  The sigma term's gradient is
        ``beta1 * sum_i (Q_i - mean) * dQ_i/dx / (ensemble * sigma)``.
        """
        designs = np.atleast_2d(designs)
        batch = designs.shape[0]
        predictions = self.base_predictions(designs)  # (ensemble, batch)
        mean = predictions.mean(axis=0)
        std = predictions.std(axis=0)
        ensemble = self.ensemble_size

        gradient = np.zeros_like(designs, dtype=float)
        ones = np.ones((batch, 1))
        for index, model in enumerate(self.base_models):
            # Re-run a cached forward pass so input_gradient has activations.
            model.network.forward(designs, cache=True)
            base_grad = model.network.input_gradient(ones)
            weight = np.full(batch, 1.0 / ensemble)
            if ensemble > 1 and self.beta1 != 0.0:
                safe_std = np.where(std > 1e-12, std, np.inf)
                weight = weight + self.beta1 * (
                    (predictions[index] - mean) / (ensemble * safe_std)
                )
            gradient += base_grad * weight[:, None]
        return gradient

    def actor_loss_gradient(
        self, actions: np.ndarray, target: float = FEASIBLE_REWARD
    ) -> Tuple[float, np.ndarray]:
        """Loss ``MSE(target, Q(actions))`` and its gradient w.r.t. actions."""
        actions = np.atleast_2d(actions)
        bound = self.predict(actions)
        error = bound - target
        loss = float(np.mean(error**2))
        dloss_dbound = 2.0 * error / actions.shape[0]
        dbound_daction = self.bound_gradient(actions)
        return loss, dbound_daction * dloss_dbound[:, None]
