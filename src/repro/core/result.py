"""Result containers for optimization runs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np


@dataclass
class IterationRecord:
    """Per-RL-iteration trace used for analysis and the Fig.-3 benchmark."""

    iteration: int
    design: np.ndarray
    worst_reward: float
    predicted_bound: float
    predicted_mean: float
    predicted_std: float
    corner_name: str
    attempted_verification: bool
    verification_passed: bool
    critic_loss: float = float("nan")
    actor_loss: float = float("nan")


@dataclass
class OptimizationResult:
    """Everything a Table-II row needs about one optimization run.

    Attributes
    ----------
    success:
        True when a design passed full verification within the budget.
    iterations:
        RL iterations used (the paper's "RL Iteration" column; initial
        TuRBO sampling is not an RL iteration).
    simulations:
        Snapshot dict with initial-sampling / optimization / verification /
        total SPICE-equivalent simulation counts.
    runtime:
        Modelled wall-clock (see :class:`repro.simulation.SimulationBudget`).
    final_design / final_design_physical:
        The verified design in normalised and physical units (None when the
        run failed).
    final_metrics:
        Metrics of the verified design at the typical condition.
    verification_attempts:
        How many times full verification was started.
    history:
        Per-iteration trace.
    method / circuit:
        Labels for reporting.
    """

    success: bool
    iterations: int
    simulations: Dict[str, int]
    runtime: float
    final_design: Optional[np.ndarray] = None
    final_design_physical: Optional[np.ndarray] = None
    final_metrics: Optional[Dict[str, float]] = None
    verification_attempts: int = 0
    history: List[IterationRecord] = field(default_factory=list)
    method: str = ""
    circuit: str = ""

    @property
    def total_simulations(self) -> int:
        return self.simulations.get("total", 0)

    @property
    def optimization_simulations(self) -> int:
        return self.simulations.get("initial_sampling", 0) + self.simulations.get(
            "optimization", 0
        )

    @property
    def verification_simulations(self) -> int:
        return self.simulations.get("verification", 0)

    def summary(self) -> str:
        """One-line human-readable summary."""
        status = "SUCCESS" if self.success else "FAILED"
        return (
            f"[{status}] {self.circuit} / {self.method}: "
            f"{self.iterations} RL iterations, "
            f"{self.total_simulations} simulations, "
            f"runtime {self.runtime:.1f} (modelled units), "
            f"{self.verification_attempts} verification attempts"
        )
