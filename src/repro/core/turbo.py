"""TuRBO-style trust-region initial sampling (Section III.C).

GLOVA adopts PVTSizing's initialisation: before any RL step, a trust-region
Bayesian optimizer searches for design solutions that satisfy the
constraints at the *typical* condition.  This module implements a compact
TuRBO-1 [Eriksson et al., NeurIPS 2019]:

* a hyper-rectangular trust region centred on the incumbent best design,
* a GP surrogate fitted to the points evaluated so far,
* Thompson sampling over candidate points restricted to the trust region,
* the classic expansion/shrinkage rule on consecutive successes/failures.

The objective maximised is the consolidated reward at the typical corner, so
"success" means finding designs with reward 0.2 (all constraints met).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.core.gp import GaussianProcess
from repro.core.reward import FEASIBLE_REWARD, is_feasible_reward


@dataclass
class TurboResult:
    """Outcome of the initial-sampling phase."""

    designs: np.ndarray
    rewards: np.ndarray
    feasible_designs: List[np.ndarray] = field(default_factory=list)
    evaluations: int = 0

    @property
    def best_design(self) -> np.ndarray:
        return self.designs[int(np.argmax(self.rewards))]

    @property
    def best_reward(self) -> float:
        return float(np.max(self.rewards))

    @property
    def found_feasible(self) -> bool:
        return len(self.feasible_designs) > 0


class TurboSampler:
    """Trust-region Bayesian optimisation over the unit hyper-cube."""

    def __init__(
        self,
        dimension: int,
        rng: Optional[np.random.Generator] = None,
        initial_points: int = 10,
        batch_size: int = 3,
        candidates_per_batch: int = 300,
        length_init: float = 0.6,
        length_min: float = 0.03,
        length_max: float = 1.2,
        success_tolerance: int = 2,
        failure_tolerance: int = 4,
    ):
        if dimension < 1:
            raise ValueError("dimension must be positive")
        self.dimension = dimension
        self.rng = rng if rng is not None else np.random.default_rng()
        self.initial_points = max(initial_points, 2)
        self.batch_size = batch_size
        self.candidates_per_batch = candidates_per_batch
        self.length = length_init
        self.length_min = length_min
        self.length_max = length_max
        self.success_tolerance = success_tolerance
        self.failure_tolerance = failure_tolerance
        self._successes = 0
        self._failures = 0
        self._inputs: List[np.ndarray] = []
        self._values: List[float] = []

    # ------------------------------------------------------------------
    @property
    def observations(self) -> Tuple[np.ndarray, np.ndarray]:
        return np.array(self._inputs), np.array(self._values)

    def _incumbent(self) -> Tuple[np.ndarray, float]:
        index = int(np.argmax(self._values))
        return self._inputs[index], self._values[index]

    def ask_initial(self) -> np.ndarray:
        """Space-filling initial design (scrambled stratified sampling)."""
        points = np.empty((self.initial_points, self.dimension))
        for column in range(self.dimension):
            strata = (np.arange(self.initial_points) + self.rng.uniform(
                0.0, 1.0, self.initial_points
            )) / self.initial_points
            points[:, column] = self.rng.permutation(strata)
        return points

    def ask(self) -> np.ndarray:
        """Next batch of candidate designs inside the trust region."""
        if len(self._inputs) < 2:
            return self.rng.uniform(0.0, 1.0, size=(self.batch_size, self.dimension))
        center, _ = self._incumbent()
        half = self.length / 2.0
        lower = np.clip(center - half, 0.0, 1.0)
        upper = np.clip(center + half, 0.0, 1.0)
        candidates = self.rng.uniform(
            lower, upper, size=(self.candidates_per_batch, self.dimension)
        )
        # Perturb only a subset of coordinates for high-dimensional spaces,
        # as in the TuRBO paper.
        probability = min(1.0, 20.0 / self.dimension)
        mask = self.rng.uniform(size=candidates.shape) <= probability
        mask[np.all(~mask, axis=1), self.rng.integers(self.dimension)] = True
        candidates = np.where(mask, candidates, center)

        gp = GaussianProcess()
        gp.fit(*self.observations)
        samples = gp.sample_posterior(candidates, self.rng)
        order = np.argsort(-samples)
        return candidates[order[: self.batch_size]]

    def tell(self, designs: np.ndarray, rewards: np.ndarray) -> None:
        """Record evaluations and update the trust-region size."""
        designs = np.atleast_2d(designs)
        rewards = np.atleast_1d(rewards)
        previous_best = max(self._values) if self._values else -np.inf
        for design, reward in zip(designs, rewards):
            self._inputs.append(np.array(design, dtype=float))
            self._values.append(float(reward))
        if np.max(rewards) > previous_best + 1e-4:
            self._successes += 1
            self._failures = 0
        else:
            self._failures += 1
            self._successes = 0
        if self._successes >= self.success_tolerance:
            self.length = min(self.length * 2.0, self.length_max)
            self._successes = 0
        if self._failures >= self.failure_tolerance:
            self.length = max(self.length / 2.0, self.length_min)
            self._failures = 0

    # ------------------------------------------------------------------
    def run(
        self,
        objective: Optional[Callable[[np.ndarray], float]],
        max_evaluations: int,
        feasible_target: int = 1,
        objective_batch: Optional[Callable[[np.ndarray], np.ndarray]] = None,
    ) -> TurboResult:
        """Drive the sampler against ``objective`` (reward at typical).

        Stops when ``feasible_target`` feasible designs have been found or
        the evaluation budget is exhausted.

        ``objective_batch`` maps an ``(M, p)`` design matrix to ``(M,)``
        rewards in one call; when provided, every proposal batch (and the
        space-filling initial design) is evaluated in a single vectorized
        pass instead of M scalar calls.  Bookkeeping — tell order, trust
        region updates, the feasibility stop — is identical to the scalar
        schedule, so a batched run visits exactly the same designs as a
        scalar run with the same seed.
        """
        if objective is None and objective_batch is None:
            raise ValueError("provide objective or objective_batch")

        def evaluate(batch_designs: np.ndarray) -> np.ndarray:
            if objective_batch is not None:
                return np.asarray(objective_batch(batch_designs), dtype=float)
            return np.array([float(objective(design)) for design in batch_designs])

        feasible: List[np.ndarray] = []
        evaluations = 0

        initial = self.ask_initial()
        initial = initial[: max(0, max_evaluations - evaluations)]
        if len(initial):
            rewards = evaluate(initial)
            for design, reward in zip(initial, rewards):
                evaluations += 1
                self.tell(design[None, :], np.array([reward]))
                if is_feasible_reward(reward):
                    feasible.append(design.copy())
        while evaluations < max_evaluations and len(feasible) < feasible_target:
            batch = self.ask()
            batch = batch[: max_evaluations - evaluations]
            if not len(batch):
                break
            rewards = evaluate(batch)
            evaluations += len(batch)
            for design, reward in zip(batch, rewards):
                if is_feasible_reward(reward):
                    feasible.append(design.copy())
            self.tell(batch, rewards)

        designs, values = self.observations
        return TurboResult(
            designs=designs,
            rewards=values,
            feasible_designs=feasible,
            evaluations=evaluations,
        )
