"""The consolidated reward of Eq. (4)-(5).

A design earns the fixed feasible reward ``0.2`` when it satisfies every
constraint; otherwise its reward is the (negative) sum of the normalised
constraint violations::

    r' = sum_i min(f_i, 0)        r = 0.2 if r' >= 0 else r'

The worst-case reward over a set of simulations is simply the minimum, which
is what the risk-sensitive agent stores in its replay buffer.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence, Tuple

import numpy as np

from repro.core.spec import DesignSpec

#: Reward granted to a fully feasible design (Eq. 4).
FEASIBLE_REWARD = 0.2


def reward_from_normalized(normalized_metrics: np.ndarray) -> float:
    """Reward from a vector of normalised metrics ``f_i``."""
    normalized_metrics = np.asarray(normalized_metrics, dtype=float)
    shortfall = float(np.sum(np.minimum(normalized_metrics, 0.0)))
    return FEASIBLE_REWARD if shortfall >= 0.0 else shortfall


def reward_from_metrics(spec: DesignSpec, metrics: Mapping[str, float]) -> float:
    """Reward for one simulation outcome."""
    return reward_from_normalized(spec.normalized_metrics(metrics))


def rewards_from_matrix(spec: DesignSpec, metric_matrix: np.ndarray) -> np.ndarray:
    """Vectorized rewards for an ``(N, n_metrics)`` raw-metric matrix.

    One pass over the whole Monte-Carlo batch: equivalent to calling
    :func:`reward_from_metrics` per row, without the per-record dict traffic.
    """
    normalized = spec.normalized_matrix(metric_matrix)
    shortfall = np.sum(np.minimum(normalized, 0.0), axis=1)
    return np.where(shortfall >= 0.0, FEASIBLE_REWARD, shortfall)


def worst_case_reward(
    spec: DesignSpec, metric_dicts: Iterable[Mapping[str, float]]
) -> float:
    """Minimum reward across a set of simulation outcomes."""
    rewards = [reward_from_metrics(spec, metrics) for metrics in metric_dicts]
    if not rewards:
        raise ValueError("worst_case_reward needs at least one outcome")
    return min(rewards)


def rewards_and_worst(
    spec: DesignSpec, metric_dicts: Sequence[Mapping[str, float]]
) -> Tuple[np.ndarray, float]:
    """All rewards plus the worst one, in a single pass."""
    rewards = np.array(
        [reward_from_metrics(spec, metrics) for metrics in metric_dicts]
    )
    return rewards, float(rewards.min())


def is_feasible_reward(reward: float) -> bool:
    """True when a reward corresponds to a fully feasible simulation."""
    return reward >= FEASIBLE_REWARD
