"""Design specification: constraints and normalised performance metrics.

The paper folds the constraint-satisfaction problem into a single reward by
normalising each metric against its bound (Eq. 5)::

    f_i = (c_i - F_i) / (c_i + F_i)

which is positive when the constraint is met and negative otherwise.  That
expression assumes both ``c_i`` and ``F_i`` are positive; the DRAM-core
testcase sign-flips its sensing voltages (``-dV <= -85 mV``), which would
make the paper's denominator change sign.  We therefore use the equivalent
robust form::

    f_i = (c_i - F_i) / (|c_i| + |F_i| + eps)

which preserves the sign and the [-1, 1] range of the paper's normalisation
for positive metrics and extends it safely to sign-flipped ones (documented
substitution, see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence

import numpy as np

from repro.circuits.base import AnalogCircuit

#: Numerical guard for the normalisation denominator.
_EPSILON = 1e-12


@dataclass(frozen=True)
class Constraint:
    """A single design target: ``metric <= bound``."""

    metric: str
    bound: float

    def margin(self, value: float) -> float:
        """Positive slack when satisfied, negative violation otherwise."""
        return self.bound - value

    def normalized(self, value: float) -> float:
        """The paper's normalised metric ``f_i`` (robust form, see module doc)."""
        return (self.bound - value) / (abs(self.bound) + abs(value) + _EPSILON)

    def satisfied(self, value: float) -> bool:
        return value <= self.bound


class DesignSpec:
    """The set of constraints for one circuit, with vector helpers."""

    def __init__(self, constraints: Sequence[Constraint]):
        if not constraints:
            raise ValueError("a DesignSpec needs at least one constraint")
        names = [c.metric for c in constraints]
        if len(set(names)) != len(names):
            raise ValueError("duplicate metric names in DesignSpec")
        self._constraints: List[Constraint] = list(constraints)

    @classmethod
    def from_circuit(cls, circuit: AnalogCircuit) -> "DesignSpec":
        """Build the spec from a circuit's declared constraints."""
        return cls(
            [Constraint(metric, bound) for metric, bound in circuit.constraints.items()]
        )

    @property
    def constraints(self) -> List[Constraint]:
        return list(self._constraints)

    @property
    def metric_names(self) -> List[str]:
        return [c.metric for c in self._constraints]

    @property
    def bounds(self) -> np.ndarray:
        return np.array([c.bound for c in self._constraints])

    def __len__(self) -> int:
        return len(self._constraints)

    # ------------------------------------------------------------------
    def metric_vector(self, metrics: Mapping[str, float]) -> np.ndarray:
        """Raw metric values ordered like the constraints."""
        return np.array([metrics[c.metric] for c in self._constraints])

    def normalized_metrics(self, metrics: Mapping[str, float]) -> np.ndarray:
        """Vector of ``f_i`` values (positive = satisfied)."""
        return np.array([c.normalized(metrics[c.metric]) for c in self._constraints])

    def normalized_matrix(self, metric_matrix: np.ndarray) -> np.ndarray:
        """Vectorized ``f_i`` for an ``(N, n_metrics)`` raw-metric matrix.

        Columns must be ordered like :attr:`metric_names` (the layout
        produced by ``CircuitSimulator.metrics_matrix``).
        """
        metric_matrix = np.asarray(metric_matrix, dtype=float)
        bounds = self.bounds
        return (bounds - metric_matrix) / (
            np.abs(bounds) + np.abs(metric_matrix) + _EPSILON
        )

    def margins(self, metrics: Mapping[str, float]) -> Dict[str, float]:
        """Per-metric slack ``c_i - F_i``."""
        return {c.metric: c.margin(metrics[c.metric]) for c in self._constraints}

    def is_feasible(self, metrics: Mapping[str, float]) -> bool:
        """True when every constraint is met."""
        return all(c.satisfied(metrics[c.metric]) for c in self._constraints)

    def violation(self, metrics: Mapping[str, float]) -> float:
        """Total normalised violation (0 when feasible)."""
        normalized = self.normalized_metrics(metrics)
        return float(-np.sum(np.minimum(normalized, 0.0)))
