"""The mu-sigma evaluation method (Section V.A, Eq. 7).

Before spending a full Monte-Carlo budget on a candidate design, GLOVA
analyses the small subset of ``N'`` simulations already available for a
corner and asks whether the *estimated* distribution of each metric leaves
enough headroom::

    e_i = E[F_i] + beta2 * sigma[F_i]  <=  c_i          (beta2 >= 4)

All constraints are expressed as upper bounds (maximised metrics are
sign-flipped by the circuit definitions), so "higher is worse" holds for
every metric and a positive ``beta2`` is conservative: the screen only lets
a design through to full verification when even a ``beta2``-sigma pessimistic
estimate of every metric still meets its target.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.core.spec import DesignSpec


@dataclass(frozen=True)
class MuSigmaResult:
    """Outcome of the mu-sigma screen for one corner.

    Attributes
    ----------
    passed:
        True when every metric's pessimistic estimate meets its bound.
    estimates:
        Per-metric ``e_i = mean + beta2 * std``.
    means / stds:
        The per-metric sample statistics the estimate was built from.
    margins:
        ``c_i - e_i`` (positive = headroom).
    """

    passed: bool
    estimates: Dict[str, float]
    means: Dict[str, float]
    stds: Dict[str, float]
    margins: Dict[str, float]

    @property
    def worst_margin(self) -> float:
        return min(self.margins.values())


class MuSigmaEvaluator:
    """Applies Eq. (7) to a matrix of sampled metrics."""

    def __init__(self, spec: DesignSpec, beta2: float = 4.0):
        if beta2 < 0:
            raise ValueError("beta2 must be non-negative")
        self.spec = spec
        self.beta2 = float(beta2)

    def evaluate(self, metric_samples: Sequence[Dict[str, float]]) -> MuSigmaResult:
        """Screen a set of sampled metric dictionaries for one corner.

        With a single sample the standard deviation is zero and the screen
        degenerates to a plain constraint check, which is exactly what the
        corner-only (``C``) configuration needs.
        """
        if not metric_samples:
            raise ValueError("mu-sigma evaluation needs at least one sample")
        names = self.spec.metric_names
        matrix = np.array(
            [[sample[name] for name in names] for sample in metric_samples]
        )
        means = matrix.mean(axis=0)
        stds = matrix.std(axis=0, ddof=0)
        estimates = means + self.beta2 * stds
        bounds = self.spec.bounds
        margins = bounds - estimates
        passed = bool(np.all(estimates <= bounds))
        return MuSigmaResult(
            passed=passed,
            estimates=dict(zip(names, estimates.tolist())),
            means=dict(zip(names, means.tolist())),
            stds=dict(zip(names, stds.tolist())),
            margins=dict(zip(names, margins.tolist())),
        )

    def estimates_vector(self, result: MuSigmaResult) -> np.ndarray:
        """The ``e_i`` values ordered like the spec's constraints."""
        return np.array([result.estimates[name] for name in self.spec.metric_names])
