"""Simulation reordering (Section V.B, Eq. 8-10).

Two orderings make the verification phase fail fast:

* **Corner reordering** — corners are ranked by their t-SCORE, the sum over
  metrics of the mu-sigma estimates ``e_i`` normalised by the constraint
  magnitude (the normalisation keeps metrics with different units
  commensurable; the paper sums the raw ``e_i``, which is equivalent up to a
  per-circuit constant and documented in DESIGN.md).  Higher t-SCORE means
  the corner is closer to failing, so it is simulated first.

* **MC reordering** — within a corner, the not-yet-simulated mismatch
  conditions are ranked by their h-SCORE: the inner product between the
  mismatch vector and the Pearson correlation (computed on the already
  simulated ``N'`` subset) between each mismatch parameter and the summed
  normalised performance ``g = sum_i f_i``.  Since smaller ``f`` is worse,
  conditions whose correlated parameters push ``g`` down get the highest
  failure likelihood and are simulated first.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.mu_sigma import MuSigmaResult
from repro.core.spec import DesignSpec


def t_score(spec: DesignSpec, result: MuSigmaResult) -> float:
    """Corner severity score (Eq. 8): higher = more likely to fail."""
    score = 0.0
    for constraint in spec.constraints:
        estimate = result.estimates[constraint.metric]
        scale = abs(constraint.bound) + 1e-12
        score += estimate / scale
    return float(score)


def pearson_correlation(
    mismatch_samples: np.ndarray, performance: np.ndarray
) -> np.ndarray:
    """Per-dimension Pearson correlation (Eq. 9).

    Parameters
    ----------
    mismatch_samples:
        Array of shape ``(n, r)`` — the pre-sampled mismatch conditions.
    performance:
        Array of shape ``(n,)`` — the summed normalised performance ``g``
        of each sample.

    Dimensions with zero variance (e.g. when global-only sampling repeats
    the same value) get a correlation of zero.
    """
    mismatch_samples = np.atleast_2d(np.asarray(mismatch_samples, dtype=float))
    performance = np.asarray(performance, dtype=float).ravel()
    if mismatch_samples.shape[0] != performance.shape[0]:
        raise ValueError("sample count mismatch between h-vectors and performance")
    if mismatch_samples.shape[0] < 2:
        return np.zeros(mismatch_samples.shape[1])

    h_centered = mismatch_samples - mismatch_samples.mean(axis=0)
    g_centered = performance - performance.mean()
    h_norm = np.sqrt(np.sum(h_centered**2, axis=0))
    g_norm = np.sqrt(np.sum(g_centered**2))
    denominator = h_norm * g_norm
    with np.errstate(invalid="ignore", divide="ignore"):
        correlation = (h_centered.T @ g_centered) / denominator
    correlation[~np.isfinite(correlation)] = 0.0
    return correlation


def h_scores(mismatch_samples: np.ndarray, correlation: np.ndarray) -> np.ndarray:
    """Failure-likelihood score per mismatch condition (Eq. 10).

    ``g = sum_i f_i`` is *better* when larger, so a mismatch condition whose
    correlated components drive ``g`` down is the most dangerous.  The score
    is therefore the negated weighted sum, so that a higher h-SCORE means a
    higher likelihood of failure and such conditions are simulated first.
    """
    mismatch_samples = np.atleast_2d(np.asarray(mismatch_samples, dtype=float))
    correlation = np.asarray(correlation, dtype=float).ravel()
    if mismatch_samples.shape[1] != correlation.shape[0]:
        raise ValueError("correlation vector length must match mismatch dimension")
    return -(mismatch_samples @ correlation)


def order_by_scores(scores: Sequence[float], descending: bool = True) -> np.ndarray:
    """Indices that sort ``scores`` (descending by default)."""
    scores = np.asarray(scores, dtype=float)
    order = np.argsort(scores)
    return order[::-1] if descending else order
