"""The GLOVA optimization + verification workflow (Fig. 2 of the paper).

One :class:`GlovaOptimizer` run executes:

1. **Initial sampling** — TuRBO searches for designs meeting the constraints
   at the typical condition (adopted from PVTSizing).
2. **Seeding** — the best initial designs are simulated across all
   predefined corners (with ``N'`` mismatch samples when the scenario uses
   MC) and their worst-case rewards fill the replay buffer and the
   last-worst-case corner buffer; the actor is behaviour-cloned onto the
   best seed so the first proposals start near it.
3. **Optimization loop** (Algorithm 1) — each RL iteration proposes a
   design, simulates it under ``N'`` sampled mismatch conditions at the
   current worst corner, stores the worst reward and updates the agent.
4. **Verification** (Algorithm 2) — whenever the worst-corner mu-sigma
   screen passes, the full hierarchical verification runs; success
   terminates the framework.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.circuits.base import AnalogCircuit
from repro.core.agent import RiskSensitiveAgent
from repro.core.config import GlovaConfig
from repro.core.mu_sigma import MuSigmaEvaluator
from repro.core.replay import LastWorstCaseBuffer
from repro.core.result import IterationRecord, OptimizationResult
from repro.core.reward import (
    FEASIBLE_REWARD,
    reward_from_metrics,
    rewards_from_matrix,
)
from repro.core.spec import DesignSpec
from repro.core.turbo import TurboSampler
from repro.core.verification import Verifier
from repro.simulation.budget import SimulationBudget, SimulationPhase
from repro.simulation.service import iter_resolved
from repro.simulation.simulator import CircuitSimulator
from repro.variation.mismatch import MismatchSampler


class GlovaOptimizer:
    """Variation-aware sizing with risk-sensitive RL (the paper's framework)."""

    def __init__(
        self,
        circuit: AnalogCircuit,
        config: Optional[GlovaConfig] = None,
        rng: Optional[np.random.Generator] = None,
    ):
        self.circuit = circuit
        self.config = config if config is not None else GlovaConfig()
        self.rng = (
            rng if rng is not None else np.random.default_rng(self.config.seed)
        )
        self.operational = self.config.operational()
        self.spec = DesignSpec.from_circuit(circuit)
        self.budget = SimulationBudget(
            cost_per_simulation=self.config.cost_per_simulation,
            optimization_parallelism=self.config.optimization_parallelism,
            verification_parallelism=self.config.verification_parallelism,
        )
        self.simulator = CircuitSimulator(
            circuit,
            self.budget,
            workers=self.operational.workers,
            backend=self.operational.backend,
            cache=self.operational.cache_simulations,
            cache_dir=self.operational.cache_dir,
            retry=self.operational.retry,
        )
        self.agent = RiskSensitiveAgent(circuit.dimension, self.config, self.rng)
        self.last_worst = LastWorstCaseBuffer(self.operational.corners)
        self.screen_evaluator = MuSigmaEvaluator(
            self.spec, beta2=self.config.reliability_beta2
        )
        self.verifier = Verifier(
            self.simulator,
            self.spec,
            self.operational,
            beta2=self.config.reliability_beta2,
            use_mu_sigma=self.config.use_mu_sigma,
            use_reordering=self.config.use_reordering,
            rng=self.rng,
        )
        self._mismatch_sampler = MismatchSampler(
            circuit.mismatch_model,
            include_global=self.operational.include_global,
            include_local=self.operational.include_local,
            rng=self.rng,
        )

    # ------------------------------------------------------------------
    # Phase 1-2: initial sampling and seeding
    # ------------------------------------------------------------------
    def _typical_reward(self, design: np.ndarray) -> float:
        record = self.simulator.simulate_typical(design)
        return reward_from_metrics(self.spec, record.metrics)

    def _typical_rewards_batch(self, designs: np.ndarray) -> np.ndarray:
        """Rewards for a whole design batch at typical, in one pass."""
        records = self.simulator.simulate_designs(designs)
        return rewards_from_matrix(
            self.spec,
            self.simulator.metrics_matrix(records, self.spec.metric_names),
        )

    def _initial_sampling(self) -> np.ndarray:
        """Run TuRBO at the typical condition; returns the best design."""
        sampler = TurboSampler(
            self.circuit.dimension,
            rng=self.rng,
            batch_size=self.config.optimization_parallelism,
        )
        result = sampler.run(
            self._typical_reward,
            max_evaluations=self.config.initial_samples,
            feasible_target=self.config.initial_feasible_target,
            objective_batch=self._typical_rewards_batch,
        )
        # Every TuRBO evaluation is information about the reward landscape;
        # store it so the critic starts from a useful prior.  Worst-case
        # corrections arrive from the RL iterations themselves.
        for design, reward in zip(result.designs, result.rewards):
            self.agent.observe(design, reward)
        return result.best_design

    def _seed_buffers(self, designs: List[np.ndarray]) -> None:
        """Simulate seeds across all corners and fill the worst-case buffers.

        The corners × mismatch-sets sweep for each seed design runs as one
        mega-batch (:meth:`CircuitSimulator.simulate_corner_sweep`): the
        mismatch sets are still drawn corner-by-corner — the seeded stream
        is identical to a per-corner schedule — but the simulator sees a
        single ``(|corners| × N',)`` evaluation per seed.

        With ``OperationalConfig.pipeline`` the per-seed mega-batches are
        **overlapped**: seed *i+1*'s mismatch sets are sampled and its
        sweep submitted while seed *i* is still in flight, then results
        are resolved — and the buffers filled — strictly in seed order.
        Sampling still happens in seed order (the seeded stream is
        bit-identical; simulation consumes no randomness) and budget
        charges land at resolution, in seed order, so the accounting is
        bit-identical to the sequential schedule too.
        """
        corners = list(self.operational.corners)
        use_mc = self.operational.include_local or self.operational.include_global

        def sample_sets(design: np.ndarray):
            """Draw the per-corner mismatch sets (always in seed order)."""
            x_physical = self.circuit.denormalize(design)
            return [
                self._mismatch_sampler.sample(
                    x_physical, self.operational.optimization_samples
                )
                for _ in corners
            ]

        def submit_sweep(design: np.ndarray):
            """Sample (in seed order) and submit one seed's sweep; ``None``
            for an empty corner set (a no-op seed)."""
            if not corners:
                return None
            if use_mc:
                return self.simulator.submit_corner_sweep(
                    design,
                    corners,
                    sample_sets(design),
                    phase=SimulationPhase.INITIAL_SAMPLING,
                )
            return self.simulator.submit_corners(
                design,
                self.operational.corners,
                None,
                phase=SimulationPhase.INITIAL_SAMPLING,
            )

        def process(design: np.ndarray, resolved) -> None:
            if resolved is None:
                per_corner = []
            else:
                per_corner = resolved if use_mc else [[r] for r in resolved]
            worst_reward = FEASIBLE_REWARD
            for corner, records in zip(corners, per_corner):
                metric_dicts = [r.metrics for r in records]
                corner_rewards = rewards_from_matrix(
                    self.spec,
                    self.simulator.metrics_matrix(records, self.spec.metric_names),
                )
                corner_worst = float(corner_rewards.min())
                self.last_worst.update(corner, corner_worst)
                worst_reward = min(worst_reward, corner_worst)
                if self.config.risk_adjusted_reward and len(records) >= 2:
                    screen = self.screen_evaluator.evaluate(metric_dicts)
                    estimate_reward = reward_from_metrics(
                        self.spec, screen.estimates
                    )
                    worst_reward = min(worst_reward, estimate_reward)
            self.agent.observe(design, worst_reward)

        if not self.operational.pipeline:
            # The sequential reference path: genuinely blocking calls, no
            # futures anywhere.
            for design in designs:
                if not corners:
                    process(design, None)
                elif use_mc:
                    process(
                        design,
                        self.simulator.simulate_corner_sweep(
                            design,
                            corners,
                            sample_sets(design),
                            phase=SimulationPhase.INITIAL_SAMPLING,
                        ),
                    )
                else:
                    process(
                        design,
                        self.simulator.simulate_corners(
                            design,
                            self.operational.corners,
                            None,
                            phase=SimulationPhase.INITIAL_SAMPLING,
                        ),
                    )
            return

        # Overlapped schedule: one sweep in flight ahead, resolved and
        # processed in seed order; an abort (budget exhaustion) cancels
        # the speculative sweep before it is charged.
        for design, resolved in iter_resolved(designs, submit_sweep):
            process(design, resolved)

    # ------------------------------------------------------------------
    # Phase 3-4: the optimization / verification loop
    # ------------------------------------------------------------------
    def run(self) -> OptimizationResult:
        """Execute the full workflow and return the run's result."""
        best_design = self._initial_sampling()
        seeds = [best_design]
        if self.config.seed_designs > 1:
            designs = self.agent.buffer.all_designs()
            rewards = self.agent.buffer.all_rewards()
            order = np.argsort(-rewards)
            for index in order[1 : self.config.seed_designs]:
                seeds.append(designs[index])
        self._seed_buffers(seeds)
        self.agent.actor.pretrain_towards(
            self.agent.buffer.all_designs(), best_design
        )
        self.agent.update()

        history: List[IterationRecord] = []
        verification_attempts = 0
        last_design = best_design

        for iteration in range(1, self.config.max_iterations + 1):
            design = self.agent.propose(last_design)
            worst_corner = self.last_worst.worst_corner()
            x_physical = self.circuit.denormalize(design)

            mismatch_set = self._mismatch_sampler.sample(
                x_physical,
                self.operational.optimization_samples,
                independent_globals=True,
            )
            records = self.simulator.simulate_mismatch_set(
                design, worst_corner, mismatch_set, phase=SimulationPhase.OPTIMIZATION
            )
            metric_dicts = [r.metrics for r in records]
            rewards = rewards_from_matrix(
                self.spec,
                self.simulator.metrics_matrix(records, self.spec.metric_names),
            )
            worst_reward = float(rewards.min())
            self.last_worst.update(worst_corner, worst_reward)

            # --- step 4: mu-sigma decision on whether to verify ----------
            screen = self.screen_evaluator.evaluate(metric_dicts)
            if self.config.use_mu_sigma:
                should_verify = screen.passed
            else:
                should_verify = bool(np.all(rewards >= FEASIBLE_REWARD))

            # Risk-adjusted stored reward: penalise designs whose sampled
            # metric distribution leaves less than beta2-sigma of headroom,
            # even if no individual sample failed outright (Eq. 1 applied at
            # the sample level; disabled by the `risk_adjusted_reward` flag).
            stored_reward = worst_reward
            if self.config.risk_adjusted_reward and len(records) >= 2:
                estimate_reward = reward_from_metrics(self.spec, screen.estimates)
                stored_reward = min(worst_reward, estimate_reward)

            verification_passed = False
            if should_verify:
                verification_attempts += 1
                outcome = self.verifier.verify(
                    design,
                    self.last_worst,
                    reusable_records={worst_corner.name: records},
                    reusable_mismatch={worst_corner.name: mismatch_set},
                )
                verification_passed = outcome.passed
                worst_reward = min(worst_reward, outcome.worst_reward)
                stored_reward = min(stored_reward, outcome.worst_reward)
                if outcome.failed_corner is not None:
                    failed_corner = next(
                        corner
                        for corner in self.operational.corners
                        if corner.name == outcome.failed_corner
                    )
                    self.last_worst.update(failed_corner, outcome.worst_reward)

            predicted_mean, predicted_std = self.agent.critic.predict_components(
                design.reshape(1, -1)
            )
            history.append(
                IterationRecord(
                    iteration=iteration,
                    design=design.copy(),
                    worst_reward=worst_reward,
                    predicted_bound=self.agent.predicted_bound(design),
                    predicted_mean=float(predicted_mean[0]),
                    predicted_std=float(predicted_std[0]),
                    corner_name=worst_corner.name,
                    attempted_verification=should_verify,
                    verification_passed=verification_passed,
                )
            )

            if verification_passed:
                return self._build_result(
                    success=True,
                    iterations=iteration,
                    final_design=design,
                    history=history,
                    verification_attempts=verification_attempts,
                )

            # --- step 6: store the worst reward and update the agent -----
            self.agent.observe(design, stored_reward)
            summary = self.agent.update()
            history[-1].critic_loss = summary.critic_loss
            history[-1].actor_loss = summary.actor_loss
            last_design = design

        return self._build_result(
            success=False,
            iterations=self.config.max_iterations,
            final_design=None,
            history=history,
            verification_attempts=verification_attempts,
        )

    # ------------------------------------------------------------------
    def _build_result(
        self,
        success: bool,
        iterations: int,
        final_design: Optional[np.ndarray],
        history: List[IterationRecord],
        verification_attempts: int,
    ) -> OptimizationResult:
        final_metrics: Optional[Dict[str, float]] = None
        final_physical: Optional[np.ndarray] = None
        if final_design is not None:
            final_physical = self.circuit.denormalize(final_design)
            final_metrics = self.circuit.evaluate(final_design)
        return OptimizationResult(
            success=success,
            iterations=iterations,
            simulations=self.budget.snapshot(),
            runtime=self.budget.modelled_runtime(),
            final_design=final_design,
            final_design_physical=final_physical,
            final_metrics=final_metrics,
            verification_attempts=verification_attempts,
            history=history,
            method=self.operational.method.value,
            circuit=self.circuit.name,
        )
