"""Top-level experiment facade: declarative configs in, reports out.

Everything the examples, the CLI (``python -m repro``) and downstream
scripts need lives behind three calls::

    from repro.api import ExperimentConfig, run_sizing

    config = ExperimentConfig(circuit="sal", method="C-MCL", seeds=(0,))
    report = run_sizing(config)
    print(report.summary())

* :class:`ExperimentConfig` is a plain declarative object — circuit,
  verification method, algorithm, budgets, backend, workers, seeds — with
  a lossless dict/JSON round trip, so experiment definitions can live in
  version-controlled JSON files and travel to remote workers.
* :func:`run_sizing` runs the GLOVA framework; :func:`run_baseline` runs
  one of the Table-II baselines; :func:`run_experiment` dispatches on
  ``config.algorithm``; :func:`run_comparison` produces the normalized
  Table-II style method summaries.
* :class:`ExperimentReport` aggregates the per-seed outcomes into a fully
  JSON-serializable record (designs and metrics as plain lists/dicts).

The facade builds on the service-oriented simulation stack
(:mod:`repro.simulation.service`): ``backend``, ``workers`` and
``cache_simulations`` plumb straight through to the
:class:`~repro.simulation.service.SimulationService` every optimizer uses.
Any registered terminal backend is selectable by name — including the
external-simulator adapter, ``ExperimentConfig(backend="ngspice")``, which
runs every job through an ngspice binary (``$REPRO_NGSPICE`` or ``ngspice``
on PATH) with zero control-loop changes.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import asdict, dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.metrics import (
    MethodSummary,
    aggregate_results,
    normalize_runtimes,
)
from repro.baselines import (
    PVTSizingOptimizer,
    RandomSearchOptimizer,
    RobustAnalogOptimizer,
)
from repro.circuits.registry import (
    TESTBENCH,
    available_circuits,
    get_circuit,
    registered_entry,
)
from repro.core.config import GlovaConfig, VerificationMethod
from repro.core.optimizer import GlovaOptimizer
from repro.core.result import OptimizationResult
from repro.simulation.service import (
    RetryPolicy,
    available_backends,
    resolve_retry,
)

#: Verification scenario labels accepted by :attr:`ExperimentConfig.method`
#: — derived from the enum so new scenarios are available automatically.
METHODS: Dict[str, VerificationMethod] = {
    method.value: method for method in VerificationMethod
}

#: Sizing algorithms accepted by :attr:`ExperimentConfig.algorithm`.
ALGORITHMS: Dict[str, type] = {
    "glova": GlovaOptimizer,
    "pvtsizing": PVTSizingOptimizer,
    "robustanalog": RobustAnalogOptimizer,
    "random_search": RandomSearchOptimizer,
}

#: Algorithms usable through :func:`run_baseline`.
BASELINE_ALGORITHMS = tuple(name for name in ALGORITHMS if name != "glova")


@dataclass(frozen=True)
class ExperimentConfig:
    """One declarative experiment: what to size, how, and at what scale.

    All fields are JSON-scalar (or tuples/dicts thereof), so
    ``ExperimentConfig.from_dict(config.to_dict()) == config`` holds
    exactly — the round trip is tested.
    """

    circuit: str = "sal"
    method: str = "C"
    algorithm: str = "glova"
    seeds: Tuple[int, ...] = (0,)
    max_iterations: int = 60
    initial_samples: int = 40
    optimization_samples: int = 3
    verification_samples: Optional[int] = None
    backend: str = "batched"
    #: ``repro serve`` daemons for ``backend="remote"``: a tuple of
    #: ``"host:port"`` strings (a comma-separated string is accepted and
    #: normalized).  Published to ``REPRO_REMOTE_ENDPOINTS`` for the
    #: seed's run.  Deliberately **excluded from the checkpoint
    #: fingerprint**: where jobs execute never changes what they compute
    #: (the fabric is bit-identical to local evaluation), so pointing a
    #: resumed sweep at different workers must not invalidate snapshots.
    endpoints: Optional[Tuple[str, ...]] = None
    workers: int = 1
    cache_simulations: bool = False
    #: Cross-process simulation cache directory (implies
    #: ``cache_simulations``): results spill to a job-hash-keyed on-disk
    #: store and a repeated run replays from it — zero backend
    #: invocations, zero budget charged.
    cache_dir: Optional[str] = None
    #: Futures-based pipelining of the control loop (double-buffered
    #: verification, overlapped seed mega-batches); bit-identical to the
    #: sequential schedule, ``False`` selects the reference path.
    pipeline: bool = True
    verification_chunk: int = 8
    paper_scale: bool = False
    #: Fault-tolerance retry policy for the simulation service, stored in
    #: its JSON dict form (:meth:`RetryPolicy.to_dict`) so the config
    #: round trip stays lossless; a :class:`RetryPolicy` instance passed
    #: here is converted.  ``None`` = fail fast (legacy behaviour).
    retry: Optional[Dict[str, Any]] = field(default=None, hash=False)
    #: Directory for per-seed progress checkpoints.  When set,
    #: :func:`run_experiment` snapshots each completed seed (report +
    #: budget counts) under a config fingerprint, and an interrupted sweep
    #: resumes by replaying completed seeds from disk — zero
    #: re-simulation.  The seed boundary is the RNG-safe resume point:
    #: every seed owns its own seeded streams, so skipping a completed
    #: seed perturbs no other seed's randomness.
    checkpoint_dir: Optional[str] = None
    #: Extra :class:`GlovaConfig` field overrides (ablation switches etc.).
    #: Excluded from the generated ``__hash__`` (dicts are unhashable) so
    #: frozen configs remain usable as dict keys.
    overrides: Dict[str, Any] = field(default_factory=dict, hash=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "seeds", tuple(int(s) for s in self.seeds))
        object.__setattr__(self, "overrides", dict(self.overrides))
        if self.endpoints is not None:
            spec = self.endpoints
            parts = (
                spec.split(",") if isinstance(spec, str) else list(spec)
            )
            normalized = tuple(
                str(part).strip() for part in parts if str(part).strip()
            )
            # Validate the host:port shape now — a malformed endpoint
            # must fail at config time, not mid-run.
            from repro.simulation.remote import parse_endpoints

            parse_endpoints(normalized)
            object.__setattr__(
                self, "endpoints", normalized if normalized else None
            )
        if self.retry is not None:
            # Normalize to the dict form (lossless JSON round trip) and
            # fail fast on malformed policies.
            policy = (
                self.retry
                if isinstance(self.retry, RetryPolicy)
                else resolve_retry(dict(self.retry))
            )
            object.__setattr__(self, "retry", policy.to_dict())
        if not self.seeds:
            raise ValueError("an experiment needs at least one seed")
        if self.method not in METHODS:
            raise ValueError(
                f"unknown verification method {self.method!r}; "
                f"available: {sorted(METHODS)}"
            )
        if self.algorithm not in ALGORITHMS:
            raise ValueError(
                f"unknown algorithm {self.algorithm!r}; "
                f"available: {sorted(ALGORITHMS)}"
            )
        entry = registered_entry(self.circuit)
        if entry is None or entry.kind != TESTBENCH:
            raise ValueError(
                f"unknown sizing circuit {self.circuit!r}; "
                f"available: {available_circuits()}"
            )
        if self.backend not in available_backends():
            raise ValueError(
                f"unknown simulation backend {self.backend!r}; "
                f"available: {available_backends()}"
            )

    # ------------------------------------------------------------------
    @property
    def verification(self) -> VerificationMethod:
        return METHODS[self.method]

    def build_circuit(self):
        return get_circuit(self.circuit)

    def glova_config(self, seed: int) -> GlovaConfig:
        """The per-seed framework configuration this experiment implies."""
        verification_samples = self.verification_samples
        if self.paper_scale:
            verification_samples = None  # Table-I default budgets
        config = GlovaConfig(
            verification=self.verification,
            seed=seed,
            max_iterations=self.max_iterations,
            initial_samples=self.initial_samples,
            optimization_samples=self.optimization_samples,
            verification_samples=verification_samples,
            verification_chunk=self.verification_chunk,
            workers=self.workers,
            backend=self.backend,
            cache_simulations=self.cache_simulations,
            cache_dir=self.cache_dir,
            pipeline=self.pipeline,
            retry=self.retry,
        )
        return config.with_overrides(**self.overrides)

    def with_overrides(self, **kwargs: Any) -> "ExperimentConfig":
        """A copy of this config with the given fields replaced."""
        return replace(self, **kwargs)

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        payload = asdict(self)
        payload["seeds"] = list(self.seeds)
        if self.endpoints is not None:
            payload["endpoints"] = list(self.endpoints)
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ExperimentConfig":
        unknown = set(payload) - set(cls.__dataclass_fields__)
        if unknown:
            raise ValueError(
                f"unknown ExperimentConfig fields: {sorted(unknown)}"
            )
        return cls(**payload)

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ExperimentConfig":
        return cls.from_dict(json.loads(text))


@dataclass
class RunReport:
    """One seed's outcome, reduced to JSON-serializable fields."""

    seed: int
    success: bool
    iterations: int
    simulations: Dict[str, int]
    runtime: float
    verification_attempts: int
    method: str
    circuit: str
    final_design: Optional[List[float]] = None
    final_design_physical: Optional[List[float]] = None
    final_metrics: Optional[Dict[str, float]] = None

    @classmethod
    def from_result(cls, seed: int, result: OptimizationResult) -> "RunReport":
        def listify(array: Optional[np.ndarray]) -> Optional[List[float]]:
            return None if array is None else [float(v) for v in array]

        return cls(
            seed=seed,
            success=result.success,
            iterations=result.iterations,
            simulations=dict(result.simulations),
            runtime=float(result.runtime),
            verification_attempts=result.verification_attempts,
            method=result.method,
            circuit=result.circuit,
            final_design=listify(result.final_design),
            final_design_physical=listify(result.final_design_physical),
            final_metrics=(
                None
                if result.final_metrics is None
                else {k: float(v) for k, v in result.final_metrics.items()}
            ),
        )

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "RunReport":
        unknown = set(payload) - set(cls.__dataclass_fields__)
        if unknown:
            raise ValueError(f"unknown RunReport fields: {sorted(unknown)}")
        return cls(**payload)

    def to_result(self) -> OptimizationResult:
        """Rehydrate an :class:`OptimizationResult` from this report.

        Used when a seed is replayed from a checkpoint: downstream table
        aggregation works off ``ExperimentReport.results``, so resumed
        seeds need result objects too.  The per-iteration ``history``
        trace is not checkpointed and comes back empty — everything a
        Table-II row consumes survives the round trip.
        """
        return OptimizationResult(
            success=self.success,
            iterations=self.iterations,
            simulations=dict(self.simulations),
            runtime=float(self.runtime),
            final_design=(
                None
                if self.final_design is None
                else np.asarray(self.final_design, dtype=float)
            ),
            final_design_physical=(
                None
                if self.final_design_physical is None
                else np.asarray(self.final_design_physical, dtype=float)
            ),
            final_metrics=(
                None
                if self.final_metrics is None
                else dict(self.final_metrics)
            ),
            verification_attempts=self.verification_attempts,
            history=[],
            method=self.method,
            circuit=self.circuit,
        )


@dataclass
class ExperimentReport:
    """Aggregated, serializable outcome of one :class:`ExperimentConfig`."""

    config: ExperimentConfig
    runs: List[RunReport]
    #: The raw per-seed results (not serialized; used by table aggregation).
    results: List[OptimizationResult] = field(default_factory=list, repr=False)

    @property
    def success_rate(self) -> float:
        return (
            sum(run.success for run in self.runs) / len(self.runs)
            if self.runs
            else 0.0
        )

    @property
    def best_run(self) -> Optional[RunReport]:
        """The successful run with the fewest simulations, if any."""
        successes = [run for run in self.runs if run.success]
        if not successes:
            return None
        return min(successes, key=lambda run: run.simulations.get("total", 0))

    @property
    def total_simulations(self) -> int:
        return sum(run.simulations.get("total", 0) for run in self.runs)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "config": self.config.to_dict(),
            "success_rate": self.success_rate,
            "total_simulations": self.total_simulations,
            "runs": [run.to_dict() for run in self.runs],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def summary(self) -> str:
        """A short human-readable account of the experiment."""
        lines = [
            f"{self.config.algorithm} on {self.config.circuit} "
            f"[{self.config.method}] — "
            f"{len(self.runs)} run(s), success rate {self.success_rate:.0%}, "
            f"{self.total_simulations} simulations total"
        ]
        for run in self.runs:
            status = "SUCCESS" if run.success else "FAILED"
            lines.append(
                f"  seed {run.seed}: [{status}] {run.iterations} iterations, "
                f"{run.simulations.get('total', 0)} simulations, "
                f"runtime {run.runtime:.1f} (modelled units)"
            )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Checkpoint / resume
# ----------------------------------------------------------------------
#: Layout version of the per-seed checkpoint records; bumped whenever the
#: payload changes shape so stale snapshots are ignored, never misread.
CHECKPOINT_FORMAT_VERSION = 1

#: Config fields that do not change what one seed computes, and therefore
#: do not participate in the checkpoint fingerprint: the seed list itself
#: (each checkpoint is per-seed), where checkpoints live, and which
#: remote endpoints execute the jobs (the fabric is bit-identical to
#: local evaluation by construction).
_FINGERPRINT_EXCLUDED_FIELDS = ("seeds", "checkpoint_dir", "endpoints")


def _config_fingerprint(config: ExperimentConfig) -> str:
    """A content hash of everything that determines one seed's outcome.

    A checkpoint is only replayed when the fingerprint matches — editing
    any result-bearing field (circuit, method, budgets, backend, retry
    policy, overrides…) invalidates old snapshots instead of silently
    serving results computed under a different configuration.
    """
    payload = config.to_dict()
    for excluded in _FINGERPRINT_EXCLUDED_FIELDS:
        payload.pop(excluded, None)
    canonical = json.dumps(payload, sort_keys=True)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _checkpoint_path(
    checkpoint_dir: str, fingerprint: str, seed: int
) -> str:
    return os.path.join(
        checkpoint_dir, fingerprint[:16], f"seed-{seed}.json"
    )


def load_checkpoint(
    config: ExperimentConfig, seed: int
) -> Optional[RunReport]:
    """The checkpointed report for one seed, or ``None``.

    Anything wrong with the snapshot — missing, unreadable, a format or
    fingerprint mismatch — is treated as "not checkpointed": the seed
    simply re-runs.
    """
    if config.checkpoint_dir is None:
        return None
    path = _checkpoint_path(
        config.checkpoint_dir, _config_fingerprint(config), seed
    )
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError):
        return None
    try:
        if payload.get("version") != CHECKPOINT_FORMAT_VERSION:
            return None
        if payload.get("fingerprint") != _config_fingerprint(config):
            return None
        report = RunReport.from_dict(payload["run"])
    except (KeyError, TypeError, ValueError):
        return None
    if report.seed != seed:
        return None
    return report


def write_checkpoint(
    config: ExperimentConfig, seed: int, run: RunReport
) -> str:
    """Atomically snapshot one completed seed; returns the record path.

    Same-directory temp file + ``os.replace``, like the simulation spill
    store: an interrupted writer can never leave a half-written record
    under the final name.
    """
    assert config.checkpoint_dir is not None
    fingerprint = _config_fingerprint(config)
    path = _checkpoint_path(config.checkpoint_dir, fingerprint, seed)
    directory = os.path.dirname(path)
    os.makedirs(directory, exist_ok=True)
    payload = {
        "version": CHECKPOINT_FORMAT_VERSION,
        "fingerprint": fingerprint,
        "config": config.to_dict(),
        "run": run.to_dict(),
    }
    fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
    return path


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------
def _run_seed(config: ExperimentConfig, seed: int) -> OptimizationResult:
    circuit = config.build_circuit()
    optimizer_cls = ALGORITHMS[config.algorithm]
    restore_endpoints: Optional[str] = None
    endpoints_set = False
    if config.endpoints:
        # RemoteBackend is environment-configured (the ngspice pattern);
        # publish the fleet for this seed and restore afterwards so one
        # experiment's endpoints never leak into the next.
        from repro.simulation.remote import ENDPOINTS_ENV

        restore_endpoints = os.environ.get(ENDPOINTS_ENV)
        os.environ[ENDPOINTS_ENV] = ",".join(config.endpoints)
        endpoints_set = True
    optimizer = optimizer_cls(circuit, config.glova_config(seed))
    try:
        return optimizer.run()
    finally:
        # Every optimizer owns a CircuitSimulator; release its service's
        # worker pool so per-seed pools never accumulate across a sweep.
        optimizer.simulator.close()
        if endpoints_set:
            from repro.simulation.remote import ENDPOINTS_ENV

            if restore_endpoints is None:
                os.environ.pop(ENDPOINTS_ENV, None)
            else:
                os.environ[ENDPOINTS_ENV] = restore_endpoints


def run_experiment(
    config: ExperimentConfig,
    *,
    endpoint: Optional[str] = None,
    tenant: str = "default",
    client_options: Optional[Dict[str, Any]] = None,
) -> ExperimentReport:
    """Run ``config.algorithm`` for every seed and aggregate a report.

    With ``checkpoint_dir`` set, every completed seed is snapshotted the
    moment it finishes, and seeds whose snapshot matches the config
    fingerprint are **replayed from disk instead of re-simulated** — an
    interrupted sweep resumed with the identical config reaches the same
    final report while only simulating the seeds that never completed.
    Seeds are the RNG-safe resume boundary (each owns its seeded streams),
    and the content-hash simulation cache (``cache_dir``) covers in-flight
    work *within* an interrupted seed.

    With ``endpoint`` set (``"host:port"`` of a ``repro serve --mode
    experiment`` daemon) the run is **submitted instead of executed**: the
    daemon journals it, drives it through its own warm worker pools, and
    this call blocks until the report comes back.  The daemon's journal
    then owns crash recovery — a daemon killed mid-run and restarted
    resumes the run and still answers this call, bit-identical to the
    local path.  ``tenant`` names the server-side admission budget the
    run is accounted against; ``client_options`` passes through to
    :class:`~repro.simulation.frontend.ExperimentClient` (poll interval,
    busy/backoff tuning, reconnect budget).
    """
    if endpoint is not None:
        from repro.simulation.frontend import ExperimentClient

        client = ExperimentClient(
            endpoint, tenant=tenant, **(client_options or {})
        )
        return client.run(config)
    runs: List[RunReport] = []
    results: List[OptimizationResult] = []
    for seed in config.seeds:
        run = load_checkpoint(config, seed)
        if run is None:
            result = _run_seed(config, seed)
            run = RunReport.from_result(seed, result)
            if config.checkpoint_dir is not None:
                write_checkpoint(config, seed, run)
        else:
            result = run.to_result()
        runs.append(run)
        results.append(result)
    return ExperimentReport(config=config, runs=runs, results=results)


def run_sizing(config: ExperimentConfig) -> ExperimentReport:
    """Run the GLOVA variation-aware sizing framework for ``config``.

    Mirrors :func:`run_baseline`: a config naming a different algorithm is
    rejected rather than silently re-labelled.
    """
    if config.algorithm != "glova":
        raise ValueError(
            f"run_sizing runs the 'glova' algorithm, got "
            f"{config.algorithm!r}; use run_baseline or run_experiment"
        )
    return run_experiment(config)


def run_baseline(config: ExperimentConfig) -> ExperimentReport:
    """Run one of the Table-II baselines for ``config``."""
    if config.algorithm not in BASELINE_ALGORITHMS:
        raise ValueError(
            f"run_baseline needs a baseline algorithm "
            f"{sorted(BASELINE_ALGORITHMS)}, got {config.algorithm!r}"
        )
    return run_experiment(config)


def run_comparison(
    config: ExperimentConfig,
    algorithms: Sequence[str] = ("glova", "pvtsizing", "robustanalog"),
) -> List[MethodSummary]:
    """Run several algorithms under one config; normalized Table-II rows."""
    summaries = []
    for algorithm in algorithms:
        report = run_experiment(config.with_overrides(algorithm=algorithm))
        summaries.append(
            aggregate_results(algorithm, config.method, report.results)
        )
    return normalize_runtimes(summaries, reference_method="glova")
