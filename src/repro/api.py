"""Top-level experiment facade: declarative configs in, reports out.

Everything the examples, the CLI (``python -m repro``) and downstream
scripts need lives behind three calls::

    from repro.api import ExperimentConfig, run_sizing

    config = ExperimentConfig(circuit="sal", method="C-MCL", seeds=(0,))
    report = run_sizing(config)
    print(report.summary())

* :class:`ExperimentConfig` is a plain declarative object — circuit,
  verification method, algorithm, budgets, backend, workers, seeds — with
  a lossless dict/JSON round trip, so experiment definitions can live in
  version-controlled JSON files and travel to remote workers.
* :func:`run_sizing` runs the GLOVA framework; :func:`run_baseline` runs
  one of the Table-II baselines; :func:`run_experiment` dispatches on
  ``config.algorithm``; :func:`run_comparison` produces the normalized
  Table-II style method summaries.
* :class:`ExperimentReport` aggregates the per-seed outcomes into a fully
  JSON-serializable record (designs and metrics as plain lists/dicts).

The facade builds on the service-oriented simulation stack
(:mod:`repro.simulation.service`): ``backend``, ``workers`` and
``cache_simulations`` plumb straight through to the
:class:`~repro.simulation.service.SimulationService` every optimizer uses.
Any registered terminal backend is selectable by name — including the
external-simulator adapter, ``ExperimentConfig(backend="ngspice")``, which
runs every job through an ngspice binary (``$REPRO_NGSPICE`` or ``ngspice``
on PATH) with zero control-loop changes.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.metrics import (
    MethodSummary,
    aggregate_results,
    normalize_runtimes,
)
from repro.baselines import (
    PVTSizingOptimizer,
    RandomSearchOptimizer,
    RobustAnalogOptimizer,
)
from repro.circuits.registry import (
    TESTBENCH,
    available_circuits,
    get_circuit,
    registered_entry,
)
from repro.core.config import GlovaConfig, VerificationMethod
from repro.core.optimizer import GlovaOptimizer
from repro.core.result import OptimizationResult
from repro.simulation.service import available_backends

#: Verification scenario labels accepted by :attr:`ExperimentConfig.method`
#: — derived from the enum so new scenarios are available automatically.
METHODS: Dict[str, VerificationMethod] = {
    method.value: method for method in VerificationMethod
}

#: Sizing algorithms accepted by :attr:`ExperimentConfig.algorithm`.
ALGORITHMS: Dict[str, type] = {
    "glova": GlovaOptimizer,
    "pvtsizing": PVTSizingOptimizer,
    "robustanalog": RobustAnalogOptimizer,
    "random_search": RandomSearchOptimizer,
}

#: Algorithms usable through :func:`run_baseline`.
BASELINE_ALGORITHMS = tuple(name for name in ALGORITHMS if name != "glova")


@dataclass(frozen=True)
class ExperimentConfig:
    """One declarative experiment: what to size, how, and at what scale.

    All fields are JSON-scalar (or tuples/dicts thereof), so
    ``ExperimentConfig.from_dict(config.to_dict()) == config`` holds
    exactly — the round trip is tested.
    """

    circuit: str = "sal"
    method: str = "C"
    algorithm: str = "glova"
    seeds: Tuple[int, ...] = (0,)
    max_iterations: int = 60
    initial_samples: int = 40
    optimization_samples: int = 3
    verification_samples: Optional[int] = None
    backend: str = "batched"
    workers: int = 1
    cache_simulations: bool = False
    #: Cross-process simulation cache directory (implies
    #: ``cache_simulations``): results spill to a job-hash-keyed on-disk
    #: store and a repeated run replays from it — zero backend
    #: invocations, zero budget charged.
    cache_dir: Optional[str] = None
    #: Futures-based pipelining of the control loop (double-buffered
    #: verification, overlapped seed mega-batches); bit-identical to the
    #: sequential schedule, ``False`` selects the reference path.
    pipeline: bool = True
    verification_chunk: int = 8
    paper_scale: bool = False
    #: Extra :class:`GlovaConfig` field overrides (ablation switches etc.).
    #: Excluded from the generated ``__hash__`` (dicts are unhashable) so
    #: frozen configs remain usable as dict keys.
    overrides: Dict[str, Any] = field(default_factory=dict, hash=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "seeds", tuple(int(s) for s in self.seeds))
        object.__setattr__(self, "overrides", dict(self.overrides))
        if not self.seeds:
            raise ValueError("an experiment needs at least one seed")
        if self.method not in METHODS:
            raise ValueError(
                f"unknown verification method {self.method!r}; "
                f"available: {sorted(METHODS)}"
            )
        if self.algorithm not in ALGORITHMS:
            raise ValueError(
                f"unknown algorithm {self.algorithm!r}; "
                f"available: {sorted(ALGORITHMS)}"
            )
        entry = registered_entry(self.circuit)
        if entry is None or entry.kind != TESTBENCH:
            raise ValueError(
                f"unknown sizing circuit {self.circuit!r}; "
                f"available: {available_circuits()}"
            )
        if self.backend not in available_backends():
            raise ValueError(
                f"unknown simulation backend {self.backend!r}; "
                f"available: {available_backends()}"
            )

    # ------------------------------------------------------------------
    @property
    def verification(self) -> VerificationMethod:
        return METHODS[self.method]

    def build_circuit(self):
        return get_circuit(self.circuit)

    def glova_config(self, seed: int) -> GlovaConfig:
        """The per-seed framework configuration this experiment implies."""
        verification_samples = self.verification_samples
        if self.paper_scale:
            verification_samples = None  # Table-I default budgets
        config = GlovaConfig(
            verification=self.verification,
            seed=seed,
            max_iterations=self.max_iterations,
            initial_samples=self.initial_samples,
            optimization_samples=self.optimization_samples,
            verification_samples=verification_samples,
            verification_chunk=self.verification_chunk,
            workers=self.workers,
            backend=self.backend,
            cache_simulations=self.cache_simulations,
            cache_dir=self.cache_dir,
            pipeline=self.pipeline,
        )
        return config.with_overrides(**self.overrides)

    def with_overrides(self, **kwargs: Any) -> "ExperimentConfig":
        """A copy of this config with the given fields replaced."""
        return replace(self, **kwargs)

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        payload = asdict(self)
        payload["seeds"] = list(self.seeds)
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ExperimentConfig":
        unknown = set(payload) - set(cls.__dataclass_fields__)
        if unknown:
            raise ValueError(
                f"unknown ExperimentConfig fields: {sorted(unknown)}"
            )
        return cls(**payload)

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ExperimentConfig":
        return cls.from_dict(json.loads(text))


@dataclass
class RunReport:
    """One seed's outcome, reduced to JSON-serializable fields."""

    seed: int
    success: bool
    iterations: int
    simulations: Dict[str, int]
    runtime: float
    verification_attempts: int
    method: str
    circuit: str
    final_design: Optional[List[float]] = None
    final_design_physical: Optional[List[float]] = None
    final_metrics: Optional[Dict[str, float]] = None

    @classmethod
    def from_result(cls, seed: int, result: OptimizationResult) -> "RunReport":
        def listify(array: Optional[np.ndarray]) -> Optional[List[float]]:
            return None if array is None else [float(v) for v in array]

        return cls(
            seed=seed,
            success=result.success,
            iterations=result.iterations,
            simulations=dict(result.simulations),
            runtime=float(result.runtime),
            verification_attempts=result.verification_attempts,
            method=result.method,
            circuit=result.circuit,
            final_design=listify(result.final_design),
            final_design_physical=listify(result.final_design_physical),
            final_metrics=(
                None
                if result.final_metrics is None
                else {k: float(v) for k, v in result.final_metrics.items()}
            ),
        )

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)


@dataclass
class ExperimentReport:
    """Aggregated, serializable outcome of one :class:`ExperimentConfig`."""

    config: ExperimentConfig
    runs: List[RunReport]
    #: The raw per-seed results (not serialized; used by table aggregation).
    results: List[OptimizationResult] = field(default_factory=list, repr=False)

    @property
    def success_rate(self) -> float:
        return (
            sum(run.success for run in self.runs) / len(self.runs)
            if self.runs
            else 0.0
        )

    @property
    def best_run(self) -> Optional[RunReport]:
        """The successful run with the fewest simulations, if any."""
        successes = [run for run in self.runs if run.success]
        if not successes:
            return None
        return min(successes, key=lambda run: run.simulations.get("total", 0))

    @property
    def total_simulations(self) -> int:
        return sum(run.simulations.get("total", 0) for run in self.runs)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "config": self.config.to_dict(),
            "success_rate": self.success_rate,
            "total_simulations": self.total_simulations,
            "runs": [run.to_dict() for run in self.runs],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def summary(self) -> str:
        """A short human-readable account of the experiment."""
        lines = [
            f"{self.config.algorithm} on {self.config.circuit} "
            f"[{self.config.method}] — "
            f"{len(self.runs)} run(s), success rate {self.success_rate:.0%}, "
            f"{self.total_simulations} simulations total"
        ]
        for run in self.runs:
            status = "SUCCESS" if run.success else "FAILED"
            lines.append(
                f"  seed {run.seed}: [{status}] {run.iterations} iterations, "
                f"{run.simulations.get('total', 0)} simulations, "
                f"runtime {run.runtime:.1f} (modelled units)"
            )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------
def _run_seed(config: ExperimentConfig, seed: int) -> OptimizationResult:
    circuit = config.build_circuit()
    optimizer_cls = ALGORITHMS[config.algorithm]
    optimizer = optimizer_cls(circuit, config.glova_config(seed))
    try:
        return optimizer.run()
    finally:
        # Every optimizer owns a CircuitSimulator; release its service's
        # worker pool so per-seed pools never accumulate across a sweep.
        optimizer.simulator.close()


def run_experiment(config: ExperimentConfig) -> ExperimentReport:
    """Run ``config.algorithm`` for every seed and aggregate a report."""
    results = [_run_seed(config, seed) for seed in config.seeds]
    runs = [
        RunReport.from_result(seed, result)
        for seed, result in zip(config.seeds, results)
    ]
    return ExperimentReport(config=config, runs=runs, results=results)


def run_sizing(config: ExperimentConfig) -> ExperimentReport:
    """Run the GLOVA variation-aware sizing framework for ``config``.

    Mirrors :func:`run_baseline`: a config naming a different algorithm is
    rejected rather than silently re-labelled.
    """
    if config.algorithm != "glova":
        raise ValueError(
            f"run_sizing runs the 'glova' algorithm, got "
            f"{config.algorithm!r}; use run_baseline or run_experiment"
        )
    return run_experiment(config)


def run_baseline(config: ExperimentConfig) -> ExperimentReport:
    """Run one of the Table-II baselines for ``config``."""
    if config.algorithm not in BASELINE_ALGORITHMS:
        raise ValueError(
            f"run_baseline needs a baseline algorithm "
            f"{sorted(BASELINE_ALGORITHMS)}, got {config.algorithm!r}"
        )
    return run_experiment(config)


def run_comparison(
    config: ExperimentConfig,
    algorithms: Sequence[str] = ("glova", "pvtsizing", "robustanalog"),
) -> List[MethodSummary]:
    """Run several algorithms under one config; normalized Table-II rows."""
    summaries = []
    for algorithm in algorithms:
        report = run_experiment(config.with_overrides(algorithm=algorithm))
        summaries.append(
            aggregate_results(algorithm, config.method, report.results)
        )
    return normalize_runtimes(summaries, reference_method="glova")
