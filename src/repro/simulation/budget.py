"""Simulation counting and runtime modelling.

The paper reports three cost columns per experiment: RL iterations, number
of simulations, and normalized runtime.  :class:`SimulationBudget` tracks
the simulation count split by phase and converts it into a modelled wall
clock using a per-simulation cost and a parallelism factor (the paper runs
3 simulations in parallel during optimization and "maximum available
resources" during verification).
"""

from __future__ import annotations

import enum
import threading
from dataclasses import dataclass, field
from typing import Dict, Optional, Set, Tuple


class SimulationPhase(enum.Enum):
    """Which phase of the framework requested a simulation."""

    INITIAL_SAMPLING = "initial_sampling"
    OPTIMIZATION = "optimization"
    VERIFICATION = "verification"


@dataclass
class SimulationBudget:
    """Accumulates simulation counts and modelled runtime.

    Attributes
    ----------
    cost_per_simulation:
        Modelled wall-clock seconds for a single SPICE-equivalent run.
    optimization_parallelism:
        Simulations executed concurrently during initial sampling and
        optimization (the paper uses 3).
    verification_parallelism:
        Concurrency during full verification ("maximum available
        resources"; 30 mirrors one license per corner).
    max_simulations:
        Optional hard cap; exceeding it raises :class:`BudgetExhausted`.
    """

    cost_per_simulation: float = 1.0
    optimization_parallelism: int = 3
    verification_parallelism: int = 30
    max_simulations: Optional[int] = None
    counts: Dict[SimulationPhase, int] = field(
        default_factory=lambda: {phase: 0 for phase in SimulationPhase}
    )
    charged_jobs: Set[str] = field(default_factory=set, repr=False)

    class BudgetExhausted(RuntimeError):
        """Raised when the configured simulation cap is exceeded."""

    def charge(
        self,
        phase: SimulationPhase,
        count: int = 1,
        job_id: Optional[str] = None,
        enforce_cap: bool = True,
    ) -> bool:
        """Account for ``count`` simulations issued by ``phase``.

        When ``job_id`` is given the charge is **idempotent**: the first
        charge for a given id counts, every later one is a no-op.  The
        simulation service uses this for cache hits and retried shards, so
        re-submitting the identical job can never inflate the paper's
        "# Simulation" column.  Returns True when the charge was counted.

        The async service path preserves these semantics by deferring the
        charge to *future resolution* (:meth:`SimFuture.result`): charges
        always land in resolution order on the resolving thread, in-flight
        speculative work is never counted until (unless) it is resolved,
        and a cancelled future never touches the budget at all.  The
        budget therefore needs no locking — it is only ever mutated from
        the control-loop thread.

        ``enforce_cap=False`` records the charge even past the cap — the
        post-hoc accounting path for work that *already happened* (a
        tenant ledger charging a completed run): refusing the charge
        cannot un-simulate anything, it can only make the books lie.  The
        cap then bites at the next admission decision instead.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        if job_id is not None and job_id in self.charged_jobs:
            return False
        self.counts[phase] = self.counts.get(phase, 0) + count
        if (
            enforce_cap
            and self.max_simulations is not None
            and self.total > self.max_simulations
        ):
            # An over-cap charge aborts the job before it runs, so it must
            # leave no trace: the count is rolled back and the idempotency
            # key is not consumed — a retry charges (and aborts) again
            # instead of running uncounted, and the cap can never be
            # silently exceeded by rejected attempts.
            self.counts[phase] -= count
            raise SimulationBudget.BudgetExhausted(
                f"simulation budget of {self.max_simulations} exhausted"
            )
        if job_id is not None:
            self.charged_jobs.add(job_id)
        return True

    def refund(
        self,
        phase: SimulationPhase,
        count: int,
        job_id: Optional[str] = None,
    ) -> None:
        """Roll back a counted charge whose job failed before producing
        results (e.g. a worker raising mid-shard).  Releases the idempotency
        key too, so the retry charges exactly like a first attempt instead
        of running uncounted."""
        if count < 0:
            raise ValueError("count must be non-negative")
        current = self.counts.get(phase, 0)
        if count > current:
            raise ValueError(
                f"refund of {count} exceeds the {phase.value} charge"
            )
        self.counts[phase] = current - count
        if job_id is not None:
            self.charged_jobs.discard(job_id)

    def record(self, phase: SimulationPhase, count: int = 1) -> None:
        """Backwards-compatible alias for :meth:`charge` without a job id."""
        self.charge(phase, count)

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    @property
    def optimization_simulations(self) -> int:
        return (
            self.counts.get(SimulationPhase.INITIAL_SAMPLING, 0)
            + self.counts.get(SimulationPhase.OPTIMIZATION, 0)
        )

    @property
    def verification_simulations(self) -> int:
        return self.counts.get(SimulationPhase.VERIFICATION, 0)

    def modelled_runtime(self) -> float:
        """Wall-clock model: serial batches at each phase's parallelism."""
        optimization_batches = _ceil_div(
            self.optimization_simulations, max(self.optimization_parallelism, 1)
        )
        verification_batches = _ceil_div(
            self.verification_simulations, max(self.verification_parallelism, 1)
        )
        return self.cost_per_simulation * (optimization_batches + verification_batches)

    def snapshot(self) -> Dict[str, int]:
        """A plain-dict view used by result objects and reports."""
        return {
            "initial_sampling": self.counts.get(SimulationPhase.INITIAL_SAMPLING, 0),
            "optimization": self.counts.get(SimulationPhase.OPTIMIZATION, 0),
            "verification": self.counts.get(SimulationPhase.VERIFICATION, 0),
            "total": self.total,
        }

    def reset(self) -> None:
        for phase in SimulationPhase:
            self.counts[phase] = 0
        self.charged_jobs.clear()


def _ceil_div(numerator: int, denominator: int) -> int:
    return -(-numerator // denominator)


class TenantBudgetLedger:
    """Per-tenant :class:`SimulationBudget` map for server-side admission.

    The rate-limiting primitive of the multi-tenant experiment front end
    (:mod:`repro.simulation.frontend`): every tenant id lazily gets its
    own :class:`SimulationBudget` with ``max_simulations=quota``, and the
    front end consults :meth:`admits` before accepting a run.  Charges
    land *after* a run completes — the daemon knows the real simulation
    counts then, split by phase exactly like the paper's accounting —
    with ``enforce_cap=False`` (completed work must be booked even when
    it overshoots; the overshoot blocks the *next* admission instead).

    Charges are idempotent per ``(tenant, run_id)`` so journal replay
    after a daemon crash can recharge every completed run without double
    counting.  All methods are thread-safe: connection handler threads
    admit while run-executor threads charge.
    """

    #: ``RunReport.simulations`` keys mapped onto budget phases.
    _PHASE_KEYS = (
        ("initial_sampling", SimulationPhase.INITIAL_SAMPLING),
        ("optimization", SimulationPhase.OPTIMIZATION),
        ("verification", SimulationPhase.VERIFICATION),
    )

    def __init__(self, quota: Optional[int] = None):
        self.quota = None if quota is None else int(quota)
        self._lock = threading.Lock()
        self._budgets: Dict[str, SimulationBudget] = {}
        self._charged: Set[Tuple[str, str]] = set()

    def budget_for(self, tenant: str) -> SimulationBudget:
        """The tenant's budget, created on first sight."""
        tenant = str(tenant)
        with self._lock:
            budget = self._budgets.get(tenant)
            if budget is None:
                budget = SimulationBudget(max_simulations=self.quota)
                self._budgets[tenant] = budget
            return budget

    def admits(self, tenant: str) -> bool:
        """Whether the tenant has quota left for another run."""
        budget = self.budget_for(tenant)
        with self._lock:
            if budget.max_simulations is None:
                return True
            return budget.total < budget.max_simulations

    def remaining(self, tenant: str) -> Optional[int]:
        """Simulations left before the tenant's cap (``None`` = unlimited)."""
        budget = self.budget_for(tenant)
        with self._lock:
            if budget.max_simulations is None:
                return None
            return max(0, budget.max_simulations - budget.total)

    def charge_run(
        self, tenant: str, run_id: str, simulations: Dict[str, int]
    ) -> bool:
        """Book one completed run's phase-split counts against the tenant.

        Idempotent per ``(tenant, run_id)``: the first charge counts,
        replays are no-ops.  Returns True when the charge was counted.
        """
        tenant = str(tenant)
        budget = self.budget_for(tenant)
        with self._lock:
            key = (tenant, str(run_id))
            if key in self._charged:
                return False
            self._charged.add(key)
            for field_name, phase in self._PHASE_KEYS:
                count = int(simulations.get(field_name, 0) or 0)
                if count:
                    budget.charge(phase, count, enforce_cap=False)
            return True

    def snapshot(self) -> Dict[str, Dict[str, int]]:
        """Per-tenant phase counts (operators and tests read this)."""
        with self._lock:
            return {
                tenant: budget.snapshot()
                for tenant, budget in sorted(self._budgets.items())
            }
