"""External-simulator backend: run :class:`SimJob` decks through ngspice.

The paper's method is simulator-agnostic — the control loop only consumes a
metrics tensor per (design, corner, mismatch) block — so the real-SPICE
adapter is just another :class:`~repro.simulation.service.SimulationBackend`
behind the service boundary:

* :class:`NgspiceRunner` — writes a compiled deck
  (:func:`repro.spice.deck.compile_job_deck`) to a scratch directory and
  shells out to ``ngspice -b -o run.log deck.cir`` with a wall-clock
  timeout.  The executable path is **explicit**: constructor argument
  first, then the :data:`EXECUTABLE_ENV` environment variable (read at
  call time so worker processes resolve it too), then plain ``ngspice`` —
  which is exactly what lets the test suite inject a hermetic fake
  simulator without any ngspice installed.
* :class:`NgspiceBackend` — compiles the job, runs the deck(s), and
  reassembles the ``(B, metrics)`` tensor from the measure log
  (:func:`repro.spice.deck.parse_measure_log`).  Failure handling is
  deliberately graceful by default: a timeout or a nonzero exit degrades
  to a NaN block (with a warning) and failed / partial measures become NaN
  cells — the reward pipeline already treats NaN metrics as constraint
  violations, so a flaky simulator slows the search instead of crashing
  it.  Set ``strict=True`` (or :data:`STRICT_ENV`) to raise
  :class:`NgspiceError` instead, e.g. in CI.  Deployment errors — a
  missing executable, or a circuit whose measures could never be reported
  by the engine — always raise, strict or not.

Batched jobs and real engines
-----------------------------
Multi-row decks carry their batch in the machine payload plus per-row
``.param`` sections, which only *payload-aware* runners (the hermetic fake
simulator, a future ``.alter``-capable dialect) evaluate row by row.  A
real ngspice binary instead resolves the repeated ``.param`` sections
last-wins and evaluates every ``.measure`` in that single final
environment — i.e. it would silently report wrong numbers for every row
but the last.  The backend therefore runs **one single-row deck per batch
row** by default (each row is plain valid ngspice; a failed row degrades
to a NaN row without discarding its siblings).  Pass
``payload_aware=True`` (or set :data:`PAYLOAD_AWARE_ENV`) only when the
executable genuinely understands multi-row decks — the test suite does,
so batched fake runs stay one subprocess per job.

Registered in :data:`~repro.simulation.service.BACKENDS` as ``"ngspice"``,
so ``ExperimentConfig(backend="ngspice")`` / ``--backend ngspice`` select it
with zero control-loop changes, and it composes with
:class:`~repro.simulation.service.CachingBackend` and
:class:`~repro.simulation.service.ShardedDispatcher` like any terminal
backend (workers rebuild it by name from the registry).
"""

from __future__ import annotations

import os
import subprocess
import tempfile
import warnings
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.circuits.base import AnalogCircuit
from repro.simulation.service import BACKENDS, SimJob, SimulationBackend
from repro.spice.deck import (
    FAILURE_NAN,
    Deck,
    compile_job_deck,
    parse_measure_log,
)

#: Environment variable naming the simulator executable (tests point this at
#: the fake simulator; production deployments at a pinned ngspice build).
EXECUTABLE_ENV = "REPRO_NGSPICE"

#: Environment variable turning simulator failures into raised errors.
STRICT_ENV = "REPRO_NGSPICE_STRICT"

#: Environment variable declaring the executable payload-aware: it
#: evaluates multi-row decks row by row from the machine payload (the fake
#: simulator does; a real ngspice binary does NOT — see the module
#: docstring).  Read at backend *construction* time; sharded workers agree
#: because they rebuild the backend (re-running ``__init__``) in their own
#: process.
PAYLOAD_AWARE_ENV = "REPRO_NGSPICE_PAYLOAD_AWARE"

#: Environment variable selecting the measurement mode: ``measure`` (the
#: default; per-metric ``.measure`` cards parsed from the log) or
#: ``waveform`` (``.tran`` + binary rawfile capture, with all metric
#: extraction done host-side in :mod:`repro.analysis.waveform`).  Read at
#: backend construction time, like :data:`PAYLOAD_AWARE_ENV`.
MEASUREMENT_ENV = "REPRO_NGSPICE_MEASUREMENT"

#: Fallback executable name resolved through PATH.
DEFAULT_EXECUTABLE = "ngspice"

#: Default wall-clock limit for one deck run (seconds).
DEFAULT_TIMEOUT = 120.0


class NgspiceError(RuntimeError):
    """A simulator invocation failed (missing binary, timeout, bad exit)."""


@dataclass
class NgspiceRun:
    """Outcome of one simulator invocation."""

    command: list
    returncode: Optional[int]
    log_text: str = ""
    stdout: str = ""
    stderr: str = ""
    timed_out: bool = False
    #: Raw bytes of the requested rawfile (waveform mode); ``None`` when no
    #: rawfile was requested or the engine never wrote one.
    raw_bytes: Optional[bytes] = None

    @property
    def ok(self) -> bool:
        return self.returncode == 0 and not self.timed_out

    def describe_failure(self) -> str:
        if self.timed_out:
            return f"timed out: {' '.join(self.command)}"
        tail = self.stderr.strip().splitlines()[-3:]
        detail = ("; " + " | ".join(tail)) if tail else ""
        return f"exit {self.returncode}: {' '.join(self.command)}{detail}"


class NgspiceRunner:
    """Runs deck text through an external simulator in batch mode."""

    def __init__(
        self,
        executable: Optional[str] = None,
        timeout: float = DEFAULT_TIMEOUT,
    ):
        self._executable = executable
        self.timeout = float(timeout)

    @property
    def executable(self) -> str:
        """Explicit path, else :data:`EXECUTABLE_ENV`, else ``ngspice``.

        The environment is consulted at call time (not construction time) so
        sharded worker processes — which rebuild backends by registry name —
        resolve the same executable as the parent.  Path-like values (ones
        containing a separator, e.g. ``./tools/ngspice``) are absolutized
        against the caller's cwd: the subprocess runs inside a scratch temp
        directory, which would otherwise silently break relative paths.
        """
        resolved = self._executable or os.environ.get(EXECUTABLE_ENV) or (
            DEFAULT_EXECUTABLE
        )
        if os.sep in resolved or (os.altsep and os.altsep in resolved):
            return os.path.abspath(resolved)
        return resolved

    def run_deck(
        self, deck_text: str, tag: str = "job", rawfile: bool = False
    ) -> NgspiceRun:
        """Execute one deck; never raises for simulator-side failures.

        With ``rawfile=True`` the engine is invoked with ``-r <tag>.raw``
        (waveform mode) and whatever bytes it writes there are returned on
        :attr:`NgspiceRun.raw_bytes` before the scratch directory vanishes.

        A missing executable raises :class:`NgspiceError` (the deployment is
        broken, not the simulation); everything else — timeouts, nonzero
        exits — is reported on the returned :class:`NgspiceRun` so the
        backend can decide between NaN degradation and strict failure.

        On POSIX the engine runs in its **own session** (process group) and
        a timeout kills the *whole group* with ``SIGKILL``: a hung ngspice
        that spawned helpers (shell wrappers, license daemons, the fake
        simulator's children in tests) cannot leave orphans holding the
        scratch directory or leaking into later shards — the old
        ``subprocess.run(timeout=...)`` path only killed the direct child.
        """
        with tempfile.TemporaryDirectory(prefix="repro-ngspice-") as scratch:
            deck_path = os.path.join(scratch, f"{tag}.cir")
            log_path = os.path.join(scratch, f"{tag}.log")
            with open(deck_path, "w", encoding="utf-8") as handle:
                handle.write(deck_text)
            raw_path = os.path.join(scratch, f"{tag}.raw")
            command = [self.executable, "-b"]
            if rawfile:
                command += ["-r", raw_path]
            command += ["-o", log_path, deck_path]
            timed_out = False
            try:
                process = subprocess.Popen(
                    command,
                    stdout=subprocess.PIPE,
                    stderr=subprocess.PIPE,
                    text=True,
                    cwd=scratch,
                    start_new_session=(os.name == "posix"),
                )
            except FileNotFoundError:
                raise NgspiceError(
                    f"simulator executable {self.executable!r} not found; "
                    f"install ngspice or point ${EXECUTABLE_ENV} at it"
                ) from None
            try:
                stdout, stderr = process.communicate(timeout=self.timeout)
                returncode: Optional[int] = process.returncode
            except subprocess.TimeoutExpired as expired:
                timed_out = True
                returncode = None
                _kill_process_group(process)
                # Reap the killed group leader; the group is dead, so this
                # cannot block indefinitely.
                late_out, late_err = process.communicate()
                stdout = _decode(expired.stdout) or _decode(late_out)
                stderr = _decode(expired.stderr) or _decode(late_err)
            log_text = ""
            if os.path.exists(log_path):
                with open(log_path, "r", encoding="utf-8", errors="replace") as handle:
                    log_text = handle.read()
            raw_bytes: Optional[bytes] = None
            if rawfile and os.path.exists(raw_path):
                with open(raw_path, "rb") as handle:
                    raw_bytes = handle.read()
            return NgspiceRun(
                command=command,
                returncode=returncode,
                log_text=log_text,
                stdout=stdout,
                stderr=stderr,
                timed_out=timed_out,
                raw_bytes=raw_bytes,
            )


def _kill_process_group(process: "subprocess.Popen") -> None:
    """SIGKILL a timed-out engine and everything it spawned.

    The engine was started with ``start_new_session=True`` (POSIX), so its
    process group id is its own pid and ``os.killpg`` reaps helpers and
    grandchildren too.  Windows (no process groups of this kind) and
    already-exited leaders fall back to killing the direct child only.
    """
    if os.name == "posix":
        import signal

        try:
            os.killpg(os.getpgid(process.pid), signal.SIGKILL)
            return
        except (ProcessLookupError, PermissionError, OSError):
            pass
    try:
        process.kill()
    except OSError:  # pragma: no cover - already gone
        pass


def _decode(raw) -> str:
    if raw is None:
        return ""
    if isinstance(raw, bytes):
        return raw.decode("utf-8", errors="replace")
    return str(raw)


def _env_flag(name: str) -> bool:
    return os.environ.get(name, "").strip().lower() in ("1", "true", "yes")


class NgspiceBackend(SimulationBackend):
    """Terminal backend evaluating jobs through an external ngspice binary.

    Parameters
    ----------
    executable:
        Simulator binary; defaults to ``$REPRO_NGSPICE`` then ``ngspice``.
    timeout:
        Per-deck wall-clock limit in seconds.
    strict:
        Raise :class:`NgspiceError` on simulator failure instead of
        degrading to NaN metrics; defaults to ``$REPRO_NGSPICE_STRICT``.
    payload_aware:
        The executable evaluates multi-row decks row by row from the
        machine payload (the fake simulator does).  When ``False`` — the
        default, and the only correct setting for a real ngspice binary,
        which resolves repeated per-row ``.param`` sections last-wins —
        batched jobs are run as one single-row deck per row.  Defaults to
        ``$REPRO_NGSPICE_PAYLOAD_AWARE``.
    measurement:
        ``"measure"`` (default) parses per-metric ``.measure`` cards from
        the engine log; ``"waveform"`` runs ``.tran`` with a binary
        rawfile per row, parses it (:mod:`repro.spice.rawfile`) and
        extracts every metric host-side through the circuit's
        :meth:`waveform_specs` via :mod:`repro.analysis.waveform` — the
        same code path the analytic engine uses.  Defaults to
        ``$REPRO_NGSPICE_MEASUREMENT``.
    """

    name = "ngspice"

    def __init__(
        self,
        executable: Optional[str] = None,
        timeout: float = DEFAULT_TIMEOUT,
        strict: Optional[bool] = None,
        payload_aware: Optional[bool] = None,
        measurement: Optional[str] = None,
    ):
        self.runner = NgspiceRunner(executable=executable, timeout=timeout)
        self.strict = _env_flag(STRICT_ENV) if strict is None else bool(strict)
        self.payload_aware = (
            _env_flag(PAYLOAD_AWARE_ENV)
            if payload_aware is None
            else bool(payload_aware)
        )
        resolved_measurement = (
            os.environ.get(MEASUREMENT_ENV, "").strip().lower() or "measure"
            if measurement is None
            else str(measurement)
        )
        if resolved_measurement not in ("measure", "waveform"):
            raise ValueError(
                f"unknown measurement mode {resolved_measurement!r} "
                "(expected 'measure' or 'waveform')"
            )
        self.measurement = resolved_measurement
        # Constructor-configured instances cannot be rebuilt by name inside
        # a worker (the zero-argument rebuild reads only the environment),
        # so they must not shard — see `worker_reconstructible`.
        self._env_configured = (
            executable is None
            and strict is None
            and payload_aware is None
            and measurement is None
            and timeout == DEFAULT_TIMEOUT
        )

    @property
    def worker_reconstructible(self) -> bool:
        """Only an env-configured instance survives the by-name rebuild
        inside pool workers; explicit constructor configuration (a custom
        executable, timeout, strictness or payload-awareness) would be
        silently dropped there, so such instances refuse to shard and run
        their rows in-process instead."""
        return self._env_configured

    @property
    def row_parallel(self) -> bool:
        """Whether each batch row is an individually expensive subprocess.

        For real (non-payload-aware) engines every row is its own deck and
        its own ngspice invocation, so the sharded dispatcher fans *any*
        multi-row job out across the service's warm worker pool — one row
        per worker if there are enough workers — instead of looping the
        rows serially in one process (see
        :func:`repro.simulation.sharding.shardable`).  Payload-aware
        executables evaluate the whole batch from one deck in one
        subprocess, so the normal rows-per-worker threshold applies —
        except in waveform mode, where every row is always its own
        ``.tran`` + rawfile run.
        """
        return not self.payload_aware or self.measurement == "waveform"

    def compile(self, circuit: AnalogCircuit, job: SimJob) -> Deck:
        """The deck this backend would run for ``job`` (exposed for tests,
        golden files and debugging).  Note that a non-payload-aware engine
        never sees this multi-row deck whole: :meth:`evaluate` hands it one
        single-row deck per batch row instead."""
        return compile_job_deck(job, circuit, measurement=self.measurement)

    def evaluate(
        self, circuit: AnalogCircuit, job: SimJob
    ) -> Dict[str, np.ndarray]:
        if self.measurement == "waveform":
            if not self.payload_aware:
                specs = circuit.waveform_specs()
                if specs and all(spec.placeholder for spec in specs):
                    raise NgspiceError(
                        f"circuit {circuit.name!r} declares only placeholder "
                        f"waveform specs; a real (non-payload-aware) engine "
                        f"cannot produce their probe traces — override "
                        f"waveform_specs() with real probes or run a "
                        f"payload-aware executable (${PAYLOAD_AWARE_ENV}=1)"
                    )
            return self._evaluate_waveform(circuit, job)
        if not self.payload_aware:
            # Deployment error, not a simulation error: a circuit with only
            # placeholder measure specs emits no .meas card at all, so a
            # real engine could never report a metric — every run would
            # degrade to the all-NaN failure block (uncached, refunded)
            # and a budget-capped loop would spin forever.
            specs = circuit.measure_specs()
            if specs and all(spec.is_placeholder for spec in specs):
                raise NgspiceError(
                    f"circuit {circuit.name!r} declares only placeholder "
                    f"measures; a real (non-payload-aware) engine can never "
                    f"report a metric for it — override measure_specs() "
                    f"with real .measure expressions or run a payload-aware "
                    f"executable (${PAYLOAD_AWARE_ENV}=1)"
                )
        if job.batch > 1 and not self.payload_aware:
            return self._evaluate_per_row(circuit, job)
        deck = self.compile(circuit, job)
        run = self.runner.run_deck(deck.text, tag=circuit.name)
        if not run.ok:
            message = f"ngspice run failed ({run.describe_failure()})"
            if self.strict:
                raise NgspiceError(message)
            warnings.warn(
                f"{message}; reporting NaN metrics for the whole "
                f"{job.batch}-row block",
                RuntimeWarning,
                stacklevel=2,
            )
            # FAILURE_NAN, not plain NaN: the engine never ran, so the
            # service refunds the charge and the cache refuses the block.
            return {
                name: np.full(job.batch, FAILURE_NAN)
                for name in circuit.metric_names
            }
        # Measures land in the -o log; ngspice also echoes them on stdout,
        # so parse both (the fake writes only the log).
        return parse_measure_log(
            run.log_text + "\n" + run.stdout, job.batch, circuit.metric_names
        )

    def _evaluate_per_row(
        self, circuit: AnalogCircuit, job: SimJob
    ) -> Dict[str, np.ndarray]:
        """One single-row deck per batch row, for engines that only speak
        plain ngspice.  Failed rows degrade to NaN rows (or raise in strict
        mode) without discarding their siblings."""
        # Rows whose subprocess fails keep their FAILURE_NAN initializer:
        # the engine never produced them, so they are uncacheable.
        metrics = {
            name: np.full(job.batch, FAILURE_NAN)
            for name in circuit.metric_names
        }
        failures = []
        for row in range(job.batch):
            row_job = job.shard(row, row + 1)
            deck = compile_job_deck(row_job, circuit)
            run = self.runner.run_deck(deck.text, tag=f"{circuit.name}_r{row}")
            if not run.ok:
                if self.strict:
                    raise NgspiceError(
                        f"ngspice run failed for row {row} of "
                        f"{job.batch} ({run.describe_failure()})"
                    )
                failures.append((row, run.describe_failure()))
                continue
            row_metrics = parse_measure_log(
                run.log_text + "\n" + run.stdout, 1, circuit.metric_names
            )
            for name in circuit.metric_names:
                metrics[name][row] = row_metrics[name][0]
        if failures:
            detail = "; ".join(
                f"row {row}: {reason}" for row, reason in failures[:3]
            )
            warnings.warn(
                f"{len(failures)}/{job.batch} ngspice row runs failed "
                f"({detail}); reporting NaN metrics for those rows",
                RuntimeWarning,
                stacklevel=3,
            )
        return metrics

    def _evaluate_waveform(
        self, circuit: AnalogCircuit, job: SimJob
    ) -> Dict[str, np.ndarray]:
        """One ``.tran`` + rawfile run per batch row, metrics host-side.

        Per row: compile a trimmed single-row waveform deck, run it with a
        rawfile request, parse the rawfile (NaN samples allowed — an
        engine-reported NaN is a genuine failed measurement) and apply the
        circuit's :meth:`waveform_specs` recipes.  A failed run, a
        missing/unparseable rawfile, or a missing/short probe trace leaves
        the affected cells at :data:`FAILURE_NAN` ("the engine never
        produced this") so the service refunds and refuses to cache them —
        the identical degradation contract as measure mode, which is what
        keeps caching, sharding, retry and the remote fabric composing
        unchanged.
        """
        from repro.analysis.waveform import TraceMissingError, extract_metric
        from repro.spice.rawfile import RawfileError, parse_rawfile

        specs = {spec.metric: spec for spec in circuit.waveform_specs()}
        metrics = {
            name: np.full(job.batch, FAILURE_NAN)
            for name in circuit.metric_names
        }
        failures = []
        for row in range(job.batch):
            row_job = job.shard(row, row + 1)
            deck = compile_job_deck(row_job, circuit, measurement="waveform")
            run = self.runner.run_deck(
                deck.text, tag=f"{circuit.name}_r{row}", rawfile=True
            )
            if not run.ok:
                if self.strict:
                    raise NgspiceError(
                        f"ngspice waveform run failed for row {row} of "
                        f"{job.batch} ({run.describe_failure()})"
                    )
                failures.append((row, run.describe_failure()))
                continue
            if run.raw_bytes is None:
                message = "engine wrote no rawfile"
                if self.strict:
                    raise NgspiceError(
                        f"ngspice waveform run for row {row} of {job.batch}: "
                        f"{message}"
                    )
                failures.append((row, message))
                continue
            try:
                raw = parse_rawfile(run.raw_bytes, allow_nan=True)
            except RawfileError as error:
                if self.strict:
                    raise NgspiceError(
                        f"unparseable rawfile for row {row} of {job.batch}: "
                        f"{error}"
                    ) from error
                failures.append((row, f"unparseable rawfile: {error}"))
                continue
            times = raw.time
            traces = raw.traces()
            vdd = float(row_job.row_corners[0].vdd)
            for name in circuit.metric_names:
                try:
                    metrics[name][row] = extract_metric(
                        specs[name], times, traces, vdd
                    )
                except TraceMissingError as error:
                    # This cell was never produced (probe absent/short):
                    # keep FAILURE_NAN for it, but let sibling metrics of
                    # the same row stand.
                    if self.strict:
                        raise NgspiceError(
                            f"waveform metric {name!r} unavailable for row "
                            f"{row} of {job.batch}: {error}"
                        ) from error
                    failures.append((row, f"metric {name}: {error}"))
        if failures:
            detail = "; ".join(
                f"row {row}: {reason}" for row, reason in failures[:3]
            )
            warnings.warn(
                f"{len(failures)} waveform-mode failure(s) across "
                f"{job.batch} row(s) ({detail}); reporting NaN metrics for "
                f"the affected cells",
                RuntimeWarning,
                stacklevel=3,
            )
        return metrics


BACKENDS[NgspiceBackend.name] = NgspiceBackend
