"""``repro serve --mode experiment`` — the journaled experiment front end.

Where :mod:`repro.simulation.server` ships *raw simulation jobs*, this
module lets a daemon own a **whole sizing run**: clients submit an
:class:`~repro.api.ExperimentConfig` over SUBMIT/STATUS/RESULT/CANCEL
frames (:mod:`repro.simulation.protocol`) and the daemon drives
:func:`repro.api.run_experiment` itself, fanning out through the same
warm worker-pool machinery an in-process run would use.  The decision
loop and the simulation fleet become separable processes, which forces
run state out of one process's stack and into durable storage — the
three robustness layers below are the point of the module:

**Crash safety (write-ahead journal).**  Every accepted run is journaled
*before* the acceptance frame goes out: one atomic JSON record per run
(same-directory temp file + ``os.replace``, exactly like the checkpoint
store) carrying the config, tenant, and state transitions
``queued → running → done/failed/cancelled``.  A SIGKILLed daemon
restarted on the same ``--journal-dir`` replays the journal: finished
runs come back servable, interrupted runs re-enqueue, and because the
front end forces every run's ``checkpoint_dir`` under the journal, the
re-run replays completed seeds from their checkpoints — zero
re-simulation, a report bit-identical to an uninterrupted run.

**Admission control (per-tenant budgets + bounded queue).**  Each tenant
id maps to a server-side :class:`~repro.simulation.budget.SimulationBudget`
via :class:`~repro.simulation.budget.TenantBudgetLedger`; a tenant past
its ``--tenant-quota`` is refused with a typed ``quota`` error.  The run
queue is bounded (``--max-queue``): when full, the server sheds load
with a BUSY/RETRY-AFTER frame instead of queuing unboundedly.  The
client treats BUSY as backpressure, not a fault — seeded backoff and
resubmit, no breaker-style penalty, surfaced as :class:`FrontendBusy`
only when retries are exhausted.

**Graceful drain.**  SIGTERM/SIGINT (via
:meth:`ExperimentFrontend.request_drain`) stops accepting, lets
executing runs finish (journaled ``done``), leaves queued runs journaled
``queued`` for the successor daemon, and exits 0.

The run identity is the **run key** — a content hash over the config
fingerprint, the seed tuple and the tenant — used as the frame request
id.  Resubmitting the same experiment is therefore always idempotent:
a reconnecting client (or a second client racing the first) attaches to
the journaled run instead of spawning a duplicate.

Like the job daemon, this is **trusted-perimeter** infrastructure
(pickled payloads): bind to loopback or a private network only.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import queue
import socket
import tempfile
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.simulation.budget import TenantBudgetLedger
from repro.simulation.protocol import (
    ConnectionClosed,
    FrameType,
    ProtocolError,
    RemoteError,
    dumps_payload,
    loads_payload,
    recv_frame,
    request_id_bytes,
    send_frame,
)
from repro.simulation.service import RetryPolicy

logger = logging.getLogger(__name__)

#: Layout version of journal records; bumped on shape changes so stale
#: journals are skipped, never misread.
JOURNAL_FORMAT_VERSION = 1

#: Run lifecycle states (journaled verbatim).
RUN_QUEUED = "queued"
RUN_RUNNING = "running"
RUN_DONE = "done"
RUN_FAILED = "failed"
RUN_CANCELLED = "cancelled"

#: States a replayed daemon re-enqueues: a run that was accepted but had
#: not finished when the predecessor died still owes the client a result.
RESUMABLE_STATES = (RUN_QUEUED, RUN_RUNNING)
TERMINAL_STATES = (RUN_DONE, RUN_FAILED, RUN_CANCELLED)

DEFAULT_MAX_QUEUE = 8
DEFAULT_RETRY_AFTER = 0.5
DEFAULT_POLL_INTERVAL = 0.25
DEFAULT_BUSY_ATTEMPTS = 10
DEFAULT_RECONNECT_TIMEOUT = 60.0


class FrontendBusy(RuntimeError):
    """The front end shed this submission and retries were exhausted.

    Deliberately *not* a :class:`RemoteError`: overload is backpressure,
    not a fault — callers that catch it should resubmit later, and
    nothing about the endpoint's health should be inferred from it.
    """

    def __init__(self, message: str, retry_after: Optional[float] = None):
        super().__init__(message)
        self.retry_after = retry_after


class FrontendUnavailable(RuntimeError):
    """The front end could not be reached within the reconnect budget."""


def run_key(config: Any, tenant: str) -> str:
    """Deterministic identity of one (experiment, tenant) submission.

    Built from the config *fingerprint* (every result-bearing field) plus
    the seed tuple (excluded from the fingerprint because checkpoints are
    per-seed) and the tenant.  Two clients submitting the same sizing run
    for the same tenant therefore coalesce onto one journaled run — and a
    client resubmitting after a daemon crash attaches to the replayed one.
    """
    from repro.api import _config_fingerprint

    payload = {
        "fingerprint": _config_fingerprint(config),
        "seeds": list(config.seeds),
        "tenant": str(tenant),
    }
    canonical = json.dumps(payload, sort_keys=True)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _report_simulations(report_payload: Dict[str, Any]) -> Dict[str, int]:
    """Phase-split simulation totals of one serialized ExperimentReport."""
    totals: Dict[str, int] = {}
    for run in report_payload.get("runs", ()):
        for phase, count in (run.get("simulations") or {}).items():
            totals[phase] = totals.get(phase, 0) + int(count or 0)
    return totals


class _Run:
    """One accepted experiment run (in-memory view of a journal record)."""

    def __init__(
        self,
        run_id: str,
        tenant: str,
        config_payload: Dict[str, Any],
        state: str = RUN_QUEUED,
    ):
        self.run_id = run_id
        self.tenant = tenant
        self.config_payload = config_payload
        self.state = state
        self.error: Optional[Dict[str, str]] = None
        self.report: Optional[Dict[str, Any]] = None
        #: Seeds replayed from per-seed checkpoints (zero re-simulation) —
        #: the observable proof of the journal-resume property.
        self.replayed_seeds: List[int] = []
        self.done = threading.Event()

    def journal_payload(self) -> Dict[str, Any]:
        return {
            "version": JOURNAL_FORMAT_VERSION,
            "run_id": self.run_id,
            "tenant": self.tenant,
            "config": self.config_payload,
            "state": self.state,
            "error": self.error,
            "report": self.report,
            "replayed_seeds": list(self.replayed_seeds),
            "updated_at": time.time(),
        }

    @classmethod
    def from_journal_payload(cls, payload: Dict[str, Any]) -> "_Run":
        run = cls(
            run_id=str(payload["run_id"]),
            tenant=str(payload.get("tenant") or "default"),
            config_payload=dict(payload["config"]),
            state=str(payload.get("state") or RUN_QUEUED),
        )
        run.error = payload.get("error")
        run.report = payload.get("report")
        run.replayed_seeds = [
            int(seed) for seed in payload.get("replayed_seeds") or ()
        ]
        if run.state in TERMINAL_STATES:
            run.done.set()
        return run


class ExperimentJournal:
    """Atomic one-file-per-run write-ahead journal under ``directory``.

    ``runs/<run_id>.json`` records (atomic same-directory temp +
    ``os.replace``, the checkpoint-store discipline: an interrupted
    writer can never leave a torn record under the final name), and
    ``checkpoints/`` for the per-seed resume layer every run is forced
    onto.
    """

    def __init__(self, directory: str):
        self.directory = str(directory)
        self.runs_dir = os.path.join(self.directory, "runs")
        self.checkpoints_dir = os.path.join(self.directory, "checkpoints")
        os.makedirs(self.runs_dir, exist_ok=True)
        os.makedirs(self.checkpoints_dir, exist_ok=True)

    def path_for(self, run_id: str) -> str:
        return os.path.join(self.runs_dir, f"{run_id}.json")

    def record(self, run: _Run) -> str:
        """Atomically persist the run's current state; returns the path."""
        path = self.path_for(run.run_id)
        payload = run.journal_payload()
        fd, tmp_path = tempfile.mkstemp(dir=self.runs_dir, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=2, sort_keys=True)
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
        return path

    def load_all(self) -> List[Dict[str, Any]]:
        """Every readable journal record (broken ones skipped, logged)."""
        records = []
        try:
            names = sorted(os.listdir(self.runs_dir))
        except OSError:
            return records
        for name in names:
            if not name.endswith(".json"):
                continue
            path = os.path.join(self.runs_dir, name)
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    payload = json.load(handle)
                if payload.get("version") != JOURNAL_FORMAT_VERSION:
                    raise ValueError(
                        f"journal format {payload.get('version')!r}"
                    )
                if not isinstance(payload.get("config"), dict):
                    raise ValueError("journal record without a config")
                records.append(payload)
            except (OSError, ValueError, KeyError, TypeError) as error:
                logger.warning(
                    "skipping unreadable journal record %s: %s", path, error
                )
        return records


class ExperimentFrontend:
    """A socket front end that owns whole sizing runs.

    Parameters
    ----------
    journal_dir:
        Durable root for the write-ahead journal and the per-seed
        checkpoints.  Restarting a daemon on the same directory resumes
        every accepted-but-unfinished run.
    host / port:
        Bind address (``port=0`` = ephemeral; read :attr:`endpoint`).
    run_workers:
        Experiment runs executed concurrently (each run fans out through
        its own service/worker-pool machinery as configured).
    max_queue:
        Bound on *queued* (accepted, not yet executing) runs; submissions
        past it are shed with BUSY instead of queued unboundedly.
    tenant_quota:
        Per-tenant simulation cap gating admission (``None`` = unlimited).
    retry_after_seconds:
        Hint carried by BUSY frames.
    """

    def __init__(
        self,
        journal_dir: str,
        host: str = "127.0.0.1",
        port: int = 0,
        run_workers: int = 1,
        max_queue: int = DEFAULT_MAX_QUEUE,
        tenant_quota: Optional[int] = None,
        retry_after_seconds: float = DEFAULT_RETRY_AFTER,
    ):
        self.journal = ExperimentJournal(journal_dir)
        self.ledger = TenantBudgetLedger(quota=tenant_quota)
        self.host = host
        self._requested_port = int(port)
        self.run_workers = max(1, int(run_workers))
        self.max_queue = max(0, int(max_queue))
        self.retry_after_seconds = float(retry_after_seconds)

        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._worker_threads: List[threading.Thread] = []
        self._stopping = threading.Event()
        self._draining = threading.Event()
        self._drain_requested = threading.Event()
        self._connections: set = set()

        self._lock = threading.Lock()
        self._runs: Dict[str, _Run] = {}
        self._queue: "queue.Queue[str]" = queue.Queue()
        #: Run ids currently executing (drain waits on these).
        self._active: set = set()
        self.stats: Dict[str, int] = {
            "submissions": 0,
            "accepted": 0,
            "resubmissions": 0,
            "busy_rejections": 0,
            "quota_rejections": 0,
            "completed": 0,
            "failed": 0,
            "cancelled": 0,
            "replayed_runs": 0,
            "protocol_errors": 0,
        }
        self._replay_journal()

    # ------------------------------------------------------------------
    # Journal replay (crash recovery)
    # ------------------------------------------------------------------
    def _replay_journal(self) -> None:
        """Rebuild run state from the journal before the listener opens.

        Terminal runs become servable again (a reconnecting client's
        STATUS poll finds its report without re-simulation) and their
        tenant charges are re-booked idempotently; interrupted runs
        re-enqueue — their per-seed checkpoints make the re-run cheap.
        """
        for payload in self.journal.load_all():
            try:
                run = _Run.from_journal_payload(payload)
            except (KeyError, TypeError, ValueError) as error:
                logger.warning("skipping malformed journal run: %s", error)
                continue
            self._runs[run.run_id] = run
            if run.state in RESUMABLE_STATES:
                run.state = RUN_QUEUED
                self.journal.record(run)
                self._queue.put(run.run_id)
                self._count("replayed_runs")
                logger.info(
                    "journal replay: resuming run %s (tenant %s)",
                    run.run_id[:12],
                    run.tenant,
                )
            elif run.state == RUN_DONE and run.report is not None:
                self.ledger.charge_run(
                    run.tenant, run.run_id, _report_simulations(run.report)
                )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def address(self) -> Tuple[str, int]:
        if self._listener is None:
            raise RuntimeError("frontend is not started")
        return self._listener.getsockname()[:2]

    @property
    def endpoint(self) -> str:
        host, port = self.address
        return f"{host}:{port}"

    def start(self) -> "ExperimentFrontend":
        if self._listener is not None:
            return self
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self._requested_port))
        listener.listen(32)
        self._listener = listener
        for index in range(self.run_workers):
            thread = threading.Thread(
                target=self._worker_loop,
                name=f"repro-frontend-run-{index}",
                daemon=True,
            )
            thread.start()
            self._worker_threads.append(thread)
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-frontend-accept", daemon=True
        )
        self._accept_thread.start()
        logger.info(
            "experiment frontend listening on %s (journal=%s, workers=%d, "
            "max_queue=%d)",
            self.endpoint,
            self.journal.directory,
            self.run_workers,
            self.max_queue,
        )
        return self

    def _close_listener(self) -> None:
        listener, self._listener = self._listener, None
        if listener is not None:
            try:
                listener.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                listener.close()
            except OSError:  # pragma: no cover
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
            self._accept_thread = None

    def stop(self) -> None:
        """Idempotent hard shutdown (no drain: use :meth:`drain` for that)."""
        self._stopping.set()
        self._close_listener()
        with self._lock:
            connections = list(self._connections)
            self._connections.clear()
        for conn in connections:
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass
        for thread in self._worker_threads:
            thread.join(timeout=5.0)
        self._worker_threads = []

    def drain(self, timeout: float = 600.0) -> None:
        """Graceful shutdown: stop accepting, finish executing runs, stop.

        Queued-but-unstarted runs stay journaled ``queued`` — the
        successor daemon's replay re-enqueues them; nothing accepted is
        ever lost.  Executing runs complete and journal ``done`` (their
        per-seed checkpoints bound how much work a slow drain repeats if
        the timeout expires anyway).
        """
        self._draining.set()
        self._close_listener()
        deadline = time.monotonic() + float(timeout)
        while time.monotonic() < deadline:
            with self._lock:
                if not self._active:
                    break
            time.sleep(0.05)
        # Short grace for handler threads to flush final RESULT frames to
        # clients that are mid-poll before the sockets are torn down.
        grace = min(deadline, time.monotonic() + 3.0)
        while time.monotonic() < grace:
            with self._lock:
                if not self._connections:
                    break
            time.sleep(0.05)
        self.stop()

    def request_drain(self) -> None:
        """Signal-handler-safe drain trigger (consumed by serve_forever)."""
        self._drain_requested.set()

    def serve_forever(self) -> None:
        """Block until stopped or a requested drain completes."""
        self.start()
        try:
            while not self._stopping.is_set():
                if self._drain_requested.is_set():
                    self.drain()
                    break
                time.sleep(0.2)
        except KeyboardInterrupt:  # pragma: no cover - interactive
            self.drain()
        finally:
            self.stop()

    def __enter__(self) -> "ExperimentFrontend":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Run execution
    # ------------------------------------------------------------------
    def _worker_loop(self) -> None:
        while not self._stopping.is_set():
            try:
                run_id = self._queue.get(timeout=0.1)
            except queue.Empty:
                continue
            if self._draining.is_set() or self._stopping.is_set():
                # Leave the run journaled `queued`; the successor daemon
                # replays it.  (This process is exiting either way.)
                continue
            with self._lock:
                run = self._runs.get(run_id)
                if run is None or run.state != RUN_QUEUED:
                    continue  # cancelled (or lost) while queued
                run.state = RUN_RUNNING
                self._active.add(run_id)
            try:
                self.journal.record(run)
                self._execute_run(run)
            finally:
                with self._lock:
                    self._active.discard(run_id)

    def _execute_run(self, run: _Run) -> None:
        """Drive one run to a terminal state and journal the transition."""
        from repro import api

        try:
            config = api.ExperimentConfig.from_dict(dict(run.config_payload))
            # Force the durable per-seed resume layer under the journal:
            # checkpoint_dir is fingerprint-excluded, so this never
            # changes what the run computes — only what a restart skips.
            config = config.with_overrides(
                checkpoint_dir=self.journal.checkpoints_dir
            )
            replayed = [
                seed
                for seed in config.seeds
                if api.load_checkpoint(config, seed) is not None
            ]
            report = api.run_experiment(config)
        except Exception as error:  # noqa: BLE001 - journaled, sent to client
            logger.exception("run %s failed", run.run_id[:12])
            run.error = {"kind": "experiment", "message": str(error)}
            run.state = RUN_FAILED
            self._count("failed")
        else:
            run.report = report.to_dict()
            run.replayed_seeds = [int(seed) for seed in replayed]
            run.state = RUN_DONE
            self.ledger.charge_run(
                run.tenant, run.run_id, _report_simulations(run.report)
            )
            self._count("completed")
        self.journal.record(run)
        run.done.set()

    def _queued_count_locked(self) -> int:
        return sum(
            1 for run in self._runs.values() if run.state == RUN_QUEUED
        )

    # ------------------------------------------------------------------
    # Accept / connection handling
    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        listener = self._listener
        while not self._stopping.is_set() and listener is not None:
            try:
                conn, _addr = listener.accept()
            except OSError:
                return  # listener closed — shutdown or drain
            with self._lock:
                if self._stopping.is_set():
                    conn.close()
                    return
                self._connections.add(conn)
            thread = threading.Thread(
                target=self._handle_connection,
                args=(conn,),
                name="repro-frontend-conn",
                daemon=True,
            )
            thread.start()

    def _handle_connection(self, sock: socket.socket) -> None:
        try:
            sock.settimeout(30.0)
            while not self._stopping.is_set():
                try:
                    kind, request_id, payload = recv_frame(sock)
                except ConnectionClosed:
                    return
                except ProtocolError as error:
                    self._count("protocol_errors")
                    logger.warning("protocol error from client: %s", error)
                    self._try_send_error(sock, b"\x00" * 32, "protocol", error)
                    return
                except (TimeoutError, socket.timeout):
                    return  # idle client gone silent
                if kind == FrameType.PING:
                    send_frame(sock, FrameType.PONG)
                    continue
                if kind == FrameType.SUBMIT:
                    if not self._handle_submit(sock, request_id, payload):
                        return
                    continue
                if kind == FrameType.STATUS:
                    if not self._handle_status(sock, request_id):
                        return
                    continue
                if kind == FrameType.CANCEL:
                    if not self._handle_cancel(sock, request_id):
                        return
                    continue
                self._count("protocol_errors")
                self._try_send_error(
                    sock,
                    request_id,
                    "protocol",
                    ProtocolError(
                        f"unexpected {kind.name} frame on an experiment "
                        f"endpoint (job frames go to --mode job daemons)"
                    ),
                )
                return
        except (OSError, ProtocolError):
            return  # client vanished mid-reply; the journal owns the run
        finally:
            with self._lock:
                self._connections.discard(sock)
            try:
                sock.close()
            except OSError:  # pragma: no cover
                pass

    def _handle_submit(
        self, sock: socket.socket, request_id: bytes, payload: bytes
    ) -> bool:
        """Admit (or shed) one SUBMIT.  Returns False to drop the stream."""
        from repro import api

        self._count("submissions")
        decoded = loads_payload(payload)
        if not isinstance(decoded, dict) or not isinstance(
            decoded.get("config"), dict
        ):
            self._count("protocol_errors")
            self._try_send_error(
                sock,
                request_id,
                "protocol",
                ProtocolError(
                    "SUBMIT payload must be {'config': dict, 'tenant': str}"
                ),
            )
            return False
        tenant = str(decoded.get("tenant") or "default")
        try:
            config = api.ExperimentConfig.from_dict(dict(decoded["config"]))
        except (ValueError, TypeError) as error:
            # A malformed config is *this client's* problem, and the
            # stream still has integrity — answer and keep serving.
            self._try_send_error(sock, request_id, "config", error)
            return True
        run_id = request_id.hex()
        if run_key(config, tenant) != run_id:
            self._count("protocol_errors")
            self._try_send_error(
                sock,
                request_id,
                "protocol",
                ProtocolError(
                    f"request id {run_id[:12]} does not match the "
                    f"submission's run key"
                ),
            )
            return False

        # Decide under the lock, reply outside it (replies do network I/O
        # and _send_status_for re-takes the lock for the queue depth).
        with self._lock:
            existing = self._runs.get(run_id)
            if existing is not None:
                # Idempotent resubmission — reconnecting client, replayed
                # daemon, or a second tenant process racing the first.
                self._count_locked("resubmissions")
                verdict, run = "attach", existing
            elif self._draining.is_set() or self._stopping.is_set():
                self._count_locked("busy_rejections")
                verdict, run = "busy", None
                busy_reason = "draining"
            elif self._queued_count_locked() >= self.max_queue:
                self._count_locked("busy_rejections")
                verdict, run = "busy", None
                busy_reason = "run queue full"
            elif not self.ledger.admits(tenant):
                self._count_locked("quota_rejections")
                verdict, run = "quota", None
            else:
                run = _Run(run_id, tenant, config.to_dict())
                self._runs[run_id] = run
                self._count_locked("accepted")
                verdict = "accept"
        if verdict == "attach":
            return self._send_status_for(sock, request_id, run)
        if verdict == "busy":
            return self._send_busy(sock, request_id, busy_reason)
        if verdict == "quota":
            self._try_send_error(
                sock,
                request_id,
                "quota",
                RuntimeError(
                    f"tenant {tenant!r} has exhausted its simulation "
                    f"quota ({self.ledger.quota})"
                ),
            )
            return True
        # Write-ahead discipline: the journal record lands *before* the
        # acceptance frame — a daemon that dies in between owes nothing
        # (the client retries the idempotent SUBMIT), and one that dies
        # after has the run durably queued for replay.
        self.journal.record(run)
        self._queue.put(run_id)
        return self._send_status_for(sock, request_id, run)

    def _handle_status(self, sock: socket.socket, request_id: bytes) -> bool:
        with self._lock:
            run = self._runs.get(request_id.hex())
        if run is None:
            self._try_send_error(
                sock,
                request_id,
                "unknown-run",
                RuntimeError("no such run (never submitted, or journal lost)"),
            )
            return True
        return self._send_status_for(sock, request_id, run)

    def _handle_cancel(self, sock: socket.socket, request_id: bytes) -> bool:
        with self._lock:
            run = self._runs.get(request_id.hex())
            # Only queued runs cancel; executing runs complete (their
            # simulations are already paid for) and terminal runs keep
            # their state — the reply below reports whatever stands.
            if run is not None and run.state == RUN_QUEUED:
                run.state = RUN_CANCELLED
                run.done.set()
                self._count_locked("cancelled")
        if run is None:
            self._try_send_error(
                sock,
                request_id,
                "unknown-run",
                RuntimeError("no such run"),
            )
            return True
        if run.state == RUN_CANCELLED:
            self.journal.record(run)
        return self._send_status_for(sock, request_id, run)

    # ------------------------------------------------------------------
    # Replies
    # ------------------------------------------------------------------
    def _send_status_for(
        self, sock: socket.socket, request_id: bytes, run: _Run
    ) -> bool:
        """The state-appropriate reply for one run: RESULT / ERROR / STATUS."""
        try:
            if run.state == RUN_DONE:
                send_frame(
                    sock,
                    FrameType.RESULT,
                    dumps_payload(
                        {
                            "report": run.report,
                            "replayed_seeds": list(run.replayed_seeds),
                        }
                    ),
                    request_id=request_id,
                )
            elif run.state == RUN_FAILED:
                error = run.error or {}
                self._try_send_error(
                    sock,
                    request_id,
                    str(error.get("kind", "experiment")),
                    RuntimeError(str(error.get("message", "run failed"))),
                )
            elif run.state == RUN_CANCELLED:
                self._try_send_error(
                    sock,
                    request_id,
                    "cancelled",
                    RuntimeError("run was cancelled"),
                )
            else:
                with self._lock:
                    queued = self._queued_count_locked()
                send_frame(
                    sock,
                    FrameType.STATUS,
                    dumps_payload(
                        {"state": run.state, "queue_depth": queued}
                    ),
                    request_id=request_id,
                )
            return True
        except (OSError, ProtocolError):
            return False  # client gone; the journal still owns the run

    def _send_busy(
        self, sock: socket.socket, request_id: bytes, reason: str
    ) -> bool:
        try:
            send_frame(
                sock,
                FrameType.BUSY,
                dumps_payload(
                    {
                        "retry_after": self.retry_after_seconds,
                        "reason": reason,
                    }
                ),
                request_id=request_id,
            )
            return True
        except (OSError, ProtocolError):
            return False

    def _try_send_error(
        self,
        sock: socket.socket,
        request_id: bytes,
        kind: str,
        error: BaseException,
    ) -> None:
        try:
            send_frame(
                sock,
                FrameType.ERROR,
                dumps_payload({"kind": kind, "message": str(error)}),
                request_id=request_id,
            )
        except (OSError, ProtocolError):  # pragma: no cover - peer gone
            pass

    def _count(self, key: str) -> None:
        with self._lock:
            self._count_locked(key)

    def _count_locked(self, key: str) -> None:
        self.stats[key] = self.stats.get(key, 0) + 1


# ----------------------------------------------------------------------
# Client
# ----------------------------------------------------------------------
class ExperimentClient:
    """Submit an experiment to a front end and await its report.

    Three failure classes, handled distinctly:

    * **BUSY** (overload shedding) — seeded backoff honouring the
      server's retry-after hint, then an idempotent resubmit; surfaces
      as :class:`FrontendBusy` only after ``busy_attempts`` sheds.  Never
      treated as a fault.
    * **Connection loss / protocol damage** (daemon crashed, restarting,
      chaos on the wire) — reconnect with seeded backoff for up to
      ``reconnect_timeout`` seconds; the resubmitted SUBMIT attaches to
      the journal-replayed run, so a daemon SIGKILLed mid-run costs
      latency, never correctness.  :class:`FrontendUnavailable` when the
      budget runs out.
    * **ERROR frames** (bad config, tenant over quota, failed run) —
      raised immediately as :class:`~repro.simulation.protocol.RemoteError`
      with the server's kind; retrying cannot help.
    """

    def __init__(
        self,
        endpoint: str,
        tenant: str = "default",
        connect_timeout: float = 2.0,
        activity_timeout: float = 30.0,
        poll_interval: float = DEFAULT_POLL_INTERVAL,
        busy_attempts: int = DEFAULT_BUSY_ATTEMPTS,
        reconnect_timeout: float = DEFAULT_RECONNECT_TIMEOUT,
    ):
        from repro.simulation.remote import parse_endpoints

        endpoints = parse_endpoints(endpoint)
        if len(endpoints) != 1:
            raise ValueError(
                f"ExperimentClient takes exactly one endpoint, got "
                f"{endpoint!r}"
            )
        self.address = endpoints[0]
        self.tenant = str(tenant)
        self.connect_timeout = float(connect_timeout)
        self.activity_timeout = float(activity_timeout)
        self.poll_interval = float(poll_interval)
        self.busy_attempts = int(busy_attempts)
        self.reconnect_timeout = float(reconnect_timeout)
        #: Seeded deterministic backoff (keyed by run id + attempt) for
        #: both BUSY sheds and reconnects.
        self.policy = RetryPolicy(max_attempts=1, backoff=0.05, jitter=0.1)
        #: Observable counters (tests and operators read these).
        self.busy_sheds = 0
        self.reconnects = 0

    # ------------------------------------------------------------------
    def run(self, config: Any) -> Any:
        """Submit ``config`` and block until the report (or a typed error)."""
        run_id = run_key(config, self.tenant)
        request_id = request_id_bytes(run_id)
        submit_payload = dumps_payload(
            {"config": config.to_dict(), "tenant": self.tenant}
        )
        busy_count = 0
        reconnect_attempt = 0
        deadline = time.monotonic() + self.reconnect_timeout
        last_error: Optional[BaseException] = None
        while True:
            try:
                return self._attempt(
                    config, request_id, submit_payload, run_id
                )
            except FrontendBusy as busy:
                busy_count += 1
                self.busy_sheds += 1
                if busy_count > self.busy_attempts:
                    raise FrontendBusy(
                        f"front end still shedding after {busy_count} "
                        f"submissions",
                        retry_after=busy.retry_after,
                    ) from None
                delay = self.policy.delay(run_id, min(busy_count, 6))
                time.sleep(max(delay, busy.retry_after or 0.0))
                # A shed submission consumed no server state; the
                # reconnect budget restarts with each accepted wait.
                deadline = time.monotonic() + self.reconnect_timeout
            except (
                ProtocolError,
                OSError,
                TimeoutError,
                socket.timeout,
            ) as error:
                # Daemon gone or restarting (or chaos ate a frame):
                # back off and resubmit — the run key makes it idempotent.
                last_error = error
                self.reconnects += 1
                reconnect_attempt += 1
                if time.monotonic() > deadline:
                    raise FrontendUnavailable(
                        f"experiment front end at "
                        f"{self.address[0]}:{self.address[1]} unreachable "
                        f"for {self.reconnect_timeout:.0f}s "
                        f"(last error: {last_error})"
                    ) from error
                self.policy.sleep(run_id, min(reconnect_attempt, 6))

    def _attempt(
        self,
        config: Any,
        request_id: bytes,
        submit_payload: bytes,
        run_id: str,
    ) -> Any:
        """One connection's worth of progress: submit, poll, decode."""
        with socket.create_connection(
            self.address, timeout=self.connect_timeout
        ) as sock:
            sock.settimeout(self.activity_timeout)
            send_frame(
                sock, FrameType.SUBMIT, submit_payload, request_id=request_id
            )
            while True:
                kind, reply_id, payload = recv_frame(sock)
                if kind == FrameType.PONG:
                    continue
                if reply_id != request_id:
                    raise ProtocolError(
                        "reply correlates to a different run"
                    )
                if kind == FrameType.BUSY:
                    raise self._decode_busy(payload)
                if kind == FrameType.ERROR:
                    raise RemoteError(*self._decode_error(payload))
                if kind == FrameType.RESULT:
                    return self._decode_report(config, payload)
                if kind != FrameType.STATUS:
                    raise ProtocolError(f"unexpected {kind.name} frame")
                # Queued or running: poll again after a beat.  Each
                # STATUS reply is server activity, so a healthy long run
                # never trips the activity timeout.
                time.sleep(self.poll_interval)
                send_frame(
                    sock, FrameType.STATUS, request_id=request_id
                )

    # ------------------------------------------------------------------
    @staticmethod
    def _decode_busy(payload: bytes) -> FrontendBusy:
        decoded = loads_payload(payload)
        retry_after: Optional[float] = None
        reason = "overloaded"
        if isinstance(decoded, dict):
            try:
                retry_after = (
                    None
                    if decoded.get("retry_after") is None
                    else float(decoded["retry_after"])
                )
            except (TypeError, ValueError):
                retry_after = None
            reason = str(decoded.get("reason") or reason)
        return FrontendBusy(
            f"front end shed the submission ({reason})",
            retry_after=retry_after,
        )

    @staticmethod
    def _decode_error(payload: bytes) -> Tuple[str, str]:
        decoded = loads_payload(payload)
        if not isinstance(decoded, dict):
            raise ProtocolError("malformed ERROR payload")
        return (
            str(decoded.get("kind", "error")),
            str(decoded.get("message", "")),
        )

    @staticmethod
    def _decode_report(config: Any, payload: bytes) -> Any:
        """Validate and rehydrate the RESULT payload into a report.

        The report is rebuilt around the *client's* config object (what
        was asked for), with each run re-parsed through
        :class:`~repro.api.RunReport` — a corrupted payload is a typed
        :class:`ProtocolError`, never a half-report.
        """
        from repro import api

        decoded = loads_payload(payload)
        if not isinstance(decoded, dict) or not isinstance(
            decoded.get("report"), dict
        ):
            raise ProtocolError("RESULT payload must carry a report dict")
        try:
            runs = [
                api.RunReport.from_dict(run)
                for run in decoded["report"]["runs"]
            ]
        except (KeyError, TypeError, ValueError) as error:
            raise ProtocolError(
                f"undecodable experiment report: {error}"
            ) from None
        results = [run.to_result() for run in runs]
        return api.ExperimentReport(config=config, runs=runs, results=results)


__all__ = [
    "DEFAULT_BUSY_ATTEMPTS",
    "DEFAULT_MAX_QUEUE",
    "DEFAULT_POLL_INTERVAL",
    "DEFAULT_RECONNECT_TIMEOUT",
    "DEFAULT_RETRY_AFTER",
    "ExperimentClient",
    "ExperimentFrontend",
    "ExperimentJournal",
    "FrontendBusy",
    "FrontendUnavailable",
    "JOURNAL_FORMAT_VERSION",
    "RESUMABLE_STATES",
    "RUN_CANCELLED",
    "RUN_DONE",
    "RUN_FAILED",
    "RUN_QUEUED",
    "RUN_RUNNING",
    "TERMINAL_STATES",
    "run_key",
]
