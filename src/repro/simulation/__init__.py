"""Simulation service: evaluates designs under corners and mismatch.

The optimizer and the verification phase never call circuit models
directly; every simulation request is a :class:`SimJob` (design block ×
corner block × mismatch block + phase tag) evaluated by a
:class:`SimulationService` through a pluggable :class:`SimulationBackend`:

* :class:`BatchedMNABackend` — the vectorized production engine;
* :class:`ReferenceScalarBackend` — the bit-exact scalar reference path;
* :class:`NgspiceBackend` — the external-simulator adapter: compiles each
  job to an ngspice netlist deck and parses ``.measure`` results back into
  the metrics tensor (:mod:`repro.simulation.ngspice`);
* :class:`CachingBackend` — memoizes results by job content hash (a hit
  charges zero budget), optionally spilled to an on-disk store
  (``cache_dir``) that replays across processes;
* sharding — ``workers > 1`` splits any job's batch axis (mismatch,
  corner *and* design rows) across a persistent warm
  :class:`~repro.simulation.sharding.WorkerPool` owned by the service,
  with bit-identical results (:mod:`repro.simulation.sharding`).  The
  default scheduler is *work-stealing*: cost-balanced chunks pulled from
  the pool's shared queue, with per-row wall-clock learned by a
  :class:`RowCostModel` (:mod:`repro.simulation.costs`) and persisted as
  cache sidecars; ``scheduler="uniform"`` pins the legacy slicer;
* :class:`FaultInjectingBackend` — the chaos harness: wraps any terminal
  backend with seeded, scriptable fault schedules (raise / hang /
  kill-own-worker / FAILURE_NAN) so the fault-tolerance paths are
  exercised deterministically (:mod:`repro.simulation.faults`);
* :class:`RemoteBackend` — ships jobs to ``repro serve`` worker daemons
  (:class:`SimulationServer`) over a length-prefixed checksummed frame
  protocol, with per-endpoint circuit breakers, retries with seeded
  backoff, server-side leases/result retention, and graceful degradation
  to a local backend when the fleet is down (:mod:`repro.simulation.remote`
  / :mod:`repro.simulation.server` / :mod:`repro.simulation.protocol`);
* the experiment front end — ``repro serve --mode experiment`` daemons
  (:class:`ExperimentFrontend`) own *whole sizing runs* instead of raw
  jobs: write-ahead journaled for crash-safe resume, admission-controlled
  per tenant (:class:`~repro.simulation.budget.TenantBudgetLedger`),
  load-shedding via BUSY frames when the run queue fills, and draining
  gracefully on SIGTERM (:mod:`repro.simulation.frontend`).

Fault tolerance: a :class:`RetryPolicy` on the service re-simulates
classified-transient failures (worker death, timeouts, engine errors,
``FAILURE_NAN`` blocks) with budget-safe accounting — every failed
attempt is refunded before the retry charges, so the eventual success is
counted exactly once.  The pool self-heals after worker deaths
(re-dispatching only the lost shards) and arms per-shard watchdog
deadlines via :class:`~repro.simulation.sharding.ShardWatchdog`.

The service runs jobs synchronously (:meth:`SimulationService.run`) or
asynchronously (:meth:`SimulationService.submit` → :class:`SimFuture`),
with all budget accounting — idempotent charges, failure refunds, cache
stores — performed at resolution time, so pipelined control loops (the
double-buffered verifier, the overlapped seed phase) account bit-for-bit
like their sequential twins.  Services own their pools: ``close()`` or the
context-manager protocol releases them.

The service

* counts every SPICE-equivalent simulation (the paper's "# Simulation"
  column), split into optimization-phase and verification-phase counts,
  with an idempotent job-keyed charge path so cache hits and retried
  shards can never inflate the count, and
* models wall-clock cost so normalized-runtime comparisons can be made
  without a real HSPICE testbed.

:class:`CircuitSimulator` remains as a thin compatibility shim whose five
legacy entry points all compile to jobs and route through
:meth:`SimulationService.run`.
"""

from repro.simulation.budget import SimulationBudget, SimulationPhase
from repro.simulation.costs import (
    ROW_SECONDS_KEY,
    RowCostModel,
    is_reserved_metric,
    strip_reserved_metrics,
)
from repro.simulation.service import (
    BACKENDS,
    CACHE_FORMAT_VERSION,
    BatchedMNABackend,
    CachingBackend,
    FailureKind,
    ReferenceScalarBackend,
    RetryPolicy,
    ShardedDispatcher,
    SimFuture,
    SimJob,
    SimResult,
    SimulationBackend,
    SimulationRecord,
    SimulationService,
    available_backends,
    classify_failure,
    clear_spill_store,
    prune_spill_store,
    resolve_backend,
    spill_store_stats,
)
from repro.simulation.sharding import (
    SCHEDULER_STEALING,
    SCHEDULER_UNIFORM,
    SCHEDULERS,
    ShardHandle,
    ShardWatchdog,
    WorkerPool,
    plan_chunk_bounds,
    resolve_scheduler,
)
from repro.simulation.ngspice import (  # registers the "ngspice" backend
    NgspiceBackend,
    NgspiceError,
    NgspiceRunner,
)
from repro.simulation.faults import (  # registers the "chaos" backend
    ChaosFault,
    FaultInjectingBackend,
    FaultSchedule,
    NetworkFaultSchedule,
    install_chaos,
    install_network_chaos,
)
from repro.simulation.protocol import ProtocolError, RemoteError
from repro.simulation.remote import (  # registers the "remote" backend
    CircuitBreaker,
    RemoteBackend,
)
from repro.simulation.server import SimulationServer
from repro.simulation.simulator import CircuitSimulator

# The experiment front end (``repro serve --mode experiment``) sits above
# everything else in this package — imported last, and it only touches
# :mod:`repro.api` lazily, so no import cycle forms.
from repro.simulation.budget import TenantBudgetLedger
from repro.simulation.frontend import (
    ExperimentClient,
    ExperimentFrontend,
    ExperimentJournal,
    FrontendBusy,
    FrontendUnavailable,
    run_key,
)

__all__ = [
    "SimulationBudget",
    "SimulationPhase",
    "CircuitSimulator",
    "SimulationRecord",
    "SimJob",
    "SimResult",
    "SimFuture",
    "ShardHandle",
    "ShardWatchdog",
    "WorkerPool",
    "SCHEDULER_STEALING",
    "SCHEDULER_UNIFORM",
    "SCHEDULERS",
    "ROW_SECONDS_KEY",
    "RowCostModel",
    "is_reserved_metric",
    "strip_reserved_metrics",
    "plan_chunk_bounds",
    "resolve_scheduler",
    "CACHE_FORMAT_VERSION",
    "SimulationBackend",
    "SimulationService",
    "BatchedMNABackend",
    "ReferenceScalarBackend",
    "NgspiceBackend",
    "NgspiceError",
    "NgspiceRunner",
    "ChaosFault",
    "FaultInjectingBackend",
    "FaultSchedule",
    "NetworkFaultSchedule",
    "install_chaos",
    "install_network_chaos",
    "ProtocolError",
    "RemoteError",
    "CircuitBreaker",
    "RemoteBackend",
    "SimulationServer",
    "CachingBackend",
    "ShardedDispatcher",
    "RetryPolicy",
    "FailureKind",
    "classify_failure",
    "spill_store_stats",
    "prune_spill_store",
    "clear_spill_store",
    "BACKENDS",
    "available_backends",
    "resolve_backend",
    "TenantBudgetLedger",
    "ExperimentClient",
    "ExperimentFrontend",
    "ExperimentJournal",
    "FrontendBusy",
    "FrontendUnavailable",
    "run_key",
]
