"""Simulation service: evaluates designs under corners and mismatch.

The optimizer and the verification phase never call circuit models directly;
they go through a :class:`~repro.simulation.simulator.CircuitSimulator`,
which

* evaluates ``(x, corner, h)`` tuples and returns metric dictionaries,
* counts every SPICE-equivalent simulation (the paper's "# Simulation"
  column), split into optimization-phase and verification-phase counts,
* models wall-clock cost so normalized-runtime comparisons can be made
  without a real HSPICE testbed, and
* exposes batched helpers that mirror the paper's parallel sample size.
"""

from repro.simulation.budget import SimulationBudget, SimulationPhase
from repro.simulation.simulator import CircuitSimulator, SimulationRecord

__all__ = [
    "SimulationBudget",
    "SimulationPhase",
    "CircuitSimulator",
    "SimulationRecord",
]
