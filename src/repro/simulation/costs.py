"""Learned per-row simulation cost estimates for the shard scheduler.

Real-engine rows are heavy-tailed: per-deck timeouts, convergence
retries and per-corner transient-length differences make one row cost
10× its siblings, and a scheduler that slices uniformly idles the whole
pool behind that straggler.  This module is the cost side of the
work-stealing scheduler in :mod:`repro.simulation.sharding`:

* every evaluation stamps its wall-clock into the metrics block under
  the reserved :data:`ROW_SECONDS_KEY` (one ``(B,)`` array, seconds per
  row — exact for one-row shards, a uniform split of the shard's
  elapsed time otherwise);
* :class:`RowCostModel` accumulates those observations — exact per-row
  costs keyed by the job's content hash, plus an EWMA seconds-per-row
  rate keyed by ``(circuit, backend)`` — and answers ``predict(job)``
  when the dispatcher plans the next job's chunk bounds;
* with a ``sidecar_dir`` (the disk cache's ``spill_dir`` keyspace, same
  ``<hash[:2]>/<hash>`` fan-out), observations persist across runs:
  the second sweep of an experiment plans its chunks from the first
  sweep's measured row costs.

Reserved keys (the ``__``-prefixed namespace) ride inside metrics
dicts but are **not metrics**: failure detection skips them, the cache
refuses to store them, and :class:`~repro.simulation.service.SimResult`
pops :data:`ROW_SECONDS_KEY` into its ``row_seconds`` field before
consumers see the block.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from typing import Dict, Optional

import numpy as np

#: Prefix marking reserved (non-metric) keys inside a metrics block.
RESERVED_METRIC_PREFIX = "__"

#: Reserved key carrying per-row wall-clock seconds through a metrics
#: block: one ``(B,)`` float array, NaN for rows that never ran (e.g.
#: watchdog-degraded shards).
ROW_SECONDS_KEY = "__row_seconds__"

#: Sidecar layout version; unknown versions are ignored (treated as
#: having no prior observations), never misread.
COST_SIDECAR_VERSION = 1


def is_reserved_metric(name: str) -> bool:
    """Whether ``name`` is a reserved (non-metric) metrics-block key."""
    return name.startswith(RESERVED_METRIC_PREFIX)


def strip_reserved_metrics(
    metrics: Dict[str, np.ndarray]
) -> Dict[str, np.ndarray]:
    """``metrics`` without reserved keys (a new dict; input untouched)."""
    return {
        name: values
        for name, values in metrics.items()
        if not is_reserved_metric(name)
    }


class RowCostModel:
    """Accumulates per-row wall-clock observations and predicts job costs.

    Thread-safe: observations arrive from whichever thread resolves a
    shard handle while the control loop plans the next dispatch.  Two
    granularities are kept:

    * **exact rows** — the last observed ``(B,)`` seconds array per job
      content hash, so re-simulating a known job (a retry, a cache-
      refused failure block, the second run of a sweep) plans chunks
      from that job's *actual* per-row costs;
    * **rates** — an EWMA of mean seconds-per-row keyed by
      ``circuit:backend``, the fallback prediction for jobs never seen
      before (uniform, but correctly scaled for watchdog deadlines and
      cross-job comparisons).

    With ``sidecar_dir`` both granularities persist to disk as JSON
    sidecars (atomic same-directory replace, like the cache spill) and
    are consulted on a memory miss, so cost knowledge survives the
    process.  Every persistence failure is silent by design: a model
    that cannot read or write its sidecars is merely uninformed, never
    wrong.
    """

    def __init__(
        self,
        sidecar_dir: Optional[str] = None,
        alpha: float = 0.25,
        max_jobs: int = 4096,
    ):
        self.alpha = float(alpha)
        self.max_jobs = int(max_jobs)
        self.sidecar_dir: Optional[str] = None
        self._lock = threading.Lock()
        self._rows: Dict[str, np.ndarray] = {}
        self._rates: Dict[str, float] = {}
        #: Observations accepted so far (observable; tests assert it).
        self.observations = 0
        if sidecar_dir is not None:
            self.sidecar_dir = os.path.abspath(os.fspath(sidecar_dir))
            try:
                os.makedirs(self.sidecar_dir, exist_ok=True)
            except OSError:
                self.sidecar_dir = None
        self._load_summary()

    # ------------------------------------------------------------------
    @staticmethod
    def _rate_key(circuit_name: str, backend_name: str) -> str:
        return f"{circuit_name}:{backend_name}"

    def rate(self, circuit_name: str, backend_name: str) -> Optional[float]:
        """The learned EWMA seconds-per-row for one (circuit, backend)."""
        with self._lock:
            return self._rates.get(self._rate_key(circuit_name, backend_name))

    # ------------------------------------------------------------------
    def observe(
        self, job, row_seconds: np.ndarray, backend_name: str
    ) -> bool:
        """Record one job's measured per-row seconds.

        Non-finite and negative entries (rows that never ran) are
        excluded from the rate update and from the stored exact rows'
        usable mask; an observation with no finite row is dropped.
        Returns whether the observation was accepted.
        """
        rows = np.asarray(row_seconds, dtype=float)
        if rows.ndim != 1 or rows.shape[0] != job.batch:
            return False
        finite = np.isfinite(rows) & (rows >= 0)
        if not finite.any():
            return False
        mean = float(rows[finite].mean())
        key = self._rate_key(job.circuit_name, backend_name)
        with self._lock:
            if len(self._rows) >= self.max_jobs:
                # Drop the oldest exact-rows entry (insertion order);
                # the EWMA rate retains its contribution.
                self._rows.pop(next(iter(self._rows)), None)
            self._rows[job.job_id] = rows.copy()
            previous = self._rates.get(key)
            self._rates[key] = (
                mean
                if previous is None
                else (1.0 - self.alpha) * previous + self.alpha * mean
            )
            self.observations += 1
            rates = dict(self._rates)
        self._write_job_sidecar(
            job.job_id, job.circuit_name, backend_name, rows
        )
        self._write_summary(rates)
        return True

    def predict(self, job, backend_name: str) -> Optional[np.ndarray]:
        """Predicted ``(B,)`` seconds per row for ``job``, or ``None``.

        Exact observed rows win (memory, then sidecar); otherwise the
        ``circuit:backend`` EWMA rate broadcasts uniformly; a model with
        no knowledge returns ``None`` and the scheduler falls back to
        cost-agnostic chunking.
        """
        with self._lock:
            rows = self._rows.get(job.job_id)
        if rows is None:
            rows = self._load_job_sidecar(job.job_id)
            if rows is not None and rows.shape[0] == job.batch:
                with self._lock:
                    self._rows.setdefault(job.job_id, rows)
        if rows is not None and rows.shape[0] == job.batch:
            finite = np.isfinite(rows) & (rows >= 0)
            if finite.any():
                filled = rows.copy()
                filled[~finite] = float(rows[finite].mean())
                return filled
        rate = self.rate(job.circuit_name, backend_name)
        if rate is not None and rate > 0:
            return np.full(job.batch, rate)
        return None

    # ------------------------------------------------------------------
    # Sidecar persistence (best-effort, atomic, version-stamped)
    # ------------------------------------------------------------------
    def _job_sidecar_path(self, job_id: str) -> str:
        assert self.sidecar_dir is not None
        return os.path.join(self.sidecar_dir, job_id[:2], f"{job_id}.json")

    def _summary_path(self) -> str:
        assert self.sidecar_dir is not None
        return os.path.join(self.sidecar_dir, "summary.json")

    @staticmethod
    def _write_json(path: str, payload: dict) -> None:
        directory = os.path.dirname(path)
        os.makedirs(directory, exist_ok=True)
        fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle)
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise

    def _write_job_sidecar(
        self,
        job_id: str,
        circuit_name: str,
        backend_name: str,
        rows: np.ndarray,
    ) -> None:
        if self.sidecar_dir is None:
            return
        payload = {
            "version": COST_SIDECAR_VERSION,
            "circuit": circuit_name,
            "backend": backend_name,
            # JSON has no NaN literal; encode never-ran rows as None.
            "row_seconds": [
                float(value) if np.isfinite(value) else None
                for value in rows
            ],
        }
        try:
            self._write_json(self._job_sidecar_path(job_id), payload)
        except OSError:
            pass

    def _write_summary(self, rates: Dict[str, float]) -> None:
        if self.sidecar_dir is None:
            return
        payload = {
            "version": COST_SIDECAR_VERSION,
            "seconds_per_row": rates,
        }
        try:
            self._write_json(self._summary_path(), payload)
        except OSError:
            pass

    def _load_job_sidecar(self, job_id: str) -> Optional[np.ndarray]:
        if self.sidecar_dir is None:
            return None
        try:
            with open(self._job_sidecar_path(job_id)) as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            return None
        if (
            not isinstance(payload, dict)
            or payload.get("version") != COST_SIDECAR_VERSION
            or not isinstance(payload.get("row_seconds"), list)
        ):
            return None
        try:
            return np.array(
                [
                    np.nan if value is None else float(value)
                    for value in payload["row_seconds"]
                ],
                dtype=float,
            )
        except (TypeError, ValueError):
            return None

    def _load_summary(self) -> None:
        if self.sidecar_dir is None:
            return
        try:
            with open(self._summary_path()) as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            return
        if (
            not isinstance(payload, dict)
            or payload.get("version") != COST_SIDECAR_VERSION
            or not isinstance(payload.get("seconds_per_row"), dict)
        ):
            return
        rates = {}
        for key, value in payload["seconds_per_row"].items():
            try:
                rate = float(value)
            except (TypeError, ValueError):
                continue
            if np.isfinite(rate) and rate > 0:
                rates[str(key)] = rate
        with self._lock:
            for key, rate in rates.items():
                self._rates.setdefault(key, rate)


__all__ = [
    "COST_SIDECAR_VERSION",
    "RESERVED_METRIC_PREFIX",
    "ROW_SECONDS_KEY",
    "RowCostModel",
    "is_reserved_metric",
    "strip_reserved_metrics",
]
