"""Backend-pluggable simulation service.

The optimizer, the verifier and the baselines all consume one abstract
oracle — "simulate (design, corner, mismatch)" — but before this module
that oracle was five ad-hoc ``CircuitSimulator`` entry points, each with its
own batching axis, budget charge and sharding branch.  The service layer
turns every simulation request into a single value object and a single
call:

* :class:`SimJob` — a frozen request: a design block × a corner block × a
  mismatch block plus a phase tag.  Jobs carry a deterministic content hash
  (:attr:`SimJob.job_id`) so identical requests can be recognised across
  caching, retries and process boundaries.
* :class:`SimResult` — the response: one ``(B,)`` array per metric, plus
  per-row :class:`SimulationRecord` views for consumers that want dicts.
* :class:`SimulationBackend` — the engine boundary.  Two terminal backends
  ship today: :class:`BatchedMNABackend` (the vectorized engine from PRs
  1–2) and :class:`ReferenceScalarBackend` (the bit-exact scalar path,
  previously an ``if not circuit.supports_batch`` branch).  Future engines
  (an ngspice adapter, a remote worker pool) plug in here without touching
  the control loop.
* :class:`CachingBackend` — a decorator backend memoizing results by job
  hash; a hit costs zero budget (configurable on the service).  With a
  ``spill_dir`` it also persists result blocks to an on-disk store keyed by
  the same hash, so repeated experiment sweeps replay across processes.
* :class:`ShardedDispatcher` — a decorator backend splitting any job's
  batch axis — mismatch rows, corner rows *and* design rows alike — across
  the persistent warm :class:`~repro.simulation.sharding.WorkerPool` owned
  by the service.
* :class:`SimulationService` — owns the circuit, the budget, the backend
  chain and the worker pool; ``service.run(job)`` is the one synchronous
  call everything routes through, and ``service.submit(job)`` is its
  futures-based twin (see below).

Above the job layer sits the experiment front end
(:mod:`repro.simulation.frontend`): a ``repro serve --mode experiment``
daemon that owns *whole sizing runs* — journaled for crash recovery and
admission-controlled per tenant via
:class:`~repro.simulation.budget.TenantBudgetLedger` — while every
simulation it triggers still flows through this service layer.

Budget accounting is charged at the service, not in the backends, so cache
hits and retried shards can never inflate the paper's "# Simulation"
column (see :meth:`repro.simulation.budget.SimulationBudget.charge`), and a
backend failure *refunds* the charge — a job that never produced metrics is
never counted (see :meth:`SimulationService.run`).

Async execution path
--------------------
``service.submit(job)`` returns a :class:`SimFuture` immediately.  When the
job shards across the service's worker pool, its shards are dispatched
right away and evaluate in the background; otherwise the evaluation is
deferred into the future itself (lazy thunk) and runs when the caller
resolves it.  *All* budget accounting — the charge, the idempotency key,
the failure refund and the cache store — happens at **resolution time**
(:meth:`SimFuture.result`), in the caller's thread, in resolution order:

* resolving futures in submission order reproduces the synchronous
  schedule's budget trajectory exactly (same totals, same
  ``max_simulations`` abort point, same idempotency keys);
* a future that is *cancelled* (or simply never resolved) charges nothing
  and stores nothing — which is what makes speculative double-buffered
  submission safe: work the sequential schedule would never have issued is
  never accounted, and with the lazy thunk it is never even evaluated.

The control loop uses this for pipelining (``core/verification.py``
double-buffers full-MC chunks; the optimizer seed phase overlaps its
corner mega-batches) with bit-identical results, streams and budgets.

Writing a backend
-----------------
A terminal backend is a class with a unique ``name`` and one method::

    class MyBackend(SimulationBackend):
        name = "mine"

        def evaluate(self, circuit, job):  # -> {metric: (B,) array}
            ...

    BACKENDS[MyBackend.name] = MyBackend

Contract, in order of importance:

1. Return one ``(job.batch,)`` float array per ``circuit.metric_names``
   entry, rows aligned with ``job.row_corners`` / ``job.mismatch`` (or
   ``job.designs`` for design-axis jobs).  Use NaN for rows the engine
   could not evaluate — the reward pipeline treats NaN as a constraint
   violation, so partial failures degrade instead of crashing.
2. Never touch the budget; the service owns all accounting.
3. The zero-argument constructor must build a working instance (worker
   processes rebuild backends from :data:`BACKENDS` by name; pull
   configuration from the environment the way
   :class:`repro.simulation.ngspice.NgspiceBackend` resolves its
   executable).
4. Raise for deployment errors, degrade (NaN) for simulation errors.
   Raising aborts the job and refunds its budget charge.

Registered names are automatically selectable from
``ExperimentConfig(backend=...)`` and ``python -m repro --backend ...``,
and compose with :class:`CachingBackend` / :class:`ShardedDispatcher`
without further wiring.  See :mod:`repro.simulation.ngspice` for a complete
external-process example.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
import threading
import time
import warnings
import zipfile
from collections import deque
from concurrent.futures import CancelledError
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, replace
from enum import Enum
from subprocess import TimeoutExpired
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.circuits.base import AnalogCircuit
from repro.simulation.budget import SimulationBudget, SimulationPhase
from repro.simulation.costs import (
    ROW_SECONDS_KEY,
    RowCostModel,
    is_reserved_metric,
    strip_reserved_metrics,
)
from repro.simulation.sharding import (
    SCHEDULER_STEALING,
    ShardHandle,
    ShardWatchdog,
    WorkerPool,
    dispatch_job_sharded,
    resolve_scheduler,
)
from repro.variation.corners import CornerBatch, PVTCorner


#: Batch axes a job can fan out over.
CONDITION_AXIS = "conditions"  # one design × B (corner, mismatch) rows
DESIGN_AXIS = "designs"  # M designs × one corner at nominal mismatch


def failed_row_mask(metrics: Dict[str, np.ndarray]) -> np.ndarray:
    """``(B,)`` mask of rows the engine never produced.

    Failure is marked explicitly by the backend with
    :data:`repro.spice.deck.FAILURE_NAN` — a payload-tagged NaN written
    only for cells the engine never evaluated (subprocess crash/timeout,
    cell absent from the measure log).  A row is failed when *every* metric
    carries the tag.  Plain NaN — a measure the engine *reported* as
    failed, or an analytic backend's unconverged row — is a genuine result
    and is never mistaken for infrastructure failure, so legitimately
    all-NaN results stay charged and cacheable.  Reserved bookkeeping
    keys (``__``-prefixed, e.g. the per-row timing block) are not
    metrics and never participate in failure detection."""
    from repro.spice.deck import failure_nan_mask

    blocks = [
        np.asarray(block)
        for name, block in metrics.items()
        if not is_reserved_metric(name)
    ]
    if not blocks:
        return np.zeros(0, dtype=bool)
    return np.logical_and.reduce([failure_nan_mask(block) for block in blocks])


def is_failure_block(metrics: Dict[str, np.ndarray]) -> bool:
    """Whether a metrics block is the degradation signature of a whole-job
    infrastructure failure: every cell of every metric tagged
    :data:`~repro.spice.deck.FAILURE_NAN`.  The service refunds the budget
    charge for such blocks, mirroring the raise path — a job the engine
    never evaluated is never counted.  The cache is stricter still: it
    refuses any block containing a failed *row* (:func:`failed_row_mask`),
    so a transient per-row flake is re-simulated rather than memoized
    forever."""
    mask = failed_row_mask(metrics)
    return mask.size > 0 and bool(mask.all())


def _readonly(array: Optional[np.ndarray]) -> Optional[np.ndarray]:
    if array is None:
        return None
    # Always copy: freezing a view (or the caller's own array) in place
    # would leak the job's immutability back into e.g. a MismatchSet's
    # shared samples matrix.
    array = np.array(array, dtype=float, order="C")
    array.setflags(write=False)
    return array


@dataclass(frozen=True, eq=False)
class SimJob:
    """One immutable simulation request.

    Attributes
    ----------
    circuit_name:
        Registry name of the circuit the job targets (jobs must be
        self-describing so they can cross process boundaries).
    designs:
        ``(M, p)`` block of normalised sizing vectors.  ``M == 1`` for
        condition-axis jobs (the design is broadcast over the rows).
    corners:
        Corner block: a tuple of length 1 (broadcast over the batch) or of
        length ``B`` (one corner per row).
    mismatch:
        ``(B, r)`` mismatch block, or ``None`` for nominal devices.
    phase:
        Which phase of the framework is paying for the job.
    axis:
        ``"conditions"`` (one design, many corner/mismatch rows) or
        ``"designs"`` (many designs, one corner, nominal mismatch).
    """

    circuit_name: str
    designs: np.ndarray
    corners: Tuple[PVTCorner, ...]
    mismatch: Optional[np.ndarray]
    phase: SimulationPhase = SimulationPhase.OPTIMIZATION
    axis: str = CONDITION_AXIS

    def __post_init__(self) -> None:
        designs = _readonly(np.atleast_2d(self.designs))
        object.__setattr__(self, "designs", designs)
        object.__setattr__(self, "corners", tuple(self.corners))
        object.__setattr__(self, "mismatch", _readonly(self.mismatch))
        if not self.corners:
            raise ValueError("a SimJob needs at least one corner")
        if self.axis not in (CONDITION_AXIS, DESIGN_AXIS):
            raise ValueError(f"unknown job axis {self.axis!r}")
        if self.axis == DESIGN_AXIS:
            if self.mismatch is not None:
                raise ValueError("design-axis jobs run at nominal mismatch")
            if len(self.corners) != 1:
                raise ValueError("design-axis jobs take a single corner")
        else:
            if self.designs.shape[0] != 1:
                raise ValueError(
                    "condition-axis jobs take a single design; use the "
                    "design axis for design batches"
                )
            if self.mismatch is not None:
                if self.mismatch.ndim != 2:
                    raise ValueError("mismatch block must be 2-D (B, r)")
                rows = self.mismatch.shape[0]
                if len(self.corners) not in (1, rows):
                    raise ValueError(
                        f"corner block ({len(self.corners)}) and mismatch "
                        f"block ({rows}) lengths differ"
                    )

    # ------------------------------------------------------------------
    @classmethod
    def conditions(
        cls,
        circuit_name: str,
        x_normalized: np.ndarray,
        corners: Sequence[PVTCorner],
        mismatch: Optional[np.ndarray] = None,
        phase: SimulationPhase = SimulationPhase.OPTIMIZATION,
    ) -> "SimJob":
        """One design across a block of (corner, mismatch) conditions."""
        return cls(
            circuit_name=circuit_name,
            designs=np.asarray(x_normalized, dtype=float)[None, :],
            corners=tuple(corners),
            mismatch=mismatch,
            phase=phase,
            axis=CONDITION_AXIS,
        )

    @classmethod
    def design_batch(
        cls,
        circuit_name: str,
        designs: np.ndarray,
        corner: PVTCorner,
        phase: SimulationPhase = SimulationPhase.INITIAL_SAMPLING,
    ) -> "SimJob":
        """Many designs at one corner and nominal mismatch."""
        return cls(
            circuit_name=circuit_name,
            designs=np.atleast_2d(np.asarray(designs, dtype=float)),
            corners=(corner,),
            mismatch=None,
            phase=phase,
            axis=DESIGN_AXIS,
        )

    # ------------------------------------------------------------------
    @property
    def batch(self) -> int:
        """Number of rows the job evaluates (= simulations charged)."""
        if self.axis == DESIGN_AXIS:
            return int(self.designs.shape[0])
        if self.mismatch is not None:
            return int(self.mismatch.shape[0])
        return len(self.corners)

    @property
    def cost(self) -> int:
        """Simulations the budget charges for this job (the paper counts
        one per evaluated row, batched or not)."""
        return self.batch

    @property
    def row_corners(self) -> Tuple[PVTCorner, ...]:
        """One corner per row (broadcasting a length-1 corner block)."""
        if len(self.corners) == self.batch:
            return self.corners
        return self.corners * self.batch

    @property
    def job_id(self) -> str:
        """Deterministic content hash of the request.

        Stable across processes and sessions: it digests the circuit name,
        the axis, the design/mismatch bytes and the corner names — not
        object identities — so equal requests always collide.
        """
        cached = self.__dict__.get("_job_id")
        if cached is None:
            digest = hashlib.sha256()
            digest.update(self.circuit_name.encode())
            digest.update(self.axis.encode())
            digest.update(str(self.designs.shape).encode())
            digest.update(self.designs.tobytes())
            # Raw corner floats, not display names: PVTCorner.name rounds
            # vdd/temperature for readability, which would collide
            # physically different corners.
            for corner in self.corners:
                digest.update(corner.process.value.encode())
                digest.update(np.float64(corner.vdd).tobytes())
                digest.update(np.float64(corner.temperature).tobytes())
            if self.mismatch is None:
                digest.update(b"nominal")
            else:
                digest.update(str(self.mismatch.shape).encode())
                digest.update(self.mismatch.tobytes())
            cached = digest.hexdigest()
            object.__setattr__(self, "_job_id", cached)
        return cached

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SimJob):
            return NotImplemented
        return self.job_id == other.job_id and self.phase is other.phase

    def __hash__(self) -> int:
        return hash(self.job_id)

    def shard(self, lo: int, hi: int) -> "SimJob":
        """The sub-job covering rows ``[lo, hi)`` of the batch axis."""
        if self.axis == DESIGN_AXIS:
            return replace(self, designs=self.designs[lo:hi])
        corners = self.corners
        if len(corners) > 1:
            corners = corners[lo:hi]
        mismatch = None if self.mismatch is None else self.mismatch[lo:hi]
        return replace(self, corners=corners, mismatch=mismatch)


@dataclass
class SimResult:
    """Metrics tensor plus per-row record views for one :class:`SimJob`."""

    job: SimJob
    metrics: Dict[str, np.ndarray]
    cached: bool = False
    backend: str = ""
    #: Measured wall-clock seconds per row (``(B,)``), or ``None`` when
    #: the evaluation was not timed (cache hits, remote replies).  NaN
    #: rows never ran (watchdog-degraded shards).  This is what the
    #: work-stealing scheduler's cost model learns from.
    row_seconds: Optional[np.ndarray] = None

    def matrix(self, names: Sequence[str]) -> np.ndarray:
        """``(B, len(names))`` metric matrix in the requested column order."""
        return np.column_stack(
            [np.asarray(self.metrics[name], dtype=float) for name in names]
        )

    def to_records(self, names: Sequence[str]) -> List["SimulationRecord"]:
        """Per-row :class:`SimulationRecord` views (cached metric vectors)."""
        names = tuple(names)
        matrix = self.matrix(names)
        corners = self.job.row_corners
        mismatch = self.job.mismatch
        seconds = self.row_seconds
        return [
            SimulationRecord(
                metrics=dict(zip(names, row.tolist())),
                corner=corners[index],
                mismatch=None if mismatch is None else mismatch[index],
                vector=row,
                vector_names=names,
                seconds=(
                    None
                    if seconds is None or not np.isfinite(seconds[index])
                    else float(seconds[index])
                ),
            )
            for index, row in enumerate(matrix)
        ]


@dataclass(frozen=True)
class SimulationRecord:
    """One simulation outcome: the metrics for ``(x, corner, h)``.

    Records produced by a batched sweep carry a precomputed metric vector
    (one row of the batch matrix), so stacking many records back into a
    matrix needs no per-record dict traffic.
    """

    metrics: Dict[str, float]
    corner: PVTCorner
    mismatch: Optional[np.ndarray]
    vector: Optional[np.ndarray] = field(default=None, repr=False, compare=False)
    vector_names: Optional[Tuple[str, ...]] = field(
        default=None, repr=False, compare=False
    )
    #: Measured wall-clock seconds for this row, when the evaluation was
    #: timed (``None`` for cache hits and untimed paths).  Excluded from
    #: equality: two runs of the same row are the same result.
    seconds: Optional[float] = field(default=None, repr=False, compare=False)

    def metric_vector(self, names: Sequence[str]) -> np.ndarray:
        if self.vector is not None and tuple(names) == self.vector_names:
            # Copy so callers can mutate the result without corrupting the
            # record (scalar records always return a fresh array).
            return self.vector.copy()
        return np.array([self.metrics[name] for name in names])


# ----------------------------------------------------------------------
# Backends
# ----------------------------------------------------------------------
class SimulationBackend:
    """The engine boundary: evaluates a :class:`SimJob` on a circuit.

    Terminal backends (ones that actually simulate) are registered in
    :data:`BACKENDS` under a short name so worker processes can rebuild
    them; decorator backends (caching, sharding) wrap another backend and
    are composed by :class:`SimulationService`.
    """

    #: Registry name ("" for decorator backends that never cross a
    #: process boundary themselves).
    name: str = ""

    @property
    def worker_reconstructible(self) -> bool:
        """Whether ``BACKENDS[self.name]()`` inside a worker process
        rebuilds an instance equivalent to this one.

        True by default (terminal backends pull configuration from the
        environment, per the backend contract).  Backends configured
        through *constructor arguments* the zero-argument rebuild cannot
        reproduce — e.g. an :class:`~repro.simulation.ngspice.NgspiceBackend`
        with an explicit executable — must return False so the sharded
        dispatcher keeps their jobs in-process instead of silently running
        shards on a differently-configured twin.
        """
        return True

    def evaluate(
        self, circuit: AnalogCircuit, job: SimJob
    ) -> Dict[str, np.ndarray]:
        """Return ``{metric: (B,) array}`` for the job's batch."""
        raise NotImplementedError

    def run(self, circuit: AnalogCircuit, job: SimJob) -> SimResult:
        """Evaluate and wrap into a :class:`SimResult`."""
        return SimResult(
            job=job, metrics=self.evaluate(circuit, job), backend=self.name
        )


class BatchedMNABackend(SimulationBackend):
    """The production engine: one vectorized pass per job (PRs 1–2).

    Condition-axis jobs run through :meth:`AnalogCircuit.evaluate_batch`
    (corner axis carried by a :class:`CornerBatch` when the block has more
    than one corner); design-axis jobs run through
    :meth:`AnalogCircuit.evaluate_design_batch`.  Circuits without a
    vectorized model fall back to the scalar loop inside those methods, so
    every circuit works on this backend.
    """

    name = "batched"

    def evaluate(
        self, circuit: AnalogCircuit, job: SimJob
    ) -> Dict[str, np.ndarray]:
        if job.axis == DESIGN_AXIS:
            return circuit.evaluate_design_batch(job.designs, job.corners[0])
        corner: Union[PVTCorner, CornerBatch]
        if len(job.corners) > 1:
            corner = CornerBatch.from_corners(job.corners)
        else:
            corner = job.corners[0]
        return circuit.evaluate_batch(job.designs[0], corner, job.mismatch)


class ReferenceScalarBackend(SimulationBackend):
    """The bit-exact scalar reference path, one row at a time.

    Formerly the ``if not circuit.supports_batch`` branch inside every
    simulator entry point; as a backend it is selectable for any circuit —
    the debugging / cross-validation twin of :class:`BatchedMNABackend`.
    """

    name = "scalar"

    def evaluate(
        self, circuit: AnalogCircuit, job: SimJob
    ) -> Dict[str, np.ndarray]:
        if job.axis == DESIGN_AXIS:
            rows = [
                circuit.evaluate(design, job.corners[0])
                for design in job.designs
            ]
        else:
            design = job.designs[0]
            corners = job.row_corners
            rows = [
                circuit.evaluate(
                    design,
                    corners[index],
                    None if job.mismatch is None else job.mismatch[index],
                )
                for index in range(job.batch)
            ]
        return {
            name: np.array([row[name] for row in rows])
            for name in circuit.metric_names
        }


#: Terminal backends reconstructible by name inside worker processes.
BACKENDS: Dict[str, type] = {
    BatchedMNABackend.name: BatchedMNABackend,
    ReferenceScalarBackend.name: ReferenceScalarBackend,
}


# The ngspice adapter lives in its own module (subprocess plumbing the
# in-process backends never need) and registers itself into BACKENDS when
# repro/simulation/__init__.py imports it — which Python guarantees has
# happened before any repro.simulation.* submodule finishes importing, so
# resolve_backend("ngspice") works everywhere, including inside sharded
# worker processes.


def available_backends() -> List[str]:
    """Sorted registry names of every terminal backend."""
    return sorted(BACKENDS)


def resolve_backend(backend: Union[str, SimulationBackend]) -> SimulationBackend:
    """A backend instance from a registry name (or pass one through)."""
    if isinstance(backend, SimulationBackend):
        return backend
    try:
        return BACKENDS[backend]()
    except KeyError:
        raise KeyError(
            f"unknown simulation backend {backend!r}; "
            f"available: {sorted(BACKENDS)}"
        ) from None


# ----------------------------------------------------------------------
# Failure classification and retry policy
# ----------------------------------------------------------------------
class FailureKind(Enum):
    """Why one evaluation attempt produced no usable metrics.

    The retry policy keys on this classification, not on exception types:
    infrastructure failures (a dead worker, a hung engine, a flaky
    license) are transient and worth re-simulating; anything unclassified
    is :attr:`OTHER` — most likely a code bug — and is never retried by
    default, because re-running a deterministic bug burns budgeted
    wall-clock to reproduce the same crash.
    """

    #: A pool worker died (``BrokenProcessPool``): segfault, OOM-kill,
    #: chaos ``kill``.
    WORKER_DEATH = "worker_death"
    #: A deadline fired: futures timeout, subprocess timeout, watchdog.
    TIMEOUT = "timeout"
    #: The external engine failed (:class:`~repro.simulation.ngspice
    #: .NgspiceError`, including injected :class:`~repro.simulation.faults
    #: .ChaosFault`).
    ENGINE = "engine"
    #: No exception, but the metrics carry
    #: :data:`~repro.spice.deck.FAILURE_NAN` rows — the engine never
    #: produced those rows (graceful-degradation paths: non-strict
    #: ngspice, watchdog-degraded shards, chaos ``nan``).
    FAILURE_NAN = "failure_nan"
    #: Everything else; not retried by default.
    OTHER = "other"


def classify_failure(error: BaseException) -> FailureKind:
    """Map one raised exception onto a :class:`FailureKind`."""
    if isinstance(error, BrokenProcessPool):
        return FailureKind.WORKER_DEATH
    if isinstance(error, (FuturesTimeoutError, TimeoutError, TimeoutExpired)):
        return FailureKind.TIMEOUT
    try:  # lazy: ngspice.py imports this module
        from repro.simulation.ngspice import NgspiceError
    except ImportError:  # pragma: no cover - circular-import fallback
        NgspiceError = ()  # type: ignore[assignment]
    if isinstance(error, NgspiceError):
        return FailureKind.ENGINE
    return FailureKind.OTHER


#: Failure kinds retried by default: every *transient infrastructure*
#: class, never :attr:`FailureKind.OTHER`.
DEFAULT_RETRY_ON = frozenset(
    {
        FailureKind.WORKER_DEATH,
        FailureKind.TIMEOUT,
        FailureKind.ENGINE,
        FailureKind.FAILURE_NAN,
    }
)


@dataclass(frozen=True)
class RetryPolicy:
    """Budget-safe retry policy for one :class:`SimulationService`.

    ``max_attempts`` is the *total* evaluation attempts per job (1 = no
    retries).  Between attempts the service sleeps an exponential backoff
    with **deterministic seeded jitter**: attempt ``k`` (1-based) waits
    ``backoff · factor^(k-1) · (1 + jitter·u)`` where ``u ∈ [0, 1)`` is
    drawn from ``default_rng([seed, job_hash, k])`` — a pure function of
    the policy seed, the job's content hash and the attempt index, so a
    rerun of the same faulty schedule waits the same delays (no shared RNG
    stream is consumed; the experiment's seeded sampling streams are
    untouched by retries).

    Budget safety is the service's side of the contract: every failed
    attempt is refunded (charge + idempotency key) *before* the retry
    charges again, so a job that eventually succeeds is counted exactly
    once and a job that exhausts its attempts is counted zero times —
    bit-identical to the fault-free trajectory.

    The optional watchdog fields configure the per-shard deadline
    (:class:`~repro.simulation.sharding.ShardWatchdog`) the service arms
    on its sharded dispatcher: ``watchdog_seconds_per_row × rows``,
    floored at ``watchdog_floor``.  ``None`` leaves hung shards to the
    engine-level timeouts.
    """

    max_attempts: int = 3
    backoff: float = 0.05
    backoff_factor: float = 2.0
    jitter: float = 0.1
    seed: int = 0
    retry_on: frozenset = DEFAULT_RETRY_ON
    watchdog_seconds_per_row: Optional[float] = None
    watchdog_floor: float = 5.0

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.backoff < 0 or self.jitter < 0:
            raise ValueError("backoff and jitter must be non-negative")
        normalized = frozenset(
            FailureKind(kind) if not isinstance(kind, FailureKind) else kind
            for kind in self.retry_on
        )
        object.__setattr__(self, "retry_on", normalized)

    # ------------------------------------------------------------------
    def should_retry(self, kind: FailureKind, attempt: int) -> bool:
        """Whether attempt ``attempt`` (1-based) failing as ``kind`` gets
        another try."""
        return attempt < self.max_attempts and kind in self.retry_on

    def delay(self, job_id: str, attempt: int) -> float:
        """The deterministic backoff before the attempt after ``attempt``."""
        if self.backoff <= 0:
            return 0.0
        base = self.backoff * self.backoff_factor ** max(attempt - 1, 0)
        if self.jitter <= 0:
            return base
        key = int(job_id[:16], 16) % (2**32) if job_id else 0
        u = np.random.default_rng([self.seed, key, attempt]).random()
        return base * (1.0 + self.jitter * u)

    def sleep(self, job_id: str, attempt: int) -> None:
        delay = self.delay(job_id, attempt)
        if delay > 0:
            time.sleep(delay)

    def watchdog(self) -> Optional[ShardWatchdog]:
        """The shard watchdog this policy configures (``None`` = off)."""
        if self.watchdog_seconds_per_row is None:
            return None
        return ShardWatchdog(
            seconds_per_row=float(self.watchdog_seconds_per_row),
            floor=float(self.watchdog_floor),
        )

    # ------------------------------------------------------------------
    # Config round trip (ExperimentConfig / CLI)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {
            "max_attempts": self.max_attempts,
            "backoff": self.backoff,
            "backoff_factor": self.backoff_factor,
            "jitter": self.jitter,
            "seed": self.seed,
            "retry_on": sorted(kind.value for kind in self.retry_on),
            "watchdog_seconds_per_row": self.watchdog_seconds_per_row,
            "watchdog_floor": self.watchdog_floor,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "RetryPolicy":
        known = {
            "max_attempts",
            "backoff",
            "backoff_factor",
            "jitter",
            "seed",
            "retry_on",
            "watchdog_seconds_per_row",
            "watchdog_floor",
        }
        unknown = set(payload) - known
        if unknown:
            raise ValueError(f"unknown RetryPolicy fields: {sorted(unknown)}")
        data = dict(payload)
        if "retry_on" in data:
            data["retry_on"] = frozenset(
                FailureKind(kind) for kind in data["retry_on"]
            )
        return cls(**data)  # type: ignore[arg-type]


def resolve_retry(
    retry: Union[None, RetryPolicy, Dict[str, object]]
) -> Optional[RetryPolicy]:
    """A :class:`RetryPolicy` from ``None`` / an instance / a dict."""
    if retry is None or isinstance(retry, RetryPolicy):
        return retry
    return RetryPolicy.from_dict(retry)


#: On-disk cache layout version: bumped whenever the spilled ``.npz``
#: payload changes shape, so stale stores from older builds are ignored
#: (treated as misses) instead of misread.  Version 2 spills with
#: ``np.savez_compressed`` (deflate — metric blocks of repeated spec
#: values compress well on fleet-shared stores); the *logical* payload is
#: unchanged, so version-1 uncompressed records remain loadable.
CACHE_FORMAT_VERSION = 2

#: Disk records stamped with any of these versions decode with the
#: current loader (``np.load`` is transparent to per-entry compression).
_COMPATIBLE_CACHE_VERSIONS = frozenset({1, 2})

#: Reserved key carrying the format stamp inside each spilled ``.npz``.
_CACHE_VERSION_KEY = "__cache_version__"


class CachingBackend(SimulationBackend):
    """Memoizes an inner backend's results by job content hash.

    A hit returns copies of the stored metric arrays and marks the result
    ``cached`` so :class:`SimulationService` can charge zero budget for it
    (the configurable paper-accounting default).  The in-memory cache is
    unbounded — jobs are a few kilobytes of metrics each — and can be
    dropped with :meth:`clear`.

    With ``spill_dir`` the cache is also **persistent across processes**:
    every stored block is written to ``spill_dir/<hash[:2]>/<hash>.npz``
    (atomic ``os.replace`` of a same-directory temp file, deflate-
    compressed, stamped with :data:`CACHE_FORMAT_VERSION`; uncompressed
    stores from older builds keep loading), and a memory miss falls back
    to the disk store before running the inner backend.  Disk loads apply exactly the
    same admission rule as stores: any block carrying a
    :data:`~repro.spice.deck.FAILURE_NAN`-tagged row — the signature of a
    run the engine never produced — is refused and re-simulated, so a stale
    or tampered spill can never resurrect an infrastructure failure.
    Repeated experiment sweeps (Table II/III regeneration) with the same
    ``cache_dir`` therefore replay entirely from disk: zero backend
    invocations, zero budget charged.
    """

    def __init__(
        self,
        inner: SimulationBackend,
        spill_dir: Optional[str] = None,
    ):
        self.inner = inner
        self._cache: Dict[str, Dict[str, np.ndarray]] = {}
        self.hits = 0
        self.misses = 0
        #: Memory misses satisfied by the on-disk store (a subset of hits).
        self.disk_hits = 0
        self.spill_dir: Optional[str] = None
        if spill_dir is not None:
            self.spill_dir = os.path.abspath(os.fspath(spill_dir))
            os.makedirs(self.spill_dir, exist_ok=True)

    @property
    def name(self) -> str:  # type: ignore[override]
        return f"cache({self.inner.name})"

    # ------------------------------------------------------------------
    # Disk spill
    # ------------------------------------------------------------------
    def _spill_path(self, job_id: str) -> str:
        assert self.spill_dir is not None
        return os.path.join(self.spill_dir, job_id[:2], f"{job_id}.npz")

    def _spill(self, job_id: str, metrics: Dict[str, np.ndarray]) -> None:
        """Atomically persist one admitted block to the on-disk store."""
        path = self._spill_path(job_id)
        directory = os.path.dirname(path)
        os.makedirs(directory, exist_ok=True)
        payload = {
            name: np.asarray(values, dtype=float)
            for name, values in metrics.items()
        }
        payload[_CACHE_VERSION_KEY] = np.array(CACHE_FORMAT_VERSION)
        # Same-directory temp file + os.replace: a concurrent reader only
        # ever sees a complete record, and a crash leaves no partial file
        # under the final name.
        fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                np.savez_compressed(handle, **payload)
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise

    def _load_spilled(self, job: SimJob) -> Optional[Dict[str, np.ndarray]]:
        """One block from the disk store, or ``None`` (miss / stale /
        corrupt / failure-tagged — all treated as plain misses)."""
        if self.spill_dir is None:
            return None
        try:
            with np.load(self._spill_path(job.job_id)) as data:
                if _CACHE_VERSION_KEY not in data.files:
                    return None
                version = int(data[_CACHE_VERSION_KEY][()])
                if version not in _COMPATIBLE_CACHE_VERSIONS:
                    return None
                metrics = {
                    name: np.array(data[name], dtype=float)
                    for name in data.files
                    if name != _CACHE_VERSION_KEY
                }
        except (OSError, ValueError, KeyError, EOFError, zipfile.BadZipFile):
            return None
        if not metrics or failed_row_mask(metrics).any():
            return None
        return metrics

    # ------------------------------------------------------------------
    def lookup(self, job: SimJob) -> Optional[Dict[str, np.ndarray]]:
        """Copies of the stored metrics for ``job``, or ``None`` on a miss.

        Counts the hit/miss either way; the service probes the cache
        *before* charging the budget so the legacy charge-before-evaluate
        order (``max_simulations`` raises before any work happens) is
        preserved on misses.  A memory miss consults the on-disk store
        (when configured) and promotes a disk hit into memory.
        """
        stored = self._cache.get(job.job_id)
        if stored is None:
            stored = self._load_spilled(job)
            if stored is not None:
                self._cache[job.job_id] = {
                    name: values.copy() for name, values in stored.items()
                }
                self.disk_hits += 1
        if stored is None:
            self.misses += 1
            return None
        self.hits += 1
        return {name: values.copy() for name, values in stored.items()}

    def store(self, job: SimJob, metrics: Dict[str, np.ndarray]) -> None:
        # Caching a block with any FAILURE_NAN-tagged row would turn a
        # transient per-row flake (subprocess timeout, row omitted from the
        # measure log) into a permanent wrong answer for this job; rows
        # with reported-failed measures (plain NaN) are still results and
        # stay cacheable.  Reserved bookkeeping keys (per-row timing) are
        # never stored: a replayed hit costs nothing, so the original
        # run's wall clock would be a lie (the cost model keeps its own
        # sidecars for that).
        if failed_row_mask(metrics).any():
            return
        metrics = strip_reserved_metrics(metrics)
        self._cache[job.job_id] = {
            name: values.copy() for name, values in metrics.items()
        }
        if self.spill_dir is not None:
            self._spill(job.job_id, metrics)

    def run(self, circuit: AnalogCircuit, job: SimJob) -> SimResult:
        metrics = self.lookup(job)
        if metrics is not None:
            return SimResult(
                job=job, metrics=metrics, cached=True, backend=self.name
            )
        result = self.inner.run(circuit, job)
        self.store(job, result.metrics)
        return SimResult(
            job=job, metrics=result.metrics, cached=False, backend=self.name
        )

    def evaluate(
        self, circuit: AnalogCircuit, job: SimJob
    ) -> Dict[str, np.ndarray]:
        return self.run(circuit, job).metrics

    def __len__(self) -> int:
        return len(self._cache)

    def clear(self) -> None:
        self._cache.clear()
        self.hits = 0
        self.misses = 0


# ----------------------------------------------------------------------
# Disk spill store maintenance (the `repro cache` CLI)
# ----------------------------------------------------------------------
def _spill_store_files(cache_dir: str) -> List[Tuple[str, int, float]]:
    """``(path, bytes, mtime)`` for every record in a spill store."""
    records: List[Tuple[str, int, float]] = []
    root = os.path.abspath(os.fspath(cache_dir))
    if not os.path.isdir(root):
        return records
    for dirpath, _dirnames, filenames in os.walk(root):
        for filename in filenames:
            if not filename.endswith(".npz"):
                continue
            path = os.path.join(dirpath, filename)
            try:
                stat = os.stat(path)
            except OSError:
                continue
            records.append((path, stat.st_size, stat.st_mtime))
    return records


def _spill_payload_bytes(records: List[Tuple[str, int, float]]) -> int:
    """Uncompressed array bytes across the store (best effort).

    Every ``.npz`` is a zip archive, so the members' ``file_size`` is the
    logical payload the deflate layer compressed away.  Records that fail
    to open (corrupt, mid-write) contribute nothing — this is a reporting
    aid, not an admission check.
    """
    total = 0
    for path, _size, _mtime in records:
        try:
            with zipfile.ZipFile(path) as archive:
                total += sum(info.file_size for info in archive.infolist())
        except (OSError, zipfile.BadZipFile):
            continue
    return total


def spill_store_stats(cache_dir: str) -> Dict[str, object]:
    """Entry count, byte totals and age span of one disk spill store.

    Always succeeds: a missing or empty ``cache_dir`` yields a zeroed
    report with ``exists: false`` — a monitoring probe must be able to
    ask about a store that no run has created yet.  ``total_bytes`` is
    what the store occupies on disk (compressed since cache format v2);
    ``payload_bytes`` is the logical array data inside, so the ratio of
    the two is the achieved compression.
    """
    root = os.path.abspath(os.fspath(cache_dir))
    records = _spill_store_files(cache_dir)
    mtimes = [mtime for _path, _size, mtime in records]
    total_bytes = sum(size for _path, size, _mtime in records)
    payload_bytes = _spill_payload_bytes(records)
    return {
        "cache_dir": root,
        "exists": os.path.isdir(root),
        "entries": len(records),
        "total_bytes": total_bytes,
        "payload_bytes": payload_bytes,
        "compression_ratio": (
            round(payload_bytes / total_bytes, 4) if total_bytes else None
        ),
        "oldest_mtime": min(mtimes) if mtimes else None,
        "newest_mtime": max(mtimes) if mtimes else None,
    }


def _remove_spill_record(path: str) -> bool:
    try:
        os.unlink(path)
    except OSError:
        return False
    # Drop the two-character fan-out directory once it empties; purely
    # cosmetic, so every failure mode is ignored.
    try:
        os.rmdir(os.path.dirname(path))
    except OSError:
        pass
    return True


def prune_spill_store(cache_dir: str, max_bytes: int) -> Dict[str, int]:
    """Evict least-recently-touched records until ≤ ``max_bytes`` remain.

    LRU by file mtime: disk *hits* do not refresh mtimes (records are
    promoted into memory and never rewritten), so this is closer to
    least-recently-*written* — good enough for the hygiene job of keeping
    a long-lived store bounded.  Returns removal/survival counts.
    """
    if max_bytes < 0:
        raise ValueError("max_bytes must be non-negative")
    records = sorted(
        _spill_store_files(cache_dir), key=lambda record: record[2]
    )
    total = sum(size for _path, size, _mtime in records)
    removed_files = 0
    removed_bytes = 0
    for path, size, _mtime in records:
        if total <= max_bytes:
            break
        if _remove_spill_record(path):
            removed_files += 1
            removed_bytes += size
            total -= size
    return {
        "removed_files": removed_files,
        "removed_bytes": removed_bytes,
        "remaining_files": len(records) - removed_files,
        "remaining_bytes": total,
    }


def clear_spill_store(cache_dir: str) -> int:
    """Delete every record in the store; returns how many were removed."""
    removed = 0
    for path, _size, _mtime in _spill_store_files(cache_dir):
        if _remove_spill_record(path):
            removed += 1
    return removed


class ShardedDispatcher(SimulationBackend):
    """Splits a job's batch axis across a persistent worker pool.

    Works uniformly for every axis — mismatch rows, corner rows and design
    rows alike — by slicing the :class:`SimJob` itself into shard jobs and
    evaluating each on a worker-side copy of the terminal backend.  Falls
    back to the in-process evaluation whenever sharding is not applicable
    (small batch, unregistered circuit, non-reconstructible backend, closed
    pool); results are concatenated in row order and are bit-identical
    either way.

    The pool is normally created — eagerly, warm — and owned by the
    :class:`SimulationService`; a dispatcher constructed without one builds
    its own lazily on first use (and is then responsible for it via
    :meth:`close`, with the interpreter-exit sweep as the backstop).
    :meth:`dispatch` is the non-blocking entry point: it returns a
    :class:`~repro.simulation.sharding.ShardHandle` with the shards already
    in flight, which is what :meth:`SimulationService.submit` pipelines on.
    """

    def __init__(
        self,
        inner: SimulationBackend,
        workers: int,
        pool: Optional[WorkerPool] = None,
        watchdog: Optional[ShardWatchdog] = None,
        scheduler: Optional[str] = None,
        cost_model: Optional[RowCostModel] = None,
    ):
        self.inner = inner
        self.workers = max(1, int(workers))
        self._pool = pool
        self._owns_pool = pool is None
        self._released = False
        self.watchdog = watchdog
        #: Shard scheduler: work-stealing by default, ``"uniform"`` pins
        #: the legacy one-slice-per-worker plan (see
        #: :func:`~repro.simulation.sharding.resolve_scheduler`).
        self.scheduler = resolve_scheduler(scheduler)
        #: Learned per-row cost estimates feeding (and fed by) the
        #: work-stealing planner; ``None`` runs cost-agnostic.
        self.cost_model = cost_model

    @property
    def name(self) -> str:  # type: ignore[override]
        return f"sharded({self.inner.name}, workers={self.workers})"

    @property
    def pool(self) -> Optional[WorkerPool]:
        """The pool shards run on (lazily created when self-owned)."""
        if (
            self._pool is None
            and self._owns_pool
            and not self._released
            and self.workers > 1
        ):
            self._pool = WorkerPool(
                self.workers, backend_names=(self.inner.name,), eager=False
            )
        return self._pool

    def dispatch(
        self, circuit: AnalogCircuit, job: SimJob
    ) -> Optional[ShardHandle]:
        """Submit the job's shards without blocking (``None`` = not
        shardable; the caller evaluates in-process instead)."""
        return dispatch_job_sharded(
            circuit,
            self.inner,
            job,
            self.pool,
            watchdog=self.watchdog,
            scheduler=self.scheduler,
            cost_model=self.cost_model,
        )

    def evaluate(
        self, circuit: AnalogCircuit, job: SimJob
    ) -> Dict[str, np.ndarray]:
        handle = self.dispatch(circuit, job)
        if handle is not None:
            return handle.result()
        return self.inner.evaluate(circuit, job)

    def close(self) -> None:
        """Shut down a self-owned pool (service-owned pools are closed by
        the service)."""
        self._released = True
        if self._owns_pool and self._pool is not None:
            self._pool.shutdown()
            self._pool = None


# ----------------------------------------------------------------------
# Futures
# ----------------------------------------------------------------------
class SimFuture:
    """One in-flight :class:`SimJob`; budget accounting at resolution.

    Produced by :meth:`SimulationService.submit`.  The underlying work is
    either a pool-backed :class:`~repro.simulation.sharding.ShardHandle`
    (shards already evaluating in the background) or a lazy thunk (the
    in-process evaluation, deferred until resolution — so a cancelled or
    abandoned future costs nothing at all).

    :meth:`result` performs the *entire* service-side accounting exactly
    once — cache-hit charge, budget charge with the idempotency key,
    failure refund, cache store — and memoizes the outcome, so repeated
    calls return the same :class:`SimResult` (or re-raise the same error)
    without double-charging.  Resolving futures in submission order
    therefore reproduces the synchronous schedule's budget trajectory
    bit-for-bit.

    :meth:`cancel` abandons the future: queued pool shards are cancelled,
    running ones finish but their results are dropped, a lazy thunk is
    never invoked — and nothing is ever charged or cached.  This is the
    discard path for speculative double-buffered submission.

    Concurrency contract: the blocking resolve runs *outside* the lock
    (only the flag checks and the memoization hold it), so a concurrent
    :meth:`cancel` — a watchdog thread, an aborting ``iter_resolved``
    consumer — returns immediately instead of blocking behind the work
    it is trying to abandon.  The resolving thread observes the cancel
    at its accounting checkpoints (before the evaluation starts, and
    again before the outcome is committed) and aborts with a net-zero
    budget charge; once the commit checkpoint has passed, :meth:`cancel`
    refuses (returns ``False``) — the job's accounting is in flight and
    can no longer be un-issued.
    """

    def __init__(
        self,
        service: "SimulationService",
        job: SimJob,
        outcome: Callable[[], Dict[str, np.ndarray]],
        cached_metrics: Optional[Dict[str, np.ndarray]] = None,
        handle: Optional[ShardHandle] = None,
    ):
        self._service = service
        self.job = job
        self._outcome = outcome
        self._cached_metrics = cached_metrics
        self._handle = handle
        self._lock = threading.Lock()
        self._done_condition = threading.Condition(self._lock)
        self._resolved = False
        self._resolving = False
        self._committing = False
        self._cancelled = False
        self._result: Optional[SimResult] = None
        self._error: Optional[BaseException] = None

    # ------------------------------------------------------------------
    @property
    def cached(self) -> bool:
        """Whether the job was satisfied by the cache at submission."""
        return self._cached_metrics is not None

    @property
    def blocking(self) -> bool:
        """Whether resolution runs the evaluation in the caller's thread.

        True for the lazy in-process thunk: no background work exists to
        overlap with, so :meth:`result` *is* the evaluation.  Schedulers
        polling :meth:`done` should treat a blocking future as work to
        resolve, not work to wait for.
        """
        return self._handle is None and self._cached_metrics is None

    def cancelled(self) -> bool:
        return self._cancelled

    def done(self) -> bool:
        """Whether :meth:`result` would return without blocking.

        A cache hit is done the moment it is submitted; a pool-backed
        future is done when its shards are; a lazy in-process thunk is
        **not** done until someone resolves it — its evaluation happens
        inside :meth:`result`, and reporting it "ready" would let a
        pipelining caller skip the overlap it was polling for (see
        :attr:`blocking`).
        """
        with self._lock:
            if self._resolved or self._cancelled:
                return True
            if self._resolving:
                return False  # another thread is mid-resolve
            if self._cached_metrics is not None:
                return True
            if self._handle is not None:
                return self._handle.done()
            return False  # lazy thunk: nothing ran yet

    def cancel(self) -> bool:
        """Abandon the future (no charge, no cache store, work dropped).

        Non-blocking even while another thread is resolving: the flag
        flips under the lock and the resolver aborts at its next
        checkpoint.  Returns ``False`` when the future was already
        resolved — or is past its commit checkpoint — because an
        accounted job cannot be un-issued.
        """
        with self._lock:
            if self._resolved or self._committing:
                return False
            if not self._cancelled:
                self._cancelled = True
                if self._handle is not None:
                    self._handle.cancel()
            return True

    def _guarded(
        self, attempt: Callable[[], Dict[str, np.ndarray]]
    ) -> Callable[[], Dict[str, np.ndarray]]:
        """Wrap one evaluation attempt with cancellation checkpoints.

        Checked before the (blocking) attempt starts and again before
        its outcome is handed back for accounting: a cancel landing in
        between raises ``CancelledError`` out of the attempt, which the
        accounting loop refunds like any other failed attempt (net-zero
        charge) and never retries.  Passing the second checkpoint flips
        :attr:`_committing`, after which :meth:`cancel` refuses.
        """

        def checkpointed() -> Dict[str, np.ndarray]:
            with self._lock:
                if self._cancelled:
                    raise CancelledError(
                        f"SimFuture for job {self.job.job_id[:12]} was "
                        f"cancelled before evaluation"
                    )
                self._committing = False
            metrics = attempt()
            with self._lock:
                if self._cancelled:
                    raise CancelledError(
                        f"SimFuture for job {self.job.job_id[:12]} was "
                        f"cancelled during evaluation; dropping its result"
                    )
                self._committing = True
            return metrics

        return checkpointed

    def result(self) -> SimResult:
        """Resolve the job: wait for the work and run the accounting.

        Single-shot and memoized: the first call charges (idempotently),
        refunds on failure and stores to the cache; every later call —
        from any thread — replays the same outcome with no further
        accounting.  Concurrent callers block on a condition until the
        resolving thread publishes the outcome; the lock is *not* held
        across the blocking resolve (see the class docstring).
        """
        with self._done_condition:
            while self._resolving:
                self._done_condition.wait()
            if self._resolved:
                if self._error is not None:
                    raise self._error
                return self._result
            if self._cancelled:
                raise CancelledError(
                    f"SimFuture for job {self.job.job_id[:12]} was cancelled"
                )
            self._resolving = True
            if self._cached_metrics is not None:
                # Cache-hit resolution is non-blocking bookkeeping; commit
                # it atomically with the cancel check above so a racing
                # cancel() can never return True for a charged hit.
                self._committing = True
        try:
            result = self._service._resolve(self)
        except BaseException as error:
            with self._done_condition:
                self._error = error
                self._resolved = True
                self._resolving = False
                self._done_condition.notify_all()
            raise
        with self._done_condition:
            self._result = result
            self._resolved = True
            self._resolving = False
            self._done_condition.notify_all()
        return result


def iter_resolved(items: Sequence, submit: Callable, ahead: int = 1):
    """Pipelined submit-ahead/resolve-in-order over ``items``.

    The one shared implementation of the control loop's double-buffering
    invariant: ``submit(item)`` is called in item order with up to
    ``ahead`` speculative submissions in flight beyond the one being
    resolved, results are yielded as ``(item, result)`` strictly in item
    order (so resolution-time budget accounting replays the sequential
    trajectory), and closing the generator — a consumer aborting out of
    its loop, or an exception during resolution — cancels every future
    still pending, so speculative work is never charged.  ``submit`` may
    return ``None`` for an empty request; it is yielded through as
    ``None`` and never resolved or cancelled.
    """
    pending: deque = deque()
    index = 0
    try:
        while pending or index < len(items):
            while index < len(items) and len(pending) <= ahead:
                pending.append((items[index], submit(items[index])))
                index += 1
            item, future = pending.popleft()
            yield item, (None if future is None else future.result())
    finally:
        # Cancel every still-pending future, each behind its own guard:
        # one cancel() raising (a torn-down pool, a buggy handle) must
        # not leave the futures behind it un-cancelled — leaked
        # speculative work would keep a pool busy with results nobody
        # will ever consume.
        while pending:
            _, future = pending.popleft()
            if future is None:
                continue
            try:
                future.cancel()
            except Exception as error:  # noqa: BLE001 - cleanup best-effort
                warnings.warn(
                    f"failed to cancel a pending SimFuture during "
                    f"iter_resolved cleanup ({error!r}); continuing with "
                    f"the remaining futures",
                    RuntimeWarning,
                    stacklevel=2,
                )


# ----------------------------------------------------------------------
# The service
# ----------------------------------------------------------------------
class SimulationService:
    """Runs :class:`SimJob` requests against a backend chain with budgeting.

    The chain is composed outermost-first as ``cache → sharding →
    terminal backend``, so cache hits skip the pool entirely and cache
    misses still shard.  All budget accounting happens here:

    * a normal run charges ``job.cost`` simulations to ``job.phase``
      (exactly the paper's per-row counting);
    * a cache hit charges nothing unless ``charge_cache_hits=True``;
    * with ``idempotent_charges=True`` the charge is keyed by the job's
      content hash, so resubmitting the identical job (a retry) can never
      double-charge (:meth:`SimulationBudget.charge`).

    With ``workers > 1`` the service owns a persistent
    :class:`~repro.simulation.sharding.WorkerPool`, constructed **eagerly
    and warm** (workers pre-import the backend modules, pre-build the
    registry circuit and pin their BLAS thread count) so the first sharded
    job pays no spin-up.  The pool — and with it every OS resource the
    service holds — is released by :meth:`close`; the service is a context
    manager, and leaked pools are swept at interpreter exit as a backstop.
    A ``cache_dir`` turns on caching with cross-process persistence
    (:class:`CachingBackend` ``spill_dir``).
    """

    def __init__(
        self,
        circuit: AnalogCircuit,
        budget: Optional[SimulationBudget] = None,
        backend: Union[str, SimulationBackend] = "batched",
        workers: int = 1,
        cache: bool = False,
        charge_cache_hits: bool = False,
        idempotent_charges: bool = False,
        cache_dir: Optional[str] = None,
        warm_pool: bool = True,
        retry: Union[None, RetryPolicy, Dict[str, object]] = None,
        scheduler: Optional[str] = None,
    ):
        self._circuit = circuit
        self._budget = budget if budget is not None else SimulationBudget()
        self._workers = max(1, int(workers))
        self._terminal = resolve_backend(backend)
        self._retry = resolve_retry(retry)
        self._scheduler = resolve_scheduler(scheduler)
        # The cost model exists whenever the stealing scheduler is
        # active — even single-process runs observe their row timings, so
        # a later (or concurrent) sharded run plans informed chunks.  With
        # a cache_dir the observations persist as sidecars in the same
        # keyspace as the result spill.
        self._cost_model: Optional[RowCostModel] = None
        if self._scheduler == SCHEDULER_STEALING:
            self._cost_model = RowCostModel(
                sidecar_dir=(
                    os.path.join(os.fspath(cache_dir), "costs")
                    if cache_dir is not None
                    else None
                )
            )
        self._dispatch: SimulationBackend = self._terminal
        self._pool: Optional[WorkerPool] = None
        if self._workers > 1:
            self._pool = WorkerPool(
                self._workers,
                circuit_names=(circuit.name,),
                backend_names=(self._terminal.name,),
                eager=warm_pool,
            )
            self._dispatch = ShardedDispatcher(
                self._terminal,
                self._workers,
                pool=self._pool,
                watchdog=(
                    self._retry.watchdog() if self._retry is not None else None
                ),
                scheduler=self._scheduler,
                cost_model=self._cost_model,
            )
        self._cache: Optional[CachingBackend] = (
            CachingBackend(self._dispatch, spill_dir=cache_dir)
            if cache or cache_dir is not None
            else None
        )
        self._charge_cache_hits = bool(charge_cache_hits)
        self._idempotent_charges = bool(idempotent_charges)
        self._closed = False

    # ------------------------------------------------------------------
    @property
    def circuit(self) -> AnalogCircuit:
        return self._circuit

    @property
    def budget(self) -> SimulationBudget:
        return self._budget

    @property
    def workers(self) -> int:
        return self._workers

    @property
    def backend(self) -> SimulationBackend:
        """The composed backend chain (cache → sharding → terminal).

        For introspection; backends never touch the budget, so evaluate
        jobs through :meth:`run`, not by calling the chain directly.
        """
        return self._cache if self._cache is not None else self._dispatch

    @property
    def backend_name(self) -> str:
        """The terminal engine's registry name."""
        return self._terminal.name

    @property
    def cache(self) -> Optional[CachingBackend]:
        """The cache decorator when enabled, else ``None``."""
        return self._cache

    @property
    def retry(self) -> Optional[RetryPolicy]:
        """The active retry policy (``None`` = fail fast, legacy mode)."""
        return self._retry

    @property
    def scheduler(self) -> str:
        """The shard scheduler name (``"stealing"`` or ``"uniform"``)."""
        return self._scheduler

    @property
    def cost_model(self) -> Optional[RowCostModel]:
        """Learned per-row cost estimates (``None`` under the legacy
        uniform scheduler)."""
        return self._cost_model

    @property
    def pool(self) -> Optional[WorkerPool]:
        """The service-owned warm worker pool (``None`` for ``workers=1``)."""
        return self._pool

    @property
    def closed(self) -> bool:
        return self._closed

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release the worker pool (idempotent).

        A closed service keeps working — jobs simply evaluate in-process —
        so late stragglers (result building, report generation) never
        crash; but no new pool is ever spawned.  Benchmarks and tests
        should close services (or use them as context managers) so
        executors don't accumulate across worker-count changes; the
        interpreter-exit sweep in :mod:`repro.simulation.sharding` is only
        the backstop for leaked pools.
        """
        if self._closed:
            return
        self._closed = True
        if self._pool is not None:
            self._pool.shutdown()
        if isinstance(self._dispatch, ShardedDispatcher):
            self._dispatch.close()

    def __enter__(self) -> "SimulationService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _charge(self, job: SimJob, count: int) -> Tuple[bool, Optional[str]]:
        # The idempotency key includes the phase (the content hash alone
        # would swallow a legitimate re-simulation of the same block in a
        # different phase), and zero charges never consume a key — only a
        # counted charge should block its retry.
        job_id = None
        if self._idempotent_charges and count > 0:
            job_id = f"{job.phase.value}:{job.job_id}"
        counted = self._budget.charge(job.phase, count, job_id=job_id)
        return counted, job_id

    def _time_stamped(
        self, job: SimJob, metrics: Dict[str, np.ndarray], started: float
    ) -> Dict[str, np.ndarray]:
        """Ensure a successful block carries per-row timing.

        Blocks assembled from pool shards already carry the workers'
        measured :data:`~repro.simulation.costs.ROW_SECONDS_KEY` (and the
        shard handle already fed the cost model); an in-process
        evaluation is timed here instead — the whole evaluation's wall
        clock split uniformly over the rows — and observed into the cost
        model so single-process runs still teach the scheduler.
        """
        if ROW_SECONDS_KEY in metrics:
            return metrics
        rows = max(job.batch, 1)
        metrics = dict(metrics)
        metrics[ROW_SECONDS_KEY] = np.full(
            rows, (time.perf_counter() - started) / rows
        )
        if self._cost_model is not None:
            self._cost_model.observe(
                job, metrics[ROW_SECONDS_KEY], self._terminal.name
            )
        return metrics

    def _evaluate_accounted(
        self,
        job: SimJob,
        first_attempt: Callable[[], Dict[str, np.ndarray]],
        guard: Optional[Callable[[Callable], Callable]] = None,
    ) -> Dict[str, np.ndarray]:
        """Charge → evaluate → refund-on-failure, under the retry policy.

        The one accounting loop shared by :meth:`run` and future
        resolution.  Each attempt charges the budget up front (so a
        ``max_simulations`` cap aborts before work is spent) and refunds —
        count *and* idempotency key — whenever the attempt produced no
        usable metrics: a raising backend, or a block carrying
        :data:`~repro.spice.deck.FAILURE_NAN` rows.  With no retry policy
        this is exactly the legacy behaviour (raise propagates, a *full*
        failure block is refunded-but-returned, a partial one stands);
        with a policy, classified-transient failures re-evaluate through a
        **fresh dispatch** (a re-shard on the — possibly healed — pool)
        after the policy's deterministic backoff, and because every failed
        attempt was refunded first, the eventual success charges exactly
        once: the budget trajectory is bit-identical to a fault-free run.

        ``guard`` (future resolution passes
        :meth:`SimFuture._guarded`) wraps every attempt — including
        retries — with cancellation checkpoints; a cancel raising out of
        an attempt refunds its charge like any failure, classifies as
        :attr:`FailureKind.OTHER` and therefore propagates un-retried.
        """
        policy = self._retry
        attempt = 1
        wrap = guard if guard is not None else (lambda fn: fn)
        evaluate = wrap(first_attempt)
        while True:
            counted, job_id = self._charge(job, job.cost)
            started = time.perf_counter()
            try:
                metrics = evaluate()
            except BaseException as error:
                if counted:
                    self._budget.refund(job.phase, job.cost, job_id=job_id)
                if policy is None or not policy.should_retry(
                    classify_failure(error), attempt
                ):
                    raise
            else:
                if not failed_row_mask(metrics).any():
                    return self._time_stamped(job, metrics, started)
                # The block carries rows the engine never produced.
                if policy is None or not policy.should_retry(
                    FailureKind.FAILURE_NAN, attempt
                ):
                    # Terminal: legacy accounting.  A *full* failure block
                    # is refunded (nothing was simulated) but still
                    # returned so graceful-degradation consumers see the
                    # NaN rows; a partial block stands as charged.
                    if counted and is_failure_block(metrics):
                        self._budget.refund(
                            job.phase, job.cost, job_id=job_id
                        )
                    return metrics
                # Retrying: the whole attempt is refunded (mirroring the
                # cache's refusal to admit any failed row) and the job
                # re-simulates from scratch.
                if counted:
                    self._budget.refund(job.phase, job.cost, job_id=job_id)
            policy.sleep(job.job_id, attempt)
            attempt += 1
            evaluate = wrap(
                lambda: self._dispatch.evaluate(self._circuit, job)
            )

    def run(self, job: SimJob) -> SimResult:
        """Evaluate one job, charging the budget before any simulation runs
        (so a ``max_simulations`` cap aborts without spending work, exactly
        as the pre-service entry points did).  If the backend then *fails* —
        a worker raising mid-shard, an external simulator crashing in strict
        mode — the charge is refunded and the idempotency key released
        before the exception propagates: a job that produced no metrics is
        never counted, and its retry charges (once) like a first attempt.
        The same holds for *non-raising* failures: a backend degrading to
        the all-NaN failure signature (:func:`is_failure_block`, e.g. a
        non-strict ngspice timeout) is refunded too, mirroring the cache's
        refusal to store such blocks — strict and graceful failure modes
        account identically."""
        if job.circuit_name != self._circuit.name:
            raise ValueError(
                f"job targets circuit {job.circuit_name!r} but this service "
                f"simulates {self._circuit.name!r}"
            )
        if self._cache is not None:
            metrics = self._cache.lookup(job)
            if metrics is not None:
                # Hits charge plainly (no idempotency key): each hit is a
                # deliberate accounting event under ``charge_cache_hits``,
                # and the key for the job's real run must stay intact.
                self._budget.charge(
                    job.phase, job.cost if self._charge_cache_hits else 0
                )
                return SimResult(
                    job=job,
                    metrics=metrics,
                    cached=True,
                    backend=self._cache.name,
                )
        metrics = self._evaluate_accounted(
            job, lambda: self._dispatch.evaluate(self._circuit, job)
        )
        row_seconds = metrics.pop(ROW_SECONDS_KEY, None)
        if self._cache is not None:
            self._cache.store(job, metrics)
        return SimResult(
            job=job,
            metrics=metrics,
            cached=False,
            backend=self._dispatch.name,
            row_seconds=row_seconds,
        )

    # ------------------------------------------------------------------
    # Async path
    # ------------------------------------------------------------------
    def submit(self, job: SimJob) -> SimFuture:
        """Start one job and return a :class:`SimFuture` immediately.

        When the job shards across the service's warm pool, its shards are
        dispatched *now* and evaluate in the background; otherwise the
        in-process evaluation is deferred into the future (lazy thunk) and
        runs when — and only if — the future is resolved.  A cache hit is
        recognised at submission (no work is dispatched) but, like all
        accounting, charged at resolution.

        The accounting contract lives on :meth:`SimFuture.result`:
        resolving futures in submission order reproduces the synchronous
        :meth:`run` schedule's budget trajectory exactly, and a future
        cancelled before resolution charges nothing.  One deliberate
        divergence from :meth:`run`: pool shards are dispatched *before*
        the budget charge (that is the point of the async path), so an
        over-cap resolution aborts with work already spent — the
        accounting is still identical, only wasted wall-clock differs.
        """
        if job.circuit_name != self._circuit.name:
            raise ValueError(
                f"job targets circuit {job.circuit_name!r} but this service "
                f"simulates {self._circuit.name!r}"
            )
        if self._cache is not None:
            metrics = self._cache.lookup(job)
            if metrics is not None:
                return SimFuture(
                    self, job, outcome=lambda: metrics, cached_metrics=metrics
                )
        handle: Optional[ShardHandle] = None
        if isinstance(self._dispatch, ShardedDispatcher):
            handle = self._dispatch.dispatch(self._circuit, job)
        if handle is not None:
            return SimFuture(self, job, outcome=handle.result, handle=handle)
        return SimFuture(
            self,
            job,
            outcome=lambda: self._dispatch.evaluate(self._circuit, job),
        )

    def _resolve(self, future: SimFuture) -> SimResult:
        """Resolution-time accounting for one future (single caller:
        :meth:`SimFuture.result`).  Mirrors :meth:`run` step for step:
        cache hits charge zero (or ``job.cost`` under
        ``charge_cache_hits``), real runs charge before the outcome is
        inspected, a raising outcome or an all-failure block refunds, and
        admitted metrics are stored to the cache."""
        job = future.job
        if future._cached_metrics is not None:
            self._budget.charge(
                job.phase, job.cost if self._charge_cache_hits else 0
            )
            return SimResult(
                job=job,
                metrics=future._cached_metrics,
                cached=True,
                backend=self._cache.name if self._cache is not None else "",
            )
        metrics = self._evaluate_accounted(
            job, future._outcome, guard=future._guarded
        )
        row_seconds = metrics.pop(ROW_SECONDS_KEY, None)
        if self._cache is not None:
            self._cache.store(job, metrics)
        return SimResult(
            job=job,
            metrics=metrics,
            cached=False,
            backend=self._dispatch.name,
            row_seconds=row_seconds,
        )
