"""Opt-in multiprocessing sharding of a job's batch axis.

The batched backends vectorize within one process; this module shards the
row axis of one :class:`~repro.simulation.service.SimJob` across a
``concurrent.futures.ProcessPoolExecutor`` when the service is configured
with ``workers > 1`` — modelling the paper's 3-way / 30-way simulation
parallelism with real OS-level concurrency.  Because the *job* is what gets
sliced, every batch axis shards the same way: mismatch rows, corner rows
and design rows alike (the ROADMAP "design-axis sharding" item).

Design constraints:

* **Seeded-stream identical** — sampling happens *before* a job is built
  (evaluation consumes no randomness), and shard results are concatenated
  in submission order, so a sharded run returns bit-identical metric
  arrays to the single-process run.
* **No circuit or backend pickling** — circuit instances carry closures
  (the :class:`DeviceSpec` sizing lambdas) and cannot cross a process
  boundary.  Workers receive the job's *registry* circuit name and the
  terminal backend's registry name instead, constructing and caching their
  own instances for the life of the process.  Jobs whose circuit is not
  registered (or whose backend is not a named terminal backend) silently
  run single-process.
* **Lazy pools** — one executor per worker count, created on first use and
  shut down at interpreter exit.
"""

from __future__ import annotations

import atexit
from concurrent.futures import ProcessPoolExecutor
from typing import TYPE_CHECKING, Dict, Optional

import numpy as np

from repro.circuits.base import AnalogCircuit

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.simulation.service import SimJob, SimulationBackend

#: Shard only batches at least this many times the worker count; smaller
#: batches are not worth the serialization round trip.
MIN_ROWS_PER_WORKER = 2

_EXECUTORS: Dict[int, ProcessPoolExecutor] = {}

# Per-worker-process caches, keyed by registry name.
_WORKER_CIRCUITS: Dict[str, AnalogCircuit] = {}
_WORKER_BACKENDS: Dict[str, "SimulationBackend"] = {}


def _executor(workers: int) -> ProcessPoolExecutor:
    pool = _EXECUTORS.get(workers)
    if pool is None:
        pool = ProcessPoolExecutor(max_workers=workers)
        _EXECUTORS[workers] = pool
    return pool


@atexit.register
def _shutdown_executors() -> None:  # pragma: no cover - interpreter teardown
    for pool in _EXECUTORS.values():
        pool.shutdown(wait=False, cancel_futures=True)
    _EXECUTORS.clear()


def _worker_circuit(name: str) -> AnalogCircuit:
    circuit = _WORKER_CIRCUITS.get(name)
    if circuit is None:
        from repro.circuits.registry import get_circuit

        circuit = get_circuit(name)
        _WORKER_CIRCUITS[name] = circuit
    return circuit


def _worker_backend(name: str) -> "SimulationBackend":
    backend = _WORKER_BACKENDS.get(name)
    if backend is None:
        from repro.simulation.service import resolve_backend

        backend = resolve_backend(name)
        _WORKER_BACKENDS[name] = backend
    return backend


def _evaluate_job_shard(
    backend_name: str, job: "SimJob"
) -> Dict[str, np.ndarray]:
    """Worker-side: evaluate one shard job on process-cached objects."""
    circuit = _worker_circuit(job.circuit_name)
    return _worker_backend(backend_name).evaluate(circuit, job)


def _registered_circuit(circuit: AnalogCircuit) -> bool:
    """True when the circuit's registry name rebuilds this exact class."""
    from repro.circuits.registry import registered_class

    return registered_class(circuit.name) is type(circuit)


def shardable(
    circuit: AnalogCircuit,
    backend: "SimulationBackend",
    workers: int,
    batch: int,
) -> bool:
    """True when a batch of this size is worth splitting across workers."""
    from repro.simulation.service import BACKENDS

    return (
        workers > 1
        and batch >= MIN_ROWS_PER_WORKER * workers
        and backend.name in BACKENDS
        and _registered_circuit(circuit)
    )


def run_job_sharded(
    circuit: AnalogCircuit,
    backend: "SimulationBackend",
    job: "SimJob",
    workers: int,
) -> Optional[Dict[str, np.ndarray]]:
    """Split one job's row axis across ``workers`` processes.

    Returns the concatenated ``{metric: (B,) array}`` result, or ``None``
    whenever sharding is not applicable (small batch, unregistered circuit,
    non-terminal backend) so the caller runs the job in-process instead.
    Results are concatenated in shard order and are bit-identical to the
    single-process evaluation.
    """
    batch = job.batch
    if not shardable(circuit, backend, workers, batch):
        return None

    bounds = np.linspace(0, batch, workers + 1).astype(int)
    futures = []
    pool = _executor(workers)
    for shard in range(workers):
        lo, hi = int(bounds[shard]), int(bounds[shard + 1])
        if lo == hi:
            continue
        futures.append(
            pool.submit(_evaluate_job_shard, backend.name, job.shard(lo, hi))
        )
    results = [future.result() for future in futures]
    return {
        metric: np.concatenate([result[metric] for result in results])
        for metric in results[0]
    }
