"""Persistent warm worker pools, job-axis sharding, and pool self-healing.

The batched backends vectorize within one process; this module shards the
row axis of one :class:`~repro.simulation.service.SimJob` across a
``concurrent.futures.ProcessPoolExecutor`` when the service is configured
with ``workers > 1`` — modelling the paper's 3-way / 30-way simulation
parallelism with real OS-level concurrency.  Because the *job* is what gets
sliced, every batch axis shards the same way: mismatch rows, corner rows
and design rows alike.

Two things changed with the async service redesign:

* **Pools are persistent, warm and owned.**  :class:`WorkerPool` wraps one
  executor whose workers are spawned *eagerly at construction* and warmed
  by an initializer that pins the BLAS thread count to one
  (``OMP_NUM_THREADS=1`` etc., so B-axis shards never oversubscribe cores),
  pre-imports the backend modules and pre-builds the registry circuits the
  pool will evaluate — the per-interpreter circuit rebuild that used to
  land on the first sharded job now happens before any job is submitted.
  Pools are owned by a :class:`~repro.simulation.service.SimulationService`
  (``service.close()`` / the context-manager protocol shuts them down) and
  every live pool is registered for interpreter-exit cleanup, fixing the
  executor leak of the old module-level per-worker-count cache.
* **Dispatch can be non-blocking.**  :func:`dispatch_job_sharded` submits a
  job's shards and returns a :class:`ShardHandle` immediately; the caller
  assembles the concatenated metrics block later (or cancels the handle to
  abandon speculative work).  :func:`run_job_sharded` remains the blocking
  convenience wrapper.
* **Scheduling is work-stealing by default.**  Instead of one uniform
  slice per worker, a job is cut into more, smaller chunks than workers
  (:func:`plan_chunk_bounds`) and the executor's shared queue does the
  stealing: whichever worker finishes its chunk pulls the next, so a
  heavy-tailed row (an ngspice deck blowing its transient budget) idles
  at most one worker for one chunk instead of stranding the pool behind
  a fat uniform slice.  Chunk bounds are balanced by *learned* per-row
  costs when available — every shard stamps its wall clock into the
  result block and a :class:`~repro.simulation.costs.RowCostModel`
  accumulates them (persistently, via cache-sidecar JSON) — and
  known-expensive chunks are submitted first.  ``scheduler="uniform"``
  (or ``REPRO_SHARD_SCHEDULER=uniform``) pins the legacy slicer.

Fault tolerance (the simulation-fabric layer):

* **Self-healing pools.**  A worker process dying mid-shard (segfault,
  OOM-kill, a chaos-injected ``os._exit``) breaks the whole
  ``ProcessPoolExecutor`` — every in-flight future raises
  ``BrokenProcessPool``.  :meth:`WorkerPool.heal` tears the broken executor
  down (terminating any survivors) and rebuilds it through the same warm-up
  barrier as construction; :class:`ShardHandle` drives the heal and
  **re-dispatches only the lost shards** — completed shard results are
  kept, so a single worker death costs one shard's work, not the job's.
  Heals are capped per pool (:attr:`WorkerPool.max_heals`); past the cap
  the pool declares itself :attr:`~WorkerPool.poisoned` and every
  dispatcher falls back to in-process evaluation instead of feeding a
  crash loop.
* **Shard watchdogs.**  With a :class:`ShardWatchdog`, every shard gets a
  wall-clock deadline derived from its row count (``seconds_per_row ×
  rows``, floored at :attr:`ShardWatchdog.floor`).  A shard that blows its
  deadline — a hung engine the per-deck timeout never fired on — degrades
  to :data:`~repro.spice.deck.FAILURE_NAN` rows instead of wedging the
  control loop, and the pool is healed (the hung worker terminated) so
  later shards land on live workers.  The FAILURE_NAN rows make the block
  uncacheable and, under a retry policy, trigger a budget-refunded
  re-simulation — see :mod:`repro.simulation.service`.

Design constraints (unchanged):

* **Seeded-stream identical** — sampling happens *before* a job is built
  (evaluation consumes no randomness), and shard results are concatenated
  in row order (however the batch was chunked, and in whatever order the
  chunks were submitted or finished), so a sharded run returns
  bit-identical metric arrays to the single-process run.  Healing
  preserves this: a re-dispatch
  evaluates the *same* frozen shard job, and watchdog degradation only
  produces FAILURE_NAN rows that a retrying service re-simulates.
* **No circuit or backend pickling** — circuit instances carry closures
  (the :class:`DeviceSpec` sizing lambdas) and cannot cross a process
  boundary.  Workers receive the job's *registry* circuit name and the
  terminal backend's registry name instead, constructing and caching their
  own instances for the life of the process.  Jobs whose circuit is not
  registered (or whose backend is not a named terminal backend) silently
  run single-process.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import time
import warnings
import weakref
from concurrent.futures import CancelledError, Future, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.circuits.base import AnalogCircuit
from repro.simulation.costs import ROW_SECONDS_KEY, RowCostModel

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.simulation.service import SimJob, SimulationBackend

#: Shard only batches at least this many times the worker count; smaller
#: batches are not worth the serialization round trip.  Backends that
#: declare ``row_parallel = True`` (one expensive external-simulator
#: subprocess per row, e.g. the non-payload-aware ngspice path) opt into a
#: floor of one row per worker instead: any multi-row job fans its rows out
#: across the pool rather than running them serially in one process.
MIN_ROWS_PER_WORKER = 2

#: Work-stealing scheduler: cost-balanced contiguous chunks pulled from
#: the executor's shared queue by whichever worker frees up first (the
#: default).
SCHEDULER_STEALING = "stealing"
#: Legacy scheduler: one uniform slice per worker, all submitted up
#: front.  Optimal only when every row costs the same.
SCHEDULER_UNIFORM = "uniform"
SCHEDULERS = (SCHEDULER_STEALING, SCHEDULER_UNIFORM)
#: Environment override for the default scheduler (service/daemon
#: constructor arguments win over it).
SCHEDULER_ENV_VAR = "REPRO_SHARD_SCHEDULER"

#: Work-stealing oversubscription: target chunk count per worker.  More
#: chunks mean finer-grained stealing (a straggler chunk strands less
#: sibling work behind it) at the price of more serialization round
#: trips; 4 keeps the per-chunk overhead under a few percent for the
#: in-process backends while bounding straggler idle time at ~1/4 of a
#: uniform slice.
STEAL_CHUNKS_PER_WORKER = 4

#: Floor on mean rows per work-stealing chunk for in-process (vectorized)
#: backends — caps the chunk *count* so tiny chunks never drown the
#: vectorized solve in IPC.  ``row_parallel`` backends (one external
#: subprocess per row) chunk down to single rows instead.
MIN_STEAL_ROWS = 2


def resolve_scheduler(scheduler: Optional[str] = None) -> str:
    """The effective shard scheduler name.

    ``None`` falls back to :data:`SCHEDULER_ENV_VAR`, then to the
    work-stealing default; anything not in :data:`SCHEDULERS` raises.
    """
    if scheduler is None:
        scheduler = os.environ.get(SCHEDULER_ENV_VAR) or SCHEDULER_STEALING
    scheduler = str(scheduler).strip().lower()
    if scheduler not in SCHEDULERS:
        raise ValueError(
            f"unknown shard scheduler {scheduler!r}; "
            f"available: {list(SCHEDULERS)}"
        )
    return scheduler

#: Environment variables pinned to ``1`` inside every pool worker so a
#: B-axis shard never spawns a BLAS thread team of its own — ``workers``
#: processes × ``cores`` BLAS threads oversubscribes the machine and runs
#: *slower* than single-process.  Set in the worker initializer (effective
#: for libraries that read them lazily) and enforced through
#: ``threadpoolctl`` when installed, else through the ctypes fallback
#: below (required for fork-started workers whose BLAS was already
#: initialized in the parent — an initialized BLAS never re-reads its
#: environment).
BLAS_ENV_VARS = (
    "OMP_NUM_THREADS",
    "OPENBLAS_NUM_THREADS",
    "MKL_NUM_THREADS",
    "NUMEXPR_NUM_THREADS",
    "VECLIB_MAXIMUM_THREADS",
)

#: ``set_num_threads``-style entry points probed by the ctypes fallback.
#: Covers stock OpenBLAS (plain and 64-bit-index suffixed), the
#: ``scipy_openblas`` builds vendored inside numpy/scipy wheels, GotoBLAS
#: heritage aliases, and BLIS.  Every symbol takes one plain C ``int``.
_BLAS_SET_THREADS_SYMBOLS = (
    "openblas_set_num_threads",
    "openblas_set_num_threads64_",
    "scipy_openblas_set_num_threads",
    "scipy_openblas_set_num_threads64_",
    "goto_set_num_threads",
    "bli_thread_set_num_threads",
)

#: MKL's entry point (takes one C ``int`` by value).
_MKL_SET_THREADS_SYMBOL = "MKL_Set_Num_Threads"

#: How long an eagerly spawned worker waits for its siblings before giving
#: up on the all-workers-up barrier (the pool still works; it is merely
#: less uniformly warm).
WARM_BARRIER_TIMEOUT = 10.0

#: Default cap on executor rebuilds per :class:`WorkerPool` before the
#: pool declares itself poisoned (a worker crash loop should fail over to
#: in-process evaluation, not heal forever).
DEFAULT_MAX_HEALS = 3

# Per-worker-process caches, keyed by registry name.
_WORKER_CIRCUITS: Dict[str, AnalogCircuit] = {}
_WORKER_BACKENDS: Dict[str, "SimulationBackend"] = {}

# Keeps the threadpoolctl limiter alive for the worker's lifetime.
_WORKER_BLAS_LIMITER = None

#: Every live pool, for interpreter-exit cleanup.  A WeakSet, so explicit
#: ``close()`` (or garbage collection) drops the reference and the atexit
#: sweep only touches pools that were genuinely leaked.
_LIVE_POOLS: "weakref.WeakSet[WorkerPool]" = weakref.WeakSet()


@atexit.register
def _shutdown_live_pools() -> None:  # pragma: no cover - interpreter teardown
    for pool in list(_LIVE_POOLS):
        pool.shutdown(wait=False)


def _pin_blas_threads() -> None:
    """Pin this process's BLAS/OpenMP thread pools to a single thread.

    Environment variables alone are not enough under the ``fork`` start
    method: a parent that already ran a matmul has an *initialized* BLAS
    whose thread team survives the fork and never re-reads the
    environment, so every worker would run a full-width team and
    oversubscribe the machine ``workers``-fold.  ``threadpoolctl`` fixes
    that when installed; otherwise :func:`_ctypes_pin_blas_threads` calls
    the loaded library's ``*_set_num_threads`` entry point directly.
    (The ``spawn`` start method side-steps the problem entirely — children
    start with a fresh, uninitialized BLAS that honours the env vars — at
    the cost of losing fork's warm copy-on-write memory; prefer it on
    platforms where fork is unavailable anyway.)
    """
    global _WORKER_BLAS_LIMITER
    for name in BLAS_ENV_VARS:
        os.environ[name] = "1"
    try:  # pragma: no cover - optional dependency
        import threadpoolctl

        _WORKER_BLAS_LIMITER = threadpoolctl.threadpool_limits(limits=1)
        return
    except ImportError:
        pass
    _ctypes_pin_blas_threads(1)


def _blas_library_candidates() -> List[str]:
    """Paths of BLAS shared objects bundled with numpy/scipy wheels.

    Wheels vendor their OpenBLAS under ``<site-packages>/numpy.libs`` /
    ``scipy.libs`` (Linux) or ``numpy/.libs`` (older layouts) and load it
    ``RTLD_LOCAL`` — its symbols are *not* visible through
    ``ctypes.CDLL(None)``, so the fallback must dlopen the file itself
    (dlopen of an already-loaded object returns the same handle, so the
    thread-count call reaches the live instance).
    """
    import glob

    candidates: List[str] = []
    for module_name in ("numpy", "scipy"):
        try:
            module = __import__(module_name)
        except ImportError:  # pragma: no cover - scipy always present here
            continue
        package_dir = os.path.dirname(os.path.abspath(module.__file__))
        site_dir = os.path.dirname(package_dir)
        for libs_dir in (
            os.path.join(site_dir, f"{module_name}.libs"),
            os.path.join(package_dir, ".libs"),
        ):
            for pattern in ("*openblas*", "*mkl_rt*", "*blis*"):
                candidates.extend(
                    sorted(glob.glob(os.path.join(libs_dir, pattern)))
                )
    return candidates


def _ctypes_pin_blas_threads(count: int) -> List[str]:
    """Best-effort ctypes fallback for :func:`_pin_blas_threads`.

    Probes the process-global symbol namespace and the numpy/scipy
    vendored BLAS libraries for a ``set_num_threads`` entry point and pins
    each one found.  Returns the symbols that were actually called (the
    test suite asserts the vendored OpenBLAS is reached on this image).
    Failures are silent by design: a worker that cannot pin is merely
    slower, never wrong.
    """
    import ctypes

    pinned: List[str] = []
    libraries = []
    try:
        libraries.append(ctypes.CDLL(None))
    except (OSError, TypeError):  # pragma: no cover - exotic platforms
        pass
    for path in _blas_library_candidates():
        try:
            libraries.append(ctypes.CDLL(path))
        except OSError:  # pragma: no cover - unloadable stray file
            continue
    seen = set()
    for library in libraries:
        for symbol in _BLAS_SET_THREADS_SYMBOLS + (_MKL_SET_THREADS_SYMBOL,):
            if symbol in seen:
                continue
            entry = getattr(library, symbol, None)
            if entry is None:
                continue
            try:
                entry.argtypes = [ctypes.c_int]
                entry.restype = None
                entry(int(count))
            except (ctypes.ArgumentError, OSError):  # pragma: no cover
                continue
            seen.add(symbol)
            pinned.append(symbol)
    return pinned


def _warm_worker(
    circuit_names: Tuple[str, ...],
    backend_names: Tuple[str, ...],
    sparse_threshold: Optional[int],
    barrier,
) -> None:
    """Worker initializer: pin BLAS, pre-import, pre-build, then rendezvous.

    Runs exactly once per worker interpreter.  The imports below register
    every terminal backend (``repro.simulation`` imports the ngspice and
    chaos modules for the side effect) and the circuit/backend pre-builds
    populate the process-level caches, so the first real shard pays no
    construction cost.  The parent's resolved dense→sparse factorization
    threshold is pinned here too: the crossover is *measured* per process
    (:func:`repro.spice.batched.sparse_auto_size`), and a worker measuring
    a different value than the parent — BLAS pinned vs not, different
    load — would pick a different solver path for borderline system sizes
    and break the bit-identical sharding contract.  The optional barrier
    forces the executor to actually spawn all of its workers during
    :class:`WorkerPool` construction instead of lazily on first submit.
    """
    _pin_blas_threads()
    import repro.simulation  # noqa: F401  (registers every terminal backend)

    if sparse_threshold is not None:
        from repro.spice import batched

        batched._SPARSE_AUTO_SIZE_MEASURED = int(sparse_threshold)

    for name in backend_names:
        try:
            _worker_backend(name)
        except KeyError:  # pragma: no cover - unregistered custom backend
            pass
    for name in circuit_names:
        try:
            _worker_circuit(name)
        except (KeyError, ValueError):  # pragma: no cover - unregistered
            pass
    if barrier is not None:
        try:
            barrier.wait(timeout=WARM_BARRIER_TIMEOUT)
        except Exception:  # pragma: no cover - best-effort rendezvous
            pass


def _worker_circuit(name: str) -> AnalogCircuit:
    circuit = _WORKER_CIRCUITS.get(name)
    if circuit is None:
        from repro.circuits.registry import get_circuit

        circuit = get_circuit(name)
        _WORKER_CIRCUITS[name] = circuit
    return circuit


def _worker_backend(name: str) -> "SimulationBackend":
    backend = _WORKER_BACKENDS.get(name)
    if backend is None:
        from repro.simulation.service import resolve_backend

        backend = resolve_backend(name)
        _WORKER_BACKENDS[name] = backend
    return backend


def _evaluate_job_shard(
    backend_name: str, job: "SimJob"
) -> Dict[str, np.ndarray]:
    """Worker-side: evaluate one shard job on process-cached objects.

    The returned block carries the evaluation's wall clock under the
    reserved :data:`~repro.simulation.costs.ROW_SECONDS_KEY` — exact for
    one-row shards, a uniform split of the shard's elapsed time
    otherwise — which is what the work-stealing scheduler's cost model
    learns from (see :mod:`repro.simulation.costs`).
    """
    circuit = _worker_circuit(job.circuit_name)
    started = time.perf_counter()
    metrics = dict(_worker_backend(backend_name).evaluate(circuit, job))
    rows = max(job.batch, 1)
    metrics[ROW_SECONDS_KEY] = np.full(
        rows, (time.perf_counter() - started) / rows
    )
    return metrics


def _noop() -> None:
    """Warm-up task: its only job is forcing a worker to spawn."""


@dataclass(frozen=True)
class ShardWatchdog:
    """Wall-clock deadline policy for in-flight shards.

    ``deadline(rows)`` is the grace a shard of that many rows gets before
    :meth:`ShardHandle.result` gives up on it: ``seconds_per_row × rows``,
    floored at ``floor`` so one-row shards are not starved by scheduling
    noise.  An expired shard degrades to
    :data:`~repro.spice.deck.FAILURE_NAN` rows (uncacheable; refunded and
    retried by a service with a :class:`~repro.simulation.service
    .RetryPolicy`) and the pool is healed so the hung worker is reclaimed.
    This sits *above* any per-deck engine timeout — it is the backstop for
    hangs the engine-level timeout cannot see (a stuck worker interpreter,
    an engine ignoring its own limit).
    """

    seconds_per_row: float = 30.0
    floor: float = 5.0

    def deadline(self, rows: int) -> float:
        return max(float(self.floor), float(self.seconds_per_row) * max(rows, 1))


class WorkerPool:
    """A persistent, warm, explicitly owned, self-healing process pool.

    Parameters
    ----------
    workers:
        Process count.
    circuit_names / backend_names:
        Registry names pre-built inside every worker by the initializer, so
        the first sharded job finds its circuit and backend already
        constructed (the old lazy pools rebuilt circuits per interpreter on
        the first shard they received).
    eager:
        Spawn and warm every worker at construction.  Under the ``fork``
        start method a barrier guarantees all ``workers`` processes come up
        before the constructor returns; other start methods fall back to a
        best-effort warm-up (synchronization primitives cannot be pickled
        to spawned children).
    max_heals:
        Executor rebuilds allowed before the pool declares itself
        :attr:`poisoned` (see :meth:`heal`).

    The pool registers itself for interpreter-exit shutdown, but callers
    should prefer the explicit lifecycle — ``pool.shutdown()``, the context
    manager, or the owning service's ``close()`` — so executors never
    accumulate across worker-count changes.

    Ownership trade-off: pools are per-service (a multi-seed sweep spawns
    and releases one pool per seed) rather than process-cached like the
    old module-level executors.  Under the ``fork`` start method a warm
    spawn costs tens of milliseconds — noise against a seed run — and in
    exchange no executor can ever outlive its owner unnoticed.
    """

    def __init__(
        self,
        workers: int,
        circuit_names: Sequence[str] = (),
        backend_names: Sequence[str] = (),
        eager: bool = True,
        max_heals: int = DEFAULT_MAX_HEALS,
    ):
        self.workers = max(1, int(workers))
        self.max_heals = max(0, int(max_heals))
        self._circuit_names = tuple(circuit_names)
        self._backend_names = tuple(backend_names)
        self._eager = bool(eager)
        self._closed = False
        self._poisoned = False
        #: Executor rebuilds performed so far (observable; tests assert it).
        self.heals = 0
        #: Monotonic rebuild counter.  Shard handles record the generation
        #: their futures were submitted under; on ``BrokenProcessPool`` they
        #: pass it to :meth:`heal_broken` so several handles discovering the
        #: same dead executor trigger exactly one rebuild.
        self.generation = 0
        # Resolve the dense→sparse crossover in the parent (one-shot,
        # env-overridable) and ship it to every worker: parent and shards
        # must agree on the solver path bit for bit.
        from repro.spice.batched import sparse_auto_size

        self._sparse_threshold = sparse_auto_size()
        self._executor = self._spawn_executor()
        # Register for the interpreter-exit sweep *before* the warm-up:
        # a warm-up failure (worker died, timeout on a loaded machine)
        # must not leak the already-spawned executor.
        _LIVE_POOLS.add(self)
        if self._eager:
            try:
                self._warm_up(self._executor)
            except BaseException:
                self.shutdown(wait=False)
                raise

    # ------------------------------------------------------------------
    def _spawn_executor(self) -> ProcessPoolExecutor:
        barrier = None
        if (
            self._eager
            and multiprocessing.get_start_method(allow_none=False) == "fork"
        ):
            barrier = multiprocessing.get_context("fork").Barrier(self.workers)
        return ProcessPoolExecutor(
            max_workers=self.workers,
            initializer=_warm_worker,
            initargs=(
                self._circuit_names,
                self._backend_names,
                self._sparse_threshold,
                barrier,
            ),
        )

    def _warm_up(self, executor: ProcessPoolExecutor) -> None:
        # One no-op per worker: each submit sees no idle worker (the
        # previous ones are blocked on the barrier inside the initializer)
        # and forces a fresh spawn, so all `workers` interpreters exist —
        # warm — before any real job arrives.
        for future in [executor.submit(_noop) for _ in range(self.workers)]:
            future.result(timeout=WARM_BARRIER_TIMEOUT + 30.0)

    @staticmethod
    def _terminate_workers(executor: ProcessPoolExecutor) -> None:
        """Best-effort SIGTERM to an executor's worker processes.

        Used when retiring a broken or hung executor: ``shutdown`` alone
        never kills a *running* worker, so a hung engine would keep its
        process (and its memory) alive indefinitely.  Reaches into the
        executor's process table — private API, guarded accordingly.
        """
        processes = getattr(executor, "_processes", None) or {}
        for process in list(processes.values()):
            try:
                process.terminate()
            except (OSError, ValueError, AttributeError):  # pragma: no cover
                pass

    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def poisoned(self) -> bool:
        """True once the heal cap is spent: dispatchers must stop feeding
        this pool (they fall back to in-process evaluation instead)."""
        return self._poisoned

    def submit(self, fn, /, *args) -> Future:
        if self._closed:
            raise RuntimeError("cannot submit to a closed WorkerPool")
        if self._poisoned:
            raise RuntimeError("cannot submit to a poisoned WorkerPool")
        return self._executor.submit(fn, *args)

    # ------------------------------------------------------------------
    # Self-healing
    # ------------------------------------------------------------------
    def heal(self, reason: str = "worker death") -> bool:
        """Replace the executor with a freshly warmed one.

        Terminates whatever worker processes remain (a broken executor may
        still hold live siblings; a hung executor holds the stuck worker),
        shuts the old executor down without waiting, and spawns a new one
        through the same warm-up barrier as construction.  Each heal
        increments :attr:`generation`; once :attr:`max_heals` rebuilds have
        been spent the pool flips to :attr:`poisoned` and returns ``False``
        — the caller must fail over (in-process evaluation) rather than
        retry into a crash loop.  Returns ``True`` when the pool is usable
        again.
        """
        if self._closed or self._poisoned:
            return False
        if self.heals >= self.max_heals:
            self._poisoned = True
            warnings.warn(
                f"WorkerPool poisoned after {self.heals} heals "
                f"(last failure: {reason}); falling back to in-process "
                f"evaluation",
                RuntimeWarning,
                stacklevel=2,
            )
            return False
        self.heals += 1
        self.generation += 1
        old = self._executor
        self._terminate_workers(old)
        old.shutdown(wait=False, cancel_futures=True)
        self._executor = self._spawn_executor()
        if self._eager:
            try:
                self._warm_up(self._executor)
            except BaseException:
                self._poisoned = True
                self._executor.shutdown(wait=False, cancel_futures=True)
                raise
        return True

    def heal_broken(self, generation: int, reason: str = "worker death") -> bool:
        """Heal only if the executor from ``generation`` is still current.

        When one worker dies, *every* in-flight future raises
        ``BrokenProcessPool``; the first shard handle to notice heals the
        pool, and this guard turns the siblings' heal requests into no-ops
        (their executor is already gone and replaced).  Returns whether
        the pool is usable.
        """
        if generation != self.generation:
            return not (self._closed or self._poisoned)
        return self.heal(reason=reason)

    def shutdown(self, wait: bool = True) -> None:
        """Idempotent shutdown; cancels work that has not started."""
        if self._closed:
            return
        self._closed = True
        _LIVE_POOLS.discard(self)
        self._executor.shutdown(wait=wait, cancel_futures=True)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()


def _failure_block(job: "SimJob", metric_names: Sequence[str]):
    """An all-:data:`FAILURE_NAN` metrics block for one shard job.

    Carries NaN row seconds (the rows never ran) so degraded shards
    assemble uniformly with timed siblings; the cost model ignores
    non-finite observations.
    """
    from repro.spice.deck import FAILURE_NAN

    block = {
        name: np.full(job.batch, FAILURE_NAN) for name in metric_names
    }
    block[ROW_SECONDS_KEY] = np.full(job.batch, np.nan)
    return block


class _Shard:
    """One in-flight shard: the frozen sub-job plus its current future."""

    __slots__ = ("job", "future", "generation")

    def __init__(self, job: "SimJob", future: Future, generation: int):
        self.job = job
        self.future = future
        self.generation = generation


class ShardHandle:
    """An in-flight sharded evaluation: shard futures plus assembly.

    ``result()`` blocks until every shard finishes and concatenates the
    metric blocks in shard (= row) order — bit-identical to the in-process
    evaluation regardless of how the batch was chunked or in what order
    the chunks were submitted.  ``cancel()`` abandons the handle: shards
    that have not started are cancelled outright, already-running shards
    finish in the pool but their results are dropped, and a ``result()``
    call racing the cancel raises ``CancelledError`` at the next shard
    boundary instead of assembling dropped work.  The service never
    charges budget for a cancelled handle, which is what makes
    speculative double-buffered submission safe.

    Timing: worker blocks carry per-row wall clock under the reserved
    :data:`~repro.simulation.costs.ROW_SECONDS_KEY`; assembly stitches it
    into :attr:`row_seconds` (row order) and feeds the scheduler's
    :class:`~repro.simulation.costs.RowCostModel` when one was wired in.

    Fault handling inside ``result()``:

    * a shard whose worker died (``BrokenProcessPool``) triggers
      :meth:`WorkerPool.heal_broken` and is **re-dispatched** on the healed
      pool — only the lost shard re-runs; sibling results are kept.  When
      the pool refuses (poisoned / closed), the lost shard is evaluated
      *in-process* so the job still completes deterministically.
    * with a :class:`ShardWatchdog`, a shard that outlives its deadline
      degrades to :data:`~repro.spice.deck.FAILURE_NAN` rows (the
      never-produced signature: uncacheable, refunded, retried under a
      service retry policy) and the pool is healed to reclaim the hung
      worker.
    """

    def __init__(
        self,
        futures: List[Future],
        jobs: Optional[List["SimJob"]] = None,
        pool: Optional[WorkerPool] = None,
        backend_name: str = "",
        metric_names: Sequence[str] = (),
        watchdog: Optional[ShardWatchdog] = None,
        job: Optional["SimJob"] = None,
        cost_model: Optional[RowCostModel] = None,
    ):
        generation = pool.generation if pool is not None else 0
        if jobs is None:
            jobs = [None] * len(futures)  # legacy construction (tests)
        self._shards = [
            _Shard(job, future, generation)
            for job, future in zip(jobs, futures)
        ]
        self._pool = pool
        self._backend_name = backend_name
        self._metric_names = tuple(metric_names)
        self._watchdog = watchdog
        self._job = job
        self._cost_model = cost_model
        self._cancelled = False
        self._observed = False
        #: Per-row wall-clock seconds in row order, populated by
        #: ``result()`` when the shard blocks carried timing.
        self.row_seconds: Optional[np.ndarray] = None
        #: Shard indices degraded to FAILURE_NAN by the watchdog (observable).
        self.timed_out_shards: List[int] = []
        #: Shard indices re-dispatched after a worker death (observable).
        self.redispatched_shards: List[int] = []

    def done(self) -> bool:
        return all(shard.future.done() for shard in self._shards)

    def cancelled(self) -> bool:
        return self._cancelled

    def cancel(self) -> None:
        # Flag first: a result() call racing this cancel must see the
        # deliberate abandonment and raise, not mistake its shards'
        # CancelledError for a pool heal and re-dispatch the work.
        self._cancelled = True
        for shard in self._shards:
            shard.future.cancel()

    # ------------------------------------------------------------------
    def _recover_lost_shard(self, index: int, shard: _Shard) -> None:
        """Re-dispatch one shard whose worker died; in-process fallback
        when the pool cannot heal."""
        self.redispatched_shards.append(index)
        pool = self._pool
        healthy = (
            pool is not None
            and shard.job is not None
            and pool.heal_broken(shard.generation)
        )
        if healthy:
            shard.generation = pool.generation
            shard.future = pool.submit(
                _evaluate_job_shard, self._backend_name, shard.job
            )
            return
        # Last resort: evaluate the lost shard in this process.  A future
        # is still used so the assembly loop below stays uniform.
        fallback: Future = Future()
        if shard.job is None:
            fallback.set_exception(
                BrokenProcessPool("worker died and no shard job was recorded")
            )
        else:
            try:
                fallback.set_result(
                    _evaluate_job_shard(self._backend_name, shard.job)
                )
            except BaseException as error:  # pragma: no cover - engine bug
                fallback.set_exception(error)
        shard.future = fallback

    def result(self, timeout: Optional[float] = None) -> Dict[str, np.ndarray]:
        blocks: List[Optional[Dict[str, np.ndarray]]] = [None] * len(
            self._shards
        )
        for index, shard in enumerate(self._shards):
            deadline = timeout
            if self._watchdog is not None and shard.job is not None:
                deadline = self._watchdog.deadline(shard.job.batch)
            attempts = 0
            while blocks[index] is None:
                if self._cancelled:
                    raise CancelledError(
                        "ShardHandle was cancelled; dropping its shards"
                    )
                try:
                    blocks[index] = shard.future.result(deadline)
                except (BrokenProcessPool, CancelledError) as error:
                    if self._cancelled and isinstance(error, CancelledError):
                        # Deliberate abandonment (handle.cancel()), not a
                        # lost worker: propagate instead of re-dispatching
                        # work nobody will consume.
                        raise
                    # A dead worker breaks every in-flight future; a heal
                    # (triggered by a sibling shard or a watchdog) cancels
                    # the old executor's queued ones.  Both mean the same
                    # thing here: this shard's work was lost — recover it.
                    attempts += 1
                    # One recovery per heal budget: the in-process fallback
                    # inside _recover_lost_shard is terminal, so this loop
                    # can only spin while the pool keeps healing — which
                    # max_heals bounds.
                    if attempts > (
                        (self._pool.max_heals if self._pool else 0) + 1
                    ):
                        raise
                    self._recover_lost_shard(index, shard)
                except FuturesTimeoutError:
                    if self._watchdog is None or shard.job is None:
                        raise  # caller-supplied timeout: legacy behaviour
                    # Watchdog expiry: degrade to never-produced rows and
                    # reclaim the hung worker.  The FAILURE_NAN signature
                    # keeps the block uncacheable and lets a retrying
                    # service refund + re-simulate it.
                    self.timed_out_shards.append(index)
                    warnings.warn(
                        f"shard {index} ({shard.job.batch} rows) exceeded "
                        f"its {deadline:.1f}s watchdog deadline; degrading "
                        f"to FAILURE_NAN rows and healing the pool",
                        RuntimeWarning,
                        stacklevel=2,
                    )
                    blocks[index] = _failure_block(
                        shard.job, self._metric_names
                    )
                    if self._pool is not None:
                        self._pool.heal(reason="hung shard")
        results = [block for block in blocks if block is not None]
        # Reserved timing keys are only assembled when *every* block has
        # one (legacy futures constructed without timing mix freely).
        merged = {
            metric: np.concatenate([result[metric] for result in results])
            for metric in results[0]
            if all(metric in result for result in results)
        }
        row_seconds = merged.get(ROW_SECONDS_KEY)
        if row_seconds is not None:
            self.row_seconds = row_seconds
            if (
                not self._observed
                and self._cost_model is not None
                and self._job is not None
            ):
                self._observed = True
                self._cost_model.observe(
                    self._job, row_seconds, self._backend_name
                )
        return merged


def _registered_circuit(circuit: AnalogCircuit) -> bool:
    """True when the circuit's registry name rebuilds this exact class."""
    from repro.circuits.registry import registered_class

    return registered_class(circuit.name) is type(circuit)


def shardable(
    circuit: AnalogCircuit,
    backend: "SimulationBackend",
    workers: int,
    batch: int,
) -> bool:
    """True when a batch of this size is worth splitting across workers.

    Backends whose rows are individually expensive (``row_parallel = True``,
    e.g. one external-simulator subprocess per row) shard any multi-row
    batch; in-process backends require :data:`MIN_ROWS_PER_WORKER` rows per
    worker before the serialization round trip pays off.
    """
    from repro.simulation.service import BACKENDS

    if workers <= 1:
        return False
    if getattr(backend, "row_parallel", False):
        enough = batch >= 2  # any multi-row job beats a serial row loop
    else:
        enough = batch >= MIN_ROWS_PER_WORKER * workers
    return (
        enough
        and backend.name in BACKENDS
        and getattr(backend, "worker_reconstructible", True)
        and _registered_circuit(circuit)
    )


def plan_chunk_bounds(
    batch: int,
    workers: int,
    costs: Optional[np.ndarray] = None,
    row_parallel: bool = False,
    chunks_per_worker: int = STEAL_CHUNKS_PER_WORKER,
) -> List[Tuple[int, int]]:
    """Contiguous ``[lo, hi)`` chunk bounds balanced by predicted row cost.

    The work-stealing planner: the batch is cut at equal *cumulative
    cost* targets, so with uniform (or unknown) costs the chunks are
    equal-sized and ``chunks_per_worker ×`` oversubscribed, while a
    heavy row absorbs several targets in a row and ends up isolated in
    a chunk of its own — the straggler never strands sibling rows
    behind it.  Chunk *count* is capped by :data:`MIN_STEAL_ROWS` mean
    rows per chunk for in-process backends (``row_parallel`` engines
    chunk down to single rows) so IPC overhead stays bounded; the
    cost-weighted cuts may still produce smaller individual chunks,
    which is exactly the wanted behaviour for stragglers.

    Row order is preserved (chunks tile ``[0, batch)`` in order), which
    is what keeps concatenated results bit-identical to the uniform
    slicer regardless of chunking.
    """
    batch = int(batch)
    workers = max(1, int(workers))
    if batch <= 0:
        return []
    min_rows = 1 if row_parallel else max(1, int(MIN_STEAL_ROWS))
    chunks = min(
        batch,
        workers * max(1, int(chunks_per_worker)),
        max(workers, batch // min_rows),
    )
    chunks = max(1, chunks)
    weights = None
    if costs is not None:
        weights = np.asarray(costs, dtype=float).reshape(-1).copy()
        if weights.shape[0] != batch:
            weights = None
        else:
            usable = np.isfinite(weights) & (weights > 0)
            if not usable.any():
                weights = None
            else:
                weights[~usable] = float(weights[usable].mean())
    if weights is None:
        weights = np.ones(batch)
    cumulative = np.cumsum(weights)
    targets = cumulative[-1] * np.arange(1, chunks) / chunks
    cuts = np.searchsorted(cumulative, targets, side="left") + 1
    # Any single row filling a whole chunk's cost budget is cut out into
    # a chunk of its own: equal-cumulative-cost cuts alone would leave
    # the cheap rows *preceding* a straggler stranded in its chunk.
    step = cumulative[-1] / chunks
    heavy = np.flatnonzero(weights >= step)
    bounds = np.unique(
        np.concatenate(([0], cuts, heavy, heavy + 1, [batch]))
    )
    return [
        (int(bounds[i]), int(bounds[i + 1]))
        for i in range(len(bounds) - 1)
    ]


def _uniform_bounds(batch: int, workers: int) -> List[Tuple[int, int]]:
    """The legacy slicer: one uniform slice per worker."""
    shards = min(workers, batch)
    edges = np.linspace(0, batch, shards + 1).astype(int)
    return [
        (int(edges[i]), int(edges[i + 1]))
        for i in range(shards)
        if edges[i] != edges[i + 1]
    ]


def dispatch_job_sharded(
    circuit: AnalogCircuit,
    backend: "SimulationBackend",
    job: "SimJob",
    pool: Optional[WorkerPool],
    watchdog: Optional[ShardWatchdog] = None,
    scheduler: Optional[str] = None,
    cost_model: Optional[RowCostModel] = None,
) -> Optional[ShardHandle]:
    """Submit one job's row shards to ``pool`` without blocking.

    Returns a :class:`ShardHandle`, or ``None`` whenever sharding is not
    applicable (no pool, closed or poisoned pool, small batch, unregistered
    circuit, non-terminal backend) so the caller evaluates in-process
    instead.

    With the default :data:`SCHEDULER_STEALING` scheduler the batch is
    cut into more chunks than workers (:func:`plan_chunk_bounds`,
    balanced by the cost model's prediction when one is wired in) and
    the executor's shared queue does the stealing: whichever worker
    finishes pulls the next chunk, so a straggler row idles at most one
    worker for one chunk.  Known-expensive chunks are submitted first
    (longest-predicted-first) so a learned straggler starts immediately
    instead of queueing behind cheap work.  :data:`SCHEDULER_UNIFORM`
    pins the legacy one-slice-per-worker plan.  Either way shard results
    assemble in row order — bit-identical metrics and, because the
    service accounts at resolution time, bit-identical budget
    trajectories.
    """
    if pool is None or pool.closed or pool.poisoned:
        return None
    batch = job.batch
    if not shardable(circuit, backend, pool.workers, batch):
        return None
    scheduler = resolve_scheduler(scheduler)
    predicted: Optional[np.ndarray] = None
    if scheduler == SCHEDULER_UNIFORM:
        bounds = _uniform_bounds(batch, pool.workers)
    else:
        if cost_model is not None:
            predicted = cost_model.predict(job, backend.name)
        bounds = plan_chunk_bounds(
            batch,
            pool.workers,
            costs=predicted,
            row_parallel=bool(getattr(backend, "row_parallel", False)),
        )
    shard_jobs = [job.shard(lo, hi) for lo, hi in bounds]
    # Submission order: longest-predicted-first when costs are known (a
    # learned straggler starts on the first free worker), else row
    # order.  Assembly is by shard *index*, so submission order never
    # affects the result.
    order = list(range(len(shard_jobs)))
    if predicted is not None and len(shard_jobs) > 1:
        chunk_cost = [float(predicted[lo:hi].sum()) for lo, hi in bounds]
        order.sort(key=lambda i: (-chunk_cost[i], i))

    def _submit_all(slots: List[Optional[Future]]) -> None:
        for i in order:
            slots[i] = pool.submit(
                _evaluate_job_shard, backend.name, shard_jobs[i]
            )

    futures: List[Optional[Future]] = [None] * len(shard_jobs)
    try:
        _submit_all(futures)
    except BrokenProcessPool:
        # A previous job's worker death is discovered here, at submit
        # time: the executor broke after its last result was consumed,
        # so no ShardHandle ever saw the breakage.  Heal once and
        # restart the dispatch on the fresh executor; if the pool
        # refuses (cap spent), fall back in-process.
        if not pool.heal_broken(pool.generation, reason="broken at submit"):
            return None
        for stale in futures:
            if stale is not None:
                stale.cancel()
        futures = [None] * len(shard_jobs)
        try:
            _submit_all(futures)
        except (BrokenProcessPool, RuntimeError):
            return None  # freshly healed pool broke again: give up
    return ShardHandle(
        futures,
        jobs=shard_jobs,
        pool=pool,
        backend_name=backend.name,
        metric_names=circuit.metric_names,
        watchdog=watchdog,
        job=job,
        cost_model=cost_model,
    )


def run_job_sharded(
    circuit: AnalogCircuit,
    backend: "SimulationBackend",
    job: "SimJob",
    pool: Optional[WorkerPool],
    watchdog: Optional[ShardWatchdog] = None,
    scheduler: Optional[str] = None,
    cost_model: Optional[RowCostModel] = None,
) -> Optional[Dict[str, np.ndarray]]:
    """Blocking convenience wrapper around :func:`dispatch_job_sharded`."""
    handle = dispatch_job_sharded(
        circuit,
        backend,
        job,
        pool,
        watchdog,
        scheduler=scheduler,
        cost_model=cost_model,
    )
    if handle is None:
        return None
    return handle.result()
