"""Persistent warm worker pools and job-axis sharding.

The batched backends vectorize within one process; this module shards the
row axis of one :class:`~repro.simulation.service.SimJob` across a
``concurrent.futures.ProcessPoolExecutor`` when the service is configured
with ``workers > 1`` — modelling the paper's 3-way / 30-way simulation
parallelism with real OS-level concurrency.  Because the *job* is what gets
sliced, every batch axis shards the same way: mismatch rows, corner rows
and design rows alike.

Two things changed with the async service redesign:

* **Pools are persistent, warm and owned.**  :class:`WorkerPool` wraps one
  executor whose workers are spawned *eagerly at construction* and warmed
  by an initializer that pins the BLAS thread count to one
  (``OMP_NUM_THREADS=1`` etc., so B-axis shards never oversubscribe cores),
  pre-imports the backend modules and pre-builds the registry circuits the
  pool will evaluate — the per-interpreter circuit rebuild that used to
  land on the first sharded job now happens before any job is submitted.
  Pools are owned by a :class:`~repro.simulation.service.SimulationService`
  (``service.close()`` / the context-manager protocol shuts them down) and
  every live pool is registered for interpreter-exit cleanup, fixing the
  executor leak of the old module-level per-worker-count cache.
* **Dispatch can be non-blocking.**  :func:`dispatch_job_sharded` submits a
  job's shards and returns a :class:`ShardHandle` immediately; the caller
  assembles the concatenated metrics block later (or cancels the handle to
  abandon speculative work).  :func:`run_job_sharded` remains the blocking
  convenience wrapper.

Design constraints (unchanged):

* **Seeded-stream identical** — sampling happens *before* a job is built
  (evaluation consumes no randomness), and shard results are concatenated
  in submission order, so a sharded run returns bit-identical metric
  arrays to the single-process run.
* **No circuit or backend pickling** — circuit instances carry closures
  (the :class:`DeviceSpec` sizing lambdas) and cannot cross a process
  boundary.  Workers receive the job's *registry* circuit name and the
  terminal backend's registry name instead, constructing and caching their
  own instances for the life of the process.  Jobs whose circuit is not
  registered (or whose backend is not a named terminal backend) silently
  run single-process.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import weakref
from concurrent.futures import Future, ProcessPoolExecutor
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.circuits.base import AnalogCircuit

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.simulation.service import SimJob, SimulationBackend

#: Shard only batches at least this many times the worker count; smaller
#: batches are not worth the serialization round trip.  Backends that
#: declare ``row_parallel = True`` (one expensive external-simulator
#: subprocess per row, e.g. the non-payload-aware ngspice path) opt into a
#: floor of one row per worker instead: any multi-row job fans its rows out
#: across the pool rather than running them serially in one process.
MIN_ROWS_PER_WORKER = 2

#: Environment variables pinned to ``1`` inside every pool worker so a
#: B-axis shard never spawns a BLAS thread team of its own — ``workers``
#: processes × ``cores`` BLAS threads oversubscribes the machine and runs
#: *slower* than single-process.  Set in the worker initializer (effective
#: for libraries that read them lazily) and best-effort enforced through
#: ``threadpoolctl`` when it is installed (required for fork-started
#: workers whose BLAS was already initialized in the parent).
BLAS_ENV_VARS = (
    "OMP_NUM_THREADS",
    "OPENBLAS_NUM_THREADS",
    "MKL_NUM_THREADS",
    "NUMEXPR_NUM_THREADS",
    "VECLIB_MAXIMUM_THREADS",
)

#: How long an eagerly spawned worker waits for its siblings before giving
#: up on the all-workers-up barrier (the pool still works; it is merely
#: less uniformly warm).
WARM_BARRIER_TIMEOUT = 10.0

# Per-worker-process caches, keyed by registry name.
_WORKER_CIRCUITS: Dict[str, AnalogCircuit] = {}
_WORKER_BACKENDS: Dict[str, "SimulationBackend"] = {}

# Keeps the threadpoolctl limiter alive for the worker's lifetime.
_WORKER_BLAS_LIMITER = None

#: Every live pool, for interpreter-exit cleanup.  A WeakSet, so explicit
#: ``close()`` (or garbage collection) drops the reference and the atexit
#: sweep only touches pools that were genuinely leaked.
_LIVE_POOLS: "weakref.WeakSet[WorkerPool]" = weakref.WeakSet()


@atexit.register
def _shutdown_live_pools() -> None:  # pragma: no cover - interpreter teardown
    for pool in list(_LIVE_POOLS):
        pool.shutdown(wait=False)


def _pin_blas_threads() -> None:
    """Pin this process's BLAS/OpenMP thread pools to a single thread."""
    global _WORKER_BLAS_LIMITER
    for name in BLAS_ENV_VARS:
        os.environ[name] = "1"
    try:  # pragma: no cover - optional dependency
        import threadpoolctl

        _WORKER_BLAS_LIMITER = threadpoolctl.threadpool_limits(limits=1)
    except ImportError:
        pass


def _warm_worker(
    circuit_names: Tuple[str, ...],
    backend_names: Tuple[str, ...],
    sparse_threshold: Optional[int],
    barrier,
) -> None:
    """Worker initializer: pin BLAS, pre-import, pre-build, then rendezvous.

    Runs exactly once per worker interpreter.  The imports below register
    every terminal backend (``repro.simulation`` imports the ngspice module
    for the side effect) and the circuit/backend pre-builds populate the
    process-level caches, so the first real shard pays no construction
    cost.  The parent's resolved dense→sparse factorization threshold is
    pinned here too: the crossover is *measured* per process
    (:func:`repro.spice.batched.sparse_auto_size`), and a worker measuring
    a different value than the parent — BLAS pinned vs not, different
    load — would pick a different solver path for borderline system sizes
    and break the bit-identical sharding contract.  The optional barrier
    forces the executor to actually spawn all of its workers during
    :class:`WorkerPool` construction instead of lazily on first submit.
    """
    _pin_blas_threads()
    import repro.simulation  # noqa: F401  (registers every terminal backend)

    if sparse_threshold is not None:
        from repro.spice import batched

        batched._SPARSE_AUTO_SIZE_MEASURED = int(sparse_threshold)

    for name in backend_names:
        try:
            _worker_backend(name)
        except KeyError:  # pragma: no cover - unregistered custom backend
            pass
    for name in circuit_names:
        try:
            _worker_circuit(name)
        except (KeyError, ValueError):  # pragma: no cover - unregistered
            pass
    if barrier is not None:
        try:
            barrier.wait(timeout=WARM_BARRIER_TIMEOUT)
        except Exception:  # pragma: no cover - best-effort rendezvous
            pass


def _worker_circuit(name: str) -> AnalogCircuit:
    circuit = _WORKER_CIRCUITS.get(name)
    if circuit is None:
        from repro.circuits.registry import get_circuit

        circuit = get_circuit(name)
        _WORKER_CIRCUITS[name] = circuit
    return circuit


def _worker_backend(name: str) -> "SimulationBackend":
    backend = _WORKER_BACKENDS.get(name)
    if backend is None:
        from repro.simulation.service import resolve_backend

        backend = resolve_backend(name)
        _WORKER_BACKENDS[name] = backend
    return backend


def _evaluate_job_shard(
    backend_name: str, job: "SimJob"
) -> Dict[str, np.ndarray]:
    """Worker-side: evaluate one shard job on process-cached objects."""
    circuit = _worker_circuit(job.circuit_name)
    return _worker_backend(backend_name).evaluate(circuit, job)


def _noop() -> None:
    """Warm-up task: its only job is forcing a worker to spawn."""


class WorkerPool:
    """A persistent, warm, explicitly owned process pool.

    Parameters
    ----------
    workers:
        Process count.
    circuit_names / backend_names:
        Registry names pre-built inside every worker by the initializer, so
        the first sharded job finds its circuit and backend already
        constructed (the old lazy pools rebuilt circuits per interpreter on
        the first shard they received).
    eager:
        Spawn and warm every worker at construction.  Under the ``fork``
        start method a barrier guarantees all ``workers`` processes come up
        before the constructor returns; other start methods fall back to a
        best-effort warm-up (synchronization primitives cannot be pickled
        to spawned children).

    The pool registers itself for interpreter-exit shutdown, but callers
    should prefer the explicit lifecycle — ``pool.shutdown()``, the context
    manager, or the owning service's ``close()`` — so executors never
    accumulate across worker-count changes.

    Ownership trade-off: pools are per-service (a multi-seed sweep spawns
    and releases one pool per seed) rather than process-cached like the
    old module-level executors.  Under the ``fork`` start method a warm
    spawn costs tens of milliseconds — noise against a seed run — and in
    exchange no executor can ever outlive its owner unnoticed.
    """

    def __init__(
        self,
        workers: int,
        circuit_names: Sequence[str] = (),
        backend_names: Sequence[str] = (),
        eager: bool = True,
    ):
        self.workers = max(1, int(workers))
        self._closed = False
        barrier = None
        if eager and multiprocessing.get_start_method(allow_none=False) == "fork":
            barrier = multiprocessing.get_context("fork").Barrier(self.workers)
        # Resolve the dense→sparse crossover in the parent (one-shot,
        # env-overridable) and ship it to every worker: parent and shards
        # must agree on the solver path bit for bit.
        from repro.spice.batched import sparse_auto_size

        self._executor = ProcessPoolExecutor(
            max_workers=self.workers,
            initializer=_warm_worker,
            initargs=(
                tuple(circuit_names),
                tuple(backend_names),
                sparse_auto_size(),
                barrier,
            ),
        )
        # Register for the interpreter-exit sweep *before* the warm-up:
        # a warm-up failure (worker died, timeout on a loaded machine)
        # must not leak the already-spawned executor.
        _LIVE_POOLS.add(self)
        if eager:
            # One no-op per worker: each submit sees no idle worker (the
            # previous ones are blocked on the barrier inside the
            # initializer) and forces a fresh spawn, so all `workers`
            # interpreters exist — warm — before any real job arrives.
            try:
                for future in [
                    self._executor.submit(_noop) for _ in range(self.workers)
                ]:
                    future.result(timeout=WARM_BARRIER_TIMEOUT + 30.0)
            except BaseException:
                self.shutdown(wait=False)
                raise

    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    def submit(self, fn, /, *args) -> Future:
        if self._closed:
            raise RuntimeError("cannot submit to a closed WorkerPool")
        return self._executor.submit(fn, *args)

    def shutdown(self, wait: bool = True) -> None:
        """Idempotent shutdown; cancels work that has not started."""
        if self._closed:
            return
        self._closed = True
        _LIVE_POOLS.discard(self)
        self._executor.shutdown(wait=wait, cancel_futures=True)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()


class ShardHandle:
    """An in-flight sharded evaluation: shard futures plus assembly.

    ``result()`` blocks until every shard finishes and concatenates the
    metric blocks in shard (= row) order — bit-identical to the in-process
    evaluation.  ``cancel()`` abandons the handle: shards that have not
    started are cancelled outright, already-running shards finish in the
    pool but their results are dropped.  The service never charges budget
    for a cancelled handle, which is what makes speculative double-buffered
    submission safe.
    """

    def __init__(self, futures: List[Future]):
        self._futures = futures

    def done(self) -> bool:
        return all(future.done() for future in self._futures)

    def cancel(self) -> None:
        for future in self._futures:
            future.cancel()

    def result(self, timeout: Optional[float] = None) -> Dict[str, np.ndarray]:
        results = [future.result(timeout) for future in self._futures]
        return {
            metric: np.concatenate([result[metric] for result in results])
            for metric in results[0]
        }


def _registered_circuit(circuit: AnalogCircuit) -> bool:
    """True when the circuit's registry name rebuilds this exact class."""
    from repro.circuits.registry import registered_class

    return registered_class(circuit.name) is type(circuit)


def shardable(
    circuit: AnalogCircuit,
    backend: "SimulationBackend",
    workers: int,
    batch: int,
) -> bool:
    """True when a batch of this size is worth splitting across workers.

    Backends whose rows are individually expensive (``row_parallel = True``,
    e.g. one external-simulator subprocess per row) shard any multi-row
    batch; in-process backends require :data:`MIN_ROWS_PER_WORKER` rows per
    worker before the serialization round trip pays off.
    """
    from repro.simulation.service import BACKENDS

    if workers <= 1:
        return False
    if getattr(backend, "row_parallel", False):
        enough = batch >= 2  # any multi-row job beats a serial row loop
    else:
        enough = batch >= MIN_ROWS_PER_WORKER * workers
    return (
        enough
        and backend.name in BACKENDS
        and getattr(backend, "worker_reconstructible", True)
        and _registered_circuit(circuit)
    )


def dispatch_job_sharded(
    circuit: AnalogCircuit,
    backend: "SimulationBackend",
    job: "SimJob",
    pool: Optional[WorkerPool],
) -> Optional[ShardHandle]:
    """Submit one job's row shards to ``pool`` without blocking.

    Returns a :class:`ShardHandle`, or ``None`` whenever sharding is not
    applicable (no pool, small batch, unregistered circuit, non-terminal
    backend) so the caller evaluates in-process instead.
    """
    if pool is None or pool.closed:
        return None
    batch = job.batch
    if not shardable(circuit, backend, pool.workers, batch):
        return None
    shards = min(pool.workers, batch)
    bounds = np.linspace(0, batch, shards + 1).astype(int)
    futures = []
    for shard in range(shards):
        lo, hi = int(bounds[shard]), int(bounds[shard + 1])
        if lo == hi:
            continue
        futures.append(
            pool.submit(_evaluate_job_shard, backend.name, job.shard(lo, hi))
        )
    return ShardHandle(futures)


def run_job_sharded(
    circuit: AnalogCircuit,
    backend: "SimulationBackend",
    job: "SimJob",
    pool: Optional[WorkerPool],
) -> Optional[Dict[str, np.ndarray]]:
    """Blocking convenience wrapper around :func:`dispatch_job_sharded`."""
    handle = dispatch_job_sharded(circuit, backend, job, pool)
    if handle is None:
        return None
    return handle.result()
