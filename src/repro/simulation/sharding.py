"""Opt-in multiprocessing sharding of the batch axis.

The batched evaluation paths vectorize within one process; this module
shards the ``B`` axis of one :meth:`AnalogCircuit.evaluate_batch` call
across a ``concurrent.futures.ProcessPoolExecutor`` when the operational
configuration asks for ``workers > 1`` — modelling the paper's 3-way /
30-way simulation parallelism with real OS-level concurrency.

Design constraints:

* **Seeded-stream identical** — sampling happens *before* evaluation (the
  evaluation consumes no randomness), and shard results are concatenated in
  submission order, so a sharded run returns bit-identical metric arrays to
  the single-process run.
* **No circuit pickling** — circuit instances carry closures (the
  :class:`DeviceSpec` sizing lambdas) and cannot cross a process boundary.
  Workers receive the circuit's *registry name* instead and construct their
  own instance once, caching it for the life of the process.  Circuits not
  in the registry silently run single-process.
* **Lazy pools** — one executor per worker count, created on first use and
  shut down at interpreter exit.
"""

from __future__ import annotations

import atexit
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, Optional, Union

import numpy as np

from repro.circuits.base import AnalogCircuit
from repro.variation.corners import CornerBatch, PVTCorner

#: Shard only batches at least this many times the worker count; smaller
#: batches are not worth the serialization round trip.
MIN_ROWS_PER_WORKER = 2

_EXECUTORS: Dict[int, ProcessPoolExecutor] = {}

# Per-worker-process circuit cache, keyed by registry name.
_WORKER_CIRCUITS: Dict[str, AnalogCircuit] = {}


def _executor(workers: int) -> ProcessPoolExecutor:
    pool = _EXECUTORS.get(workers)
    if pool is None:
        pool = ProcessPoolExecutor(max_workers=workers)
        _EXECUTORS[workers] = pool
    return pool


@atexit.register
def _shutdown_executors() -> None:  # pragma: no cover - interpreter teardown
    for pool in _EXECUTORS.values():
        pool.shutdown(wait=False, cancel_futures=True)
    _EXECUTORS.clear()


def _worker_circuit(name: str) -> AnalogCircuit:
    circuit = _WORKER_CIRCUITS.get(name)
    if circuit is None:
        from repro.circuits.registry import get_circuit

        circuit = get_circuit(name)
        _WORKER_CIRCUITS[name] = circuit
    return circuit


def _evaluate_shard(
    circuit_name: str,
    x_normalized: np.ndarray,
    corner: Union[PVTCorner, CornerBatch, None],
    mismatch: Optional[np.ndarray],
) -> Dict[str, np.ndarray]:
    """Worker-side: evaluate one shard on a process-cached circuit."""
    return _worker_circuit(circuit_name).evaluate_batch(
        x_normalized, corner, mismatch
    )


def _registered_name(circuit: AnalogCircuit) -> Optional[str]:
    """The circuit's registry name, or ``None`` when it is not registered
    (or registered under a name that builds a different class)."""
    from repro.circuits.registry import _REGISTRY

    registered = _REGISTRY.get(circuit.name)
    if registered is not None and type(circuit) is registered:
        return circuit.name
    return None


def shardable(circuit: AnalogCircuit, workers: int, batch: int) -> bool:
    """True when a batch of this size is worth splitting across workers."""
    return (
        workers > 1
        and batch >= MIN_ROWS_PER_WORKER * workers
        and _registered_name(circuit) is not None
    )


def evaluate_batch_sharded(
    circuit: AnalogCircuit,
    x_normalized: np.ndarray,
    corner: Union[PVTCorner, CornerBatch, None],
    mismatch: Optional[np.ndarray],
    workers: int,
) -> Dict[str, np.ndarray]:
    """Split one ``evaluate_batch`` call's row axis across ``workers``.

    Falls back to the in-process call whenever sharding is not applicable
    (small batch, unregistered circuit, ``workers == 1``).  Results are
    concatenated in shard order and are bit-identical to the single-process
    evaluation.
    """
    batch = _batch_length(corner, mismatch)
    if batch is None or not shardable(circuit, workers, batch):
        return circuit.evaluate_batch(x_normalized, corner, mismatch)
    name = _registered_name(circuit)

    bounds = np.linspace(0, batch, workers + 1).astype(int)
    futures = []
    pool = _executor(workers)
    for shard in range(workers):
        lo, hi = int(bounds[shard]), int(bounds[shard + 1])
        if lo == hi:
            continue
        shard_corner = corner
        if isinstance(corner, CornerBatch):
            shard_corner = CornerBatch.from_corners(corner.corners[lo:hi])
        shard_mismatch = None if mismatch is None else mismatch[lo:hi]
        futures.append(
            pool.submit(
                _evaluate_shard, name, x_normalized, shard_corner, shard_mismatch
            )
        )
    results = [future.result() for future in futures]
    return {
        metric: np.concatenate([result[metric] for result in results])
        for metric in results[0]
    }


def _batch_length(
    corner: Union[PVTCorner, CornerBatch, None], mismatch: Optional[np.ndarray]
) -> Optional[int]:
    """Row count of the evaluation, or ``None`` when it cannot be inferred."""
    if mismatch is not None:
        return int(np.asarray(mismatch).shape[0])
    if isinstance(corner, CornerBatch):
        return len(corner)
    return None
