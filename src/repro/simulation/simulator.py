"""The legacy simulation front end, now a thin shim over the service.

``CircuitSimulator`` wraps a testbench circuit and exposes the evaluation
entry points that mirror how the paper issues SPICE jobs:

* :meth:`simulate` — one design, one corner, one mismatch condition;
* :meth:`simulate_mismatch_set` — one design and corner across a sampled
  mismatch-condition set (the optimization-phase N' batch);
* :meth:`simulate_corners` — one design across a corner set at nominal
  mismatch (plain corner simulation);
* :meth:`simulate_corner_sweep` — one design across *corners × mismatch
  sets* as a single mega-batch (the optimizer seed phase);
* :meth:`simulate_designs` — many *designs* at one corner in one vectorized
  pass (TuRBO proposal batches, population-style baselines).

Since the service redesign every one of these **compiles to a**
:class:`~repro.simulation.service.SimJob` **and routes through the single**
:meth:`~repro.simulation.service.SimulationService.run` **call** — batching,
backend selection, caching, sharding and budget accounting all live in the
service layer, and the entry points here only express the request shape
(grouping corner sweeps, tiling a shared mismatch vector) and unpack the
result into :class:`SimulationRecord` lists.  Metrics, seeded streams and
budget charges are bit-identical to the pre-service behavior: a batch of B
conditions still charges B simulations, exactly as the paper counts them.

New code should prefer the service API directly::

    from repro.simulation import SimJob, SimulationService

    service = SimulationService(circuit, backend="batched", workers=4)
    result = service.run(SimJob.conditions(circuit.name, x, corners, h))
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.circuits.base import AnalogCircuit
from repro.simulation.budget import SimulationBudget, SimulationPhase
from repro.simulation.service import (
    SimFuture,
    SimJob,
    SimulationBackend,
    SimulationRecord,
    SimulationService,
)
from repro.variation.corners import CornerSet, PVTCorner, typical_corner
from repro.variation.mismatch import MismatchSet

__all__ = ["CircuitSimulator", "RecordsFuture", "SimulationRecord"]


class RecordsFuture:
    """A :class:`SimFuture` resolved into simulation-record lists.

    The async twin of the record-list entry points below: ``result()``
    resolves the underlying future (all budget accounting happens there,
    see :meth:`SimFuture.result`) and unpacks the metrics tensor into
    :class:`SimulationRecord` views — grouped per corner when the future
    came from :meth:`CircuitSimulator.submit_corner_sweep`.  ``cancel()``
    abandons the job without charging, which is how pipelined consumers
    discard speculative work after an abort.
    """

    def __init__(
        self,
        future: SimFuture,
        names: Sequence[str],
        group_counts: Optional[Sequence[int]] = None,
    ):
        self._future = future
        self._names = tuple(names)
        self._group_counts = (
            None if group_counts is None else list(group_counts)
        )

    @property
    def future(self) -> SimFuture:
        """The underlying service future (for budget/cache introspection)."""
        return self._future

    def done(self) -> bool:
        return self._future.done()

    @property
    def blocking(self) -> bool:
        """True when ``result()`` would run the simulation in this thread."""
        return self._future.blocking

    def cancel(self) -> bool:
        return self._future.cancel()

    def result(self):
        records = self._future.result().to_records(self._names)
        if self._group_counts is None:
            return records
        grouped: List[List[SimulationRecord]] = []
        offset = 0
        for count in self._group_counts:
            grouped.append(records[offset : offset + count])
            offset += count
        return grouped


class CircuitSimulator:
    """Evaluates a circuit under PVT corners and mismatch with cost tracking."""

    def __init__(
        self,
        circuit: AnalogCircuit,
        budget: Optional[SimulationBudget] = None,
        workers: int = 1,
        backend: Union[str, SimulationBackend] = "batched",
        cache: bool = False,
        cache_dir: Optional[str] = None,
        service: Optional[SimulationService] = None,
        retry=None,
        scheduler: Optional[str] = None,
    ):
        if service is None:
            service = SimulationService(
                circuit,
                budget=budget,
                backend=backend,
                workers=workers,
                cache=cache,
                cache_dir=cache_dir,
                retry=retry,
                scheduler=scheduler,
            )
        self._service = service

    @property
    def service(self) -> SimulationService:
        """The underlying simulation service (the one real entry point)."""
        return self._service

    def close(self) -> None:
        """Release the service's worker pool (see
        :meth:`SimulationService.close`)."""
        self._service.close()

    def __enter__(self) -> "CircuitSimulator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def circuit(self) -> AnalogCircuit:
        return self._service.circuit

    @property
    def budget(self) -> SimulationBudget:
        return self._service.budget

    @property
    def workers(self) -> int:
        return self._service.workers

    # ------------------------------------------------------------------
    def _run(self, job: SimJob) -> List[SimulationRecord]:
        result = self._service.run(job)
        return result.to_records(self.circuit.metric_names)

    # ------------------------------------------------------------------
    def simulate(
        self,
        x_normalized: np.ndarray,
        corner: Optional[PVTCorner] = None,
        mismatch: Optional[np.ndarray] = None,
        phase: SimulationPhase = SimulationPhase.OPTIMIZATION,
    ) -> SimulationRecord:
        """Run a single SPICE-equivalent simulation (a batch of one)."""
        corner = corner if corner is not None else typical_corner()
        h_block = None
        if mismatch is not None:
            h_block = np.asarray(mismatch, dtype=float)[None, :]
        job = SimJob.conditions(
            self.circuit.name, x_normalized, (corner,), h_block, phase
        )
        return self._run(job)[0]

    def simulate_mismatch_set(
        self,
        x_normalized: np.ndarray,
        corner: PVTCorner,
        mismatch_set: MismatchSet,
        phase: SimulationPhase = SimulationPhase.OPTIMIZATION,
    ) -> List[SimulationRecord]:
        """Evaluate one design at one corner across every mismatch condition.

        The whole N' block is one condition-axis job; the budget is still
        charged one simulation per mismatch condition.
        """
        job = SimJob.conditions(
            self.circuit.name,
            x_normalized,
            (corner,),
            mismatch_set.samples,
            phase,
        )
        return self._run(job)

    def submit_mismatch_set(
        self,
        x_normalized: np.ndarray,
        corner: PVTCorner,
        mismatch_set: MismatchSet,
        phase: SimulationPhase = SimulationPhase.OPTIMIZATION,
    ) -> RecordsFuture:
        """Non-blocking twin of :meth:`simulate_mismatch_set`.

        Returns a :class:`RecordsFuture` with the job dispatched (or
        deferred — see :meth:`SimulationService.submit`); resolving it in
        submission order is budget-identical to the blocking call.  The
        double-buffered verifier keeps one chunk in flight through this.
        """
        job = SimJob.conditions(
            self.circuit.name,
            x_normalized,
            (corner,),
            mismatch_set.samples,
            phase,
        )
        return RecordsFuture(
            self._service.submit(job), self.circuit.metric_names
        )

    def simulate_corners(
        self,
        x_normalized: np.ndarray,
        corners: CornerSet,
        mismatch: Optional[np.ndarray] = None,
        phase: SimulationPhase = SimulationPhase.OPTIMIZATION,
    ) -> List[SimulationRecord]:
        """Evaluate one design across a corner set at a fixed mismatch.

        The corner axis is the batch axis; a shared mismatch vector is
        tiled across the rows.
        """
        corner_list = tuple(corners)
        if not corner_list:
            return []
        h_matrix = None
        if mismatch is not None:
            h_matrix = np.tile(
                np.asarray(mismatch, dtype=float), (len(corner_list), 1)
            )
        job = SimJob.conditions(
            self.circuit.name, x_normalized, corner_list, h_matrix, phase
        )
        return self._run(job)

    def submit_corners(
        self,
        x_normalized: np.ndarray,
        corners: CornerSet,
        mismatch: Optional[np.ndarray] = None,
        phase: SimulationPhase = SimulationPhase.OPTIMIZATION,
    ) -> Optional[RecordsFuture]:
        """Non-blocking twin of :meth:`simulate_corners` (``None`` for an
        empty corner set)."""
        corner_list = tuple(corners)
        if not corner_list:
            return None
        h_matrix = None
        if mismatch is not None:
            h_matrix = np.tile(
                np.asarray(mismatch, dtype=float), (len(corner_list), 1)
            )
        job = SimJob.conditions(
            self.circuit.name, x_normalized, corner_list, h_matrix, phase
        )
        return RecordsFuture(
            self._service.submit(job), self.circuit.metric_names
        )

    def simulate_corner_sweep(
        self,
        x_normalized: np.ndarray,
        corners: Sequence[PVTCorner],
        mismatch_sets: Sequence[MismatchSet],
        phase: SimulationPhase = SimulationPhase.OPTIMIZATION,
    ) -> List[List[SimulationRecord]]:
        """Evaluate one design across *corners × mismatch sets* in one pass.

        The optimizer seed phase and the baselines' corner-exhaustive
        evaluation both fan one design out over every predefined corner with
        ``N'`` mismatch conditions each; this entry point stacks the whole
        sweep into a single ``(sum_i N_i,)`` mega-batch (corner axis carried
        by a repeated corner block) and returns the records grouped per
        corner, in the caller's corner order.  The budget is charged in one
        step for the entire sweep.
        """
        job, counts = self._corner_sweep_job(
            x_normalized, corners, mismatch_sets, phase
        )
        if job is None:
            return []
        flat_records = self._run(job)
        grouped: List[List[SimulationRecord]] = []
        offset = 0
        for count in counts:
            grouped.append(flat_records[offset : offset + count])
            offset += count
        return grouped

    def submit_corner_sweep(
        self,
        x_normalized: np.ndarray,
        corners: Sequence[PVTCorner],
        mismatch_sets: Sequence[MismatchSet],
        phase: SimulationPhase = SimulationPhase.OPTIMIZATION,
    ) -> RecordsFuture:
        """Non-blocking twin of :meth:`simulate_corner_sweep`.

        The optimizer's seed phase submits seed *i+1*'s sweep while seed
        *i* is still in flight; resolution (grouped per corner, caller's
        corner order) is budget-identical to the blocking call.
        """
        job, counts = self._corner_sweep_job(
            x_normalized, corners, mismatch_sets, phase
        )
        if job is None:
            raise ValueError("a corner sweep needs at least one corner")
        return RecordsFuture(
            self._service.submit(job),
            self.circuit.metric_names,
            group_counts=counts,
        )

    def _corner_sweep_job(
        self,
        x_normalized: np.ndarray,
        corners: Sequence[PVTCorner],
        mismatch_sets: Sequence[MismatchSet],
        phase: SimulationPhase,
    ) -> Tuple[Optional[SimJob], List[int]]:
        """The flat ``(sum_i N_i,)`` mega-batch job for a corner sweep."""
        corner_list = list(corners)
        if len(corner_list) != len(mismatch_sets):
            raise ValueError("one mismatch set per corner is required")
        if not corner_list:
            return None, []
        counts = [len(mismatch_set) for mismatch_set in mismatch_sets]
        flat_corners = tuple(
            corner
            for corner, count in zip(corner_list, counts)
            for _ in range(count)
        )
        h_matrix = np.vstack(
            [mismatch_set.samples for mismatch_set in mismatch_sets]
        )
        job = SimJob.conditions(
            self.circuit.name, x_normalized, flat_corners, h_matrix, phase
        )
        return job, counts

    def simulate_designs(
        self,
        designs: np.ndarray,
        corner: Optional[PVTCorner] = None,
        phase: SimulationPhase = SimulationPhase.INITIAL_SAMPLING,
    ) -> List[SimulationRecord]:
        """Evaluate many *designs* at one corner and nominal mismatch.

        The design axis is the batch axis here — one job covers a whole
        TuRBO proposal batch or a population of random candidates, and with
        ``workers > 1`` the design rows shard across the same process pool
        as every other axis.  The budget is charged one simulation per
        design, exactly as the scalar loop would.
        """
        corner = corner if corner is not None else typical_corner()
        job = SimJob.design_batch(self.circuit.name, designs, corner, phase)
        return self._run(job)

    def simulate_typical(
        self,
        x_normalized: np.ndarray,
        phase: SimulationPhase = SimulationPhase.INITIAL_SAMPLING,
    ) -> SimulationRecord:
        """Evaluate at the typical TT / nominal-VT condition (initial sampling)."""
        return self.simulate(x_normalized, typical_corner(), None, phase)

    # ------------------------------------------------------------------
    def metrics_matrix(
        self,
        records: Sequence[SimulationRecord],
        names: Optional[Sequence[str]] = None,
    ) -> np.ndarray:
        """Stack record metrics into an ``(n_records, n_metrics)`` array.

        Columns follow ``names`` (default: the circuit's metric order).
        Callers that feed the matrix to order-sensitive consumers (e.g.
        ``DesignSpec.normalized_matrix``) should pass that consumer's
        ordering explicitly.  Records from a batched sweep contribute their
        cached vectors when the ordering matches, so the common case is a
        plain ``np.stack`` with no per-record dict lookups.
        """
        if names is None:
            names = self.circuit.metric_names
        if not records:
            return np.empty((0, len(names)))
        return np.stack([record.metric_vector(names) for record in records])
