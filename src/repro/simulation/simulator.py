"""The simulation front end used by the optimizer and the verifier.

``CircuitSimulator`` wraps a testbench circuit and exposes evaluation entry
points that mirror how the paper issues SPICE jobs:

* :meth:`simulate` — one design, one corner, one mismatch condition;
* :meth:`simulate_mismatch_set` — one design and corner across a sampled
  mismatch-condition set (the optimization-phase N' batch);
* :meth:`simulate_corners` — one design across a corner set at nominal
  mismatch (plain corner simulation).

Every call is charged to a :class:`~repro.simulation.budget.SimulationBudget`
so the paper's "# Simulation" column can be reproduced exactly.

The multi-condition entry points are **batched**: when the circuit provides
a vectorized evaluation path (``circuit.supports_batch``), the whole
mismatch set or corner sweep is evaluated in one
:meth:`~repro.circuits.base.AnalogCircuit.evaluate_batch` pass instead of B
scalar calls.  Budget accounting is unchanged — a batch of B conditions
still charges B simulations, exactly as the paper counts them.

Two further axes batch through dedicated entry points:

* :meth:`simulate_corner_sweep` — one design across *corners × mismatch
  sets* as a single mega-batch (the optimizer seed phase);
* :meth:`simulate_designs` — many *designs* at one corner in one vectorized
  pass (TuRBO proposal batches, population-style baselines).

With ``workers > 1`` the mismatch/corner-batched calls additionally shard
their row axis across a process pool (:mod:`repro.simulation.sharding`)
with bit-identical results; the design-axis path runs in-process (ROADMAP:
design-axis sharding).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.circuits.base import AnalogCircuit
from repro.simulation.budget import SimulationBudget, SimulationPhase
from repro.simulation.sharding import evaluate_batch_sharded
from repro.variation.corners import CornerBatch, CornerSet, PVTCorner, typical_corner
from repro.variation.mismatch import MismatchSet


@dataclass(frozen=True)
class SimulationRecord:
    """One simulation outcome: the metrics for ``(x, corner, h)``.

    Records produced by a batched sweep carry a precomputed metric vector
    (one row of the batch matrix), so stacking many records back into a
    matrix needs no per-record dict traffic.
    """

    metrics: Dict[str, float]
    corner: PVTCorner
    mismatch: Optional[np.ndarray]
    vector: Optional[np.ndarray] = field(default=None, repr=False, compare=False)
    vector_names: Optional[Tuple[str, ...]] = field(
        default=None, repr=False, compare=False
    )

    def metric_vector(self, names: Sequence[str]) -> np.ndarray:
        if self.vector is not None and tuple(names) == self.vector_names:
            # Copy so callers can mutate the result without corrupting the
            # record (scalar records always return a fresh array).
            return self.vector.copy()
        return np.array([self.metrics[name] for name in names])


class CircuitSimulator:
    """Evaluates a circuit under PVT corners and mismatch with cost tracking."""

    def __init__(
        self,
        circuit: AnalogCircuit,
        budget: Optional[SimulationBudget] = None,
        workers: int = 1,
    ):
        self._circuit = circuit
        self._budget = budget if budget is not None else SimulationBudget()
        self._workers = max(1, int(workers))

    @property
    def circuit(self) -> AnalogCircuit:
        return self._circuit

    @property
    def budget(self) -> SimulationBudget:
        return self._budget

    @property
    def workers(self) -> int:
        return self._workers

    def _evaluate_batch(
        self,
        x_normalized: np.ndarray,
        corner: Union[PVTCorner, CornerBatch, None],
        mismatch: Optional[np.ndarray],
    ) -> Dict[str, np.ndarray]:
        """One batched evaluation, sharded across processes when configured."""
        if self._workers > 1:
            return evaluate_batch_sharded(
                self._circuit, x_normalized, corner, mismatch, self._workers
            )
        return self._circuit.evaluate_batch(x_normalized, corner, mismatch)

    # ------------------------------------------------------------------
    def simulate(
        self,
        x_normalized: np.ndarray,
        corner: Optional[PVTCorner] = None,
        mismatch: Optional[np.ndarray] = None,
        phase: SimulationPhase = SimulationPhase.OPTIMIZATION,
    ) -> SimulationRecord:
        """Run a single SPICE-equivalent simulation."""
        corner = corner if corner is not None else typical_corner()
        self._budget.record(phase, 1)
        metrics = self._circuit.evaluate(x_normalized, corner, mismatch)
        return SimulationRecord(metrics=metrics, corner=corner, mismatch=mismatch)

    def simulate_mismatch_set(
        self,
        x_normalized: np.ndarray,
        corner: PVTCorner,
        mismatch_set: MismatchSet,
        phase: SimulationPhase = SimulationPhase.OPTIMIZATION,
    ) -> List[SimulationRecord]:
        """Evaluate one design at one corner across every mismatch condition.

        Fast path: circuits with a vectorized evaluation run the whole N'
        batch in a single :meth:`AnalogCircuit.evaluate_batch` call.  The
        budget is still charged one simulation per mismatch condition.
        """
        count = len(mismatch_set)
        if not self._circuit.supports_batch:
            return [
                self.simulate(x_normalized, corner, mismatch, phase)
                for mismatch in mismatch_set
            ]
        self._budget.record(phase, count)
        metrics = self._evaluate_batch(x_normalized, corner, mismatch_set.samples)
        return self._records_from_batch(
            metrics, [corner] * count, list(mismatch_set)
        )

    def simulate_corners(
        self,
        x_normalized: np.ndarray,
        corners: CornerSet,
        mismatch: Optional[np.ndarray] = None,
        phase: SimulationPhase = SimulationPhase.OPTIMIZATION,
    ) -> List[SimulationRecord]:
        """Evaluate one design across a corner set at a fixed mismatch.

        Fast path: the whole sweep is evaluated in one pass with the corner
        axis batched (:class:`~repro.variation.corners.CornerBatch`).
        """
        corner_list = list(corners)
        if not corner_list:
            return []
        if not self._circuit.supports_batch:
            return [
                self.simulate(x_normalized, corner, mismatch, phase)
                for corner in corner_list
            ]
        count = len(corner_list)
        self._budget.record(phase, count)
        corner_batch = CornerBatch.from_corners(corner_list)
        h_matrix = None
        if mismatch is not None:
            h_matrix = np.tile(np.asarray(mismatch, dtype=float), (count, 1))
        metrics = self._evaluate_batch(x_normalized, corner_batch, h_matrix)
        return self._records_from_batch(
            metrics, corner_list, [mismatch] * count
        )

    def simulate_corner_sweep(
        self,
        x_normalized: np.ndarray,
        corners: Sequence[PVTCorner],
        mismatch_sets: Sequence[MismatchSet],
        phase: SimulationPhase = SimulationPhase.OPTIMIZATION,
    ) -> List[List[SimulationRecord]]:
        """Evaluate one design across *corners × mismatch sets* in one pass.

        The optimizer seed phase and the baselines' corner-exhaustive
        evaluation both fan one design out over every predefined corner with
        ``N'`` mismatch conditions each; this entry point stacks the whole
        sweep into a single ``(sum_i N_i,)`` mega-batch (corner axis carried
        by a repeated :class:`CornerBatch`) and returns the records grouped
        per corner, in the caller's corner order.  The budget is charged in
        one step for the entire sweep.
        """
        corner_list = list(corners)
        if len(corner_list) != len(mismatch_sets):
            raise ValueError("one mismatch set per corner is required")
        if not corner_list:
            return []
        counts = [len(mismatch_set) for mismatch_set in mismatch_sets]
        if not self._circuit.supports_batch:
            return [
                self.simulate_mismatch_set(x_normalized, corner, mismatch_set, phase)
                for corner, mismatch_set in zip(corner_list, mismatch_sets)
            ]
        total = sum(counts)
        self._budget.record(phase, total)
        flat_corners = [
            corner
            for corner, count in zip(corner_list, counts)
            for _ in range(count)
        ]
        corner_batch = CornerBatch.from_corners(flat_corners)
        h_matrix = np.vstack([mismatch_set.samples for mismatch_set in mismatch_sets])
        metrics = self._evaluate_batch(x_normalized, corner_batch, h_matrix)
        flat_records = self._records_from_batch(
            metrics, flat_corners, list(h_matrix)
        )
        grouped: List[List[SimulationRecord]] = []
        offset = 0
        for count in counts:
            grouped.append(flat_records[offset : offset + count])
            offset += count
        return grouped

    def simulate_designs(
        self,
        designs: np.ndarray,
        corner: Optional[PVTCorner] = None,
        phase: SimulationPhase = SimulationPhase.INITIAL_SAMPLING,
    ) -> List[SimulationRecord]:
        """Evaluate many *designs* at one corner and nominal mismatch.

        The design axis is the batch axis here — one
        :meth:`AnalogCircuit.evaluate_design_batch` pass covers a whole
        TuRBO proposal batch or a population of random candidates.  The
        budget is charged one simulation per design, exactly as the scalar
        loop would.
        """
        corner = corner if corner is not None else typical_corner()
        designs = np.atleast_2d(np.asarray(designs, dtype=float))
        count = designs.shape[0]
        self._budget.record(phase, count)
        metrics = self._circuit.evaluate_design_batch(designs, corner)
        return self._records_from_batch(
            metrics, [corner] * count, [None] * count
        )

    def simulate_typical(
        self,
        x_normalized: np.ndarray,
        phase: SimulationPhase = SimulationPhase.INITIAL_SAMPLING,
    ) -> SimulationRecord:
        """Evaluate at the typical TT / nominal-VT condition (initial sampling)."""
        return self.simulate(x_normalized, typical_corner(), None, phase)

    # ------------------------------------------------------------------
    def _records_from_batch(
        self,
        metrics: Dict[str, np.ndarray],
        corners: Sequence[PVTCorner],
        mismatches: Sequence[Optional[np.ndarray]],
    ) -> List[SimulationRecord]:
        """Wrap a batched metric dict into per-condition records."""
        names = tuple(self._circuit.metric_names)
        matrix = np.column_stack([np.asarray(metrics[name], float) for name in names])
        return [
            SimulationRecord(
                metrics=dict(zip(names, row.tolist())),
                corner=corners[index],
                mismatch=mismatches[index],
                vector=row,
                vector_names=names,
            )
            for index, row in enumerate(matrix)
        ]

    def metrics_matrix(
        self,
        records: Sequence[SimulationRecord],
        names: Optional[Sequence[str]] = None,
    ) -> np.ndarray:
        """Stack record metrics into an ``(n_records, n_metrics)`` array.

        Columns follow ``names`` (default: the circuit's metric order).
        Callers that feed the matrix to order-sensitive consumers (e.g.
        ``DesignSpec.normalized_matrix``) should pass that consumer's
        ordering explicitly.  Records from a batched sweep contribute their
        cached vectors when the ordering matches, so the common case is a
        plain ``np.stack`` with no per-record dict lookups.
        """
        if names is None:
            names = self._circuit.metric_names
        if not records:
            return np.empty((0, len(names)))
        return np.stack([record.metric_vector(names) for record in records])
