"""The simulation front end used by the optimizer and the verifier.

``CircuitSimulator`` wraps a testbench circuit and exposes evaluation entry
points that mirror how the paper issues SPICE jobs:

* :meth:`simulate` — one design, one corner, one mismatch condition;
* :meth:`simulate_mismatch_set` — one design and corner across a sampled
  mismatch-condition set (the optimization-phase N' batch);
* :meth:`simulate_corners` — one design across a corner set at nominal
  mismatch (plain corner simulation).

Every call is charged to a :class:`~repro.simulation.budget.SimulationBudget`
so the paper's "# Simulation" column can be reproduced exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.circuits.base import AnalogCircuit
from repro.simulation.budget import SimulationBudget, SimulationPhase
from repro.variation.corners import CornerSet, PVTCorner, typical_corner
from repro.variation.mismatch import MismatchSet


@dataclass(frozen=True)
class SimulationRecord:
    """One simulation outcome: the metrics for ``(x, corner, h)``."""

    metrics: Dict[str, float]
    corner: PVTCorner
    mismatch: Optional[np.ndarray]

    def metric_vector(self, names: Sequence[str]) -> np.ndarray:
        return np.array([self.metrics[name] for name in names])


class CircuitSimulator:
    """Evaluates a circuit under PVT corners and mismatch with cost tracking."""

    def __init__(
        self,
        circuit: AnalogCircuit,
        budget: Optional[SimulationBudget] = None,
    ):
        self._circuit = circuit
        self._budget = budget if budget is not None else SimulationBudget()

    @property
    def circuit(self) -> AnalogCircuit:
        return self._circuit

    @property
    def budget(self) -> SimulationBudget:
        return self._budget

    # ------------------------------------------------------------------
    def simulate(
        self,
        x_normalized: np.ndarray,
        corner: Optional[PVTCorner] = None,
        mismatch: Optional[np.ndarray] = None,
        phase: SimulationPhase = SimulationPhase.OPTIMIZATION,
    ) -> SimulationRecord:
        """Run a single SPICE-equivalent simulation."""
        corner = corner if corner is not None else typical_corner()
        self._budget.record(phase, 1)
        metrics = self._circuit.evaluate(x_normalized, corner, mismatch)
        return SimulationRecord(metrics=metrics, corner=corner, mismatch=mismatch)

    def simulate_mismatch_set(
        self,
        x_normalized: np.ndarray,
        corner: PVTCorner,
        mismatch_set: MismatchSet,
        phase: SimulationPhase = SimulationPhase.OPTIMIZATION,
    ) -> List[SimulationRecord]:
        """Evaluate one design at one corner across every mismatch condition."""
        records = []
        for mismatch in mismatch_set:
            records.append(self.simulate(x_normalized, corner, mismatch, phase))
        return records

    def simulate_corners(
        self,
        x_normalized: np.ndarray,
        corners: CornerSet,
        mismatch: Optional[np.ndarray] = None,
        phase: SimulationPhase = SimulationPhase.OPTIMIZATION,
    ) -> List[SimulationRecord]:
        """Evaluate one design across a corner set at a fixed mismatch."""
        return [
            self.simulate(x_normalized, corner, mismatch, phase) for corner in corners
        ]

    def simulate_typical(
        self,
        x_normalized: np.ndarray,
        phase: SimulationPhase = SimulationPhase.INITIAL_SAMPLING,
    ) -> SimulationRecord:
        """Evaluate at the typical TT / nominal-VT condition (initial sampling)."""
        return self.simulate(x_normalized, typical_corner(), None, phase)

    # ------------------------------------------------------------------
    def metrics_matrix(
        self, records: Sequence[SimulationRecord]
    ) -> np.ndarray:
        """Stack record metrics into an ``(n_records, n_metrics)`` array."""
        names = self._circuit.metric_names
        return np.array([record.metric_vector(names) for record in records])
