"""``RemoteBackend`` — ship :class:`SimJob` s to ``repro serve`` daemons.

The client half of the remote simulation fabric.  Registered as
``"remote"`` in ``BACKENDS``, it behaves exactly like any terminal
backend — :class:`~repro.simulation.service.SimulationService` wraps it
in the cache and the accounting loop unchanged — except that
``evaluate`` serializes the job over the frame protocol to one of a
fleet of endpoints and validates the metric block that comes back.

Failure handling is layered, cheapest first:

1. **Timeouts.**  Every connection has a connect timeout and an
   *activity* timeout: the clock resets on any frame from the server, so
   a long job on a healthy server (heartbeats flowing) never times out,
   while a hung server (silence) is abandoned quickly.
2. **Retries with seeded backoff.**  Transient failures — refused
   connections, dropped/truncated frames, engine errors the server
   reported — rotate to the next endpoint and back off via the existing
   :class:`~repro.simulation.service.RetryPolicy` delay machinery
   (deterministic per job hash and attempt: reruns wait the same
   delays).  The job hash is the idempotency key, so resubmitting after
   an ambiguous failure is always safe — the server coalesces or serves
   the retained result.
3. **Per-endpoint circuit breakers.**  ``breaker_threshold`` consecutive
   failures open an endpoint's breaker; while open the endpoint is
   skipped entirely (no connect timeout paid per job).  After
   ``breaker_reset_seconds`` one probe request is allowed through
   (half-open): success closes the breaker, failure re-opens it.
4. **Degrade to local.**  When every endpoint is open or attempts are
   exhausted, the job runs on a local in-process fallback backend
   (default ``batched``).  The run *finishes correctly, just slower* —
   and because all budget/cache accounting lives client-side in the
   service, the results and budget trajectory are bit-identical to a
   fully-local run no matter when the fabric degraded.

Configuration is environment-first (the ngspice pattern), which is what
makes the zero-argument constructor — and therefore
``worker_reconstructible`` — work::

    REPRO_REMOTE_ENDPOINTS         host:port[,host:port...]   (required)
    REPRO_REMOTE_FALLBACK          local backend name (default: batched)
    REPRO_REMOTE_CONNECT_TIMEOUT   seconds (default: 2.0)
    REPRO_REMOTE_ACTIVITY_TIMEOUT  seconds of server silence (default: 10.0)
    REPRO_REMOTE_ATTEMPTS          total tries across the fleet (default: 3)
    REPRO_REMOTE_BREAKER_THRESHOLD consecutive failures to open (default: 3)
    REPRO_REMOTE_BREAKER_RESET     seconds until half-open (default: 5.0)
"""

from __future__ import annotations

import logging
import os
import socket
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.circuits.base import AnalogCircuit
from repro.simulation.protocol import (
    FrameType,
    ProtocolError,
    RemoteError,
    dumps_payload,
    loads_metrics,
    recv_frame,
    request_id_bytes,
    send_frame,
)
from repro.simulation.service import (
    BACKENDS,
    RetryPolicy,
    SimJob,
    SimulationBackend,
    resolve_backend,
)

logger = logging.getLogger(__name__)

ENDPOINTS_ENV = "REPRO_REMOTE_ENDPOINTS"
FALLBACK_ENV = "REPRO_REMOTE_FALLBACK"
CONNECT_TIMEOUT_ENV = "REPRO_REMOTE_CONNECT_TIMEOUT"
ACTIVITY_TIMEOUT_ENV = "REPRO_REMOTE_ACTIVITY_TIMEOUT"
ATTEMPTS_ENV = "REPRO_REMOTE_ATTEMPTS"
BREAKER_THRESHOLD_ENV = "REPRO_REMOTE_BREAKER_THRESHOLD"
BREAKER_RESET_ENV = "REPRO_REMOTE_BREAKER_RESET"

DEFAULT_CONNECT_TIMEOUT = 2.0
DEFAULT_ACTIVITY_TIMEOUT = 10.0
DEFAULT_ATTEMPTS = 3
DEFAULT_BREAKER_THRESHOLD = 3
DEFAULT_BREAKER_RESET = 5.0


def parse_endpoints(spec: Union[str, Sequence[str]]) -> Tuple[Tuple[str, int], ...]:
    """``"host:port,host:port"`` (or a sequence of such) → address tuples."""
    if isinstance(spec, str):
        parts = [part.strip() for part in spec.split(",")]
    else:
        parts = [str(part).strip() for part in spec]
    endpoints = []
    for part in parts:
        if not part:
            continue
        host, sep, port = part.rpartition(":")
        if not sep or not host:
            raise ValueError(
                f"endpoint {part!r} is not of the form host:port"
            )
        try:
            endpoints.append((host, int(port)))
        except ValueError:
            raise ValueError(
                f"endpoint {part!r} has a non-integer port"
            ) from None
    return tuple(endpoints)


class CircuitBreaker:
    """Closed → open after K consecutive failures → half-open probe.

    Plain state machine, injectable clock for tests.  ``allows()`` is
    the gate: always True when closed; when open it stays False until
    ``reset_seconds`` have passed, then returns True exactly once (the
    half-open probe) — the probe's outcome closes or re-opens the
    breaker via :meth:`record_success` / :meth:`record_failure`.
    """

    def __init__(
        self,
        failure_threshold: int = DEFAULT_BREAKER_THRESHOLD,
        reset_seconds: float = DEFAULT_BREAKER_RESET,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.failure_threshold = max(1, int(failure_threshold))
        self.reset_seconds = float(reset_seconds)
        self._clock = clock
        self._consecutive_failures = 0
        self._opened_at: Optional[float] = None
        self._probing = False

    @property
    def state(self) -> str:
        if self._opened_at is None:
            return "closed"
        if self._probing:
            return "half-open"
        return "open"

    def allows(self) -> bool:
        """Whether a request may be sent to this endpoint right now."""
        if self._opened_at is None:
            return True
        if self._probing:
            return False  # one probe at a time
        if self._clock() - self._opened_at >= self.reset_seconds:
            self._probing = True
            return True
        return False

    def record_success(self) -> None:
        self._consecutive_failures = 0
        self._opened_at = None
        self._probing = False

    def record_failure(self) -> None:
        self._consecutive_failures += 1
        self._probing = False
        if (
            self._opened_at is not None
            or self._consecutive_failures >= self.failure_threshold
        ):
            # A failed probe re-opens immediately; fresh failures open
            # once the threshold is met.  Re-stamp the clock so the
            # next probe waits a full reset period.
            self._opened_at = self._clock()


class RemoteBackend(SimulationBackend):
    """Terminal backend evaluating jobs on ``repro serve`` endpoints.

    Zero arguments (the worker-side rebuild) reads everything from
    ``REPRO_REMOTE_*`` — no endpoints configured is a deployment error
    and raises immediately; a fabric that silently never leaves the
    fallback would defeat the point.
    """

    name = "remote"

    def __init__(
        self,
        endpoints: Union[None, str, Sequence[str]] = None,
        fallback: Union[None, str, SimulationBackend] = None,
        connect_timeout: Optional[float] = None,
        activity_timeout: Optional[float] = None,
        attempts: Optional[int] = None,
        breaker_threshold: Optional[int] = None,
        breaker_reset_seconds: Optional[float] = None,
    ):
        self._env_configured = all(
            value is None
            for value in (
                endpoints,
                fallback,
                connect_timeout,
                activity_timeout,
                attempts,
                breaker_threshold,
                breaker_reset_seconds,
            )
        )
        if endpoints is None:
            endpoints = os.environ.get(ENDPOINTS_ENV, "")
        self.endpoints = parse_endpoints(endpoints)
        if not self.endpoints:
            raise ValueError(
                "RemoteBackend needs at least one endpoint: pass "
                f"endpoints= or set {ENDPOINTS_ENV}=host:port[,host:port]"
            )
        if fallback is None:
            fallback = os.environ.get(FALLBACK_ENV) or "batched"
        self._fallback_name = (
            fallback if isinstance(fallback, str) else fallback.name
        )
        self._fallback: Optional[SimulationBackend] = (
            None if isinstance(fallback, str) else fallback
        )
        self.connect_timeout = (
            float(os.environ.get(CONNECT_TIMEOUT_ENV, DEFAULT_CONNECT_TIMEOUT))
            if connect_timeout is None
            else float(connect_timeout)
        )
        self.activity_timeout = (
            float(
                os.environ.get(ACTIVITY_TIMEOUT_ENV, DEFAULT_ACTIVITY_TIMEOUT)
            )
            if activity_timeout is None
            else float(activity_timeout)
        )
        attempts = (
            int(os.environ.get(ATTEMPTS_ENV, DEFAULT_ATTEMPTS))
            if attempts is None
            else int(attempts)
        )
        threshold = (
            int(
                os.environ.get(
                    BREAKER_THRESHOLD_ENV, DEFAULT_BREAKER_THRESHOLD
                )
            )
            if breaker_threshold is None
            else int(breaker_threshold)
        )
        reset_seconds = (
            float(os.environ.get(BREAKER_RESET_ENV, DEFAULT_BREAKER_RESET))
            if breaker_reset_seconds is None
            else float(breaker_reset_seconds)
        )
        #: Seeded deterministic backoff between fleet-wide attempts; the
        #: retry classification itself (what counts as transient) is
        #: handled here, not by the service policy.
        self.policy = RetryPolicy(
            max_attempts=max(1, attempts), backoff=0.05, jitter=0.1
        )
        self.breakers: Dict[Tuple[str, int], CircuitBreaker] = {
            endpoint: CircuitBreaker(threshold, reset_seconds)
            for endpoint in self.endpoints
        }
        self._cursor = 0
        self._warned_degraded = False
        #: Observable counters (tests and operators read these).
        self.remote_evaluations = 0
        self.fallback_used = 0

    # ------------------------------------------------------------------
    # Backend traits
    # ------------------------------------------------------------------
    @property
    def row_parallel(self) -> bool:
        return False

    @property
    def worker_reconstructible(self) -> bool:
        """True only for the env-configured form (the ngspice pattern):
        a worker's ``RemoteBackend()`` must rebuild *this* fleet."""
        return self._env_configured

    @property
    def fallback(self) -> SimulationBackend:
        """The local backend degraded jobs run on (built lazily so a
        healthy fabric never pays for it)."""
        if self._fallback is None:
            self._fallback = resolve_backend(self._fallback_name)
        return self._fallback

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate(
        self, circuit: AnalogCircuit, job: SimJob
    ) -> Dict[str, np.ndarray]:
        last_error: Optional[BaseException] = None
        for attempt in range(1, self.policy.max_attempts + 1):
            tried_any = False
            for endpoint in self._rotation():
                breaker = self.breakers[endpoint]
                if not breaker.allows():
                    continue
                tried_any = True
                try:
                    metrics = self._request(endpoint, circuit, job)
                except RemoteError as error:
                    if error.kind == "deployment":
                        # A misconfigured server (unknown circuit, broken
                        # backend) must surface, not be papered over by
                        # the local fallback.
                        raise
                    breaker.record_failure()
                    last_error = error
                    continue
                except (
                    ProtocolError,
                    OSError,
                    TimeoutError,
                    socket.timeout,
                ) as error:
                    breaker.record_failure()
                    last_error = error
                    continue
                breaker.record_success()
                self.remote_evaluations += 1
                return metrics
            if not tried_any:
                break  # every breaker open — no point backing off
            if attempt < self.policy.max_attempts:
                self.policy.sleep(job.job_id, attempt)
        return self._degrade(circuit, job, last_error)

    def _rotation(self) -> List[Tuple[str, int]]:
        """Endpoints starting at the cursor (simple round-robin spread)."""
        start = self._cursor % len(self.endpoints)
        self._cursor += 1
        return list(self.endpoints[start:]) + list(self.endpoints[:start])

    def _degrade(
        self,
        circuit: AnalogCircuit,
        job: SimJob,
        last_error: Optional[BaseException],
    ) -> Dict[str, np.ndarray]:
        if not self._warned_degraded:
            self._warned_degraded = True
            logger.warning(
                "remote fabric unavailable (%s); degrading to local "
                "%r backend — results are unaffected, throughput is",
                last_error,
                self._fallback_name,
            )
        self.fallback_used += 1
        return self.fallback.evaluate(circuit, job)

    # ------------------------------------------------------------------
    def _request(
        self,
        endpoint: Tuple[str, int],
        circuit: AnalogCircuit,
        job: SimJob,
    ) -> Dict[str, np.ndarray]:
        """One attempt against one endpoint: connect, submit, await."""
        request_id = request_id_bytes(job.job_id)
        with socket.create_connection(
            endpoint, timeout=self.connect_timeout
        ) as sock:
            # From here on the clock is *activity*: any frame from the
            # server (heartbeats included) proves it is alive and resets
            # the timeout — only true silence gives up.
            sock.settimeout(self.activity_timeout)
            send_frame(
                sock,
                FrameType.REQUEST,
                dumps_payload(job),
                request_id=request_id,
            )
            while True:
                kind, reply_id, payload = recv_frame(sock)
                if kind == FrameType.HEARTBEAT:
                    # Echo back: the echo is what renews our server-side
                    # lease.  A failed echo means the server is gone.
                    send_frame(
                        sock, FrameType.HEARTBEAT, request_id=request_id
                    )
                    continue
                if kind == FrameType.PONG:
                    continue
                if reply_id != request_id:
                    raise ProtocolError(
                        "reply correlates to a different request"
                    )
                if kind == FrameType.RESULT:
                    return loads_metrics(
                        payload, job.batch, circuit.metric_names
                    )
                if kind == FrameType.ERROR:
                    detail = self._decode_error(payload)
                    raise RemoteError(*detail)
                raise ProtocolError(f"unexpected {kind.name} frame")

    @staticmethod
    def _decode_error(payload: bytes) -> Tuple[str, str]:
        from repro.simulation.protocol import loads_payload

        decoded = loads_payload(payload)
        if not isinstance(decoded, dict):
            raise ProtocolError("malformed ERROR payload")
        return (
            str(decoded.get("kind", "error")),
            str(decoded.get("message", "")),
        )

    # ------------------------------------------------------------------
    def ping(self, endpoint: Tuple[str, int]) -> bool:
        """Health-probe one endpoint (used by operators and tests)."""
        try:
            with socket.create_connection(
                endpoint, timeout=self.connect_timeout
            ) as sock:
                sock.settimeout(self.activity_timeout)
                send_frame(sock, FrameType.PING)
                kind, _rid, _payload = recv_frame(sock)
                return kind == FrameType.PONG
        except (ProtocolError, OSError, TimeoutError, socket.timeout):
            return False


BACKENDS[RemoteBackend.name] = RemoteBackend


__all__ = [
    "ACTIVITY_TIMEOUT_ENV",
    "ATTEMPTS_ENV",
    "BREAKER_RESET_ENV",
    "BREAKER_THRESHOLD_ENV",
    "CONNECT_TIMEOUT_ENV",
    "CircuitBreaker",
    "DEFAULT_ACTIVITY_TIMEOUT",
    "DEFAULT_ATTEMPTS",
    "DEFAULT_BREAKER_RESET",
    "DEFAULT_BREAKER_THRESHOLD",
    "DEFAULT_CONNECT_TIMEOUT",
    "ENDPOINTS_ENV",
    "FALLBACK_ENV",
    "RemoteBackend",
    "parse_endpoints",
]
