"""Wire protocol of the remote simulation fabric.

One frame format carries every message between a :class:`~repro.simulation
.remote.RemoteBackend` client and a ``repro serve`` daemon
(:mod:`repro.simulation.server`), and between an experiment client and the
``repro serve --mode experiment`` front end
(:mod:`repro.simulation.frontend`).  The format is deliberately boring —
length-prefixed binary frames over a plain TCP stream — because boring is
what survives the failure modes a network transport must stay correct
under: connections dropping mid-frame, peers vanishing, bytes arriving
truncated or corrupted, and hostile garbage landing on the listening port.

Frame layout (network byte order)::

    magic      4 bytes   b"RSIM"
    version    u16       PROTOCOL_VERSION (peers reject mismatches)
    type       u8        FrameType value
    reserved   u8        zero (room for flags)
    length     u32       payload byte count (<= MAX_FRAME_BYTES)
    checksum   u32       zlib.crc32 of the payload
    request    32 bytes  the SimJob content hash (raw digest bytes) —
                         the request id that correlates every frame of
                         one evaluation, and the idempotency key that
                         makes at-least-once delivery safe
    payload    `length` bytes

Every malformed input — bad magic, unknown version, oversized length,
short read, checksum mismatch, an unpicklable payload — raises the *typed*
:class:`ProtocolError` (never a hang, never a partial result), which is
what the client's retry/breaker machinery and the server's per-connection
error handling key on.  The oversized-length check runs **before** any
allocation, so a garbage length field cannot balloon memory.

Payloads are pickled (jobs and metric blocks already cross the process
boundary by pickle for the worker pool).  That makes the fabric a
**trusted-perimeter** transport — same machine, same cluster, same user —
exactly like the multiprocessing pool it extends; do not expose a
``repro serve`` port to untrusted networks.

Chaos hooks: :func:`send_frame` consults the active network-fault plan
(:func:`repro.simulation.faults.active_network_chaos`) so CI can inject
dropped / delayed / truncated / duplicated frames deterministically —
seeded by request id and bounded by the same cross-process ticket
accounting the backend chaos harness uses.
"""

from __future__ import annotations

import enum
import io
import pickle
import socket
import struct
import zlib
from typing import Any, Optional, Tuple

MAGIC = b"RSIM"
PROTOCOL_VERSION = 1

#: Hard ceiling on one frame's payload (checked before allocation).  Job
#: and metrics payloads are kilobytes; even a pathological mega-batch fits
#: comfortably under this.
MAX_FRAME_BYTES = 64 * 1024 * 1024

_HEADER = struct.Struct("!4sHBBII32s")
HEADER_BYTES = _HEADER.size

#: Request id carried by frames that do not belong to a job (PING/PONG).
NULL_REQUEST_ID = b"\x00" * 32


class FrameType(enum.IntEnum):
    """What one frame means."""

    #: client → server: evaluate the pickled :class:`SimJob` in the payload.
    REQUEST = 1
    #: server → client: the pickled ``{metric: (B,) array}`` block.
    RESULT = 2
    #: server → client: a typed failure (pickled ``{kind, message}``).
    ERROR = 3
    #: either direction: liveness.  The server emits one per poll interval
    #: while a job executes (so the client's activity timeout never fires
    #: on a long but healthy job); the client echoes each one back, which
    #: is what renews its server-side lease.
    HEARTBEAT = 4
    #: client → server: health probe (the circuit breaker's half-open
    #: probe uses this to test an endpoint without paying for a job).
    PING = 5
    #: server → client: probe response.
    PONG = 6
    #: client → experiment front end: submit a whole sizing run (pickled
    #: ``{"config": ExperimentConfig dict, "tenant": str}``).  The request
    #: id is the deterministic *run key* (config fingerprint + seeds +
    #: tenant), which makes resubmission after a crash or reconnect
    #: idempotent — a duplicate SUBMIT attaches to the journaled run.
    SUBMIT = 7
    #: both directions on the experiment port: the client polls with an
    #: empty STATUS frame; the front end replies with a STATUS frame
    #: carrying ``{"state": ...}`` while the run is queued or executing
    #: (a finished run answers with RESULT / ERROR instead).
    STATUS = 8
    #: client → experiment front end: cancel a queued run.  Runs already
    #: executing complete (per-seed checkpoints make abandonment cheap for
    #: the client, and completed work is journaled for everyone else).
    CANCEL = 9
    #: experiment front end → client: typed load-shedding reply to a
    #: SUBMIT the server will not queue (bounded run queue full, or
    #: draining for shutdown).  Payload: ``{"retry_after": seconds,
    #: "reason": str}``.  Distinct from ERROR by design — the client backs
    #: off and retries without counting a fault.
    BUSY = 10


class ProtocolError(RuntimeError):
    """A malformed, corrupted or truncated frame (either direction).

    The one typed error every protocol failure collapses to: clients
    count it against the endpoint's circuit breaker and retry or degrade;
    the server answers with an ERROR frame (when the stream still has
    integrity) or drops the connection — never crashes, never hangs.
    """


class ConnectionClosed(ProtocolError):
    """The peer closed the stream cleanly *between* frames.

    Still a :class:`ProtocolError` (callers that only care about "the
    stream is unusable" need not distinguish), but a server can treat it
    as a normal end-of-conversation rather than a corruption event.
    """


class RemoteError(RuntimeError):
    """A failure the *server* reported via an ERROR frame.

    ``kind`` mirrors :class:`~repro.simulation.service.FailureKind` values
    so the client can distinguish transient engine trouble (retry / fall
    back) from deployment errors (raise — a misconfigured fabric must not
    be silently papered over by the local fallback).
    """

    def __init__(self, kind: str, message: str):
        super().__init__(f"[{kind}] {message}")
        self.kind = kind


def request_id_bytes(job_id: str) -> bytes:
    """The 32 raw digest bytes of a :attr:`SimJob.job_id` hex hash."""
    try:
        raw = bytes.fromhex(job_id)
    except ValueError:
        raise ProtocolError(f"malformed job id {job_id!r}") from None
    if len(raw) != 32:
        raise ProtocolError(f"job id must be 32 bytes, got {len(raw)}")
    return raw


def encode_frame(
    frame_type: int, payload: bytes = b"", request_id: bytes = NULL_REQUEST_ID
) -> bytes:
    """One complete wire frame for ``payload``."""
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"payload of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte frame limit"
        )
    if len(request_id) != 32:
        raise ProtocolError("request id must be exactly 32 bytes")
    header = _HEADER.pack(
        MAGIC,
        PROTOCOL_VERSION,
        int(frame_type),
        0,
        len(payload),
        zlib.crc32(payload) & 0xFFFFFFFF,
        request_id,
    )
    return header + payload


def _recv_exact(
    sock: socket.socket, count: int, at_boundary: bool = False
) -> bytes:
    """Exactly ``count`` bytes from the stream, or a typed error.

    EOF mid-read — the peer vanished or chaos truncated the frame — is a
    :class:`ProtocolError` (:class:`ConnectionClosed` when it lands on a
    frame boundary with ``at_boundary`` set: a clean goodbye, not
    corruption); a socket timeout propagates as the standard
    :class:`TimeoutError` so callers can treat "peer silent" differently
    from "peer sent garbage".
    """
    chunks = []
    remaining = count
    while remaining > 0:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            if at_boundary and remaining == count:
                raise ConnectionClosed("peer closed the connection")
            raise ProtocolError(
                f"connection closed mid-frame ({count - remaining} of "
                f"{count} bytes received)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> Tuple[FrameType, bytes, bytes]:
    """Read one frame: ``(type, request_id, payload)``.

    Every integrity violation raises :class:`ProtocolError`; the stream
    should be considered unusable afterwards (framing is lost).
    """
    header = _recv_exact(sock, HEADER_BYTES, at_boundary=True)
    magic, version, frame_type, _reserved, length, checksum, request_id = (
        _HEADER.unpack(header)
    )
    if magic != MAGIC:
        raise ProtocolError(f"bad magic {magic!r} (not a repro fabric peer?)")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"protocol version mismatch: peer speaks {version}, "
            f"this build speaks {PROTOCOL_VERSION}"
        )
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"declared payload of {length} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte frame limit"
        )
    try:
        kind = FrameType(frame_type)
    except ValueError:
        raise ProtocolError(f"unknown frame type {frame_type}") from None
    payload = _recv_exact(sock, length) if length else b""
    if (zlib.crc32(payload) & 0xFFFFFFFF) != checksum:
        raise ProtocolError("payload checksum mismatch (corrupt frame)")
    return kind, request_id, payload


def send_frame(
    sock: socket.socket,
    frame_type: int,
    payload: bytes = b"",
    request_id: bytes = NULL_REQUEST_ID,
) -> None:
    """Write one frame, applying any armed network-chaos plan.

    Chaos modes (see :class:`~repro.simulation.faults.NetworkFaultSchedule`):
    ``delay`` sleeps before an otherwise normal send; ``duplicate`` sends
    the frame twice (the receiver must cope — REQUEST duplicates coalesce
    on the job hash, late duplicate RESULTs land on a closed stream);
    ``drop`` aborts the connection without sending; ``truncate`` sends a
    partial frame then aborts.  Drop and truncate raise
    :class:`ProtocolError` on the *sender* too, mirroring what a real
    half-written ``sendall`` failure looks like.
    """
    frame = encode_frame(frame_type, payload, request_id)
    from repro.simulation.faults import active_network_chaos

    chaos = active_network_chaos()
    if chaos is not None:
        action = chaos.claim(request_id.hex())
        if action == "delay":
            import time

            time.sleep(chaos.schedule.delay_seconds)
        elif action == "duplicate":
            sock.sendall(frame)
        elif action == "drop":
            _abort_socket(sock)
            raise ProtocolError("chaos: frame dropped (connection aborted)")
        elif action == "truncate":
            try:
                sock.sendall(frame[: max(1, len(frame) // 2)])
            except OSError:
                pass
            _abort_socket(sock)
            raise ProtocolError("chaos: frame truncated (connection aborted)")
    sock.sendall(frame)


def _abort_socket(sock: socket.socket) -> None:
    """Hard-close a socket so the peer sees the stream die immediately.

    ``SO_LINGER`` with a zero timeout turns the close into a TCP RST —
    the closest a test can get to a yanked cable without a real one.
    """
    try:
        sock.setsockopt(
            socket.SOL_SOCKET,
            socket.SO_LINGER,
            struct.pack("ii", 1, 0),
        )
    except OSError:  # pragma: no cover - platform-dependent
        pass
    try:
        sock.close()
    except OSError:  # pragma: no cover
        pass


# ----------------------------------------------------------------------
# Payload (de)serialization
# ----------------------------------------------------------------------
def dumps_payload(value: Any) -> bytes:
    """Pickle one payload object for the wire."""
    return pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)


def loads_payload(payload: bytes) -> Any:
    """Unpickle one payload, collapsing every failure to a typed error.

    ``pickle.loads`` on hostile bytes can raise nearly anything
    (``UnpicklingError``, ``EOFError``, ``AttributeError``, ``ValueError``,
    ``MemoryError`` on absurd allocations is pre-empted by the frame size
    cap); all of it means the same thing to the fabric — the peer sent
    something that is not a valid payload.
    """
    try:
        return pickle.loads(payload)
    except Exception as error:
        raise ProtocolError(f"undecodable frame payload: {error}") from None


def loads_metrics(payload: bytes, batch: int, metric_names) -> dict:
    """Decode and *validate* a RESULT payload into a metrics block.

    The client refuses anything that is not exactly one finite-shape
    ``(batch,)`` float array per expected metric — a truncated or
    corrupted result can therefore never masquerade as a partial
    :class:`~repro.simulation.service.SimResult`; it is a
    :class:`ProtocolError` and the job re-runs elsewhere.
    """
    import numpy as np

    decoded = loads_payload(payload)
    if not isinstance(decoded, dict):
        raise ProtocolError(
            f"RESULT payload must be a metrics dict, got "
            f"{type(decoded).__name__}"
        )
    # Reserved ``__``-prefixed keys (per-row timing, future bookkeeping)
    # are dropped, not validated: older/newer servers may or may not send
    # them, and they are never part of the circuit's metric contract.
    decoded = {
        name: values
        for name, values in decoded.items()
        if not (isinstance(name, str) and name.startswith("__"))
    }
    expected = set(metric_names)
    if set(decoded) != expected:
        raise ProtocolError(
            f"RESULT metrics {sorted(decoded)} do not match the circuit's "
            f"{sorted(expected)}"
        )
    metrics = {}
    for name, values in decoded.items():
        try:
            block = np.asarray(values, dtype=float)
        except (TypeError, ValueError):
            raise ProtocolError(
                f"RESULT metric {name!r} is not a float array"
            ) from None
        if block.shape != (batch,):
            raise ProtocolError(
                f"RESULT metric {name!r} has shape {block.shape}, "
                f"expected ({batch},)"
            )
        metrics[name] = block
    return metrics


def read_frame_from_bytes(data: bytes) -> Tuple[FrameType, bytes, bytes]:
    """Parse one frame from an in-memory byte string (fuzz-test helper).

    Wraps the buffer in a minimal socket-shaped reader so the exact
    production code path — header parse, size cap, checksum — is what the
    fuzzer exercises.
    """

    class _Reader:
        def __init__(self, raw: bytes):
            self._stream = io.BytesIO(raw)

        def recv(self, count: int) -> bytes:
            return self._stream.read(count)

    return recv_frame(_Reader(data))  # type: ignore[arg-type]


__all__ = [
    "ConnectionClosed",
    "FrameType",
    "HEADER_BYTES",
    "MAGIC",
    "MAX_FRAME_BYTES",
    "NULL_REQUEST_ID",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "RemoteError",
    "dumps_payload",
    "encode_frame",
    "loads_metrics",
    "loads_payload",
    "read_frame_from_bytes",
    "recv_frame",
    "request_id_bytes",
    "send_frame",
]
