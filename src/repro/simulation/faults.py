"""Deterministic chaos injection for the simulation fabric.

The fault-tolerance paths — budget-refunded retries, pool healing, shard
watchdogs — guard against failures that are inherently hard to reproduce:
a worker segfaulting mid-shard, an engine hanging past its timeout, a
flaky license server.  This module makes those failures *scriptable and
seeded* so CI can exercise every recovery path on demand:

``FaultInjectingBackend`` (registry name ``"chaos"``) wraps any terminal
backend and injects faults according to a :class:`FaultSchedule`:

========  =============================================================
mode      behaviour when a fault fires
========  =============================================================
raise     raise :class:`ChaosFault` (an ``NgspiceError`` — the retry
          classifier treats it as an engine failure)
hang      sleep ``hang_seconds`` before evaluating — trips the shard
          watchdog / test-timeout machinery
kill      ``os._exit(kill_exit_code)`` **when running inside a pool
          worker** — the real worker-death signature (breaks the whole
          executor).  In the main process this downgrades to ``raise``
          so a mis-configured schedule can never kill the test runner.
nan       return a full :data:`~repro.spice.deck.FAILURE_NAN` block
          (the never-produced signature: uncacheable, refunded,
          retried)
========  =============================================================

"Flaky-then-succeed" is ``raise`` with ``faults=N``: the first N matching
evaluations fail, then the engine behaves.

**Cross-process fault tickets.**  A sharded run evaluates in worker
processes, each holding its *own* backend instance — an in-memory
fault counter cannot coordinate "fail exactly once" across them.  The
schedule therefore supports a *ticket directory*: :meth:`FaultSchedule.arm`
creates ``faults`` ticket files, and every matching evaluation tries to
claim one with ``os.unlink`` (atomic on POSIX — exactly one claimant wins
each ticket, in any process).  No tickets left → the engine behaves.
Without a ticket directory the schedule falls back to a per-instance
in-memory counter, which is exactly right for single-process use.

**Seeded targeting.**  With ``probability`` set, whether a given *job* is
fault-eligible is drawn from ``default_rng([seed, job_hash])`` — keyed by
the job's content hash, so the decision is identical in every process and
on every retry of the same job (the ticket budget, not the draw, is what
lets a retry eventually succeed).

**Worker reconstruction.**  The zero-argument constructor rebuilds the
whole configuration from ``REPRO_CHAOS_*`` environment variables (see
:meth:`FaultSchedule.from_env` / :meth:`FaultSchedule.to_env`), which is
what makes the chaos backend ``worker_reconstructible`` and therefore
shardable — chaos runs exercise the *real* pool paths.

**Network chaos.**  The remote fabric (:mod:`repro.simulation.protocol` /
``repro serve``) has its own failure surface — frames dropped, delayed,
truncated mid-send, or duplicated.  :class:`NetworkFaultSchedule` scripts
those with the same seeded targeting and cross-process ticket accounting:
:func:`install_network_chaos` arms a plan (module-global plus
``REPRO_NETCHAOS_*`` env so a ``repro serve`` child process injects too),
and :func:`repro.simulation.protocol.send_frame` consults
:func:`active_network_chaos` on every outgoing frame.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import uuid
from dataclasses import dataclass
from typing import Dict, Optional, Union

import numpy as np

from repro.circuits.base import AnalogCircuit
from repro.simulation.ngspice import NgspiceError
from repro.simulation.service import (
    BACKENDS,
    SimJob,
    SimulationBackend,
    resolve_backend,
)

#: Environment variables carrying a chaos schedule across process
#: boundaries (fork or spawn): the worker-side zero-argument constructor
#: reads them back.
INNER_ENV = "REPRO_CHAOS_INNER"
MODE_ENV = "REPRO_CHAOS_MODE"
FAULTS_ENV = "REPRO_CHAOS_FAULTS"
TICKET_DIR_ENV = "REPRO_CHAOS_TICKETS"
HANG_SECONDS_ENV = "REPRO_CHAOS_HANG_SECONDS"
SEED_ENV = "REPRO_CHAOS_SEED"
PROBABILITY_ENV = "REPRO_CHAOS_PROBABILITY"
KILL_EXIT_CODE_ENV = "REPRO_CHAOS_EXIT_CODE"

#: Environment variables carrying a *network* chaos plan across process
#: boundaries (a ``repro serve`` child must inject server-side too).
NET_MODE_ENV = "REPRO_NETCHAOS_MODE"
NET_FAULTS_ENV = "REPRO_NETCHAOS_FAULTS"
NET_TICKET_DIR_ENV = "REPRO_NETCHAOS_TICKETS"
NET_DELAY_SECONDS_ENV = "REPRO_NETCHAOS_DELAY_SECONDS"
NET_SEED_ENV = "REPRO_NETCHAOS_SEED"
NET_PROBABILITY_ENV = "REPRO_NETCHAOS_PROBABILITY"

VALID_MODES = ("raise", "hang", "kill", "nan")
VALID_NETWORK_MODES = ("drop", "delay", "truncate", "duplicate")


class ChaosFault(NgspiceError):
    """An injected engine failure.

    Subclasses :class:`~repro.simulation.ngspice.NgspiceError` so the
    retry classifier files it under ``FailureKind.ENGINE`` — injected
    faults flow through exactly the recovery paths a real engine failure
    would.
    """


def _in_pool_worker() -> bool:
    """True inside a ``ProcessPoolExecutor`` worker (any start method)."""
    return multiprocessing.current_process().name != "MainProcess"


# ----------------------------------------------------------------------
# Ticket-file accounting, shared by backend and network schedules
# ----------------------------------------------------------------------
def _arm_tickets(ticket_dir: str, count: int) -> int:
    """Write ``count`` one-shot ticket files into ``ticket_dir``."""
    os.makedirs(ticket_dir, exist_ok=True)
    for _ in range(count):
        path = os.path.join(ticket_dir, f"ticket-{uuid.uuid4().hex}")
        with open(path, "w") as handle:
            handle.write("armed\n")
    return count


def _tickets_left(ticket_dir: Optional[str]) -> int:
    if ticket_dir is None or not os.path.isdir(ticket_dir):
        return 0
    return len(
        [
            name
            for name in os.listdir(ticket_dir)
            if name.startswith("ticket-")
        ]
    )


def _claim_one_ticket(ticket_dir: Optional[str]) -> bool:
    """Atomically consume one ticket file; False when none remain.

    ``os.unlink`` is the claim: on POSIX exactly one process wins a
    given file, so N tickets yield exactly N faults fleet-wide no
    matter how many workers race.
    """
    if ticket_dir is None or not os.path.isdir(ticket_dir):
        return False
    for name in sorted(os.listdir(ticket_dir)):
        if not name.startswith("ticket-"):
            continue
        try:
            os.unlink(os.path.join(ticket_dir, name))
        except FileNotFoundError:
            continue  # another process won this ticket; try the next
        return True
    return False


def _disarm_tickets(ticket_dir: Optional[str]) -> int:
    """Remove every unclaimed ticket file; returns how many were removed.

    Chaos runs that end with tickets unclaimed (a schedule armed more
    faults than the run consumed) would otherwise leak ``ticket-*`` files
    into tmp directories — teardown should always disarm.
    """
    if ticket_dir is None or not os.path.isdir(ticket_dir):
        return 0
    removed = 0
    for name in os.listdir(ticket_dir):
        if not name.startswith("ticket-"):
            continue
        try:
            os.unlink(os.path.join(ticket_dir, name))
        except FileNotFoundError:
            continue
        removed += 1
    return removed


@dataclass(frozen=True)
class FaultSchedule:
    """What to inject, how often, and how the decision is seeded.

    Frozen so a schedule can ride inside a frozen config; mutable fault
    *state* lives in the ticket directory (cross-process) or in the
    owning backend's counter (single-process).
    """

    mode: str = "raise"
    #: Total faults to inject before the engine behaves (``None`` =
    #: unlimited — every eligible evaluation faults).
    faults: Optional[int] = 1
    #: Directory of one-shot ticket files (cross-process accounting); when
    #: unset, accounting is a per-backend-instance counter.
    ticket_dir: Optional[str] = None
    #: How long ``hang`` sleeps.  Long by design — the watchdog, not the
    #: sleep running out, is what should end a hung shard.
    hang_seconds: float = 300.0
    #: Optional seeded per-job targeting: a job is fault-eligible when
    #: ``default_rng([seed, job_hash]).random() < probability``.
    probability: Optional[float] = None
    seed: int = 0
    kill_exit_code: int = 13

    def __post_init__(self):
        if self.mode not in VALID_MODES:
            raise ValueError(
                f"unknown chaos mode {self.mode!r}; valid: {VALID_MODES}"
            )
        if self.faults is not None and self.faults < 0:
            raise ValueError("faults must be non-negative or None")

    # ------------------------------------------------------------------
    # Ticket accounting
    # ------------------------------------------------------------------
    def arm(self) -> int:
        """Create the ticket files in :attr:`ticket_dir`.

        Returns the number of tickets written.  Requires a bounded
        ``faults`` count and a ticket directory.
        """
        if self.ticket_dir is None:
            raise ValueError("arm() requires a ticket_dir")
        if self.faults is None:
            raise ValueError("arm() requires a bounded fault count")
        return _arm_tickets(self.ticket_dir, self.faults)

    def tickets_left(self) -> int:
        return _tickets_left(self.ticket_dir)

    def disarm(self) -> int:
        """Remove unclaimed ticket files; returns how many were removed.

        The teardown counterpart of :meth:`arm` — call it when a chaos
        run ends so leftover tickets neither leak into tmp directories
        nor arm a *later* schedule that reuses the same directory.
        """
        return _disarm_tickets(self.ticket_dir)

    def _claim_ticket(self) -> bool:
        return _claim_one_ticket(self.ticket_dir)

    # ------------------------------------------------------------------
    # Seeded targeting
    # ------------------------------------------------------------------
    def eligible(self, job: SimJob) -> bool:
        """Whether this job may fault at all (before ticket accounting)."""
        if self.probability is None:
            return True
        key = int(job.job_id[:16], 16) % (2**32)
        draw = np.random.default_rng([self.seed, key]).random()
        return bool(draw < self.probability)

    # ------------------------------------------------------------------
    # Environment round trip (worker reconstruction)
    # ------------------------------------------------------------------
    def to_env(self, inner: str) -> Dict[str, str]:
        """The ``REPRO_CHAOS_*`` mapping reconstructing this schedule."""
        env = {
            INNER_ENV: inner,
            MODE_ENV: self.mode,
            FAULTS_ENV: "" if self.faults is None else str(self.faults),
            TICKET_DIR_ENV: self.ticket_dir or "",
            HANG_SECONDS_ENV: repr(float(self.hang_seconds)),
            SEED_ENV: str(self.seed),
            PROBABILITY_ENV: (
                "" if self.probability is None else repr(self.probability)
            ),
            KILL_EXIT_CODE_ENV: str(self.kill_exit_code),
        }
        return env

    def apply_env(self, inner: str) -> None:
        """Publish this schedule (and the inner backend name) to
        ``os.environ`` so forked/spawned workers rebuild it."""
        os.environ.update(self.to_env(inner))

    @classmethod
    def from_env(cls) -> "FaultSchedule":
        faults_raw = os.environ.get(FAULTS_ENV, "1")
        probability_raw = os.environ.get(PROBABILITY_ENV, "")
        return cls(
            mode=os.environ.get(MODE_ENV, "raise"),
            faults=int(faults_raw) if faults_raw else None,
            ticket_dir=os.environ.get(TICKET_DIR_ENV) or None,
            hang_seconds=float(os.environ.get(HANG_SECONDS_ENV, "300")),
            probability=float(probability_raw) if probability_raw else None,
            seed=int(os.environ.get(SEED_ENV, "0")),
            kill_exit_code=int(os.environ.get(KILL_EXIT_CODE_ENV, "13")),
        )


class FaultInjectingBackend(SimulationBackend):
    """A terminal backend that injects scheduled faults around another.

    ``FaultInjectingBackend()`` (zero arguments — the worker-side rebuild)
    reads the inner backend name and the schedule from ``REPRO_CHAOS_*``;
    the parent-side constructor takes them explicitly and, for sharded
    runs, :meth:`FaultSchedule.apply_env` must have published the same
    configuration first (:func:`install_chaos` does both).
    """

    name = "chaos"

    def __init__(
        self,
        inner: Union[str, SimulationBackend, None] = None,
        schedule: Optional[FaultSchedule] = None,
    ):
        if inner is None:
            inner = os.environ.get(INNER_ENV, "batched")
        self.inner = resolve_backend(inner)
        self.schedule = schedule if schedule is not None else FaultSchedule.from_env()
        #: In-memory fault budget, used only without a ticket directory.
        self._local_faults_left = (
            self.schedule.faults if self.schedule.ticket_dir is None else None
        )
        #: Faults actually injected by *this instance* (observable).
        self.injected = 0

    # Delegate engine traits to the wrapped backend.
    @property
    def row_parallel(self) -> bool:
        return bool(getattr(self.inner, "row_parallel", False))

    @property
    def worker_reconstructible(self) -> bool:
        return bool(self.inner.worker_reconstructible)

    # ------------------------------------------------------------------
    def _claim_fault(self, job: SimJob) -> bool:
        schedule = self.schedule
        if not schedule.eligible(job):
            return False
        if schedule.ticket_dir is not None:
            return schedule._claim_ticket()
        if self._local_faults_left is None:  # unlimited
            return True
        if self._local_faults_left <= 0:
            return False
        self._local_faults_left -= 1
        return True

    def evaluate(
        self, circuit: AnalogCircuit, job: SimJob
    ) -> Dict[str, np.ndarray]:
        if self._claim_fault(job):
            self.injected += 1
            mode = self.schedule.mode
            if mode == "kill" and _in_pool_worker():
                os._exit(self.schedule.kill_exit_code)
            if mode == "kill" or mode == "raise":
                # kill in the main process downgrades to raise: killing
                # the driver (and the test runner with it) is never the
                # intent of a chaos schedule.
                raise ChaosFault(
                    f"injected {mode!r} fault for job {job.job_id[:12]}"
                )
            if mode == "hang":
                time.sleep(self.schedule.hang_seconds)
                # Fall through to a normal evaluation: if nothing above
                # this layer enforced a deadline, the caller still gets
                # correct metrics — just catastrophically late.
            elif mode == "nan":
                from repro.spice.deck import FAILURE_NAN

                return {
                    name: np.full(job.batch, FAILURE_NAN)
                    for name in circuit.metric_names
                }
        return self.inner.evaluate(circuit, job)


BACKENDS[FaultInjectingBackend.name] = FaultInjectingBackend


def install_chaos(
    inner: Union[str, SimulationBackend],
    schedule: FaultSchedule,
    arm: bool = True,
) -> FaultInjectingBackend:
    """Build a chaos backend and publish its configuration for workers.

    Applies the schedule to the environment (so sharded workers rebuild
    the same wrapper), arms the ticket directory when one is configured,
    and returns the parent-side instance.  Test fixtures should pair this
    with ``monkeypatch.setenv``-style cleanup of the ``REPRO_CHAOS_*``
    variables.
    """
    inner_name = (
        inner if isinstance(inner, str) else inner.name
    ) or "batched"
    schedule.apply_env(inner_name)
    if arm and schedule.ticket_dir is not None and schedule.faults is not None:
        schedule.arm()
    return FaultInjectingBackend(inner_name, schedule)


# ----------------------------------------------------------------------
# Network chaos (remote fabric)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class NetworkFaultSchedule:
    """What to do to outgoing protocol frames, and how often.

    ========   ==========================================================
    mode       behaviour when a fault fires (in ``send_frame``)
    ========   ==========================================================
    drop       abort the connection without sending — the peer sees EOF
    delay      sleep ``delay_seconds`` before an otherwise normal send
    truncate   send roughly half the frame, then hard-close (RST) — the
               peer's ``recv_frame`` dies mid-read with a typed error
    duplicate  send the frame twice — exercises hash-keyed idempotency
    ========   ==========================================================

    Accounting and targeting mirror :class:`FaultSchedule`: a ticket
    directory bounds injections fleet-wide (client *and* a ``repro
    serve`` child process), and ``probability`` draws per-request
    eligibility from ``default_rng([seed, request_hash])`` so the same
    request gets the same decision in every process.
    """

    mode: str = "drop"
    faults: Optional[int] = 1
    ticket_dir: Optional[str] = None
    delay_seconds: float = 0.05
    probability: Optional[float] = None
    seed: int = 0

    def __post_init__(self):
        if self.mode not in VALID_NETWORK_MODES:
            raise ValueError(
                f"unknown network chaos mode {self.mode!r}; "
                f"valid: {VALID_NETWORK_MODES}"
            )
        if self.faults is not None and self.faults < 0:
            raise ValueError("faults must be non-negative or None")

    # -- ticket accounting (same semantics as FaultSchedule) -----------
    def arm(self) -> int:
        if self.ticket_dir is None:
            raise ValueError("arm() requires a ticket_dir")
        if self.faults is None:
            raise ValueError("arm() requires a bounded fault count")
        return _arm_tickets(self.ticket_dir, self.faults)

    def tickets_left(self) -> int:
        return _tickets_left(self.ticket_dir)

    def disarm(self) -> int:
        """Remove unclaimed ticket files; returns how many were removed."""
        return _disarm_tickets(self.ticket_dir)

    def _claim_ticket(self) -> bool:
        return _claim_one_ticket(self.ticket_dir)

    def eligible(self, request_hex: str) -> bool:
        """Seeded per-request targeting (before ticket accounting)."""
        if self.probability is None:
            return True
        try:
            key = int(request_hex[:16], 16) % (2**32)
        except ValueError:
            key = 0
        draw = np.random.default_rng([self.seed, key]).random()
        return bool(draw < self.probability)

    # -- environment round trip ----------------------------------------
    def to_env(self) -> Dict[str, str]:
        return {
            NET_MODE_ENV: self.mode,
            NET_FAULTS_ENV: "" if self.faults is None else str(self.faults),
            NET_TICKET_DIR_ENV: self.ticket_dir or "",
            NET_DELAY_SECONDS_ENV: repr(float(self.delay_seconds)),
            NET_SEED_ENV: str(self.seed),
            NET_PROBABILITY_ENV: (
                "" if self.probability is None else repr(self.probability)
            ),
        }

    def apply_env(self) -> None:
        os.environ.update(self.to_env())

    @classmethod
    def from_env(cls) -> "NetworkFaultSchedule":
        faults_raw = os.environ.get(NET_FAULTS_ENV, "1")
        probability_raw = os.environ.get(NET_PROBABILITY_ENV, "")
        return cls(
            mode=os.environ.get(NET_MODE_ENV, "drop"),
            faults=int(faults_raw) if faults_raw else None,
            ticket_dir=os.environ.get(NET_TICKET_DIR_ENV) or None,
            delay_seconds=float(
                os.environ.get(NET_DELAY_SECONDS_ENV, "0.05")
            ),
            probability=float(probability_raw) if probability_raw else None,
            seed=int(os.environ.get(NET_SEED_ENV, "0")),
        )


class NetworkChaos:
    """A live network-fault plan: one schedule plus mutable accounting.

    Injected-fault counting lives here (not on the frozen schedule):
    with a ticket directory the count is fleet-wide and crash-safe;
    without one it is a per-process counter — right for single-process
    tests, wrong across a ``repro serve`` boundary (use tickets there).
    """

    def __init__(self, schedule: NetworkFaultSchedule):
        self.schedule = schedule
        self._local_faults_left = (
            schedule.faults if schedule.ticket_dir is None else None
        )
        #: Faults injected through *this* plan object (observable).
        self.injected = 0

    def claim(self, request_hex: str) -> Optional[str]:
        """The action for one outgoing frame, or ``None`` (send normally)."""
        schedule = self.schedule
        if not schedule.eligible(request_hex):
            return None
        if schedule.ticket_dir is not None:
            if not schedule._claim_ticket():
                return None
        elif self._local_faults_left is not None:
            if self._local_faults_left <= 0:
                return None
            self._local_faults_left -= 1
        self.injected += 1
        return schedule.mode


#: The process-local active plan, set by :func:`install_network_chaos`.
_ACTIVE_NETWORK_CHAOS: Optional[NetworkChaos] = None


def install_network_chaos(
    schedule: Optional[NetworkFaultSchedule],
    arm: bool = True,
    publish_env: bool = True,
) -> Optional[NetworkChaos]:
    """Activate (or with ``None``, deactivate) a network-fault plan.

    Sets the process-local plan consulted by ``send_frame``, optionally
    publishes ``REPRO_NETCHAOS_*`` so child processes (a ``repro serve``
    daemon) rebuild and inject on their side too, and arms the ticket
    directory.  Deactivating also scrubs the environment variables.
    """
    global _ACTIVE_NETWORK_CHAOS
    if schedule is None:
        _ACTIVE_NETWORK_CHAOS = None
        for key in (
            NET_MODE_ENV,
            NET_FAULTS_ENV,
            NET_TICKET_DIR_ENV,
            NET_DELAY_SECONDS_ENV,
            NET_SEED_ENV,
            NET_PROBABILITY_ENV,
        ):
            os.environ.pop(key, None)
        return None
    if publish_env:
        schedule.apply_env()
    if arm and schedule.ticket_dir is not None and schedule.faults is not None:
        schedule.arm()
    _ACTIVE_NETWORK_CHAOS = NetworkChaos(schedule)
    return _ACTIVE_NETWORK_CHAOS


def active_network_chaos() -> Optional[NetworkChaos]:
    """The plan ``send_frame`` should apply, if any.

    Process-local installation wins; otherwise a plan published to the
    environment by a parent process (``REPRO_NETCHAOS_MODE`` set) is
    rebuilt once and cached — this is how a ``repro serve`` child starts
    injecting without any code on its command line.
    """
    global _ACTIVE_NETWORK_CHAOS
    if _ACTIVE_NETWORK_CHAOS is not None:
        return _ACTIVE_NETWORK_CHAOS
    if os.environ.get(NET_MODE_ENV):
        _ACTIVE_NETWORK_CHAOS = NetworkChaos(NetworkFaultSchedule.from_env())
        return _ACTIVE_NETWORK_CHAOS
    return None


__all__ = [
    "ChaosFault",
    "FaultInjectingBackend",
    "FaultSchedule",
    "NetworkChaos",
    "NetworkFaultSchedule",
    "active_network_chaos",
    "install_chaos",
    "install_network_chaos",
]
