"""Deterministic chaos injection for the simulation fabric.

The fault-tolerance paths — budget-refunded retries, pool healing, shard
watchdogs — guard against failures that are inherently hard to reproduce:
a worker segfaulting mid-shard, an engine hanging past its timeout, a
flaky license server.  This module makes those failures *scriptable and
seeded* so CI can exercise every recovery path on demand:

``FaultInjectingBackend`` (registry name ``"chaos"``) wraps any terminal
backend and injects faults according to a :class:`FaultSchedule`:

========  =============================================================
mode      behaviour when a fault fires
========  =============================================================
raise     raise :class:`ChaosFault` (an ``NgspiceError`` — the retry
          classifier treats it as an engine failure)
hang      sleep ``hang_seconds`` before evaluating — trips the shard
          watchdog / test-timeout machinery
kill      ``os._exit(kill_exit_code)`` **when running inside a pool
          worker** — the real worker-death signature (breaks the whole
          executor).  In the main process this downgrades to ``raise``
          so a mis-configured schedule can never kill the test runner.
nan       return a full :data:`~repro.spice.deck.FAILURE_NAN` block
          (the never-produced signature: uncacheable, refunded,
          retried)
========  =============================================================

"Flaky-then-succeed" is ``raise`` with ``faults=N``: the first N matching
evaluations fail, then the engine behaves.

**Cross-process fault tickets.**  A sharded run evaluates in worker
processes, each holding its *own* backend instance — an in-memory
fault counter cannot coordinate "fail exactly once" across them.  The
schedule therefore supports a *ticket directory*: :meth:`FaultSchedule.arm`
creates ``faults`` ticket files, and every matching evaluation tries to
claim one with ``os.unlink`` (atomic on POSIX — exactly one claimant wins
each ticket, in any process).  No tickets left → the engine behaves.
Without a ticket directory the schedule falls back to a per-instance
in-memory counter, which is exactly right for single-process use.

**Seeded targeting.**  With ``probability`` set, whether a given *job* is
fault-eligible is drawn from ``default_rng([seed, job_hash])`` — keyed by
the job's content hash, so the decision is identical in every process and
on every retry of the same job (the ticket budget, not the draw, is what
lets a retry eventually succeed).

**Worker reconstruction.**  The zero-argument constructor rebuilds the
whole configuration from ``REPRO_CHAOS_*`` environment variables (see
:meth:`FaultSchedule.from_env` / :meth:`FaultSchedule.to_env`), which is
what makes the chaos backend ``worker_reconstructible`` and therefore
shardable — chaos runs exercise the *real* pool paths.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import uuid
from dataclasses import dataclass
from typing import Dict, Optional, Union

import numpy as np

from repro.circuits.base import AnalogCircuit
from repro.simulation.ngspice import NgspiceError
from repro.simulation.service import (
    BACKENDS,
    SimJob,
    SimulationBackend,
    resolve_backend,
)

#: Environment variables carrying a chaos schedule across process
#: boundaries (fork or spawn): the worker-side zero-argument constructor
#: reads them back.
INNER_ENV = "REPRO_CHAOS_INNER"
MODE_ENV = "REPRO_CHAOS_MODE"
FAULTS_ENV = "REPRO_CHAOS_FAULTS"
TICKET_DIR_ENV = "REPRO_CHAOS_TICKETS"
HANG_SECONDS_ENV = "REPRO_CHAOS_HANG_SECONDS"
SEED_ENV = "REPRO_CHAOS_SEED"
PROBABILITY_ENV = "REPRO_CHAOS_PROBABILITY"
KILL_EXIT_CODE_ENV = "REPRO_CHAOS_EXIT_CODE"

VALID_MODES = ("raise", "hang", "kill", "nan")


class ChaosFault(NgspiceError):
    """An injected engine failure.

    Subclasses :class:`~repro.simulation.ngspice.NgspiceError` so the
    retry classifier files it under ``FailureKind.ENGINE`` — injected
    faults flow through exactly the recovery paths a real engine failure
    would.
    """


def _in_pool_worker() -> bool:
    """True inside a ``ProcessPoolExecutor`` worker (any start method)."""
    return multiprocessing.current_process().name != "MainProcess"


@dataclass(frozen=True)
class FaultSchedule:
    """What to inject, how often, and how the decision is seeded.

    Frozen so a schedule can ride inside a frozen config; mutable fault
    *state* lives in the ticket directory (cross-process) or in the
    owning backend's counter (single-process).
    """

    mode: str = "raise"
    #: Total faults to inject before the engine behaves (``None`` =
    #: unlimited — every eligible evaluation faults).
    faults: Optional[int] = 1
    #: Directory of one-shot ticket files (cross-process accounting); when
    #: unset, accounting is a per-backend-instance counter.
    ticket_dir: Optional[str] = None
    #: How long ``hang`` sleeps.  Long by design — the watchdog, not the
    #: sleep running out, is what should end a hung shard.
    hang_seconds: float = 300.0
    #: Optional seeded per-job targeting: a job is fault-eligible when
    #: ``default_rng([seed, job_hash]).random() < probability``.
    probability: Optional[float] = None
    seed: int = 0
    kill_exit_code: int = 13

    def __post_init__(self):
        if self.mode not in VALID_MODES:
            raise ValueError(
                f"unknown chaos mode {self.mode!r}; valid: {VALID_MODES}"
            )
        if self.faults is not None and self.faults < 0:
            raise ValueError("faults must be non-negative or None")

    # ------------------------------------------------------------------
    # Ticket accounting
    # ------------------------------------------------------------------
    def arm(self) -> int:
        """Create the ticket files in :attr:`ticket_dir`.

        Returns the number of tickets written.  Requires a bounded
        ``faults`` count and a ticket directory.
        """
        if self.ticket_dir is None:
            raise ValueError("arm() requires a ticket_dir")
        if self.faults is None:
            raise ValueError("arm() requires a bounded fault count")
        os.makedirs(self.ticket_dir, exist_ok=True)
        for _ in range(self.faults):
            path = os.path.join(
                self.ticket_dir, f"ticket-{uuid.uuid4().hex}"
            )
            with open(path, "w") as handle:
                handle.write("armed\n")
        return self.faults

    def tickets_left(self) -> int:
        if self.ticket_dir is None or not os.path.isdir(self.ticket_dir):
            return 0
        return len(
            [
                name
                for name in os.listdir(self.ticket_dir)
                if name.startswith("ticket-")
            ]
        )

    def _claim_ticket(self) -> bool:
        """Atomically consume one ticket file; False when none remain.

        ``os.unlink`` is the claim: on POSIX exactly one process wins a
        given file, so N tickets yield exactly N faults fleet-wide no
        matter how many workers race.
        """
        if self.ticket_dir is None or not os.path.isdir(self.ticket_dir):
            return False
        for name in sorted(os.listdir(self.ticket_dir)):
            if not name.startswith("ticket-"):
                continue
            try:
                os.unlink(os.path.join(self.ticket_dir, name))
            except FileNotFoundError:
                continue  # another process won this ticket; try the next
            return True
        return False

    # ------------------------------------------------------------------
    # Seeded targeting
    # ------------------------------------------------------------------
    def eligible(self, job: SimJob) -> bool:
        """Whether this job may fault at all (before ticket accounting)."""
        if self.probability is None:
            return True
        key = int(job.job_id[:16], 16) % (2**32)
        draw = np.random.default_rng([self.seed, key]).random()
        return bool(draw < self.probability)

    # ------------------------------------------------------------------
    # Environment round trip (worker reconstruction)
    # ------------------------------------------------------------------
    def to_env(self, inner: str) -> Dict[str, str]:
        """The ``REPRO_CHAOS_*`` mapping reconstructing this schedule."""
        env = {
            INNER_ENV: inner,
            MODE_ENV: self.mode,
            FAULTS_ENV: "" if self.faults is None else str(self.faults),
            TICKET_DIR_ENV: self.ticket_dir or "",
            HANG_SECONDS_ENV: repr(float(self.hang_seconds)),
            SEED_ENV: str(self.seed),
            PROBABILITY_ENV: (
                "" if self.probability is None else repr(self.probability)
            ),
            KILL_EXIT_CODE_ENV: str(self.kill_exit_code),
        }
        return env

    def apply_env(self, inner: str) -> None:
        """Publish this schedule (and the inner backend name) to
        ``os.environ`` so forked/spawned workers rebuild it."""
        os.environ.update(self.to_env(inner))

    @classmethod
    def from_env(cls) -> "FaultSchedule":
        faults_raw = os.environ.get(FAULTS_ENV, "1")
        probability_raw = os.environ.get(PROBABILITY_ENV, "")
        return cls(
            mode=os.environ.get(MODE_ENV, "raise"),
            faults=int(faults_raw) if faults_raw else None,
            ticket_dir=os.environ.get(TICKET_DIR_ENV) or None,
            hang_seconds=float(os.environ.get(HANG_SECONDS_ENV, "300")),
            probability=float(probability_raw) if probability_raw else None,
            seed=int(os.environ.get(SEED_ENV, "0")),
            kill_exit_code=int(os.environ.get(KILL_EXIT_CODE_ENV, "13")),
        )


class FaultInjectingBackend(SimulationBackend):
    """A terminal backend that injects scheduled faults around another.

    ``FaultInjectingBackend()`` (zero arguments — the worker-side rebuild)
    reads the inner backend name and the schedule from ``REPRO_CHAOS_*``;
    the parent-side constructor takes them explicitly and, for sharded
    runs, :meth:`FaultSchedule.apply_env` must have published the same
    configuration first (:func:`install_chaos` does both).
    """

    name = "chaos"

    def __init__(
        self,
        inner: Union[str, SimulationBackend, None] = None,
        schedule: Optional[FaultSchedule] = None,
    ):
        if inner is None:
            inner = os.environ.get(INNER_ENV, "batched")
        self.inner = resolve_backend(inner)
        self.schedule = schedule if schedule is not None else FaultSchedule.from_env()
        #: In-memory fault budget, used only without a ticket directory.
        self._local_faults_left = (
            self.schedule.faults if self.schedule.ticket_dir is None else None
        )
        #: Faults actually injected by *this instance* (observable).
        self.injected = 0

    # Delegate engine traits to the wrapped backend.
    @property
    def row_parallel(self) -> bool:
        return bool(getattr(self.inner, "row_parallel", False))

    @property
    def worker_reconstructible(self) -> bool:
        return bool(self.inner.worker_reconstructible)

    # ------------------------------------------------------------------
    def _claim_fault(self, job: SimJob) -> bool:
        schedule = self.schedule
        if not schedule.eligible(job):
            return False
        if schedule.ticket_dir is not None:
            return schedule._claim_ticket()
        if self._local_faults_left is None:  # unlimited
            return True
        if self._local_faults_left <= 0:
            return False
        self._local_faults_left -= 1
        return True

    def evaluate(
        self, circuit: AnalogCircuit, job: SimJob
    ) -> Dict[str, np.ndarray]:
        if self._claim_fault(job):
            self.injected += 1
            mode = self.schedule.mode
            if mode == "kill" and _in_pool_worker():
                os._exit(self.schedule.kill_exit_code)
            if mode == "kill" or mode == "raise":
                # kill in the main process downgrades to raise: killing
                # the driver (and the test runner with it) is never the
                # intent of a chaos schedule.
                raise ChaosFault(
                    f"injected {mode!r} fault for job {job.job_id[:12]}"
                )
            if mode == "hang":
                time.sleep(self.schedule.hang_seconds)
                # Fall through to a normal evaluation: if nothing above
                # this layer enforced a deadline, the caller still gets
                # correct metrics — just catastrophically late.
            elif mode == "nan":
                from repro.spice.deck import FAILURE_NAN

                return {
                    name: np.full(job.batch, FAILURE_NAN)
                    for name in circuit.metric_names
                }
        return self.inner.evaluate(circuit, job)


BACKENDS[FaultInjectingBackend.name] = FaultInjectingBackend


def install_chaos(
    inner: Union[str, SimulationBackend],
    schedule: FaultSchedule,
    arm: bool = True,
) -> FaultInjectingBackend:
    """Build a chaos backend and publish its configuration for workers.

    Applies the schedule to the environment (so sharded workers rebuild
    the same wrapper), arms the ticket directory when one is configured,
    and returns the parent-side instance.  Test fixtures should pair this
    with ``monkeypatch.setenv``-style cleanup of the ``REPRO_CHAOS_*``
    variables.
    """
    inner_name = (
        inner if isinstance(inner, str) else inner.name
    ) or "batched"
    schedule.apply_env(inner_name)
    if arm and schedule.ticket_dir is not None and schedule.faults is not None:
        schedule.arm()
    return FaultInjectingBackend(inner_name, schedule)


__all__ = [
    "ChaosFault",
    "FaultInjectingBackend",
    "FaultSchedule",
    "install_chaos",
]
